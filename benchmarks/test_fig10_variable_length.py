"""Fig. 10: latency on variable-length requests (BERT / ALBERT / Decoder).

Paper reference (RTX 2060, sequential single requests):
  BERT:    Turbo vs PyTorch 1.10x-2.58x (no win at lengths 5 and 12),
           Turbo vs onnxruntime 0.84x-1.68x (onnx faster at short lengths).
  ALBERT:  Turbo vs PyTorch 1.35x-2.26x.
  Decoder: Turbo vs PyTorch 1.85x-2.51x.
Shape: speedups grow with sequence length and land in comparable bands.
"""

from repro.experiments.fig10_variable_length import (
    format_fig10,
    run_fig10_albert,
    run_fig10_bert,
    run_fig10_decoder,
    speedup_range,
)


def test_fig10_bert(benchmark):
    points = benchmark(run_fig10_bert)
    lo, hi = speedup_range(points, "PyTorch")
    onnx_lo, onnx_hi = speedup_range(points, "onnxruntime")
    print(f"\n[Fig. 10/BERT] turbo vs PyTorch {lo:.2f}x-{hi:.2f}x, "
          f"vs onnxruntime {onnx_lo:.2f}x-{onnx_hi:.2f}x "
          f"(paper: 1.10-2.58 / 0.84-1.68)")
    assert 1.0 <= lo < 1.8
    assert 1.7 < hi < 3.0
    assert 0.8 <= onnx_lo <= 1.1  # onnx competitive or ahead at short lengths
    assert onnx_hi > 1.1
    # Speedup grows with length: the longest third beats the shortest third.
    third = len(points) // 3
    short = sum(p.speedup("PyTorch") for p in points[:third]) / third
    long = sum(p.speedup("PyTorch") for p in points[-third:]) / third
    assert long > short


def test_fig10_albert(benchmark):
    points = benchmark(run_fig10_albert)
    lo, hi = speedup_range(points, "PyTorch")
    print(f"\n[Fig. 10/ALBERT] turbo vs PyTorch {lo:.2f}x-{hi:.2f}x "
          f"(paper: 1.35-2.26)")
    assert 1.0 <= lo < 1.8
    assert 1.6 < hi < 3.0


def test_fig10_decoder(benchmark):
    points = benchmark(run_fig10_decoder)
    lo, hi = speedup_range(points, "PyTorch")
    print(f"\n[Fig. 10/Decoder] turbo vs PyTorch {lo:.2f}x-{hi:.2f}x "
          f"(paper: 1.85-2.51)")
    assert 1.6 < lo
    assert hi < 3.0
    # Decoding latency grows with source/target length.
    turbo = [p.latencies_s["TurboTransformers"] for p in points]
    assert turbo == sorted(turbo)


def test_fig10_render(benchmark):
    output = benchmark.pedantic(format_fig10, rounds=1, iterations=1,
                                warmup_rounds=0)
    print("\n" + output)
    assert "turbo vs PyTorch" in output
