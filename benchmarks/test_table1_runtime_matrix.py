"""Table 1: qualitative runtime feature matrix (derived, not asserted prose)."""

from repro.experiments.table1_runtime_matrix import format_table1, run_table1


def test_table1_runtime_matrix(benchmark):
    rows = benchmark(run_table1)
    print("\n[Table 1] Runtime comparison\n" + format_table1())
    turbo = next(r for r in rows if "Turbo" in r.name)
    assert turbo.variable_length and not turbo.needs_preprocess
    fixed = [r for r in rows if not r.variable_length]
    assert {r.name for r in fixed} == {
        "TensorFlow-XLA", "TensorRT", "FasterTransformers"
    }
