"""Fig. 6: chunk layout as request length grows 200 -> 240.

Paper: the allocator re-plans offsets inside cached chunks and appends one
more chunk; only the delta is freshly allocated.
"""

from repro.experiments.fig6_allocation_example import format_fig6, run_fig6


def test_fig6_allocation_example(benchmark):
    snapshots = benchmark(run_fig6, 200, 240)
    print("\n[Fig. 6] Allocation example (BERT, length 200 -> 240)\n"
          + format_fig6())
    first, second = snapshots
    assert second.num_chunks >= first.num_chunks
    assert 0 < second.new_mb < first.new_mb
    # Offsets were re-planned: the second layout still covers all tensors.
    assert sum(len(v) for v in second.chunk_tensors.values()) == \
        sum(len(v) for v in first.chunk_tensors.values())
