"""Table 4: avg (min, max) serving latency at each system's capacity.

Paper reference (req/s = each system's saturation point):
  60:  PyTorch 77.71 (10.61, 158.06) | others low
  98:  PyTorch +inf | Turbo-Naive 16.68-38 | Turbo-NoBatch ok | DP ok
  120: Turbo-NoBatch 32.91 | DP 23.18 (DP cuts avg/max ~30/36%)
  144: only Turbo-DP-Batch stays finite (38.51 ms avg)
Shape: at each measured capacity, every *slower* system has saturated
(+inf) while the system that defines the rate stays finite, and DP yields
lower latency than NoBatch at NoBatch's capacity.
"""

from repro.experiments.fig12_serving_throughput import format_table4, run_table4


def test_table4_serving_latency(benchmark, serving_bench):
    rates, metrics = benchmark.pedantic(
        run_table4, args=(serving_bench,), rounds=1, iterations=1, warmup_rounds=0
    )
    print("\n[Table 4] Serving latency avg (min, max) ms at measured "
          "saturation rates\n" + format_table4(serving_bench))

    ordered = ["PyTorch-NoBatch", "Turbo-Naive-Batch", "Turbo-NoBatch",
               "Turbo-DP-Batch"]
    # Rates are each system's capacity: strictly increasing.
    assert rates == sorted(rates)

    # The defining system stays finite at its own rate; every slower system
    # is saturated by the fastest system's rate.
    for i, name in enumerate(ordered):
        assert not metrics[name][i].saturated, (name, rates[i])
    top_rate_idx = len(rates) - 1
    for name in ordered[:-1]:
        assert metrics[name][top_rate_idx].saturated, name

    # DP beats NoBatch on latency at NoBatch's capacity (paper: -30% avg).
    nobatch_rate_idx = ordered.index("Turbo-NoBatch")
    dp = metrics["Turbo-DP-Batch"][nobatch_rate_idx].latency
    nobatch = metrics["Turbo-NoBatch"][nobatch_rate_idx].latency
    assert dp.avg_ms < nobatch.avg_ms
