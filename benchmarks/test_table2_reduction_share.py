"""Table 2: Softmax/LayerNorm share of the attention layer, before/after.

Paper reference (Tesla V100):
  softmax before   26.23/24.73/34.41/3.04/29.4/90.68 %  ((1,10)...(20,500))
  softmax after     3.44/ 3.18/11.56/2.46/5.50/15.46 %
  layernorm before 29.20/21.72/18.96/10.61/52.59/83.38 %
  layernorm after   4.96/ 4.40/ 4.08/ 5.14/6.44/ 4.24 %
Shape requirement: the optimized share collapses, and the softmax share
grows with workload before optimization.
"""

from repro.experiments.table2_reduction_share import format_table2, run_table2


def test_table2_reduction_share(benchmark):
    shares = benchmark(run_table2)
    print("\n[Table 2] Batch-reduction share of attention (Tesla V100)\n"
          + format_table2())
    for s in shares:
        assert s.after < s.before, (s.kernel, s.batch, s.seq)
    heavy_softmax = next(
        s for s in shares if s.kernel == "softmax" and (s.batch, s.seq) == (20, 500)
    )
    assert heavy_softmax.before > 0.5
    assert heavy_softmax.after < 0.25
    heavy_ln = next(
        s for s in shares if s.kernel == "layernorm" and (s.batch, s.seq) == (20, 500)
    )
    assert heavy_ln.after < 0.06  # paper: 4.24%
