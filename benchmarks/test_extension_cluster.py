"""Extension: Nexus-style multi-server load balancing (paper §5 pointer).

Sweeps cluster size and routing policy over the §6.2 workload served by the
Turbo runtime + DP scheduler on every node.
"""

from repro.experiments.tables import format_table
from repro.serving import (
    DPBatchScheduler,
    RoutingPolicy,
    generate_requests,
    simulate_cluster,
)


def test_extension_cluster_scaling(benchmark, serving_bench):
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    def run():
        results = {}
        for servers in (1, 2, 4):
            requests = generate_requests(250, 6.0, seed=8)
            results[servers] = simulate_cluster(
                requests, servers, DPBatchScheduler, cost_fn,
                policy=RoutingPolicy.LEAST_WORK, duration_s=6.0,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] cluster scaling, Turbo-DP on every node, 250 req/s\n"
          + format_table(
              ["servers", "resp/s", "avg ms", "p95 ms", "stable"],
              [[n, f"{m.serving.response_throughput:.0f}",
                f"{m.serving.latency.avg_ms:.1f}",
                f"{m.serving.latency.p95_ms:.1f}",
                "yes" if m.serving.stable else "NO"]
               for n, m in sorted(results.items())],
          ))
    assert results[4].serving.response_throughput > \
        2 * results[1].serving.response_throughput
    assert results[4].serving.stable


def test_extension_routing_policies(benchmark, serving_bench):
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    def run():
        results = {}
        for policy in RoutingPolicy:
            requests = generate_requests(200, 6.0, seed=9)
            results[policy.value] = simulate_cluster(
                requests, 4, DPBatchScheduler, cost_fn,
                policy=policy, duration_s=6.0,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] routing policies, 4 servers, 200 req/s\n"
          + format_table(
              ["policy", "resp/s", "avg ms", "p99 ms", "balance (max/min)"],
              [[name, f"{m.serving.response_throughput:.0f}",
                f"{m.serving.latency.avg_ms:.1f}",
                f"{m.serving.latency.p99_ms:.1f}",
                f"{m.balance_ratio:.2f}"]
               for name, m in sorted(results.items())],
          ))
    # Work-aware routing keeps up; every policy completes the workload.
    for metrics in results.values():
        assert metrics.serving.completed == metrics.serving.offered
    assert results["least_work"].serving.latency.avg_ms <= \
        results["round_robin"].serving.latency.avg_ms * 1.1
