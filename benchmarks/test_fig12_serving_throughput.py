"""Fig. 12: response throughput of the serving systems vs offered load.

Paper reference (RTX 2060, BERT, normal lengths 5-500, Poisson arrivals):
saturation points TF-serving << PyTorch-NoBatch (60) < Turbo-Naive-Batch
(98) < Turbo-NoBatch (120) < Turbo-DP-Batch (144 resp/s); naive batching is
*worse* than no batching because of zero-padding overhead.
Shape: that ordering, Turbo-DP > Turbo-NoBatch by 15%+, and Turbo-DP at
least 2x PyTorch-NoBatch (paper: +140%).
"""

from repro.experiments.fig12_serving_throughput import format_fig12


def test_fig12_serving_throughput(benchmark, serving_bench):
    def saturation(name):
        return serving_bench.saturation_throughput(serving_bench.system(name))

    capacities = benchmark.pedantic(
        lambda: {name: saturation(name) for name in (
            "TF-serving", "PyTorch-NoBatch", "Turbo-NoBatch",
            "Turbo-Naive-Batch", "Turbo-DP-Batch",
        )},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print("\n[Fig. 12] Response throughput vs offered load (resp/s)\n"
          + format_fig12(serving_bench))
    print("measured saturation capacities:",
          {k: round(v) for k, v in capacities.items()})

    # Saturation ordering of the paper.
    assert capacities["TF-serving"] < capacities["PyTorch-NoBatch"]
    assert capacities["PyTorch-NoBatch"] < capacities["Turbo-Naive-Batch"]
    assert capacities["Turbo-Naive-Batch"] < capacities["Turbo-NoBatch"]
    assert capacities["Turbo-NoBatch"] < capacities["Turbo-DP-Batch"]

    # DP over NoBatch: paper reports +20%.
    dp_gain = capacities["Turbo-DP-Batch"] / capacities["Turbo-NoBatch"] - 1
    assert dp_gain > 0.15

    # DP over PyTorch: paper reports +140%.
    assert capacities["Turbo-DP-Batch"] > 2.0 * capacities["PyTorch-NoBatch"]
