"""Ablation: kernel fusion on/off in the Turbo runtime (DESIGN.md §5.6)."""

from repro.experiments.tables import format_table
from repro.runtime import turbo_runtime


def test_ablation_fusion(benchmark, bert_graph):
    def run():
        fused = turbo_runtime(graph=bert_graph)
        unfused = turbo_runtime(graph=bert_graph, enable_fusion=False)
        rows = []
        for batch, seq in ((1, 10), (1, 100), (1, 500), (20, 100)):
            f = fused.latency(batch, seq)
            u = unfused.latency(batch, seq)
            rows.append((batch, seq, f, u))
        return fused, unfused, rows

    fused, unfused, rows = benchmark(run)
    print("\n[Ablation] fusion on/off (Turbo runtime, RTX 2060)\n" + format_table(
        ["(batch,seq)", "fused (ms)", "unfused (ms)", "fusion gain"],
        [[f"({b},{s})", f"{f * 1e3:.2f}", f"{u * 1e3:.2f}", f"{u / f:.2f}x"]
         for b, s, f, u in rows],
    ))
    assert fused.kernel_launch_count < unfused.kernel_launch_count
    for _, _, f, u in rows:
        assert f < u
    # Fusion matters most where launches dominate: the smallest case gains
    # at least as much as the largest.
    small_gain = rows[0][3] / rows[0][2]
    large_gain = rows[2][3] / rows[2][2]
    assert small_gain >= large_gain * 0.95
