"""Fig. 9: the DP scheduler on the paper's {17,18,52,63,77} example.

Paper: one padded batch of five is *less* efficient than no batching; the
DP partition (three batches) improves throughput ~35% over the single
batch.  Reproduced under the paper-regime cost model; the simulated-2060
cost table is also reported (there, per-request fixed overheads make
batching more forgiving — the DP schedule is optimal under both).
"""

from repro.experiments.fig9_scheduler_example import (
    format_fig9,
    run_fig9,
    simulated_cost_table,
)


def test_fig9_scheduler_example(benchmark):
    outcomes = {o.scheduler: o for o in benchmark(run_fig9)}
    print("\n[Fig. 9] Batch scheduler example, lengths {17,18,52,63,77}\n"
          + format_fig9())
    print(format_fig9(cost_fn=simulated_cost_table().cost,
                      title="simulated RTX 2060 cost table"))

    assert outcomes["naive"].throughput_rps < outcomes["nobatch"].throughput_rps
    improvement = outcomes["dp"].throughput_rps / outcomes["naive"].throughput_rps - 1
    assert 0.20 < improvement < 0.60  # paper: 35%
    assert 2 <= len(outcomes["dp"].batches) <= 4  # paper: 3 batches
