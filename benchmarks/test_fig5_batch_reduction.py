"""Fig. 5: speedup of the Turbo batch-reduction kernels on Tesla V100.

Paper shape: Turbo beats the FasterTransformer baseline in most cases with
the gap growing with workload; the cuDNN softmax gap is much larger; the
softmax boost is more significant than LayerNorm's (its batch dimension is
``heads`` times larger).
"""

from repro.experiments.fig5_batch_reduction import format_fig5, run_fig5


def test_fig5_batch_reduction(benchmark):
    points = benchmark(run_fig5)
    print("\n[Fig. 5] Batch-reduction kernel speedups (Tesla V100)\n"
          + format_fig5())

    ft_softmax = [p for p in points
                  if p.kernel == "softmax" and p.baseline == "faster_transformer"]
    losses = [p for p in ft_softmax if p.speedup < 0.98]
    assert len(losses) <= 2, [f"({p.batch},{p.seq})" for p in losses]

    heavy = max(p.speedup for p in ft_softmax if p.batch == 20)
    light = next(p.speedup for p in ft_softmax if p.batch == 20 and p.seq == 10)
    assert heavy > light

    cudnn_peak = max(p.speedup for p in points if p.baseline == "cudnn")
    assert cudnn_peak > 2.0  # the cuDNN gap is the figure's big bars
