"""Ablation: allocator chunk size, K_SCALE and release policy.

DESIGN.md §5.3: the paper fixes chunks at 2 MB and K_SCALE at 1.2; we sweep
both and compare the eager (Alg. 1-literal), TTL and never release
policies on the Fig. 7 workload.
"""

import pytest

from repro.experiments.fig7_allocator_comparison import workload_records
from repro.experiments.tables import format_table
from repro.memory import TurboAllocator, run_allocator_workload


@pytest.fixture(scope="module")
def streams():
    return workload_records(num_requests=40, seed=1)


def test_ablation_chunk_size(benchmark, streams):
    def run():
        results = {}
        for mb in (1, 2, 4, 8):
            allocator = TurboAllocator(chunk_size=mb * 2**20)
            results[mb] = run_allocator_workload(allocator, streams)
        return results

    results = benchmark(run)
    print("\n[Ablation] chunk size on the Fig. 7 workload\n" + format_table(
        ["chunk (MB)", "max footprint (MB)", "avg new MB/request"],
        [[mb, f"{r.max_footprint_mb:.1f}", f"{r.avg_new_mb_per_request:.2f}"]
         for mb, r in sorted(results.items())],
    ))
    # Bigger chunks trade footprint for fewer allocations.
    assert results[8].allocation_events <= results[1].allocation_events
    for r in results.values():
        assert r.max_footprint_mb < 200


def test_ablation_k_scale(benchmark, streams):
    def run():
        return {
            k: run_allocator_workload(TurboAllocator(k_scale=k), streams)
            for k in (1.0, 1.2, 1.5, 2.0)
        }

    results = benchmark(run)
    print("\n[Ablation] K_SCALE on the Fig. 7 workload\n" + format_table(
        ["K_SCALE", "max footprint (MB)", "avg new MB/request"],
        [[k, f"{r.max_footprint_mb:.1f}", f"{r.avg_new_mb_per_request:.2f}"]
         for k, r in sorted(results.items())],
    ))
    # K_SCALE trades chunk slack against reuse: larger values give oversized
    # chunks headroom that later plans can reuse, so neither footprint nor
    # allocation count is monotone — but all settings must stay sane.
    for r in results.values():
        assert 10 < r.max_footprint_mb < 200
        assert r.avg_new_mb_per_request < 5.0
    # The headroom at k=2.0 must not allocate more often than tight k=1.0.
    assert results[2.0].allocation_events <= results[1.0].allocation_events + 2


def test_ablation_release_policy(benchmark, streams):
    def run():
        return {
            str(policy): run_allocator_workload(
                TurboAllocator(release_after=policy), streams
            )
            for policy in (0, 8, None)
        }

    results = benchmark(run)
    print("\n[Ablation] chunk release policy (Alg. 1 line 20)\n" + format_table(
        ["release_after", "max footprint (MB)", "avg new MB/request", "stall (ms)"],
        [[name, f"{r.max_footprint_mb:.1f}", f"{r.avg_new_mb_per_request:.2f}",
          f"{r.total_stall_s * 1e3:.1f}"]
         for name, r in results.items()],
    ))
    eager, ttl, never = results["0"], results["8"], results["None"]
    # The paper's literal eager release minimizes footprint but churns.
    assert eager.max_footprint_mb <= never.max_footprint_mb
    assert eager.avg_new_mb_per_request > ttl.avg_new_mb_per_request
    # The TTL default approaches never-release efficiency.
    assert ttl.avg_new_mb_per_request <= never.avg_new_mb_per_request * 1.5
