"""Extension: deadline-based load shedding at the paper's +inf points.

Table 4 marks saturated systems "+inf" — unbounded queueing delay.  With a
deadline-based shedder in front, the same overload yields bounded latency
for the requests actually served, at a goodput near the system's capacity:
the graceful-degradation behaviour a deployed front-end needs.
"""

from repro.experiments.tables import format_table
from repro.serving import (
    DPBatchScheduler,
    ServingConfig,
    generate_requests,
    simulate_serving,
    simulate_serving_with_shedding,
)


def test_extension_shedding(benchmark, serving_bench):
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn
    overload_rate = 300  # ~3x the DP system's capacity

    def run():
        unshed = simulate_serving(
            generate_requests(overload_rate, 8.0, seed=15),
            DPBatchScheduler(), cost_fn,
            ServingConfig(max_batch=20), duration_s=8.0,
            system_name="no shedding",
        )
        shed = simulate_serving_with_shedding(
            generate_requests(overload_rate, 8.0, seed=15),
            DPBatchScheduler(), cost_fn,
            deadline_s=0.25, max_batch=20, duration_s=8.0,
            system_name="deadline 250ms",
        )
        return unshed, shed

    unshed, shed = benchmark.pedantic(run, rounds=1, iterations=1,
                                      warmup_rounds=0)
    print(f"\n[Extension] load shedding at {overload_rate} req/s overload\n"
          + format_table(
              ["front-end", "goodput (resp/s)", "avg ms", "p99 ms", "dropped"],
              [
                  ["queue everything", f"{unshed.response_throughput:.0f}",
                   f"{unshed.latency.avg_ms:.0f}", f"{unshed.latency.p99_ms:.0f}",
                   "0"],
                  ["shed past deadline", f"{shed.goodput:.0f}",
                   f"{shed.serving.latency.avg_ms:.0f}",
                   f"{shed.serving.latency.p99_ms:.0f}",
                   f"{shed.dropped} ({shed.drop_rate:.0%})"],
              ],
          ))
    # Shedding keeps served latency bounded near the deadline...
    assert shed.serving.latency.p99_ms < 400
    # ...where the unshedded queue diverges by seconds...
    assert unshed.latency.p99_ms > 5 * shed.serving.latency.p99_ms
    # ...while goodput stays close to the unshedded service rate.
    assert shed.goodput > 0.7 * unshed.response_throughput
