"""Extension: Ebird-style concurrent batching vs the paper's DP scheduler.

Ebird (§2.2 related work) relieves head-of-line blocking by running small
batches concurrently; the DP scheduler instead reorders by length.  The
comparison shows why the paper chose scheduling: concurrency cannot add
capacity (processor sharing conserves it, minus interference), while the
DP schedule converts padding waste into real throughput.
"""

from repro.experiments.tables import format_table
from repro.serving import (
    DPBatchScheduler,
    ServingConfig,
    generate_requests,
    simulate_ebird_serving,
    simulate_serving,
)


def test_extension_concurrency(benchmark, serving_bench):
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    def run():
        results = {}
        for rate in (50, 300):
            ebird_requests = generate_requests(rate, 8.0, seed=13)
            results[("Ebird", rate)] = simulate_ebird_serving(
                ebird_requests, cost_fn, max_streams=4, max_batch=8,
                duration_s=8.0, system_name=f"Ebird@{rate}",
            )
            dp_requests = generate_requests(rate, 8.0, seed=13)
            results[("Turbo-DP", rate)] = simulate_serving(
                dp_requests, DPBatchScheduler(), cost_fn,
                ServingConfig(max_batch=20), duration_s=8.0,
                system_name=f"Turbo-DP@{rate}",
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] Ebird concurrent batching vs Turbo-DP\n"
          + format_table(
              ["system", "offered req/s", "resp/s", "avg ms", "p95 ms"],
              [[n, r, f"{m.response_throughput:.0f}",
                f"{m.latency.avg_ms:.1f}", f"{m.latency.p95_ms:.1f}"]
               for (n, r), m in sorted(results.items())],
          ))

    # Everyone completes the light load.
    assert results[("Ebird", 50)].completed == results[("Ebird", 50)].offered
    # Under overload the DP scheduler sustains more throughput — the
    # paper's thesis that scheduling beats concurrency for this problem.
    assert results[("Turbo-DP", 300)].response_throughput > \
        results[("Ebird", 300)].response_throughput


def test_extension_burstiness(benchmark, serving_bench):
    """Bursty traffic at the same average rate: the DP scheduler absorbs
    bursts by batching them; per-request serving melts down."""
    import numpy as np

    from repro.serving import (
        NoBatchScheduler,
        Request,
        bursty_arrivals,
        normal_lengths,
    )

    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    def make_requests(seed):
        rng = np.random.default_rng(seed)
        times = bursty_arrivals(rng, 60, 8.0, on_fraction=0.2)
        lengths = normal_lengths(rng, len(times))
        return [Request(req_id=i, seq_len=int(lengths[i]),
                        arrival_s=float(times[i]))
                for i in range(len(times))]

    def run():
        results = {}
        for name, scheduler in (("Turbo-DP-Batch", DPBatchScheduler()),
                                ("Turbo-NoBatch", NoBatchScheduler())):
            results[name] = simulate_serving(
                make_requests(14), scheduler, cost_fn,
                ServingConfig(max_batch=20), duration_s=8.0, system_name=name,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] bursty arrivals (60 req/s avg, 5x bursts)\n"
          + format_table(
              ["system", "resp/s", "avg ms", "p95 ms", "stable"],
              [[n, f"{m.response_throughput:.0f}", f"{m.latency.avg_ms:.1f}",
                f"{m.latency.p95_ms:.1f}", "yes" if m.stable else "NO"]
               for n, m in results.items()],
          ))
    dp = results["Turbo-DP-Batch"]
    nobatch = results["Turbo-NoBatch"]
    # Batching absorbs the bursts: far lower tail latency at equal load.
    assert dp.latency.p95_ms < nobatch.latency.p95_ms
    assert dp.stable
