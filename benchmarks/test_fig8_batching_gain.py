"""Fig. 8: batching gain for BERT serving on the simulated RTX 2060.

Paper shape: batching reduces normalized per-request latency everywhere,
with by far the biggest gains for short sequences.
"""

from repro.experiments.fig8_batching_gain import format_fig8, run_fig8


def test_fig8_batching_gain(benchmark):
    points = benchmark(run_fig8)
    print("\n[Fig. 8] Normalized per-request latency vs batch size (RTX 2060)\n"
          + format_fig8())
    gains = {(p.seq, p.batch): p.normalized for p in points}
    for (seq, batch), normalized in gains.items():
        if batch > 1:
            assert normalized < 1.0, (seq, batch)
    # Short sequences benefit the most (paper: "especially for short").
    assert gains[(10, 20)] < 0.35
    assert gains[(10, 20)] < gains[(100, 20)] < gains[(500, 20)]
    # Long single requests already fill the device: modest gain.
    assert gains[(500, 20)] > 0.75
