"""Extension: padding-free ("smart") batching vs the paper's DP scheduler.

The production TurboTransformers line later replaced zero-padding with
sequence concatenation: token-proportional kernels process exactly
``sum(lengths)`` tokens and only the attention core runs per request.
This removes the padding/batching tradeoff that motivates Algorithm 3 —
the comparison quantifies how much of the DP scheduler's win padding-free
execution recovers by construction.
"""

from repro.experiments.tables import format_table
from repro.models import bert_base, build_encoder_graph
from repro.runtime import PackedRuntime, TURBO_CHARACTERISTICS, turbo_runtime
from repro.gpusim import RTX_2060
from repro.serving import (
    DPBatchScheduler,
    PackedBatchScheduler,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


def test_extension_packed_batch_cost(benchmark, bert_graph):
    """Single-batch view: packed vs padded on mixed-length batches."""
    def run():
        packed = PackedRuntime(bert_graph, TURBO_CHARACTERISTICS, RTX_2060)
        runtime = turbo_runtime(graph=bert_graph)
        rows = []
        for lengths in ([128] * 8, [17, 18, 52, 63, 77],
                        [20, 480, 20, 480], [5, 100, 250, 400, 500]):
            p = packed.packed_latency(lengths)
            d = runtime.latency(len(lengths), max(lengths))
            rows.append((lengths, p, d))
        return rows

    rows = benchmark(run)
    print("\n[Extension] packed (no padding) vs padded batch latency\n"
          + format_table(
              ["lengths", "packed (ms)", "padded (ms)", "padded/packed"],
              [[str(lengths), f"{p * 1e3:.2f}", f"{d * 1e3:.2f}",
                f"{d / p:.2f}x"] for lengths, p, d in rows],
          ))
    uniform = rows[0]
    mixed = rows[2]
    assert mixed[2] / mixed[1] > 1.5       # big win on mixed lengths
    assert uniform[2] / uniform[1] < 1.4   # little to win when uniform


def test_extension_packed_serving(benchmark, bert_graph, serving_bench):
    """Serving view: packed scheduler vs Alg. 3 DP on the §6.2 workload."""
    packed_runtime = PackedRuntime(bert_graph, TURBO_CHARACTERISTICS, RTX_2060)
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    from repro.serving import NaiveBatchScheduler

    def run():
        results = {}
        for name, scheduler in (
            ("Turbo-Naive-Batch", NaiveBatchScheduler()),
            ("Turbo-DP-Batch", DPBatchScheduler()),
            ("Turbo-Packed", PackedBatchScheduler(packed_runtime.packed_latency)),
        ):
            requests = generate_requests(400, 8.0, seed=12)
            results[name] = simulate_serving(
                requests, scheduler, cost_fn,
                ServingConfig(max_batch=20), duration_s=8.0, system_name=name,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] packed vs padded serving at 400 req/s (overload)\n"
          + format_table(
              ["system", "resp/s", "avg ms"],
              [[name, f"{m.response_throughput:.0f}",
                f"{m.latency.avg_ms:.1f}"] for name, m in results.items()],
          ))
    # Against its apples-to-apples baseline (arrival-order padded batching)
    # packing recovers the padding waste outright...
    assert results["Turbo-Packed"].response_throughput > \
        1.3 * results["Turbo-Naive-Batch"].response_throughput
    # ...and lands near the DP scheduler without any sorting/reordering.
    # (It stays slightly below DP here because our conservative model keeps
    # per-request attention at single-request GEMM utilization, whereas a
    # real varlen-attention kernel batches those tiles too.)
    assert results["Turbo-Packed"].response_throughput >= \
        0.8 * results["Turbo-DP-Batch"].response_throughput
