"""Extension: generative (GPT-style) serving — TTFT / per-token latency.

The paper's intro motivates transformers with GPT2; generative serving is
where the variable-length problem is most acute (the KV cache grows every
step).  This bench reports the prefill/decode split and the Turbo-vs-
PyTorch gap on both phases.
"""

from repro.experiments.tables import format_table
from repro.gpusim import RTX_2060
from repro.models import build_decode_step_graph, build_prefill_graph, gpt_small
from repro.runtime import (
    GenerationRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
)


def test_extension_generation(benchmark):
    config = gpt_small()
    prefill = build_prefill_graph(config)
    decode = build_decode_step_graph(config)

    def run():
        turbo = GenerationRuntime(prefill, decode, TURBO_CHARACTERISTICS,
                                  RTX_2060, step_overhead_s=0.1e-3)
        pytorch = GenerationRuntime(prefill, decode, PYTORCH_CHARACTERISTICS,
                                    RTX_2060, step_overhead_s=2.5e-3)
        rows = []
        for prompt in (32, 128, 512):
            rows.append((
                prompt,
                turbo.prefill_latency(1, prompt),
                turbo.decode_step_latency(1, prompt),
                pytorch.prefill_latency(1, prompt),
                pytorch.decode_step_latency(1, prompt),
            ))
        return turbo, pytorch, rows

    turbo, pytorch, rows = benchmark(run)
    print("\n[Extension] generative serving: prefill (TTFT) / decode (TPOT)\n"
          + format_table(
              ["prompt", "turbo TTFT (ms)", "turbo TPOT (ms)",
               "pytorch TTFT (ms)", "pytorch TPOT (ms)"],
              [[p, f"{tp * 1e3:.2f}", f"{td * 1e3:.2f}",
                f"{pp * 1e3:.2f}", f"{pd * 1e3:.2f}"]
               for p, tp, td, pp, pd in rows],
          ))

    for prompt, turbo_ttft, turbo_tpot, pt_ttft, pt_tpot in rows:
        # Turbo wins both phases decisively (decode steps are overhead-
        # dominated; long prompts add the quadratic-softmax gap to prefill).
        assert turbo_ttft < pt_ttft
        assert pt_tpot / turbo_tpot > 1.5
        # Decode steps are far cheaper than the prompt pass.
        assert turbo_tpot < turbo_ttft

    # End-to-end generation speedup in the decoder band of Fig. 10.
    speedup = (pytorch.generate_latency(128, 64)
               / turbo.generate_latency(128, 64))
    print(f"end-to-end generate(128 -> +64): {speedup:.2f}x")
    assert 1.5 < speedup < 3.5
