"""§4.1.1 motivating measurements, reproduced from the cost model.

Paper (Tesla V100, PyTorch BERT):
  * (batch 20, seq 128): 61.8% of time in GEMM, 38.2% in non-GEMM kernels.
  * (batch 1, seq 40): GPU completely idle 80.64% of the time.
Measured: 59.3% GEMM / 40.7% non-GEMM, and 69.6% idle — the two numbers
that justify kernel fusion and overhead trimming.
"""

from repro.experiments.profile_breakdown import (
    format_profile_breakdown,
    run_profile_breakdown,
)


def test_section4_profile_claims(benchmark):
    breakdowns = benchmark(run_profile_breakdown)
    print("\n[§4.1.1] PyTorch/Turbo inference time breakdown (Tesla V100)\n"
          + format_profile_breakdown())
    by_key = {(b.runtime, b.batch, b.seq): b for b in breakdowns}

    heavy_pt = by_key[("PyTorch", 20, 128)]
    # Paper: 61.8% GEMM / 38.2% non-GEMM.
    assert 0.50 < heavy_pt.gemm_fraction < 0.75
    assert heavy_pt.non_gemm_fraction > 0.25

    tiny_pt = by_key[("PyTorch", 1, 40)]
    # Paper: GPU idle 80.64% at (1, 40).
    assert tiny_pt.idle_fraction > 0.55

    # Fusion shifts the mix decisively toward GEMM for Turbo.
    heavy_turbo = by_key[("TurboTransformers", 20, 128)]
    assert heavy_turbo.gemm_fraction > heavy_pt.gemm_fraction + 0.15
    # And trims (but cannot eliminate) the tiny-workload idle time.
    tiny_turbo = by_key[("TurboTransformers", 1, 40)]
    assert tiny_turbo.idle_fraction < tiny_pt.idle_fraction
