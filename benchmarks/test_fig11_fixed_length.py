"""Fig. 11: fixed-length BERT comparison on RTX 2060 and Tesla V100.

Paper shape: on RTX 2060 Turbo is best except the lightest case, with
TensorRT the only close competitor; on V100 TensorRT is the strongest
competitor (paper: Turbo better in 13/20), and Turbo is especially better
on the heavy workloads.  Measured deviation: our TensorRT model wins more
of the thin-margin batch-1 cases (see EXPERIMENTS.md), so the assertions
require a Turbo majority against the field, all-heavy wins, and TensorRT
as the only meaningful competitor.
"""

from repro.experiments.fig11_fixed_length import format_fig11, run_fig11, win_count
from repro.gpusim import RTX_2060, TESLA_V100


def _check_device(cases):
    total = len(cases)
    # Turbo strictly beats every non-TensorRT baseline everywhere.
    for baseline in ("TensorFlow-XLA", "FasterTransformers", "onnxruntime"):
        assert win_count(cases, baseline) == total, baseline
    # TensorRT is the strongest competitor but loses all heavy cases.
    heavy = [c for c in cases if c.batch == 20 and c.seq >= 300]
    assert all(c.speedup("TensorRT") > 1.0 for c in heavy)
    # All margins against TensorRT stay tight (it is a credible competitor).
    for c in cases:
        assert 0.85 < c.speedup("TensorRT") < 1.5, (c.batch, c.seq)


def test_fig11_rtx2060(benchmark):
    cases = benchmark(run_fig11, RTX_2060)
    print("\n" + format_fig11(RTX_2060))
    _check_device(cases)
    assert win_count(cases, "TensorRT") >= 12  # turbo majority


def test_fig11_v100(benchmark):
    cases = benchmark(run_fig11, TESLA_V100)
    print("\n" + format_fig11(TESLA_V100))
    _check_device(cases)
    # V100: TensorRT stronger than on 2060 (the paper's observation).
    assert win_count(cases, "TensorRT") < 12


def test_fig11_lightest_case_is_contested(benchmark):
    """(1,10): the paper's one loss on RTX 2060."""
    cases = benchmark(run_fig11, RTX_2060, (10,), (1,))
    case = cases[0]
    assert case.speedup("TensorRT") < 1.05  # effectively a tie or a loss
