"""Real wall-clock microbenchmarks of the NumPy kernels (pytest-benchmark).

A sanity layer beneath the simulated-GPU results: even on a CPU, the fused
kernels do strictly less memory traffic than the reference compositions, so
their wall-clock should never be meaningfully slower — and the numbers give
pytest-benchmark real work to time.
"""

import numpy as np
import pytest

from repro.kernels import (
    add_bias,
    add_bias_gelu,
    add_bias_layernorm,
    gelu,
    layernorm_one_pass,
    layernorm_reference,
    softmax_fused,
    softmax_reference,
)

ROWS, COLS = 1536, 512


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(ROWS, COLS)).astype(np.float32)
    residual = rng.normal(size=(ROWS, COLS)).astype(np.float32)
    bias = rng.normal(size=COLS).astype(np.float32)
    gamma = np.ones(COLS, np.float32)
    beta = np.zeros(COLS, np.float32)
    return x, residual, bias, gamma, beta


def test_softmax_reference_wallclock(benchmark, data):
    x = data[0]
    result = benchmark(softmax_reference, x)
    np.testing.assert_allclose(result.sum(axis=-1), 1.0, rtol=1e-4)


def test_softmax_fused_wallclock(benchmark, data):
    x = data[0]
    buf = np.empty_like(x)
    result = benchmark(lambda: softmax_fused(x, out=buf))
    np.testing.assert_allclose(result.sum(axis=-1), 1.0, rtol=1e-4)


def test_layernorm_reference_wallclock(benchmark, data):
    x, _, _, gamma, beta = data
    benchmark(layernorm_reference, x, gamma, beta)


def test_layernorm_one_pass_wallclock(benchmark, data):
    x, _, _, gamma, beta = data
    buf = np.empty_like(x)
    benchmark(lambda: layernorm_one_pass(x, gamma, beta, out=buf))


def test_add_bias_gelu_unfused_wallclock(benchmark, data):
    x, _, bias = data[0], data[1], data[2]
    benchmark(lambda: gelu(add_bias(x, bias)))


def test_add_bias_gelu_fused_wallclock(benchmark, data):
    x, _, bias = data[0], data[1], data[2]
    buf = np.empty_like(x)
    benchmark(lambda: add_bias_gelu(x, bias, out=buf))


def test_add_bias_layernorm_fused_wallclock(benchmark, data):
    x, residual, bias, gamma, beta = data
    benchmark(lambda: add_bias_layernorm(x, residual, bias, gamma, beta))
