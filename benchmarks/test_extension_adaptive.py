"""Extension: Clipper-style adaptive batching vs the paper's DP scheduler.

Clipper's adaptive batching (§2.2 related work) bounds batch latency under
an SLO but batches in arrival order; the DP scheduler sorts by length
before batching.  On variable-length workloads the DP scheduler wastes far
less padding, which shows up as higher sustainable throughput.
"""

from repro.experiments.tables import format_table
from repro.serving import (
    AdaptiveBatchScheduler,
    DPBatchScheduler,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


def test_extension_adaptive_vs_dp(benchmark, serving_bench):
    cost_fn = serving_bench.system("Turbo-DP-Batch").cost_fn

    def run():
        results = {}
        for rate in (40, 90, 300):
            for name, scheduler in (
                ("adaptive", AdaptiveBatchScheduler(latency_slo_s=0.5,
                                                    initial_cap=20)),
                ("dp", DPBatchScheduler()),
            ):
                requests = generate_requests(rate, 8.0, seed=11)
                results[(name, rate)] = simulate_serving(
                    requests, scheduler, cost_fn,
                    ServingConfig(max_batch=20), duration_s=8.0,
                    system_name=f"{name}@{rate}",
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Extension] adaptive (Clipper) vs DP (Alg. 3) batching\n"
          + format_table(
              ["scheduler", "offered req/s", "resp/s", "avg ms", "stable"],
              [[n, r, f"{m.response_throughput:.0f}",
                f"{m.latency.avg_ms:.1f}", "yes" if m.stable else "NO"]
               for (n, r), m in sorted(results.items())],
          ))
    # Under overload the DP scheduler sustains more throughput (less padding).
    assert results[("dp", 300)].response_throughput > \
        results[("adaptive", 300)].response_throughput
    # At light load both are stable.
    assert results[("dp", 40)].stable
    assert results[("adaptive", 40)].stable
