"""Extension: GPU utilization across the serving systems.

§5's motivation — "small batch sizes lead to low GPU hardware utilization"
— made measurable: at the same offered rate, how busy is the device, and
how much of that busy time is useful?  TF-serving's pad-to-max runs hot on
*wasted* work; Turbo-DP serves the same demand with the least busy time.
"""

from repro.experiments.tables import format_table
from repro.serving import generate_requests


def test_extension_utilization(benchmark, serving_bench):
    rate = 40  # below everyone's capacity except TF-serving's

    def run():
        results = {}
        for system in serving_bench.systems:
            metrics = serving_bench.run_point(system, rate, duration_s=8.0)
            results[system.name] = metrics
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\n[Extension] GPU utilization at {rate} req/s\n" + format_table(
        ["system", "utilization", "resp/s", "avg ms"],
        [[name, f"{m.utilization:.0%}", f"{m.response_throughput:.0f}",
          f"{m.latency.avg_ms:.1f}"]
         for name, m in results.items()],
    ))

    # Pad-to-max burns the device on padding at a rate others serve easily.
    assert results["TF-serving"].utilization > \
        2 * results["Turbo-DP-Batch"].utilization
    # The optimized runtime needs less busy time than PyTorch for the
    # same completed work.
    assert results["Turbo-NoBatch"].utilization < \
        results["PyTorch-NoBatch"].utilization
    # Batching with the DP scheduler serves the demand with the least work.
    assert results["Turbo-DP-Batch"].utilization <= \
        results["Turbo-NoBatch"].utilization + 0.02
