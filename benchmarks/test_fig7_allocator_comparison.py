"""Fig. 7: allocator comparison over 50 variable-length BERT requests.

Paper reference: Turbo allocates 0.70 MB of new memory per request on
average vs 2.78 MB for GSOC; the PyTorch caching allocator's footprint is
roughly double the planned allocators' (1.1 GB vs <=540 MB total).
Shape: turbo <= gsoc on new-MB/request, caching's footprint largest, naive
stalls the device hardest (the §4.2 M40 anecdote).
"""

from repro.experiments.fig7_allocator_comparison import format_fig7, run_fig7


def test_fig7_allocator_comparison(benchmark):
    result = benchmark(run_fig7, 50, 0)
    print("\n[Fig. 7] Allocator comparison (50 variable-length requests)\n"
          + format_fig7(50, 0))

    assert result.avg_new_mb("turbo") <= result.avg_new_mb("gsoc")
    assert result.footprint("caching") > 2 * result.footprint("gsoc")
    assert result.footprint("turbo") < result.footprint("caching")

    naive = result.results["naive"]
    assert naive.total_stall_s > 10 * result.results["turbo"].total_stall_s

    # Allocation efficiency: turbo rarely needs a fresh cudaMalloc.
    assert result.results["turbo"].allocation_events < 15
    assert naive.allocation_events == 50
