"""Ablation: hungry vs lazy scheduler trigger policy (DESIGN.md §5.4).

The paper: hungry suits high request pressure (never idle the GPU); lazy
(Clipper-style delayed batching) suits runtimes that are very inefficient
at small batch sizes, at the cost of added queueing delay at low load.
"""

from repro.experiments.tables import format_table
from repro.serving import (
    DPBatchScheduler,
    HungryPolicy,
    LazyPolicy,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


def run_policies(serving_bench):
    system = serving_bench.system("Turbo-DP-Batch")
    results = {}
    for rate in (30, 80):
        for policy_name, policy in (
            ("hungry", HungryPolicy()),
            ("lazy", LazyPolicy(timeout_s=0.05, max_batch=20, latency_slo_s=0.5)),
        ):
            requests = generate_requests(rate, 10.0, seed=2)
            metrics = simulate_serving(
                requests, DPBatchScheduler(), system.cost_fn,
                ServingConfig(max_batch=20, policy=policy),
                duration_s=10.0,
                system_name=f"{policy_name}@{rate}",
            )
            results[(policy_name, rate)] = metrics
    return results


def test_ablation_serving_policy(benchmark, serving_bench):
    results = benchmark.pedantic(run_policies, args=(serving_bench,),
                                 rounds=1, iterations=1, warmup_rounds=0)
    print("\n[Ablation] hungry vs lazy trigger policy (Turbo-DP-Batch)\n"
          + format_table(
              ["policy", "offered req/s", "resp/s", "avg latency (ms)"],
              [[p, r, f"{m.response_throughput:.0f}",
                f"{m.latency.avg_ms:.2f}"]
               for (p, r), m in sorted(results.items())],
          ))
    # Lazy adds queueing delay at low load (it waits for the timeout).
    assert results[("lazy", 30)].latency.avg_ms > \
        results[("hungry", 30)].latency.avg_ms
    # Both keep up with the offered load below saturation.
    for metrics in results.values():
        assert not metrics.saturated
