"""Shared fixtures for the benchmark harness.

Expensive artefacts (model graphs, the serving bench with its warm-up
profiling) are built once per session, outside any timed region.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig12_serving_throughput import ServingBench
from repro.models import bert_base, build_encoder_graph


@pytest.fixture(scope="session")
def bert_graph():
    return build_encoder_graph(bert_base())


@pytest.fixture(scope="session")
def serving_bench() -> ServingBench:
    """The Fig. 12 / Table 4 serving systems, warm-up profiling included."""
    return ServingBench()


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment that is too heavy for repeated rounds."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
