"""Wall-clock scaling of the DP scheduler (Alg. 3 is O(n^2), n = queue).

The paper claims O(n^2); with the ``max_batch`` cap the inner loop is
bounded, so the *implementation* is O(n * max_batch) per round — this
bench measures the real Python wall-clock across queue sizes and checks
the growth is near-linear in n (not quadratic), i.e. the cap works.
"""

import time

import numpy as np
import pytest

from repro.serving import DPBatchScheduler, Request
from repro.serving.workload import uniform_lengths


def make_queue(n, seed=0):
    rng = np.random.default_rng(seed)
    lengths = uniform_lengths(rng, n, 5, 500)
    return [Request(req_id=i, seq_len=int(lengths[i]), arrival_s=0.0)
            for i in range(n)]


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


@pytest.mark.parametrize("n", [100, 400, 1600])
def test_dp_schedule_wallclock(benchmark, n):
    requests = make_queue(n)
    scheduler = DPBatchScheduler()
    batches = benchmark(scheduler.schedule, requests, cost, 20)
    assert sum(b.size for b in batches) == n


def test_dp_scaling_is_subquadratic(benchmark):
    """Quadrupling the queue should grow runtime ~4x (capped inner loop),
    far below the 16x a true O(n^2) would show."""
    scheduler = DPBatchScheduler()

    def measure(n, repeats=3):
        requests = make_queue(n)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            scheduler.schedule(requests, cost, 20)
            best = min(best, time.perf_counter() - start)
        return best

    def run():
        measure(400)  # warm up interpreter caches
        return measure(800), measure(3200)

    t1, t2 = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    ratio = t2 / t1
    print(f"\nDP schedule wall-clock: n=800 {t1 * 1e3:.2f} ms, "
          f"n=3200 {t2 * 1e3:.2f} ms (ratio {ratio:.1f}x for 4x input)")
    assert ratio < 10  # comfortably below quadratic's 16x
