"""Extension: FP16 serving (beyond the paper's FP32 evaluation).

Half-precision halves every tensor's traffic and footprint and doubles the
arithmetic rate (packed half2 math), so the ideal end-to-end gain is bounded
by 2x; fixed overheads and launch costs keep the realized gain below that,
with the largest gains on the bandwidth-bound long-sequence cases.
"""

from repro.experiments.tables import format_table
from repro.runtime import turbo_fp16_runtime, turbo_runtime


def test_extension_fp16(benchmark, bert_graph):
    def run():
        fp32 = turbo_runtime(graph=bert_graph)
        fp16 = turbo_fp16_runtime(graph=bert_graph)
        rows = []
        for batch, seq in ((1, 64), (1, 250), (1, 500), (20, 250)):
            t32 = fp32.latency(batch, seq)
            t16 = fp16.latency(batch, seq)
            rows.append((batch, seq, t32, t16))
        mem32 = fp32.infer(1, 250).allocation.footprint_mb
        mem16 = fp16.infer(1, 250).allocation.footprint_mb
        return rows, mem32, mem16

    rows, mem32, mem16 = benchmark(run)
    print("\n[Extension] FP16 vs FP32 Turbo runtime (RTX 2060)\n" + format_table(
        ["(batch,seq)", "fp32 (ms)", "fp16 (ms)", "speedup"],
        [[f"({b},{s})", f"{t32 * 1e3:.2f}", f"{t16 * 1e3:.2f}",
          f"{t32 / t16:.2f}x"] for b, s, t32, t16 in rows],
    ))
    print(f"activation footprint at (1,250): {mem32:.1f} MB -> {mem16:.1f} MB")

    for _, _, t32, t16 in rows:
        assert 1.0 < t32 / t16 < 2.0
    # Heavier cases gain more (bandwidth-bound fraction grows).
    gain_small = rows[0][2] / rows[0][3]
    gain_big = rows[3][2] / rows[3][3]
    assert gain_big > gain_small
    assert mem16 < 0.7 * mem32
