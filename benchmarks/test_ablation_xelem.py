"""Ablation: the X of ``warpAllReduceSum_XElem`` and the Eq. 1 trick.

DESIGN.md §5.1-5.2: the paper fixes X = 2; we sweep X in {1, 2, 4, 8} and
toggle the one-pass-variance identity to isolate each mechanism's
contribution.
"""

from repro.experiments.tables import format_table
from repro.gpusim import TESLA_V100, ReductionImpl, layernorm_time, softmax_time


def sweep_x():
    rows = 20 * 12 * 500  # (batch 20, seq 500) attention scores
    return {
        x: softmax_time(TESLA_V100, rows, 500, ReductionImpl.TURBO, x).total_s
        for x in (1, 2, 4, 8)
    }


def test_ablation_xelem_batching(benchmark):
    times = benchmark(sweep_x)
    print("\n[Ablation] softmax kernel time vs XElem batch factor (V100, "
          "batch 20 x seq 500)\n" + format_table(
              ["X", "kernel time (us)", "vs X=1"],
              [[x, f"{t * 1e6:.1f}", f"{times[1] / t:.2f}x"]
               for x, t in sorted(times.items())],
          ))
    # X=2 (the paper's choice) improves on X=1...
    assert times[2] < times[1]
    # ...and returns diminish beyond it (issue-bound).
    gain_12 = times[1] - times[2]
    gain_48 = times[4] - times[8]
    assert gain_48 < gain_12


def test_ablation_one_pass_variance(benchmark):
    def run():
        one = layernorm_time(TESLA_V100, 10000, 768, ReductionImpl.TURBO,
                             one_pass_variance=True).total_s
        two = layernorm_time(TESLA_V100, 10000, 768, ReductionImpl.TURBO,
                             one_pass_variance=False).total_s
        return one, two

    one, two = benchmark(run)
    print(f"\n[Ablation] LayerNorm variance: one-pass {one * 1e6:.1f} us "
          f"vs two-pass {two * 1e6:.1f} us ({two / one:.2f}x)")
    assert one < two
    # Eq. 1 should save on the order of the second data pass: >= 15%.
    assert two / one > 1.15
