"""FaultPlan: windows, determinism, and the gpusim stall hook."""

import pytest

from repro.gpusim import KernelTiming, Stream
from repro.resilience import (
    FaultPlan,
    KernelStall,
    LatencySpike,
    ServerCrash,
    TransientFailures,
    unit_hash,
)


class TestWindows:
    def test_empty_plan_is_identity(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.latency_multiplier(0, 1.0) == 1.0
        assert not plan.crashed(0, 1.0)
        assert plan.failure_rate(0, 1.0) == 0.0
        assert not plan.attempt_fails(0, 0, 0, 1.0)
        assert plan.stall_multiplier("gemm", 1.0) == 1.0
        assert plan.kernel_stall_fn() is None
        assert plan.last_fault_end_s() == 0.0

    def test_window_half_open(self):
        spike = LatencySpike(start_s=1.0, end_s=2.0, multiplier=3.0)
        assert not spike.active(0, 0.999)
        assert spike.active(0, 1.0)
        assert spike.active(0, 1.999)
        assert not spike.active(0, 2.0)

    def test_spikes_multiply(self):
        plan = FaultPlan(spikes=(
            LatencySpike(start_s=0.0, end_s=2.0, multiplier=2.0),
            LatencySpike(start_s=1.0, end_s=3.0, multiplier=3.0, server_id=0),
            LatencySpike(start_s=1.0, end_s=3.0, multiplier=5.0, server_id=1),
        ))
        assert plan.latency_multiplier(0, 0.5) == 2.0
        assert plan.latency_multiplier(0, 1.5) == 6.0
        assert plan.latency_multiplier(1, 1.5) == 10.0
        assert plan.latency_multiplier(0, 2.5) == 3.0

    def test_failure_rate_is_max_of_active(self):
        plan = FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=2.0, failure_rate=0.2),
            TransientFailures(start_s=1.0, end_s=2.0, failure_rate=0.7,
                              server_id=1),
        ))
        assert plan.failure_rate(0, 1.5) == 0.2
        assert plan.failure_rate(1, 1.5) == 0.7

    def test_crash_queries(self):
        plan = FaultPlan(crashes=(ServerCrash(start_s=1.0, end_s=3.0,
                                              server_id=1),))
        assert plan.crashed(1, 2.0)
        assert not plan.crashed(0, 2.0)
        assert plan.crash_end(1, 2.0) == 3.0
        assert plan.crash_end(1, 5.0) == 5.0  # no crash covering t
        assert plan.crashed_during(1, 0.5, 2.0) == 1.0
        assert plan.crashed_during(1, 2.5, 2.9) == 2.5
        assert plan.crashed_during(1, 3.5, 4.0) is None
        assert plan.crashed_during(0, 0.0, 10.0) is None
        assert plan.last_fault_end_s() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencySpike(start_s=2.0, end_s=1.0, multiplier=2.0)
        with pytest.raises(ValueError):
            LatencySpike(start_s=0.0, end_s=1.0, multiplier=0.5)
        with pytest.raises(ValueError):
            TransientFailures(start_s=0.0, end_s=1.0, failure_rate=1.5)
        with pytest.raises(ValueError):
            ServerCrash(start_s=0.0, end_s=1.0, server_id=-1)


class TestDeterminism:
    def test_unit_hash_stable_and_uniform_ish(self):
        values = [unit_hash(0, i, 0) for i in range(1000)]
        assert values == [unit_hash(0, i, 0) for i in range(1000)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 0.4 < sum(values) / len(values) < 0.6

    def test_attempt_fails_replayable_and_seeded(self):
        plan = FaultPlan(seed=0, failures=(
            TransientFailures(start_s=0.0, end_s=10.0, failure_rate=0.5),))
        verdicts = [plan.attempt_fails(i, 0, 0, 1.0) for i in range(200)]
        assert verdicts == [plan.attempt_fails(i, 0, 0, 1.0)
                            for i in range(200)]
        assert 40 < sum(verdicts) < 160  # roughly half fail
        other = FaultPlan(seed=1, failures=plan.failures)
        assert verdicts != [other.attempt_fails(i, 0, 0, 1.0)
                            for i in range(200)]

    def test_attempt_fails_rate_edges(self):
        always = FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=1.0, failure_rate=1.0),))
        never = FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=1.0, failure_rate=0.0),))
        assert all(always.attempt_fails(i, 0, 0, 0.5) for i in range(50))
        assert not any(never.attempt_fails(i, 0, 0, 0.5) for i in range(50))

    def test_retry_attempt_changes_the_draw(self):
        plan = FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=1.0, failure_rate=0.5),))
        first = [plan.attempt_fails(i, 0, 0, 0.5) for i in range(200)]
        second = [plan.attempt_fails(i, 1, 0, 0.5) for i in range(200)]
        assert first != second


def timing(name="gemm", compute=1e-3):
    return KernelTiming(name=name, launch_s=1e-5, compute_s=compute,
                        memory_s=0.5e-3)


class TestKernelStallHook:
    def test_stalled_scales_every_component(self):
        t = timing()
        s = t.stalled(3.0)
        assert s.launch_s == pytest.approx(3 * t.launch_s)
        assert s.compute_s == pytest.approx(3 * t.compute_s)
        assert s.memory_s == pytest.approx(3 * t.memory_s)
        assert s.total_s == pytest.approx(3 * t.total_s)
        assert t.stalled(1.0) is t
        with pytest.raises(ValueError):
            t.stalled(0.5)

    def test_stream_applies_stall_window(self):
        plan = FaultPlan(stalls=(
            KernelStall(start_s=0.0, end_s=1e-3, multiplier=4.0,
                        name_contains="gemm"),))
        stream = Stream(stall_fn=plan.kernel_stall_fn())
        clean = Stream()
        first = timing()  # submitted at t=0: inside the window, stalled 4x
        for s in (stream, clean):
            s.submit(first)
            # Second submit lands after the window on the stalled stream.
            s.submit(timing(name="softmax"))
        assert stream.time_matching("gemm") == \
            pytest.approx(4 * clean.time_matching("gemm"))
        assert stream.time_matching("softmax") == \
            pytest.approx(clean.time_matching("softmax"))

    def test_no_stalls_means_untouched_stream(self):
        assert FaultPlan().kernel_stall_fn() is None
        stream = Stream(stall_fn=None)
        stream.submit(timing())
        assert stream.elapsed_s == pytest.approx(timing().total_s)
