"""Circuit breaker state machine: closed -> open -> half-open -> closed."""

import pytest

from repro.observability import MetricsRegistry
from repro.resilience import BreakerState, CircuitBreaker


def breaker(**kwargs):
    defaults = dict(window=10, failure_threshold=0.5, min_samples=4,
                    cooldown_s=1.0, half_open_probes=2)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults)


class TestOpening:
    def test_stays_closed_below_min_samples(self):
        b = breaker()
        for t in range(3):
            b.record(False, float(t))
        assert b.state(3.0) is BreakerState.CLOSED
        assert b.allow(3.0)

    def test_opens_at_threshold(self):
        b = breaker()
        b.record(True, 0.0)
        b.record(True, 0.1)
        b.record(False, 0.2)
        assert b.state(0.3) is BreakerState.CLOSED
        b.record(False, 0.3)  # 2/4 = threshold
        assert b.state(0.3) is BreakerState.OPEN
        assert not b.allow(0.4)
        assert b.transitions == [(0.3, BreakerState.CLOSED, BreakerState.OPEN)]

    def test_sliding_window_forgets_old_failures(self):
        b = breaker(window=4)
        for t in range(2):
            b.record(False, float(t))
        for t in range(2, 8):  # successes push the failures out of the window
            b.record(True, float(t))
        assert b.state(8.0) is BreakerState.CLOSED
        assert b.failure_rate == 0.0


class TestRecovery:
    def trip(self, b, t0=0.0):
        for i in range(4):
            b.record(False, t0 + i * 0.01)
        assert b.state(t0 + 0.05) is BreakerState.OPEN

    def test_cooldown_half_opens(self):
        b = breaker(cooldown_s=1.0)
        self.trip(b)
        assert b.state(0.5) is BreakerState.OPEN
        assert b.state(1.03) is BreakerState.HALF_OPEN
        assert b.allow(1.03)

    def test_probe_failure_reopens(self):
        b = breaker()
        self.trip(b)
        b.state(2.0)  # half-open
        b.record(False, 2.0)
        assert b.state(2.0) is BreakerState.OPEN
        assert not b.allow(2.1)

    def test_probe_successes_close(self):
        b = breaker(half_open_probes=2)
        self.trip(b)
        b.state(2.0)
        b.record(True, 2.0)
        assert b.state(2.0) is BreakerState.HALF_OPEN
        b.record(True, 2.1)
        assert b.state(2.1) is BreakerState.CLOSED
        assert b.allow(2.2)
        assert b.failure_rate == 0.0  # window reset on close
        states = [(frm, to) for (_, frm, to) in b.transitions]
        assert states == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_half_open_limits_probes(self):
        b = breaker(half_open_probes=1)
        self.trip(b)
        assert b.allow(2.0)  # the single probe slot
        b.record(True, 2.0)  # one success closes (probes == 1)
        assert b.state(2.0) is BreakerState.CLOSED


class TestProbeReservation:
    """Half-open probe slots are reserved at allow() time, so concurrent
    callers (N allow() calls before any outcome is recorded) can never
    launch more than ``half_open_probes`` probes."""

    def trip(self, b, t0=0.0):
        for i in range(4):
            b.record(False, t0 + i * 0.01)
        assert b.state(t0 + 0.05) is BreakerState.OPEN

    def test_concurrent_allows_cannot_exceed_probe_limit(self):
        b = breaker(half_open_probes=2)
        self.trip(b)
        assert b.state(2.0) is BreakerState.HALF_OPEN
        # Three callers race before any records: only two admitted.
        verdicts = [b.allow(2.0) for _ in range(3)]
        assert verdicts == [True, True, False]
        # The two reserved probes settle and close the breaker.
        b.record(True, 2.1)
        b.record(True, 2.2)
        assert b.state(2.2) is BreakerState.CLOSED

    def test_probe_available_is_pure(self):
        b = breaker(half_open_probes=1)
        self.trip(b)
        # Scanning health N times must not consume the probe slot.
        for _ in range(5):
            assert b.probe_available(2.0)
        assert b.allow(2.0)       # the actual commit takes it
        assert not b.probe_available(2.0)
        assert not b.allow(2.0)

    def test_failed_probe_reopens_even_with_reservations_out(self):
        b = breaker(half_open_probes=2)
        self.trip(b)
        assert b.state(2.0) is BreakerState.HALF_OPEN
        assert b.allow(2.0) and b.allow(2.0)
        b.record(False, 2.1)  # first probe fails: re-open immediately
        assert b.state(2.1) is BreakerState.OPEN
        assert not b.allow(2.2)


class TestReporting:
    def test_metrics_published_on_transitions(self):
        registry = MetricsRegistry()
        b = CircuitBreaker(window=10, min_samples=2, failure_threshold=0.5,
                           name="server7", metrics=registry)
        b.record(False, 0.0)
        b.record(False, 0.1)
        exported = registry.to_dict()
        counters = {c["name"] for c in exported["counters"]}
        gauges = {g["name"] for g in exported["gauges"]}
        assert "breaker_transitions_total" in counters
        assert "breaker_state" in gauges

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(min_samples=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window=5, min_samples=6)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(half_open_probes=0)
