"""Retry policy: backoff growth, jitter determinism, budget exhaustion."""

import pytest

from repro.resilience import RetryPolicy, RetryState
from repro.serving import Request


def req(i, attempt=0):
    return Request(req_id=i, seq_len=10, arrival_s=0.0, attempt=attempt)


class TestBackoff:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(max_attempts=10, base_backoff_s=0.1,
                             multiplier=2.0, max_backoff_s=0.5, jitter=0.0)
        delays = [policy.backoff_s(a, req_id=0) for a in range(1, 6)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        assert delays[3] == pytest.approx(0.5)  # capped
        assert delays[4] == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.5)
        base = RetryPolicy(jitter=0.0)
        for rid in range(20):
            d = policy.backoff_s(1, req_id=rid)
            assert d == policy.backoff_s(1, req_id=rid)
            raw = base.backoff_s(1, req_id=rid)
            assert raw <= d < raw * 1.5

    def test_jitter_varies_across_requests(self):
        policy = RetryPolicy(jitter=0.5)
        delays = {policy.backoff_s(1, req_id=rid) for rid in range(20)}
        assert len(delays) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff_s=0.01, base_backoff_s=0.05)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_s(0, req_id=0)


class TestRetryState:
    def test_grants_until_max_attempts(self):
        state = RetryState(RetryPolicy(max_attempts=3, jitter=0.0,
                                       base_backoff_s=0.1))
        r = req(0)
        first = state.next_retry_at(r, now_s=1.0)
        assert first == pytest.approx(1.1)
        r.attempt = 1
        second = state.next_retry_at(r, now_s=2.0)
        assert second == pytest.approx(2.2)
        r.attempt = 2  # third execution would be attempt index 2; 2+1 >= 3
        assert state.next_retry_at(r, now_s=3.0) is None
        assert state.retries_used == 2

    def test_budget_exhaustion_stops_all_retries(self):
        state = RetryState(RetryPolicy(max_attempts=10, budget=3))
        granted = [state.next_retry_at(req(i), now_s=0.0) for i in range(6)]
        assert sum(1 for g in granted if g is not None) == 3
        assert granted[3:] == [None, None, None]
        assert state.retries_used == 3

    def test_zero_budget_means_fail_fast(self):
        state = RetryState(RetryPolicy(max_attempts=10, budget=0))
        assert state.next_retry_at(req(0), now_s=0.0) is None
        assert state.retries_used == 0

    def test_denied_retry_consumes_no_budget(self):
        state = RetryState(RetryPolicy(max_attempts=2, budget=5))
        assert state.next_retry_at(req(0, attempt=1), now_s=0.0) is None
        assert state.retries_used == 0


class TestDeadlineAwareRetry:
    def policy(self, backoff=1.0):
        return RetryPolicy(max_attempts=10, base_backoff_s=backoff,
                           multiplier=2.0, max_backoff_s=backoff * 8,
                           jitter=0.0, budget=5)

    def test_backoff_past_deadline_denies_without_burning_budget(self):
        state = RetryState(self.policy(backoff=1.0))
        r = Request(req_id=0, seq_len=10, arrival_s=0.0, deadline_s=0.5)
        # Retry would land at t=1.0, past arrival + deadline = 0.5: the
        # attempt is doomed, so no grant and no budget spent.
        assert state.next_retry_at(r, now_s=0.0) is None
        assert state.retries_used == 0

    def test_backoff_within_deadline_granted(self):
        state = RetryState(self.policy(backoff=1.0))
        r = Request(req_id=0, seq_len=10, arrival_s=0.0, deadline_s=2.0)
        assert state.next_retry_at(r, now_s=0.0) == pytest.approx(1.0)
        assert state.retries_used == 1

    def test_deadline_less_requests_unaffected(self):
        state = RetryState(self.policy(backoff=1.0))
        r = Request(req_id=0, seq_len=10, arrival_s=0.0)
        assert state.next_retry_at(r, now_s=100.0) == pytest.approx(101.0)

    def test_deadline_denial_applies_per_attempt_growth(self):
        # First retry fits (t=1.0 <= 3.0); the grown second backoff
        # (2.0s from now=2.5 -> 4.5) does not.
        state = RetryState(self.policy(backoff=1.0))
        r = Request(req_id=0, seq_len=10, arrival_s=0.0, deadline_s=3.0)
        assert state.next_retry_at(r, now_s=0.0) is not None
        r.attempt = 1
        assert state.next_retry_at(r, now_s=2.5) is None
        assert state.retries_used == 1
