"""Chaos harness: determinism, recovery assertion, CLI wiring."""

import json

import pytest

from repro.observability import MetricsRegistry, Tracer
from repro.resilience import SCENARIOS, format_report, run_chaos


class TestSmokeScenario:
    @pytest.fixture(scope="class")
    def report(self):
        return run_chaos("smoke", seed=0)

    def test_recovers_to_baseline(self, report):
        assert report.recovered
        assert report.recovery_ratio >= 0.95

    def test_breaker_transitions_visible(self, report):
        assert report.breaker_transitions
        states = {to for (_, _, _, to) in report.breaker_transitions}
        assert "open" in states

    def test_faults_actually_bite(self, report):
        assert report.chaos.serving.resilience.retries > 0
        assert report.retry_rate > 0

    def test_accounting_reconciles(self, report):
        s = report.chaos.serving
        assert s.completed + s.resilience.dropped == s.offered

    def test_metrics_exported(self, report):
        exported = report.registry.to_dict()
        gauges = {g["name"] for g in exported["gauges"]}
        assert "chaos_recovery_ratio" in gauges
        assert "chaos_goodput_baseline" in gauges
        counters = {c["name"] for c in exported["counters"]}
        assert "chaos_retries_total" in counters


class TestDeterminism:
    def test_two_runs_byte_identical(self, tmp_path):
        paths = []
        for run in ("a", "b"):
            registry = MetricsRegistry()
            run_chaos("smoke", seed=0, metrics=registry)
            path = tmp_path / f"chaos_{run}.json"
            registry.save(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_seed_changes_the_run(self, tmp_path):
        outputs = []
        for seed in (0, 1):
            registry = MetricsRegistry()
            run_chaos("smoke", seed=seed, metrics=registry)
            outputs.append(registry.to_json())
        assert outputs[0] != outputs[1]

    def test_report_fields_reproducible(self):
        a = run_chaos("storm", seed=0)
        b = run_chaos("storm", seed=0)
        assert a.breaker_transitions == b.breaker_transitions
        assert a.goodput_chaos == b.goodput_chaos
        assert a.chaos.serving == b.chaos.serving


class TestScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenarios_recover(self, name):
        report = run_chaos(name, seed=0)
        assert report.recovered, format_report(report)

    def test_storm_respects_retry_budget(self):
        report = run_chaos("storm", seed=0)
        scenario = report.scenario
        assert report.chaos.serving.resilience.retries <= scenario.retry.budget

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_chaos("nope", seed=0)

    def test_tracer_gets_breaker_instants(self):
        tracer = Tracer()
        report = run_chaos("smoke", seed=0, tracer=tracer)
        events = tracer.to_dict()["traceEvents"]
        instants = [e for e in events if e.get("name") == "breaker_transition"]
        assert len(instants) == len(report.breaker_transitions)


class TestCli:
    def test_chaos_command_runs_and_writes_metrics(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "metrics.json"
        code = main(["chaos", "--scenario", "smoke", "--seed", "0",
                     "--metrics-out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "recovery:  OK" in printed
        exported = json.loads(out.read_text())
        assert any(g["name"] == "chaos_recovery_ratio"
                   for g in exported["gauges"])

    def test_chaos_command_skips_metrics_when_blank(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--scenario", "smoke", "--metrics-out", ""]) == 0
        assert "metrics:" not in capsys.readouterr().out


class TestGenScenarios:
    """Generation chaos: replica blackout and a preemption storm."""

    @pytest.fixture(scope="class")
    def blackout(self):
        from repro.resilience import run_gen_chaos

        return run_gen_chaos("gen-blackout", seed=0)

    @pytest.fixture(scope="class")
    def storm(self):
        from repro.resilience import run_gen_chaos

        return run_gen_chaos("gen-storm", seed=0)

    def test_blackout_recovers_leak_free(self, blackout):
        from repro.resilience import format_gen_report

        assert blackout.recovered, format_gen_report(blackout)
        assert blackout.leak_free
        # The crash actually bit: KV was lost and recomputed elsewhere.
        assert blackout.chaos.preemptions > 0
        assert blackout.chaos.tokens_recomputed > 0

    def test_storm_preempts_and_recovers(self, storm):
        from repro.resilience import format_gen_report

        assert storm.recovered, format_gen_report(storm)
        assert storm.leak_free
        # The storm drives KV pressure: many preemptions, honest recompute.
        assert storm.chaos.preemptions > 10
        assert storm.chaos.tokens_recomputed > storm.chaos.preemptions
        assert storm.chaos.attempts_failed > 0

    def test_baseline_is_fault_free(self, blackout):
        assert blackout.baseline.preemptions == 0
        assert blackout.baseline.tokens_recomputed == 0
        assert blackout.baseline.retries == 0

    def test_gen_metrics_exported(self, blackout):
        exported = blackout.registry.to_dict()
        gauges = {g["name"] for g in exported["gauges"]}
        assert "chaos_recovery_ratio" in gauges
        counters = {c["name"] for c in exported["counters"]}
        assert "chaos_preemptions_total" in counters
        assert "chaos_tokens_recomputed_total" in counters
        assert "chaos_kv_leaks" in gauges

    def test_two_runs_byte_identical(self, tmp_path):
        from repro.resilience import run_gen_chaos

        paths = []
        for run in ("a", "b"):
            registry = MetricsRegistry()
            run_gen_chaos("gen-storm", seed=0, metrics=registry)
            path = tmp_path / f"gen_chaos_{run}.json"
            registry.save(path)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_unknown_gen_scenario_rejected(self):
        from repro.resilience import run_gen_chaos

        with pytest.raises(ValueError):
            run_gen_chaos("gen-nope", seed=0)


class TestGenCli:
    def test_gen_scenario_dispatches_and_writes_metrics(self, tmp_path,
                                                        capsys):
        from repro.__main__ import main

        out = tmp_path / "gen_metrics.json"
        code = main(["chaos", "--scenario", "gen-blackout", "--seed", "0",
                     "--metrics-out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "recovery:  OK" in printed
        assert "leak audit: clean" in printed
        exported = json.loads(out.read_text())
        assert any(c["name"] == "chaos_preemptions_total"
                   for c in exported["counters"])
