"""Resilience threaded through the serving simulators.

Covers the ISSUE 2 acceptance criteria: an empty resilience config is
byte-identical to ``resilience=None`` for pre-existing simulations, the
retry budget bounds retry storms, deadlines drop expired work, and the
degradation ladder trades quality for stability under stress.
"""

import pytest

from repro.resilience import (
    DegradationController,
    DegradationLadder,
    DegradationRung,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    ServerCrash,
    TransientFailures,
)
from repro.serving import (
    DPBatchScheduler,
    NaiveBatchScheduler,
    Request,
    RequestState,
    RoutingPolicy,
    ServingConfig,
    generate_requests,
    simulate_cluster,
    simulate_serving,
)


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def cheap_cost(seq_len, batch):
    return 0.001 + 0.00001 * seq_len * batch


def workload(rate=100, duration=2.0, seed=0, deadline_s=None):
    requests = generate_requests(rate, duration, seed=seed)
    if deadline_s is None:
        return requests
    return [Request(req_id=r.req_id, seq_len=r.seq_len,
                    arrival_s=r.arrival_s, deadline_s=deadline_s)
            for r in requests]


class TestZeroOverheadWhenDisabled:
    """resilience=None and an all-defaults config produce identical metrics."""

    def test_single_server_identical(self):
        plain = simulate_serving(workload(), DPBatchScheduler(), cost,
                                 duration_s=2.0)
        empty = simulate_serving(workload(), DPBatchScheduler(), cost,
                                 duration_s=2.0, resilience=ResilienceConfig())
        assert empty.resilience is not None  # the only permitted difference
        assert plain == type(plain)(
            **{**empty.__dict__, "resilience": None}
        )

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_cluster_identical(self, policy):
        plain = simulate_cluster(workload(), 3, NaiveBatchScheduler, cost,
                                 policy=policy, duration_s=2.0)
        empty = simulate_cluster(workload(), 3, NaiveBatchScheduler, cost,
                                 policy=policy, duration_s=2.0,
                                 resilience=ResilienceConfig())
        assert plain.per_server_completed == empty.per_server_completed
        assert plain.serving == type(plain.serving)(
            **{**empty.serving.__dict__, "resilience": None}
        )

    def test_empty_fault_plan_queries_cost_nothing(self):
        # All query methods of the empty plan answer with the identity, so
        # threading it through is behaviour-preserving by construction.
        config = ResilienceConfig()
        assert config.faults.empty
        assert config.retry is None
        assert config.breaker_factory is None
        assert config.degradation is None
        assert config.queue_capacity is None


class TestDeadlines:
    def test_patient_requests_never_time_out(self):
        result = simulate_serving(
            workload(), DPBatchScheduler(), cost, duration_s=2.0,
            resilience=ResilienceConfig(),
        )
        assert result.resilience.timed_out == 0
        assert result.completed == result.offered

    def test_overload_times_out_stale_requests(self):
        requests = workload(rate=600, duration=2.0, deadline_s=0.2)
        result = simulate_serving(
            requests, NaiveBatchScheduler(), cost,
            ServingConfig(max_batch=8), duration_s=2.0,
            resilience=ResilienceConfig(),
        )
        assert result.resilience.timed_out > 0
        assert result.completed + result.resilience.dropped == result.offered
        timed_out = [r for r in requests
                     if r.state is RequestState.TIMED_OUT]
        assert all(not r.is_completed for r in timed_out)

    def test_deadline_bounds_served_latency(self):
        requests = workload(rate=600, duration=2.0, deadline_s=0.2)
        result = simulate_serving(
            requests, NaiveBatchScheduler(), cost,
            ServingConfig(max_batch=8), duration_s=2.0,
            resilience=ResilienceConfig(),
        )
        # Admission happens at round start; one round of slack on top of
        # the deadline is the worst case for an admitted request.
        assert result.latency.max_ms < 3 * 200


class TestRetryBudget:
    """Regression: a permanently failing replica cannot retry-storm."""

    def always_failing(self):
        return FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=100.0, failure_rate=1.0),))

    def test_budget_caps_reenqueues_single_server(self):
        budget = 25
        result = simulate_serving(
            workload(rate=50, duration=1.0), DPBatchScheduler(), cost,
            duration_s=1.0,
            resilience=ResilienceConfig(
                faults=self.always_failing(),
                retry=RetryPolicy(max_attempts=100, budget=budget),
            ),
        )
        assert result.resilience.retries == budget
        assert result.completed == 0
        assert result.resilience.failed == result.offered

    def test_executed_attempts_bounded_by_offered_plus_budget(self):
        budget = 10
        result = simulate_serving(
            workload(rate=50, duration=1.0), DPBatchScheduler(), cost,
            duration_s=1.0, config=ServingConfig(max_batch=1),
            resilience=ResilienceConfig(
                faults=self.always_failing(),
                retry=RetryPolicy(max_attempts=100, budget=budget),
            ),
        )
        assert result.batches_executed <= result.offered + budget

    def test_max_attempts_bounds_without_budget(self):
        result = simulate_serving(
            workload(rate=50, duration=1.0), DPBatchScheduler(), cost,
            duration_s=1.0,
            resilience=ResilienceConfig(
                faults=self.always_failing(),
                retry=RetryPolicy(max_attempts=3),
            ),
        )
        # Every request gets exactly max_attempts - 1 retries.
        assert result.resilience.retries == 2 * result.offered
        assert result.resilience.failed == result.offered

    def test_transient_window_recovers_after_retries(self):
        plan = FaultPlan(failures=(
            TransientFailures(start_s=0.2, end_s=0.4, failure_rate=0.5),))
        result = simulate_serving(
            workload(rate=100, duration=2.0), DPBatchScheduler(), cost,
            duration_s=2.0,
            resilience=ResilienceConfig(
                faults=plan, retry=RetryPolicy(max_attempts=6),
            ),
        )
        assert result.resilience.retries > 0
        assert result.completed == result.offered  # everyone lands eventually


class TestClusterResilience:
    def test_crash_window_work_is_rerouted(self):
        plan = FaultPlan(crashes=(ServerCrash(start_s=0.5, end_s=1.0,
                                              server_id=0),))
        result = simulate_cluster(
            workload(rate=200, duration=2.0), 3, NaiveBatchScheduler, cost,
            policy=RoutingPolicy.LEAST_WORK, duration_s=2.0,
            resilience=ResilienceConfig(
                faults=plan, retry=RetryPolicy(max_attempts=5, budget=500),
            ),
        )
        assert result.serving.completed == result.serving.offered
        assert result.serving.resilience.failed == 0

    def test_cluster_deterministic_under_faults(self):
        def run():
            plan = FaultPlan(
                crashes=(ServerCrash(start_s=0.5, end_s=1.0, server_id=1),),
                failures=(TransientFailures(start_s=0.2, end_s=1.5,
                                            failure_rate=0.3, server_id=0),),
            )
            return simulate_cluster(
                workload(rate=150, duration=2.0), 3, NaiveBatchScheduler,
                cost, duration_s=2.0,
                resilience=ResilienceConfig(
                    faults=plan, retry=RetryPolicy(max_attempts=4, budget=200),
                ),
            )

        a, b = run(), run()
        assert a.serving == b.serving
        assert a.per_server_completed == b.per_server_completed


class TestQueueCapacity:
    def test_full_queue_sheds(self):
        result = simulate_serving(
            workload(rate=800, duration=1.0), NaiveBatchScheduler(), cost,
            ServingConfig(max_batch=4), duration_s=1.0,
            resilience=ResilienceConfig(queue_capacity=10),
        )
        assert result.resilience.rejected > 0
        assert result.resilience.shed == result.resilience.rejected
        assert result.completed + result.resilience.dropped == result.offered


class TestDegradation:
    def ladder(self):
        return DegradationLadder([
            DegradationRung(label="full", cost_fn=cost),
            DegradationRung(label="distilled", cost_fn=cheap_cost,
                            shed_age_s=1.0),
        ])

    def test_controller_hysteresis(self):
        ctl = DegradationController(self.ladder(), depth_threshold=10)
        ctl.on_round(queue_depth=11, breaker_open=False, now_s=1.0)
        assert ctl.level == 1
        # Between half and full threshold: hold (no flapping).
        ctl.on_round(queue_depth=8, breaker_open=False, now_s=2.0)
        assert ctl.level == 1
        ctl.on_round(queue_depth=5, breaker_open=False, now_s=3.0)
        assert ctl.level == 0
        assert [(frm, to) for (_, frm, to) in ctl.switches] == [(0, 1), (1, 0)]

    def test_breaker_open_escalates(self):
        ctl = DegradationController(self.ladder(), depth_threshold=1000)
        ctl.on_round(queue_depth=0, breaker_open=True, now_s=1.0)
        assert ctl.level == 1
        assert ctl.cost_fn is cheap_cost
        assert ctl.shed_age_s == 1.0

    def test_degradation_raises_overload_throughput(self):
        def run(degradation):
            return simulate_serving(
                workload(rate=700, duration=2.0), NaiveBatchScheduler(),
                cost, ServingConfig(max_batch=8), duration_s=2.0,
                resilience=ResilienceConfig(degradation=degradation),
            )

        full = run(None)
        degraded = run(DegradationController(self.ladder(),
                                             depth_threshold=20))
        assert degraded.resilience.degradation_switches > 0
        assert degraded.response_throughput > full.response_throughput

    def test_service_ladder_from_registry(self):
        from repro.serving import InferenceService, ModelRegistry, ModelVersion

        registry = ModelRegistry()
        registry.register(ModelVersion(name="bert", version=1,
                                       cost_fn=cheap_cost))
        registry.register(ModelVersion(name="bert", version=2, cost_fn=cost))
        registry.serve_version("bert", 2)
        service = InferenceService(registry, "bert")
        ladder = service.degradation_ladder(shed_age_s=0.5)
        assert len(ladder) == 2
        # Serving version first, then older versions as fallbacks.
        assert [r.label for r in ladder.rungs] == ["bert@v2", "bert@v1"]
        assert ladder.rungs[0].shed_age_s is None
        assert ladder.rungs[-1].shed_age_s == 0.5
