"""``repro bench``: determinism, diff gate, verify mode, CLI exit codes."""

import copy
import json

import pytest

from repro import bench
from repro.__main__ import main


@pytest.fixture(scope="module", autouse=True)
def micro_profile():
    """Register a tiny profile so the suite stays fast; the committed
    BENCH_host.json is produced by the ``full`` profile."""
    bench.PROFILES["micro"] = {
        "grid_max_batch": 2,
        "grid_length_step": 64,
        "grid_max_length": 128,
        "plan_shapes": 4,
        "plan_passes": 2,
        "sched_rounds": 6,
        "sched_queue": 10,
        "sched_max_batch": 4,
        "fig12_rates": (60.0,),
        "fig12_duration_s": 0.25,
        "fig12_max_len": 64,
        "fig12_max_batch": 4,
        "fig12_model": "tiny",
    }
    bench.PROFILES["micro-gen"] = {
        "gen_rates": (200.0, 1200.0),
        "gen_duration_s": 0.4,
        "gen_model": "tiny",
        "gen_mix_mean": 12.0,
        "gen_mix_max": 64,
        "gen_capacity_tokens": 4096,
        "gen_max_batch": 8,
        "gen_chunk_tokens": 512,
    }
    yield
    bench.PROFILES.pop("micro", None)
    bench.PROFILES.pop("micro-gen", None)


@pytest.fixture(scope="module")
def payload():
    return bench.run_bench("micro", seed=5)


class TestDeterminism:
    def test_two_runs_identical_counters(self, payload):
        again = bench.run_bench("micro", seed=5)
        assert bench.diff_bench(payload, again) == []

    def test_equivalence_flags_all_true(self, payload):
        assert payload["equivalence_ok"]
        counters = payload["counters"]
        assert counters["grid"]["identical_tables"]
        assert counters["plans"]["identical_outcomes"]
        assert counters["scheduler"]["identical_partitions"]
        assert counters["fig12"]["identical_serving"]

    def test_wallclock_sections_present_but_not_diffed(self, payload):
        assert "wallclock" in payload
        mutated = copy.deepcopy(payload)
        mutated["wallclock"]["grid"]["fast_s"] = 1e9
        assert bench.diff_bench(payload, mutated) == []

    def test_diff_detects_counter_change(self, payload):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["cells"] += 1
        problems = bench.diff_bench(payload, mutated)
        assert problems
        assert any("cells" in p for p in problems)

    def test_seed_changes_payload(self, payload):
        other = bench.run_bench("micro", seed=6)
        assert bench.diff_bench(payload, other) != []


class TestPersistence:
    def test_save_load_roundtrip(self, payload, tmp_path):
        path = tmp_path / "bench.json"
        bench.save_bench(payload, path)
        loaded = bench.load_bench(path)
        assert bench.diff_bench(payload, loaded) == []
        assert json.loads(path.read_text())["schema"] == bench.BENCH_SCHEMA

    def test_format_bench_mentions_sections(self, payload):
        text = bench.format_bench(payload)
        for word in ("grid", "plans", "scheduler", "fig12", "equivalence"):
            assert word in text

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            bench.run_bench("no-such-profile")


class TestCli:
    def test_diff_identical_files_exit_zero(self, payload, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench.save_bench(payload, a)
        bench.save_bench(payload, b)
        assert main(["bench", "--diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_files_exit_one(self, payload, tmp_path, capsys):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["table_digest"] = "0" * 16
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench.save_bench(payload, a)
        bench.save_bench(mutated, b)
        assert main(["bench", "--diff", str(a), str(b)]) == 1
        assert "differ" in capsys.readouterr().err

    def test_run_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_host.json"
        assert main(["bench", "--profile", "micro", "--seed", "5",
                     "--out", str(out)]) == 0
        assert out.exists()
        saved = bench.load_bench(out)
        assert saved["profile"] == "micro"
        assert "wrote" in capsys.readouterr().out


class TestGenProfile:
    @pytest.fixture(scope="class")
    def gen_payload(self):
        return bench.run_bench("micro-gen", seed=0)

    def test_two_runs_identical_counters(self, gen_payload):
        again = bench.run_bench("micro-gen", seed=0)
        assert bench.diff_bench(gen_payload, again) == []

    def test_schema_and_sections(self, gen_payload):
        assert gen_payload["schema"] == bench.BENCH_GEN_SCHEMA
        assert set(gen_payload["counters"]) == {"gen"}
        gen = gen_payload["counters"]["gen"]
        assert gen["identical_reruns"]
        assert gen_payload["equivalence_ok"]
        # Both systems simulated at every rate.
        for system in ("request_level", "continuous"):
            assert set(gen[system]) == {"200.0", "1200.0"}

    def test_continuous_wins_at_top_rate(self, gen_payload):
        gen = gen_payload["counters"]["gen"]
        assert gen["throughput_gain_at_top_rate"] > 1.0
        top_cont = gen["continuous"]["1200.0"]
        top_rl = gen["request_level"]["1200.0"]
        assert top_cont["ttft_avg_ms"] < top_rl["ttft_avg_ms"]

    def test_format_bench_renders_gen(self, gen_payload):
        text = bench.format_bench(gen_payload)
        assert "gen" in text
        assert "throughput" in text

    def test_chunked_sweep_in_payload(self, gen_payload):
        gen = gen_payload["counters"]["gen"]
        assert set(gen["continuous_chunked"]) == {"200.0", "1200.0"}
        assert gen["identical_token_streams"]
        for rate, point in gen["continuous_chunked"].items():
            assert point["completed"] == gen["continuous"][rate]["completed"]
            assert point["prefill_chunks"] > 0

    def test_verify_overlap_gate_passes(self):
        assert bench.verify_overlap_equivalence("micro-gen", seed=0) == []

    def test_verify_overlap_rejects_hostless_profile(self):
        with pytest.raises(ValueError):
            bench.verify_overlap_equivalence("smoke")


class TestDiffDeltas:
    def test_numeric_mismatch_reports_relative_delta(self, payload):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["cells"] = \
            payload["counters"]["grid"]["cells"] * 2
        problems = bench.diff_bench(payload, mutated)
        [problem] = [p for p in problems if "cells" in p]
        assert "rel delta 5.000e-01" in problem
        assert "tol 0.000e+00" in problem
        assert "recorded" in problem and "observed" in problem

    def test_all_mismatches_reported_not_just_first(self, payload):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["cells"] += 1
        mutated["counters"]["scheduler"]["batches"] += 1
        mutated["counters"]["plans"]["plans"] += 1
        problems = bench.diff_bench(payload, mutated)
        assert len(problems) >= 3

    def test_tolerance_accepts_small_drift(self, payload):
        mutated = copy.deepcopy(payload)
        cells = payload["counters"]["grid"]["cells"]
        mutated["counters"]["grid"]["cells"] = cells * 1.0001
        assert bench.diff_bench(payload, mutated) != []
        assert bench.diff_bench(payload, mutated, rel_tol=1e-3) == []

    def test_cli_diff_tol_flag(self, payload, tmp_path):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["cells"] = \
            payload["counters"]["grid"]["cells"] * 1.0001
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench.save_bench(payload, a)
        bench.save_bench(mutated, b)
        assert main(["bench", "--diff", str(a), str(b)]) == 1
        assert main(["bench", "--diff", str(a), str(b),
                     "--diff-tol", "1e-3"]) == 0

    def test_negative_tolerance_rejected(self, payload):
        with pytest.raises(ValueError):
            bench.diff_bench(payload, payload, rel_tol=-1.0)

    def test_bool_is_not_numeric(self, payload):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["identical_tables"] = False
        problems = bench.diff_bench(payload, mutated, rel_tol=10.0)
        assert any("identical_tables" in p for p in problems)
