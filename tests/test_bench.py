"""``repro bench``: determinism, diff gate, verify mode, CLI exit codes."""

import copy
import json

import pytest

from repro import bench
from repro.__main__ import main


@pytest.fixture(scope="module", autouse=True)
def micro_profile():
    """Register a tiny profile so the suite stays fast; the committed
    BENCH_host.json is produced by the ``full`` profile."""
    bench.PROFILES["micro"] = {
        "grid_max_batch": 2,
        "grid_length_step": 64,
        "grid_max_length": 128,
        "plan_shapes": 4,
        "plan_passes": 2,
        "sched_rounds": 6,
        "sched_queue": 10,
        "sched_max_batch": 4,
        "fig12_rates": (60.0,),
        "fig12_duration_s": 0.25,
        "fig12_max_len": 64,
        "fig12_max_batch": 4,
        "fig12_model": "tiny",
    }
    yield
    bench.PROFILES.pop("micro", None)


@pytest.fixture(scope="module")
def payload():
    return bench.run_bench("micro", seed=5)


class TestDeterminism:
    def test_two_runs_identical_counters(self, payload):
        again = bench.run_bench("micro", seed=5)
        assert bench.diff_bench(payload, again) == []

    def test_equivalence_flags_all_true(self, payload):
        assert payload["equivalence_ok"]
        counters = payload["counters"]
        assert counters["grid"]["identical_tables"]
        assert counters["plans"]["identical_outcomes"]
        assert counters["scheduler"]["identical_partitions"]
        assert counters["fig12"]["identical_serving"]

    def test_wallclock_sections_present_but_not_diffed(self, payload):
        assert "wallclock" in payload
        mutated = copy.deepcopy(payload)
        mutated["wallclock"]["grid"]["fast_s"] = 1e9
        assert bench.diff_bench(payload, mutated) == []

    def test_diff_detects_counter_change(self, payload):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["cells"] += 1
        problems = bench.diff_bench(payload, mutated)
        assert problems
        assert any("cells" in p for p in problems)

    def test_seed_changes_payload(self, payload):
        other = bench.run_bench("micro", seed=6)
        assert bench.diff_bench(payload, other) != []


class TestPersistence:
    def test_save_load_roundtrip(self, payload, tmp_path):
        path = tmp_path / "bench.json"
        bench.save_bench(payload, path)
        loaded = bench.load_bench(path)
        assert bench.diff_bench(payload, loaded) == []
        assert json.loads(path.read_text())["schema"] == bench.BENCH_SCHEMA

    def test_format_bench_mentions_sections(self, payload):
        text = bench.format_bench(payload)
        for word in ("grid", "plans", "scheduler", "fig12", "equivalence"):
            assert word in text

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            bench.run_bench("no-such-profile")


class TestCli:
    def test_diff_identical_files_exit_zero(self, payload, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench.save_bench(payload, a)
        bench.save_bench(payload, b)
        assert main(["bench", "--diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_divergent_files_exit_one(self, payload, tmp_path, capsys):
        mutated = copy.deepcopy(payload)
        mutated["counters"]["grid"]["table_digest"] = "0" * 16
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        bench.save_bench(payload, a)
        bench.save_bench(mutated, b)
        assert main(["bench", "--diff", str(a), str(b)]) == 1
        assert "differ" in capsys.readouterr().err

    def test_run_writes_out_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_host.json"
        assert main(["bench", "--profile", "micro", "--seed", "5",
                     "--out", str(out)]) == 0
        assert out.exists()
        saved = bench.load_bench(out)
        assert saved["profile"] == "micro"
        assert "wrote" in capsys.readouterr().out
