"""MetricsRegistry: counters/gauges/histograms, labels, JSON export."""

import json

import pytest

from repro.observability import MetricsRegistry


class TestCounter:
    def test_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        assert reg.value("hits") == 3.0

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", allocator="turbo").inc()
        reg.counter("hits", allocator="caching").inc(5)
        assert reg.value("hits", allocator="turbo") == 1.0
        assert reg.value("hits", allocator="caching") == 5.0
        assert reg.sum_values("hits") == 6.0

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        assert reg.value("x", b="2", a="1") == 1.0

    def test_counters_never_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("hits").inc(-1)


class TestGauge:
    def test_set_and_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("footprint")
        g.set(10.0)
        assert g.series == []  # no timestamp -> no sample
        g.set(20.0, t=1.0)
        g.set(30.0, t=2.0)
        assert g.value == 30.0
        assert g.series == [(1.0, 20.0), (2.0, 30.0)]

    def test_untouched_value_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0


class TestHistogram:
    def test_counts_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("batch_size", buckets=(1, 2, 4, 8))
        for v in (1, 1, 3, 9):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(3.5)
        assert h.counts == [2, 0, 1, 0, 1]  # 1,1 | - | 3 | - | 9 overflow

    def test_percentile_bucket_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1, 10, 100))
        for _ in range(99):
            h.observe(5)
        h.observe(50)
        assert h.percentile(0.5) == 10
        assert h.percentile(1.0) == 100

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(10, 1))


class TestExport:
    def test_json_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits", allocator="turbo").inc(7)
        reg.gauge("footprint").set(42.0, t=0.5)
        reg.histogram("sizes").observe(3)
        path = tmp_path / "metrics.json"
        reg.save(path)
        data = json.loads(path.read_text())
        assert data["counters"][0] == {
            "name": "hits", "labels": {"allocator": "turbo"}, "value": 7.0,
        }
        assert data["gauges"][0]["series"] == [[0.5, 42.0]]
        assert data["histograms"][0]["count"] == 1

    def test_export_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").inc()
            reg.counter("a", x="2").inc()
            reg.counter("a", x="1").inc()
            return reg.to_json()

        assert build() == build()
