"""Acceptance: ``python -m repro trace`` and the traced-workload harness."""

import json

import pytest

from repro.__main__ import main
from repro.observability import validate_trace_dict
from repro.observability.harness import run_traced_workload

RUN_ARGS = dict(model="tiny", rate_per_s=120.0, duration_s=0.25, seed=3)


@pytest.fixture(scope="module")
def traced_run():
    return run_traced_workload(**RUN_ARGS)


class TestHarness:
    def test_counters_reconcile_with_serving_metrics(self, traced_run):
        reg, serving = traced_run.registry, traced_run.serving
        assert reg.value("serving_batches_executed_total") == (
            serving.batches_executed
        )
        assert reg.sum_values("serving_requests_completed_total") == (
            serving.completed
        )
        assert serving.completed == serving.offered

    def test_allocator_counters_reconcile(self, traced_run):
        alloc = traced_run.runtime.allocator
        reg = traced_run.registry
        assert reg.value("allocator_hits_total",
                         allocator="turbo") == alloc.plan_hits
        assert reg.value("allocator_misses_total",
                         allocator="turbo") == alloc.plan_misses
        assert alloc.plan_hits + alloc.plan_misses > 0

    def test_trace_schema_valid(self, traced_run):
        assert validate_trace_dict(traced_run.tracer.to_dict()) == []

    def test_deterministic_given_seed(self, traced_run):
        again = run_traced_workload(**RUN_ARGS)
        assert again.tracer.to_json() == traced_run.tracer.to_json()
        assert again.registry.to_json() == traced_run.registry.to_json()

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            run_traced_workload(model="bert-xxl")
        with pytest.raises(ValueError):
            run_traced_workload(scheduler="fifo")
        with pytest.raises(ValueError):
            run_traced_workload(policy="eager")


class TestContinuousHarness:
    """``--scheduler continuous``: the generative iteration-level loop."""

    @pytest.fixture(scope="class")
    def gen_run(self):
        return run_traced_workload(scheduler="continuous", rate_per_s=200.0,
                                   duration_s=0.25, seed=3)

    def test_trace_schema_valid_with_decode_spans(self, gen_run):
        assert validate_trace_dict(gen_run.tracer.to_dict()) == []
        names = {e["name"] for e in gen_run.tracer.to_dict()["traceEvents"]}
        assert any(n.startswith("decode x") for n in names)
        assert any(n.startswith("prefill x") for n in names)

    def test_gen_metrics_reconcile(self, gen_run):
        serving, reg = gen_run.serving, gen_run.registry
        assert serving.completed == serving.offered
        assert reg.sum_values("generation_requests_total") == serving.completed
        # Decode steps produce every token except each request's first
        # (which prefill yields), and everything completed.
        assert reg.sum_values("gen_tokens_total") == (
            serving.tokens_generated - serving.completed
        )
        assert reg.value("gen_decode_steps_total",
                         system="Turbo-Continuous") == serving.decode_steps

    def test_deterministic_given_seed(self, gen_run):
        again = run_traced_workload(scheduler="continuous", rate_per_s=200.0,
                                    duration_s=0.25, seed=3)
        assert again.tracer.to_json() == gen_run.tracer.to_json()
        assert again.registry.to_json() == gen_run.registry.to_json()


class TestTraceCLI:
    def test_writes_valid_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "trace", "--model", "tiny", "--rate", "120", "--duration", "0.25",
            "--seed", "3", "--out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        assert validate_trace_dict(trace) == []
        # The trace contains all three event families.
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"X", "b", "e", "C"} <= phases
        metrics = json.loads(metrics_path.read_text())
        names = {c["name"] for c in metrics["counters"]}
        assert {"serving_batches_executed_total",
                "serving_requests_completed_total",
                "allocator_hits_total", "allocator_misses_total"} <= names
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out

    def test_cli_counters_match_fresh_simulation(self, tmp_path):
        """The written metrics JSON reconciles with an identical run."""
        metrics_path = tmp_path / "metrics.json"
        rc = main([
            "trace", "--model", "tiny", "--rate", "120", "--duration", "0.25",
            "--seed", "3", "--out", str(tmp_path / "trace.json"),
            "--metrics-out", str(metrics_path),
        ])
        assert rc == 0
        metrics = json.loads(metrics_path.read_text())
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in metrics["counters"]
        }
        fresh = run_traced_workload(**RUN_ARGS)
        assert counters[("serving_batches_executed_total", ())] == (
            fresh.serving.batches_executed
        )
        assert counters[("serving_requests_ingested_total", ())] == (
            fresh.serving.offered
        )
