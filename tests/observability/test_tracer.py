"""Tracer: Chrome trace_event emission, schema validity, NullTracer."""

import json

from repro.observability import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    validate_trace_dict,
)


class TestTracer:
    def test_complete_event_fields(self):
        t = Tracer()
        t.complete("gemm", 0.001, 0.002, tid="gpu", cat="kernel", m=64)
        ev = t.events[-1]
        assert ev["ph"] == "X"
        assert ev["ts"] == 1000.0  # µs
        assert ev["dur"] == 2000.0
        assert ev["tid"] == "gpu"
        assert ev["args"] == {"m": 64}

    def test_async_span_lifecycle(self):
        t = Tracer()
        t.async_begin("request", 0.0, 7, seq_len=100)
        t.async_instant("request", 0.5, 7, stage="execute")
        t.async_end("request", 1.0, 7, latency_ms=1000.0)
        phases = [e["ph"] for e in t.events if e.get("id") == 7]
        assert phases == ["b", "n", "e"]

    def test_counter_event(self):
        t = Tracer()
        t.counter("queue", 0.25, {"depth": 3})
        ev = t.events[-1]
        assert ev["ph"] == "C"
        assert ev["args"] == {"depth": 3.0}

    def test_thread_name_idempotent(self):
        t = Tracer()
        t.thread_name("gpu", "gpu (batch execution)")
        t.thread_name("gpu", "gpu (batch execution)")
        names = [e for e in t.events if e["name"] == "thread_name"]
        assert len(names) == 1

    def test_negative_duration_clamped(self):
        t = Tracer()
        t.complete("x", 1.0, -0.001)
        assert t.events[-1]["dur"] == 0.0

    def test_export_valid_and_json_parsable(self, tmp_path):
        t = Tracer()
        t.thread_name("gpu", "gpu")
        t.complete("batch", 0.0, 0.01, tid="gpu")
        t.async_begin("request", 0.0, 1)
        t.async_end("request", 0.01, 1)
        t.counter("queue", 0.0, {"depth": 1})
        t.instant("round", 0.0, tid="scheduler")
        assert validate_trace_dict(t.to_dict()) == []
        path = tmp_path / "trace.json"
        t.save(path)
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert validate_trace_dict(loaded) == []


class TestValidator:
    def test_rejects_missing_events(self):
        assert validate_trace_dict({}) != []

    def test_rejects_bad_phase(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0},
        ]}
        assert any("bad phase" in p for p in validate_trace_dict(bad))

    def test_rejects_negative_ts(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "i", "s": "t", "pid": 0, "tid": 0, "ts": -1},
        ]}
        assert any("bad ts" in p for p in validate_trace_dict(bad))

    def test_rejects_async_without_id(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "b", "pid": 0, "tid": 0, "ts": 0},
        ]}
        assert any("without id" in p for p in validate_trace_dict(bad))


class TestNullTracer:
    def test_disabled_and_emits_nothing(self):
        t = NullTracer()
        assert not t.enabled
        t.thread_name("gpu", "gpu")
        t.complete("x", 0.0, 1.0)
        t.instant("x", 0.0)
        t.counter("x", 0.0, {"v": 1})
        t.async_begin("x", 0.0, 1)
        t.async_instant("x", 0.0, 1)
        t.async_end("x", 0.0, 1)
        assert len(t) == 0
        assert t.wall_now() == 0.0

    def test_shared_singleton_is_null(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
