"""Wiring: server/scheduler/allocator/stream instrumentation end to end."""

import dataclasses

import pytest

from repro.gpusim import Stream, gemm_time, RTX_2060
from repro.memory import CachingAllocator, TurboAllocator
from repro.observability import MetricsRegistry, NullTracer, Tracer
from repro.serving import (
    DPBatchScheduler,
    NaiveBatchScheduler,
    Request,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


def constant_cost(seq_len, batch):
    return 0.002 + 0.01 * batch


def run_sim(tracer=None, metrics=None, n=40, seed=7):
    requests = generate_requests(100.0, 0.4, seed=seed)
    return simulate_serving(
        requests, DPBatchScheduler(), constant_cost,
        config=ServingConfig(max_batch=8), duration_s=0.4,
        tracer=tracer, metrics=metrics,
    )


class TestServerInstrumentation:
    def test_request_spans_cover_every_request(self):
        tracer = Tracer()
        serving = run_sim(tracer=tracer)
        begins = [e for e in tracer.events if e["ph"] == "b"]
        ends = [e for e in tracer.events if e["ph"] == "e"]
        assert len(begins) == serving.offered
        assert len(ends) == serving.completed
        assert {e["id"] for e in begins} == {e["id"] for e in ends}

    def test_batch_events_match_batches_executed(self):
        tracer = Tracer()
        serving = run_sim(tracer=tracer)
        batch_events = [e for e in tracer.events if e.get("cat") == "batch"]
        assert len(batch_events) == serving.batches_executed
        for ev in batch_events:
            assert ev["args"]["size"] >= 1
            assert ev["args"]["padded_len"] > 0
            assert ev["dur"] > 0

    def test_metrics_reconcile_with_serving_metrics(self):
        registry = MetricsRegistry()
        serving = run_sim(metrics=registry)
        assert registry.value("serving_batches_executed_total") == (
            serving.batches_executed
        )
        assert registry.sum_values("serving_requests_completed_total") == (
            serving.completed
        )
        assert registry.value("serving_requests_ingested_total") == serving.offered
        assert registry.value("scheduler_rounds_total", scheduler="dp") > 0

    def test_padding_counters_consistent(self):
        registry = MetricsRegistry()
        run_sim(metrics=registry)
        padded = registry.value("serving_padded_tokens_total")
        waste = registry.value("serving_padding_waste_tokens_total")
        assert 0 <= waste < padded

    def test_null_tracer_metrics_byte_identical(self):
        """Instrumentation off must not perturb results at all."""
        plain = run_sim()
        nulled = run_sim(tracer=NullTracer())
        assert dataclasses.asdict(plain) == dataclasses.asdict(nulled)

    def test_metrics_registry_does_not_perturb_results(self):
        plain = run_sim()
        metered = run_sim(metrics=MetricsRegistry())
        assert dataclasses.asdict(plain) == dataclasses.asdict(metered)

    def test_queue_depth_series_recorded(self):
        registry = MetricsRegistry()
        run_sim(metrics=registry)
        series = registry.gauge("serving_queue_depth").series
        assert series and all(depth >= 1 for _, depth in series)


class TestAllocatorInstrumentation:
    def _records(self):
        from repro.memory import TensorUsageRecord

        return [
            TensorUsageRecord(name=f"t{i}", size=1024 * (i + 1),
                              first_op=i, last_op=i + 1)
            for i in range(4)
        ]

    def test_caching_allocator_counters_match_attributes(self):
        registry = MetricsRegistry()
        alloc = CachingAllocator(metrics=registry)
        alloc.process_request(self._records())
        alloc.process_request(self._records())
        assert registry.value("allocator_hits_total",
                              allocator="caching") == alloc.cache_hits
        assert registry.value("allocator_misses_total",
                              allocator="caching") == alloc.cache_misses
        assert alloc.cache_hits > 0

    def test_turbo_allocator_counters_and_footprint_series(self):
        registry = MetricsRegistry()
        alloc = TurboAllocator(metrics=registry)
        alloc.process_request(self._records())
        alloc.process_request(self._records())
        assert registry.value("allocator_hits_total",
                              allocator="turbo") == alloc.plan_hits
        assert registry.value("allocator_misses_total",
                              allocator="turbo") == alloc.plan_misses
        series = registry.gauge("allocator_footprint_bytes",
                                allocator="turbo").series
        assert [t for t, _ in series] == [1, 2]
        assert all(v > 0 for _, v in series)

    def test_metrics_optional_by_default(self):
        alloc = TurboAllocator()
        alloc.process_request(self._records())
        assert alloc.metrics is None


class TestStreamInstrumentation:
    def test_kernel_timeline_events(self):
        tracer = Tracer()
        stream = Stream(tracer=tracer, trace_tid="gpu.stream")
        stream.submit(gemm_time(RTX_2060, 64, 64, 64, name="gemm0"))
        stream.submit(gemm_time(RTX_2060, 64, 64, 64, name="gemm1"))
        kernel_events = [e for e in tracer.events if e.get("cat") == "kernel"]
        assert [e["name"] for e in kernel_events] == ["gemm0", "gemm1"]
        # Back-to-back: second starts where the first ended.
        assert kernel_events[1]["ts"] == pytest.approx(
            kernel_events[0]["ts"] + kernel_events[0]["dur"]
        )
        assert kernel_events[0]["args"]["bound"] in ("memory", "compute")

    def test_stream_without_tracer_unchanged(self):
        stream = Stream()
        stream.submit(gemm_time(RTX_2060, 64, 64, 64))
        assert stream.launches == 1


class TestExecutorInstrumentation:
    def test_per_node_spans_emitted(self):
        import numpy as np

        from repro.graph import fuse_graph
        from repro.models import (
            build_encoder_graph,
            init_encoder_weights,
            tiny_bert,
        )
        from repro.runtime.executor import PlannedGraphExecutor

        config = tiny_bert()
        graph = fuse_graph(build_encoder_graph(config))
        weights = init_encoder_weights(config, seed=0)
        tracer = Tracer()
        executor = PlannedGraphExecutor(graph, config, weights, tracer=tracer)
        ids = np.random.default_rng(0).integers(0, config.vocab_size, (1, 8))
        executor.run(ids)
        node_events = [e for e in tracer.events if e.get("cat") == "node"]
        assert len(node_events) == len(graph.nodes)
        arena = [e for e in tracer.events if e["name"] == "arena_bytes"]
        assert arena and arena[0]["args"]["planned"] > 0
