"""The discrete-event core: ordering, invariants, busy windows, tasks."""

import pytest

from repro.engine import (
    Engine,
    EngineError,
    EngineInstrumentation,
    EventKind,
    VirtualClock,
)
from repro.observability import MetricsRegistry, Tracer


class TestEventOrdering:
    def _run_scrambled(self):
        """Schedule one event of each kind at the same instant, in an
        order that disagrees with the documented dispatch order."""
        engine = Engine()
        order = []
        for kind in (EventKind.TRIGGER, EventKind.WAKE,
                     EventKind.ARRIVAL, EventKind.RETRY):
            engine.schedule(1.0, kind,
                            lambda e: order.append(e.kind))
        engine.run()
        return order

    def test_same_time_kinds_dispatch_in_documented_order(self):
        assert self._run_scrambled() == [
            EventKind.ARRIVAL, EventKind.RETRY,
            EventKind.WAKE, EventKind.TRIGGER,
        ]

    def test_ordering_is_identical_across_runs(self):
        assert self._run_scrambled() == self._run_scrambled()

    def test_seq_breaks_ties_in_schedule_order(self):
        engine = Engine()
        order = []
        for tag in ("first", "second", "third"):
            engine.schedule(2.0, EventKind.ARRIVAL,
                            lambda e: order.append(e.payload), tag)
        engine.run()
        assert order == ["first", "second", "third"]

    def test_earlier_time_beats_priority(self):
        engine = Engine()
        order = []
        engine.schedule(1.0, EventKind.TRIGGER,  # repro: allow(DET407)
                        lambda e: order.append("early-trigger"))
        engine.schedule(2.0, EventKind.ARRIVAL,
                        lambda e: order.append("late-arrival"))
        engine.run()
        assert order == ["early-trigger", "late-arrival"]


class TestClockInvariants:
    """Virtual time only ever advances to real event timestamps — the
    invariant that makes the old ``clock + 1e-9`` anti-stall nudge
    unnecessary by construction."""

    def test_clock_lands_exactly_on_event_timestamps(self):
        engine = Engine()
        times = [0.125, 0.125, 0.75, 2.5]
        for t in times:
            engine.schedule(t, EventKind.WAKE)
        seen = []
        engine.add_dispatch_hook(
            lambda event: seen.append((engine.now, event.time)))
        engine.run()
        # The clock at each dispatch is the event's own timestamp, no
        # epsilon offsets, and it never lands anywhere else.
        assert [now for now, _ in seen] == times
        assert all(now == t for now, t in seen)
        assert engine.now == times[-1]

    def test_clock_is_monotone(self):
        engine = Engine()
        for t in (0.5, 0.1, 0.3, 0.1):
            engine.schedule(t, EventKind.WAKE)
        trajectory = []
        engine.add_dispatch_hook(lambda _e: trajectory.append(engine.now))
        engine.run()
        assert trajectory == sorted(trajectory)

    def test_scheduling_into_the_past_raises(self):
        engine = Engine()
        engine.schedule(1.0, EventKind.WAKE)
        engine.run()
        assert engine.now == 1.0
        with pytest.raises(EngineError):
            engine.schedule(0.5, EventKind.ARRIVAL)

    def test_scheduling_at_now_is_allowed(self):
        engine = Engine()
        engine.schedule(1.0, EventKind.WAKE)
        engine.run()
        fired = []
        engine.schedule(1.0, EventKind.WAKE, lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [1.0]

    def test_virtual_clock_refuses_to_move_backwards(self):
        clock = VirtualClock()
        clock.advance_to(3.0)  # repro: allow(DET406)
        with pytest.raises(EngineError):
            clock.advance_to(2.9)  # repro: allow(DET406)


class TestAdvance:
    def test_advance_dispatches_window_events_at_true_times(self):
        engine = Engine()
        landed = []
        engine.schedule(0.25, EventKind.ARRIVAL,
                        lambda e: landed.append(engine.now))
        engine.schedule(0.75, EventKind.ARRIVAL,
                        lambda e: landed.append(engine.now))
        end = engine.advance(1.0)
        assert landed == [0.25, 0.75]
        assert end == 1.0
        assert engine.now == 1.0

    def test_advance_leaves_post_window_events_pending(self):
        engine = Engine()
        engine.schedule(5.0, EventKind.ARRIVAL)
        engine.advance(1.0)
        assert engine.now == 1.0
        assert engine.pending

    def test_advance_by_zero_stays_put(self):
        engine = Engine()
        assert engine.advance(0.0) == 0.0

    def test_advance_negative_raises(self):
        with pytest.raises(EngineError):
            Engine().advance(-0.1)


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, EventKind.WAKE,
                                lambda e: fired.append("no"))
        engine.cancel(event)
        engine.run()
        assert fired == []
        assert not engine.pending

    def test_cancel_is_idempotent(self):
        engine = Engine()
        keep = engine.schedule(1.0, EventKind.WAKE)
        drop = engine.schedule(2.0, EventKind.WAKE)
        engine.cancel(drop)
        engine.cancel(drop)
        assert engine.pending  # ``keep`` is still live
        assert engine.peek() is keep

    def test_peek_skips_cancelled(self):
        engine = Engine()
        drop = engine.schedule(1.0, EventKind.WAKE)
        keep = engine.schedule(2.0, EventKind.WAKE)
        engine.cancel(drop)
        assert engine.peek() is keep


class TestStepDue:
    def test_step_due_drains_one_instant_in_full(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, EventKind.ARRIVAL)
        engine.schedule(2.0, EventKind.ARRIVAL)
        dispatched = engine.step_due()
        assert len(dispatched) == 3
        assert engine.now == 1.0
        assert engine.pending

    def test_step_due_on_empty_heap(self):
        assert Engine().step_due() == []


class TestTasks:
    def test_task_first_segment_runs_synchronously(self):
        engine = Engine()
        log = []

        def work():
            log.append(("start", engine.now))
            yield 0.5
            log.append(("mid", engine.now))
            yield 0.25
            log.append(("end", engine.now))

        task = engine.spawn(work())
        assert log == [("start", 0.0)]  # ran before any dispatch
        engine.run()
        assert log == [("start", 0.0), ("mid", 0.5), ("end", 0.75)]
        assert task.done

    def test_task_negative_delay_raises(self):
        engine = Engine()

        def bad():
            yield -1.0

        with pytest.raises(EngineError):
            engine.spawn(bad())


class TestInstrumentation:
    def test_dispatch_counter_labelled_by_kind(self):
        metrics = MetricsRegistry()
        engine = Engine(
            instrumentation=EngineInstrumentation(Tracer(), metrics))
        engine.schedule(1.0, EventKind.ARRIVAL)
        engine.schedule(1.0, EventKind.TRIGGER)  # repro: allow(DET407)
        engine.schedule(2.0, EventKind.ARRIVAL)
        engine.run()
        assert engine.events_dispatched == 3
        assert metrics.counter(
            "engine_events_dispatched_total", kind="arrival").value == 2
        assert metrics.counter(
            "engine_events_dispatched_total", kind="trigger").value == 1

    def test_queue_depth_fans_out_to_trace_and_gauge(self):
        """One sample feeds both the trace counter and the metrics gauge,
        so the two can never disagree again (the pre-engine loop sampled
        them at different points and the trace showed ~0)."""
        tracer = Tracer()
        metrics = MetricsRegistry()
        inst = EngineInstrumentation(tracer, metrics)
        inst.queue_depth(1.5, 7)
        counters = [e for e in tracer.events if e.get("ph") == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "queue"
        assert counters[0]["args"] == {"depth": 7.0}
        assert metrics.gauge("serving_queue_depth").series == [(1.5, 7.0)]

    def test_advance_emits_span_for_labelled_window(self):
        tracer = Tracer()
        engine = Engine(
            instrumentation=EngineInstrumentation(tracer, None))
        engine.advance(0.5, label="batch x3", tid="gpu", cat="batch", size=3)
        spans = [e for e in tracer.events if e.get("ph") == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "batch x3"
        assert spans[0]["args"]["size"] == 3
