"""Tests for the discrete-event engine core."""
