"""Engine-level fault injection: stretch, crash queries, attempt verdicts."""

import pytest

from repro.engine import (
    Engine,
    EngineError,
    EngineFaultInjector,
    EngineInstrumentation,
    EventKind,
)
from repro.observability import MetricsRegistry
from repro.resilience import (
    FaultPlan,
    KernelStall,
    LatencySpike,
    ServerCrash,
    TransientFailures,
)


def plan(**kw):
    defaults = dict(seed=0)
    defaults.update(kw)
    return FaultPlan(**defaults)


class TestStretch:
    def test_identity_off_fault(self):
        inj = EngineFaultInjector(plan(), server_id=0)
        d = 0.125
        assert inj.stretch(d, 10.0) is d  # same float object, no drift
        assert inj.stretches == 0
        assert inj.stretched_seconds == 0.0

    def test_spike_window_stretches(self):
        inj = EngineFaultInjector(plan(
            spikes=(LatencySpike(1.0, 2.0, multiplier=3.0, server_id=0),)
        ))
        assert inj.stretch(0.1, 0.5) == pytest.approx(0.1)
        assert inj.stretch(0.1, 1.5) == pytest.approx(0.3)
        assert inj.stretch(0.1, 2.0) == pytest.approx(0.1)  # half-open
        assert inj.stretches == 1
        assert inj.stretched_seconds == pytest.approx(0.2)

    def test_spike_bound_to_server(self):
        p = plan(spikes=(LatencySpike(0.0, 10.0, 2.0, server_id=1),))
        assert EngineFaultInjector(p, 0).stretch(1.0, 5.0) == 1.0
        assert EngineFaultInjector(p, 1).stretch(1.0, 5.0) == 2.0

    def test_stall_applies_only_to_matching_label(self):
        inj = EngineFaultInjector(plan(
            stalls=(KernelStall(0.0, 10.0, 4.0, name_contains="gemm"),)
        ))
        assert inj.stretch(1.0, 5.0) == 1.0               # unlabeled
        assert inj.stretch(1.0, 5.0, label="softmax") == 1.0
        assert inj.stretch(1.0, 5.0, label="gemm_qk") == 4.0

    def test_instrumentation_counts_faults(self):
        registry = MetricsRegistry()
        instr = EngineInstrumentation(metrics=registry)
        inj = EngineFaultInjector(plan(
            spikes=(LatencySpike(0.0, 10.0, 2.0),)
        ), 0, instr)
        inj.stretch(1.0, 5.0)
        exported = registry.to_dict()
        names = {(c["name"], tuple(sorted(c["labels"].items())))
                 for c in exported["counters"]}
        assert ("engine_faults_total", (("kind", "stretch"),)) in names


class TestCrashQueries:
    def test_window_half_open(self):
        inj = EngineFaultInjector(plan(
            crashes=(ServerCrash(2.0, 3.0, server_id=0),)
        ))
        assert not inj.crashed(1.9)
        assert inj.crashed(2.0)
        assert not inj.crashed(3.0)  # recovery instant is up
        assert inj.crash_end(2.5) == 3.0
        assert inj.crash_end(1.0) == 1.0

    def test_crashed_during_truncates_window(self):
        inj = EngineFaultInjector(plan(
            crashes=(ServerCrash(2.0, 3.0, server_id=0),)
        ))
        assert inj.crashed_during(0.0, 1.0) is None
        assert inj.crashed_during(1.5, 2.5) == 2.0
        assert inj.crashed_during(2.2, 2.8) == pytest.approx(2.2)


class TestAttemptVerdicts:
    def test_outside_window_never_fails(self):
        inj = EngineFaultInjector(plan(
            failures=(TransientFailures(1.0, 2.0, 1.0),)
        ))
        assert not inj.attempt_fails(0, 0, 0.5)
        assert inj.failures_injected == 0

    def test_rate_one_always_fails_and_counts(self):
        inj = EngineFaultInjector(plan(
            failures=(TransientFailures(1.0, 2.0, 1.0),)
        ))
        assert inj.attempt_fails(0, 0, 1.5)
        assert inj.failures_injected == 1

    def test_verdict_deterministic_per_attempt(self):
        p = plan(failures=(TransientFailures(0.0, 10.0, 0.5),))
        a = EngineFaultInjector(p, 0)
        b = EngineFaultInjector(p, 0)
        verdicts_a = [a.attempt_fails(i, 0, 5.0) for i in range(50)]
        verdicts_b = [b.attempt_fails(i, 0, 5.0) for i in range(50)]
        assert verdicts_a == verdicts_b
        assert any(verdicts_a) and not all(verdicts_a)


class TestEngineIntegration:
    def test_advance_stretches_under_installed_injector(self):
        inj = EngineFaultInjector(plan(
            spikes=(LatencySpike(0.0, 10.0, 2.0),)
        ))
        engine = Engine(faults=inj)
        engine.advance(1.0)
        assert engine.now == pytest.approx(2.0)
        assert engine.last_advance_s == pytest.approx(2.0)

    def test_last_advance_s_exact_off_fault(self):
        engine = Engine()
        d = 0.3
        engine.advance(d)
        assert engine.last_advance_s is d  # byte-identical accounting

    def test_run_until_is_not_a_busy_window(self):
        """Sleeping out an outage dispatches due events but never
        stretches — crash drains must not themselves be faultable."""
        inj = EngineFaultInjector(plan(
            spikes=(LatencySpike(0.0, 10.0, 5.0),)
        ))
        engine = Engine(faults=inj)
        seen = []
        engine.schedule(1.0, EventKind.ARRIVAL,
                        lambda e: seen.append(engine.now))
        assert engine.run_until(2.0) == 2.0
        assert engine.now == 2.0
        assert seen == [1.0]
        assert inj.stretches == 0

    def test_run_until_rejects_past(self):
        engine = Engine()
        engine.run_until(1.0)
        with pytest.raises(EngineError):
            engine.run_until(0.5)
