"""Schedule race detector: happens-before over multi-stream programs."""

from repro.analysis import (
    build_serving_schedule,
    check_emitted_schedules,
    check_schedule,
    schedule_is_race_free,
)
from repro.gpusim import StreamSchedule


def codes(diags):
    return sorted(d.code for d in diags)


class TestHazards:
    def test_same_stream_is_serial(self):
        s = StreamSchedule("serial")
        s.launch("write", "s0", writes=("buf",))
        s.launch("read", "s0", reads=("buf",))
        assert check_schedule(s) == []

    def test_unsynced_raw_is_sched301(self):
        s = StreamSchedule("raw")
        s.launch("producer", "s0", writes=("buf",))
        s.launch("consumer", "s1", reads=("buf",))
        diags = check_schedule(s)
        assert codes(diags) == ["SCHED301"]
        assert "read-after-write" in diags[0].message

    def test_unsynced_war_is_sched302(self):
        s = StreamSchedule("war")
        s.launch("consumer", "s0", reads=("buf",))
        s.launch("overwriter", "s1", writes=("buf",))
        assert codes(check_schedule(s)) == ["SCHED302"]

    def test_unsynced_waw_is_sched303(self):
        s = StreamSchedule("waw")
        s.launch("first", "s0", writes=("buf",))
        s.launch("second", "s1", writes=("buf",))
        assert codes(check_schedule(s)) == ["SCHED303"]

    def test_shared_reads_never_race(self):
        s = StreamSchedule("ro")
        s.launch("k0", "s0", reads=("weights",))
        s.launch("k1", "s1", reads=("weights",))
        assert check_schedule(s) == []


class TestSynchronization:
    def test_event_sync_orders_streams(self):
        s = StreamSchedule("synced")
        s.launch("producer", "s0", writes=("buf",))
        s.record("done", "s0")
        s.wait("done", "s1")
        s.launch("consumer", "s1", reads=("buf",))
        assert schedule_is_race_free(s)

    def test_event_recorded_too_early_does_not_order(self):
        s = StreamSchedule("early")
        s.record("done", "s0")           # captured before the write
        s.launch("producer", "s0", writes=("buf",))
        s.wait("done", "s1")
        s.launch("consumer", "s1", reads=("buf",))
        assert codes(check_schedule(s)) == ["SCHED301"]

    def test_device_sync_is_a_barrier(self):
        s = StreamSchedule("barrier")
        s.launch("producer", "s0", writes=("buf",))
        s.sync()
        s.launch("consumer", "s1", reads=("buf",))
        assert schedule_is_race_free(s)

    def test_device_sync_covers_streams_first_used_after_it(self):
        # s1 issues its first op only after the sync: still ordered.
        s = StreamSchedule("late-stream")
        s.launch("producer", "s0", writes=("buf",))
        s.sync()
        s.launch("late", "s9", writes=("buf",))
        assert schedule_is_race_free(s)

    def test_wait_without_record_is_sched310(self):
        s = StreamSchedule("lost")
        s.wait("never-recorded", "s1")
        s.launch("k", "s1", reads=())
        diags = check_schedule(s)
        assert codes(diags) == ["SCHED310"]
        assert "never recorded" in diags[0].message


class TestServingSchedule:
    def test_seeded_serving_schedule_is_race_free(self):
        for seed in (0, 7):
            schedule = build_serving_schedule(seed=seed)
            assert schedule_is_race_free(schedule), seed
            assert len(schedule.streams()) == 3  # copy + 2 compute streams

    def test_dropping_the_h2d_sync_races(self):
        # Same shape as the serving schedule, minus the h2d.done wait:
        # compute may read the input while the copy engine writes it.
        s = StreamSchedule("broken-serving")
        s.launch("h2d", "copy", writes=("input",))
        s.launch("encoder", "compute0", reads=("input", "weights"),
                 writes=("act",))
        assert "SCHED301" in codes(check_schedule(s))

    def test_double_buffer_reuse_without_sync_races(self):
        # Request 2 reuses request 0's activation buffer on the other
        # compute stream without waiting for the d2h of request 0.
        s = StreamSchedule("reuse")
        s.launch("enc.req0", "compute0", writes=("act0",))
        s.launch("enc.req2", "compute1", writes=("act0",))
        assert codes(check_schedule(s)) == ["SCHED303"]


class TestEmittedSchedules:
    def _racy_round(self, name="round-3"):
        # A chunked round missing its prefill->decode join: the batch
        # re-form reads a KV page the prefill stream is still writing.
        s = StreamSchedule(name)
        s.launch("prefill.chunk0", "prefill", writes=("kv/00000001/p0",))
        s.launch("batch.reform", "decode", reads=("kv/00000001/p0",))
        return s

    def test_clean_rounds_produce_no_diagnostics(self):
        s = StreamSchedule("round-0")
        s.launch("prefill.chunk0", "prefill", writes=("kv/00000001/p0",))
        s.record("prefill.done.0", "prefill")
        s.wait("prefill.done.0", "decode")
        s.launch("batch.reform", "decode", reads=("kv/00000001/p0",))
        assert check_emitted_schedules([s]) == []

    def test_race_in_emitted_round_is_sched311(self):
        diags = check_emitted_schedules([self._racy_round()])
        assert codes(diags) == ["SCHED311"]
        assert "round-3" in diags[0].message
        assert "SCHED301" in diags[0].message  # underlying code preserved
        assert diags[0].location.graph == "continuous:round-3"

    def test_context_prefixes_location(self):
        diags = check_emitted_schedules([self._racy_round()], context="test")
        assert diags[0].location.graph == "test:round-3"
        assert "[test]" in diags[0].message

    def test_one_diagnostic_per_hazard_across_rounds(self):
        diags = check_emitted_schedules(
            [self._racy_round("round-1"), self._racy_round("round-2")])
        assert codes(diags) == ["SCHED311", "SCHED311"]
