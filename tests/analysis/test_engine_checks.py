"""Engine-trace recorder + verifiers.

Two kinds of coverage: the recorder's hook plumbing over *real* engine /
arena / breaker executions, and seeded mutations — each invariant is
broken on purpose and must produce exactly the matching stable code.
"""

import pytest

from repro.analysis.engine_checks import (
    EngineTraceRecorder,
    verify_engine_trace,
    verify_kv_ledger,
    verify_lifecycle,
    verify_trace,
)
from repro.engine import Engine, EventKind
from repro.engine.faults import EngineFaultInjector
from repro.memory import KVCacheArena
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.faults import FaultPlan, ServerCrash
from repro.resilience.retry import RetryPolicy
from repro.serving.request import Request, RequestState


def make_request(req_id: int = 0, arrival_s: float = 0.0) -> Request:
    return Request(req_id=req_id, seq_len=8, arrival_s=arrival_s)


def codes(diags):
    return sorted(d.code for d in diags)


class TestRecorder:
    def test_detached_recorder_sees_nothing(self):
        rec = EngineTraceRecorder()
        engine = Engine()
        engine.schedule(0.0, EventKind.ARRIVAL, payload=make_request())
        engine.run()
        assert rec.stats() == {
            "engines": 0, "dispatches": 0, "requests": 0,
            "resolves": 0, "arena_events": 0, "breaker_transitions": 0,
        }

    def test_records_dispatches_and_attributes_arrivals(self):
        with EngineTraceRecorder() as rec:
            engine = Engine()
            r = make_request(req_id=7)
            engine.schedule(
                0.5, EventKind.ARRIVAL,
                lambda e: e.payload.resolve(RequestState.COMPLETED, 0.5),
                r,
            )
            engine.run()
        stats = rec.stats()
        assert stats["engines"] == 1
        assert stats["dispatches"] == 1
        assert stats["requests"] == 1
        assert stats["resolves"] == 1
        (idx, attributed), = rec.requests.values()
        assert idx == 0 and attributed is r
        assert verify_trace(rec) == []

    def test_detach_stops_recording(self):
        rec = EngineTraceRecorder().attach()
        rec.detach()
        Engine()  # constructed after detach: must not be recorded
        assert rec.stats()["engines"] == 0

    def test_double_attach_rejected(self):
        with EngineTraceRecorder() as rec:
            with pytest.raises(RuntimeError):
                rec.attach()

    def test_sequence_numbers_order_cross_layer_events(self):
        with EngineTraceRecorder() as rec:
            engine = Engine()
            arena = KVCacheArena(capacity_bytes=4096, bytes_per_token=16,
                                 page_tokens=4)

            def work(event):
                arena.admit(1, prompt_tokens=4, max_total_tokens=8)
                event.payload.resolve(RequestState.COMPLETED, engine.now)
                arena.release(1)

            engine.schedule(0.1, EventKind.ARRIVAL, work, make_request(1))
            engine.run()
        seqs = ([s for s, *_ in rec.dispatches]
                + [s for s, *_ in rec.resolves]
                + [s for s, *_ in rec.arena_events])
        assert sorted(seqs) == list(range(1, len(seqs) + 1))


class TestEngineTraceMutations:
    def test_clock_regression_is_eng501(self):
        rec = EngineTraceRecorder()
        rec.dispatches = [(1, 0, 1.0, 1.0, 0), (2, 0, 0.5, 0.5, 0)]
        assert codes(verify_engine_trace(rec)) == ["ENG501"]

    def test_past_dispatch_is_eng502(self):
        rec = EngineTraceRecorder()
        rec.dispatches = [(1, 0, 0.5, 1.0, 0)]
        assert codes(verify_engine_trace(rec)) == ["ENG502"]

    def test_eng501_and_eng502_deduplicate_per_engine(self):
        rec = EngineTraceRecorder()
        rec.dispatches = [(1, 0, 1.0, 2.0, 0), (2, 0, 0.4, 2.0, 0),
                          (3, 0, 0.2, 2.0, 0)]
        assert codes(verify_engine_trace(rec)) == ["ENG501", "ENG502"]

    def test_lost_wakeup_is_eng503_plus_life601(self):
        # The scheduler "forgets" the request: its ARRIVAL is dispatched
        # but nothing ever resolves it, and the engine drains.
        with EngineTraceRecorder() as rec:
            engine = Engine()
            engine.schedule(0.0, EventKind.ARRIVAL, payload=make_request(3))
            engine.run()
        found = codes(verify_trace(rec))
        assert "ENG503" in found and "LIFE601" in found


class TestLifecycleMutations:
    def test_double_terminal_resolve_is_life602(self):
        with EngineTraceRecorder() as rec:
            r = make_request(5)
            r.resolve(RequestState.COMPLETED, 1.0)
            r.resolve(RequestState.FAILED)
        assert codes(verify_lifecycle(rec)) == ["LIFE602"]

    def test_completion_before_arrival_is_life605(self):
        with EngineTraceRecorder() as rec:
            r = make_request(6, arrival_s=1.0)
            r.resolve(RequestState.COMPLETED, 0.25)
        assert codes(verify_lifecycle(rec)) == ["LIFE605"]

    def test_completion_inside_crash_window_is_life603(self):
        plan = FaultPlan(
            crashes=(ServerCrash(start_s=1.0, end_s=2.0, server_id=0),)
        )
        with EngineTraceRecorder() as rec:
            injector = EngineFaultInjector(plan, 0)
            engine = Engine(faults=injector)
            engine.schedule(
                1.5, EventKind.ARRIVAL,
                lambda e: e.payload.resolve(RequestState.COMPLETED,
                                            engine.now),
                make_request(9),
            )
            engine.run()
        assert codes(verify_lifecycle(rec)) == ["LIFE603"]

    def test_crash_window_boundary_completion_is_legal(self):
        plan = FaultPlan(
            crashes=(ServerCrash(start_s=1.0, end_s=2.0, server_id=0),)
        )
        with EngineTraceRecorder() as rec:
            injector = EngineFaultInjector(plan, 0)
            engine = Engine(faults=injector)
            engine.schedule(
                2.0, EventKind.ARRIVAL,
                lambda e: e.payload.resolve(RequestState.COMPLETED,
                                            engine.now),
                make_request(9),
            )
            engine.run()
        assert verify_lifecycle(rec) == []

    def test_retry_storm_past_max_attempts_is_life604(self):
        retry = RetryPolicy(max_attempts=2, budget=100)
        with EngineTraceRecorder() as rec:
            engine = Engine()
            r = make_request(4)
            for i in range(3):  # max_attempts=2 allows a single retry
                engine.schedule(0.1 * (i + 1), EventKind.RETRY, payload=r)
            engine.run()
            r.resolve(RequestState.FAILED)
        assert codes(verify_lifecycle(rec, retry=retry)) == ["LIFE604"]

    def test_retries_past_global_budget_is_life604(self):
        retry = RetryPolicy(max_attempts=10, budget=2)
        with EngineTraceRecorder() as rec:
            engine = Engine()
            reqs = [make_request(i) for i in range(3)]
            for r in reqs:
                engine.schedule(0.1, EventKind.RETRY, payload=r)
            engine.run()
            for r in reqs:
                r.resolve(RequestState.FAILED)
        assert codes(verify_lifecycle(rec, retry=retry)) == ["LIFE604"]

    def test_retries_within_limits_are_clean(self):
        retry = RetryPolicy(max_attempts=3, budget=100)
        with EngineTraceRecorder() as rec:
            engine = Engine()
            r = make_request(4)
            engine.schedule(0.1, EventKind.RETRY, payload=r)
            engine.schedule(0.2, EventKind.RETRY, payload=r)
            engine.run()
            r.resolve(RequestState.COMPLETED, 0.3)
        assert verify_lifecycle(rec, retry=retry) == []

    def test_illegal_breaker_transition_is_life606(self):
        with EngineTraceRecorder() as rec:
            breaker = CircuitBreaker(name="mutant")
            # closed -> half_open skips the open state entirely.
            breaker._transition(BreakerState.HALF_OPEN, 0.5)
        assert codes(verify_lifecycle(rec)) == ["LIFE606"]

    def test_legal_breaker_cycle_is_clean(self):
        with EngineTraceRecorder() as rec:
            breaker = CircuitBreaker(window=4, min_samples=2, cooldown_s=0.1,
                                     half_open_probes=1, name="ok")
            breaker.record(False, 0.0)
            breaker.record(False, 0.01)      # trips open
            breaker.state(0.2)               # cooldown: half-open
            assert breaker.allow(0.2)
            breaker.record(True, 0.25)       # probe success: closed
        assert len(rec.breaker_events) == 3
        assert verify_lifecycle(rec) == []


class TestKVLedgerMutations:
    def arena(self):
        return KVCacheArena(capacity_bytes=8192, bytes_per_token=16,
                            page_tokens=4)

    def test_full_episode_is_clean(self):
        with EngineTraceRecorder() as rec:
            arena = self.arena()
            arena.admit(1, prompt_tokens=8, max_total_tokens=32)
            arena.append(1, 4)
            dropped = arena.preempt(1)
            arena.restore(1, tokens=dropped, max_total_tokens=32)
            arena.release(1)
        assert verify_kv_ledger(rec) == []

    def test_suppressed_release_leaks_mem221(self):
        # Mutation: the completion path "forgets" to release the region.
        with EngineTraceRecorder() as rec:
            arena = self.arena()
            arena.admit(2, prompt_tokens=8, max_total_tokens=32)
        found = codes(verify_kv_ledger(rec))
        assert "MEM221" in found  # ledger side and arena.verify agree

    def test_expected_live_suppresses_mem221(self):
        with EngineTraceRecorder() as rec:
            arena = self.arena()
            arena.admit(2, prompt_tokens=8, max_total_tokens=32)
        assert verify_kv_ledger(rec, expected_live=[2]) == []

    def test_op_on_dead_region_is_mem222(self):
        rec = EngineTraceRecorder()
        rec.arena_events = [(1, 0, "append", 7, 1)]
        assert codes(verify_kv_ledger(rec)) == ["MEM222"]

    def test_token_count_divergence_is_mem222(self):
        rec = EngineTraceRecorder()
        rec.arena_events = [(1, 0, "admit", 7, 16), (2, 0, "release", 7, 99)]
        assert codes(verify_kv_ledger(rec)) == ["MEM222"]

    def test_restore_without_preempt_is_mem223(self):
        rec = EngineTraceRecorder()
        rec.arena_events = [(1, 0, "restore", 7, 16), (2, 0, "release", 7, 16)]
        assert codes(verify_kv_ledger(rec)) == ["MEM223"]

    def test_shrinking_restore_is_mem223(self):
        rec = EngineTraceRecorder()
        rec.arena_events = [
            (1, 0, "admit", 7, 16), (2, 0, "preempt", 7, 16),
            (3, 0, "restore", 7, 8), (4, 0, "release", 7, 8),
        ]
        assert codes(verify_kv_ledger(rec)) == ["MEM223"]

    def test_failover_restore_on_other_arena_is_legal(self):
        # gen-blackout shape: preempted on the crashed replica's arena,
        # restored (recompute-on-resume) on the failover replica's.
        rec = EngineTraceRecorder()
        rec.arena_events = [
            (1, 0, "admit", 7, 16), (2, 0, "preempt", 7, 16),
            (3, 1, "restore", 7, 16), (4, 1, "release", 7, 16),
        ]
        assert verify_kv_ledger(rec) == []

    def test_failover_preempt_claimed_only_once(self):
        rec = EngineTraceRecorder()
        rec.arena_events = [
            (1, 0, "admit", 7, 16), (2, 0, "preempt", 7, 16),
            (3, 1, "restore", 7, 16), (4, 1, "release", 7, 16),
            (5, 2, "restore", 7, 16), (6, 2, "release", 7, 16),
        ]
        assert codes(verify_kv_ledger(rec)) == ["MEM223"]
