"""Memory-plan verifier: bounds, aliasing, cross-request, fragmentation."""

import pytest

from repro.analysis import (
    check_cross_request,
    check_fragmentation,
    check_plan,
    fragmentation_report,
    plan_double_buffered,
)
from repro.graph import fuse_graph, tensor_usage_records
from repro.memory import (
    AllocationPlan,
    Placement,
    PlanError,
    TensorUsageRecord,
    TurboAllocator,
    validate_plan,
)
from repro.models import build_encoder_graph, tiny_bert


def records():
    return [
        TensorUsageRecord("a", 0, 2, 64),
        TensorUsageRecord("b", 1, 3, 64),   # lifetime overlaps a
        TensorUsageRecord("c", 4, 5, 64),   # disjoint from both
    ]


def codes(diags):
    return sorted(d.code for d in diags)


class TestCheckPlan:
    def test_clean_plan(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 64),
                        "c": Placement(0, 0)},  # reuses a's bytes: lifetimes disjoint
            chunk_sizes={0: 128},
        )
        assert check_plan(plan, records()) == []
        validate_plan(plan, records())  # must not raise

    def test_missing_placement_is_mem201(self):
        plan = AllocationPlan(placements={"a": Placement(0, 0)},
                              chunk_sizes={0: 128})
        diags = check_plan(plan, records())
        assert codes(diags) == ["MEM201"]
        assert "plan/records mismatch" in diags[0].message
        with pytest.raises(PlanError, match="plan/records mismatch"):
            validate_plan(plan, records())

    def test_out_of_bounds_is_mem202(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 96),
                        "c": Placement(0, 0)},
            chunk_sizes={0: 128},  # b: [96, 160) exceeds 128
        )
        diags = [d for d in check_plan(plan, records()) if d.code == "MEM202"]
        assert len(diags) == 1 and "exceeds chunk" in diags[0].message
        with pytest.raises(PlanError, match="exceeds"):
            validate_plan(plan, records())

    def test_unknown_chunk_is_mem202(self):
        plan = AllocationPlan(
            placements={"a": Placement(7, 0), "b": Placement(0, 0),
                        "c": Placement(0, 0)},
            chunk_sizes={0: 128},
        )
        diags = [d for d in check_plan(plan, records()) if d.code == "MEM202"]
        assert len(diags) == 1 and "unknown chunk" in diags[0].message

    def test_live_overlap_is_mem203(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 32),
                        "c": Placement(0, 128)},
            chunk_sizes={0: 256},  # a [0,64) and b [32,96) are both live at op 1-2
        )
        diags = check_plan(plan, records())
        assert codes(diags) == ["MEM203"]
        assert "overlap" in diags[0].message
        with pytest.raises(PlanError, match="overlap"):
            validate_plan(plan, records())

    def test_reports_every_violation_not_just_first(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 0),
                        "c": Placement(0, 200)},
            chunk_sizes={0: 256},  # aliasing AND c out of bounds
        )
        assert codes(check_plan(plan, records())) == ["MEM202", "MEM203"]

    def test_turbo_plans_are_clean(self):
        fused = fuse_graph(build_encoder_graph(tiny_bert()))
        allocator = TurboAllocator()
        for seq in (16, 64, 32):
            recs = tensor_usage_records(fused, {"batch": 2, "seq": seq})
            assert check_plan(allocator.plan(recs), recs) == []


class TestCrossRequest:
    def two_plans(self, offset_b: int):
        recs_a = [TensorUsageRecord("a.x", 0, 1, 64)]
        recs_b = [TensorUsageRecord("b.x", 0, 1, 64)]
        plan_a = AllocationPlan(placements={"a.x": Placement(0, 0)},
                                chunk_sizes={0: 256})
        plan_b = AllocationPlan(placements={"b.x": Placement(0, offset_b)},
                                chunk_sizes={0: 256})
        return {"req-a": (plan_a, recs_a), "req-b": (plan_b, recs_b)}

    def test_shared_bytes_are_mem204(self):
        diags = check_cross_request(self.two_plans(offset_b=32))
        assert codes(diags) == ["MEM204"]
        assert "concurrent requests" in diags[0].message

    def test_disjoint_bytes_are_clean(self):
        assert check_cross_request(self.two_plans(offset_b=64)) == []

    def test_double_buffered_planner_is_alias_free(self):
        fused = fuse_graph(build_encoder_graph(tiny_bert()))
        recs_a = [
            TensorUsageRecord(f"a.{r.name}", r.first_op, r.last_op, r.size)
            for r in tensor_usage_records(fused, {"batch": 2, "seq": 32})
        ]
        recs_b = [
            TensorUsageRecord(f"b.{r.name}", r.first_op, r.last_op, r.size)
            for r in tensor_usage_records(fused, {"batch": 2, "seq": 64})
        ]
        plans = plan_double_buffered(recs_a, recs_b)
        assert check_cross_request(plans) == []
        # Each request's own plan stays valid under the shared id space.
        for plan, recs in plans.values():
            assert check_plan(plan, recs) == []


class TestFragmentation:
    def test_report_numbers(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 64),
                        "c": Placement(0, 0)},
            chunk_sizes={0: 512},
        )
        report = fragmentation_report(plan, records())
        assert report.footprint_bytes == 512
        assert report.peak_live_bytes == 128  # a+b live together
        chunk = report.chunks[0]
        assert chunk.resident_tensors == 3
        assert chunk.peak_live_bytes == 128
        assert chunk.utilization == 128 / 512
        assert report.packing_overhead == 512 / 128

    def test_low_utilization_warns_mem211(self):
        plan = AllocationPlan(
            placements={"a": Placement(0, 0), "b": Placement(0, 64),
                        "c": Placement(0, 0)},
            chunk_sizes={0: 4096},  # 128/4096 = 3% utilized
        )
        diags = check_fragmentation(plan, records())
        assert codes(diags) == ["MEM210", "MEM211"]

    def test_dedicated_chunk_never_warns(self):
        plan = AllocationPlan(placements={"a": Placement(0, 0)},
                              chunk_sizes={0: 4096})
        diags = check_fragmentation(plan, [TensorUsageRecord("a", 0, 1, 8)])
        assert codes(diags) == ["MEM210"]  # single resident: by design


class TestKvArenaScenario:
    def test_run_memory_checks_verifies_arena_plans(self):
        from repro.analysis.check import run_memory_checks

        report = run_memory_checks(graphs=[])
        assert report.checked["kv_arena_plans"] == 9
        assert not [d for d in report.diagnostics if d.code == "MEM220"]
        assert not [d for d in report.diagnostics if d.code == "MEM221"]
        assert not [d for d in report.diagnostics if d.code == "MEM224"]

    def test_corrupted_arena_plan_is_caught(self):
        """The arena's verify() hook catches a bad plan: alias two live
        KV regions and the MEM203 aliasing check fires."""
        from repro.memory import KVCacheArena

        arena = KVCacheArena(capacity_bytes=4096, bytes_per_token=16,
                             page_tokens=4)
        arena.admit(0, 4, 8)
        arena.admit(1, 4, 8)
        a, b = arena.last_records[0].name, arena.last_records[1].name
        arena.last_plan.placements[b] = arena.last_plan.placements[a]
        assert any("alias" in p or "overlap" in p for p in arena.verify())
