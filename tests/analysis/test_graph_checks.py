"""Graph checkers: shape/dtype propagation, dead code, fusion legality."""

from dataclasses import replace

from repro.analysis import check_fusion, check_graph, fusion_invariant_holds
from repro.graph import ComputationGraph, OpType, TensorKind, fuse_graph
from repro.models import (
    build_decode_step_graph,
    build_decoder_step_graph,
    build_encoder_graph,
    build_prefill_graph,
    seq2seq_decoder,
    tiny_bert,
    tiny_gpt,
)


def small_gemm_graph(n_attr: int = 8, k_attr: int = 4) -> ComputationGraph:
    """in[b,4] @ w[4,8] -> out[b,8]; attrs parameterized to seed bugs."""
    g = ComputationGraph("tiny")
    g.tensor("in", ("batch", 4), TensorKind.INPUT)
    g.tensor("w", (4, 8), TensorKind.WEIGHT)
    g.tensor("out", ("batch", 8), TensorKind.OUTPUT)
    g.add_node("mm", OpType.GEMM, inputs=("in", "w"), outputs=("out",),
               m=("batch",), n=n_attr, k=k_attr)
    return g


def codes(diags):
    return sorted(d.code for d in diags)


class TestShapeChecks:
    def test_clean_graph_is_clean(self):
        assert check_graph(small_gemm_graph()) == []

    def test_swapped_nk_trips_graph101(self):
        # n=4, k=8 prices the same FLOPs but disagrees with operand A and
        # the output (B's element count k*n is symmetric under the swap).
        diags = check_graph(small_gemm_graph(n_attr=4, k_attr=8))
        assert codes(diags) == ["GRAPH101", "GRAPH101"]
        assert all(d.location.node == "mm" for d in diags)

    def test_elementwise_nelems_mismatch(self):
        g = ComputationGraph("ew")
        g.tensor("a", ("batch", 8), TensorKind.INPUT)
        g.tensor("b", ("batch", 8), TensorKind.OUTPUT)
        g.add_node("gelu", OpType.ELEMENTWISE, inputs=("a",), outputs=("b",),
                   nelems=("batch", 16), reads=1, writes=1, flops_per_elem=1)
        assert codes(check_graph(g)) == ["GRAPH101", "GRAPH101"]

    def test_transpose_may_gather_from_larger_input(self):
        # A last-token gather reads [batch, seq, h] but writes [batch, h].
        g = ComputationGraph("gather")
        g.tensor("seq_out", ("batch", "seq", 8), TensorKind.INPUT)
        g.tensor("last", ("batch", 8), TensorKind.OUTPUT)
        g.add_node("gather", OpType.TRANSPOSE, inputs=("seq_out",),
                   outputs=("last",), nelems=("batch", 8))
        assert check_graph(g) == []

    def test_softmax_row_mismatch(self):
        g = ComputationGraph("sm")
        g.tensor("scores", ("batch", 2, 16), TensorKind.INPUT)
        g.tensor("probs", ("batch", 2, 16), TensorKind.OUTPUT)
        g.add_node("softmax", OpType.SOFTMAX, inputs=("scores",),
                   outputs=("probs",), rows=("batch", 2), row_len=8)
        assert codes(check_graph(g)) == ["GRAPH101", "GRAPH101"]

    def test_dtype_mismatch_trips_graph102(self):
        g = small_gemm_graph()
        g.tensor("half", ("batch", 8), TensorKind.OUTPUT, dtype_bytes=2)
        g.add_node("copy", OpType.ELEMENTWISE, inputs=("out",),
                   outputs=("half",), nelems=("batch", 8),
                   reads=1, writes=1, flops_per_elem=0)
        assert "GRAPH102" in codes(check_graph(g))

    def test_dangling_tensor_trips_graph103(self):
        g = small_gemm_graph()
        g.tensor("orphan", (4, 4), TensorKind.WEIGHT)
        diags = [d for d in check_graph(g) if d.code == "GRAPH103"]
        assert len(diags) == 1 and diags[0].location.node == "orphan"

    def test_dead_node_trips_graph104(self):
        g = small_gemm_graph()
        g.tensor("scratch", ("batch", 8))  # INTERMEDIATE, never consumed
        g.add_node("wasted", OpType.ELEMENTWISE, inputs=("out",),
                   outputs=("scratch",), nelems=("batch", 8),
                   reads=1, writes=1, flops_per_elem=1)
        diags = [d for d in check_graph(g) if d.code == "GRAPH104"]
        assert len(diags) == 1 and diags[0].location.node == "wasted"

    def test_structural_error_trips_graph105(self):
        g = small_gemm_graph()
        # Consume an INTERMEDIATE that nothing produces: validate() fails.
        g.tensor("ghost", ("batch", 8))
        g.tensor("out2", ("batch", 8), TensorKind.OUTPUT)
        g.add_node("use", OpType.ELEMENTWISE, inputs=("ghost",),
                   outputs=("out2",), nelems=("batch", 8), reads=1,
                   writes=1, flops_per_elem=1)
        assert codes(check_graph(g)) == ["GRAPH105"]


class TestBuiltinBuilders:
    def test_all_builders_clean(self):
        cases = [
            (build_encoder_graph(tiny_bert()), {"batch": 2, "seq": 16}),
            (build_prefill_graph(tiny_gpt()), {"batch": 2, "seq": 16}),
            (build_decode_step_graph(tiny_gpt()), {"batch": 2, "past": 8}),
            (build_decoder_step_graph(seq2seq_decoder()),
             {"beam": 2, "tgt_pos": 4, "src_len": 6}),
        ]
        for graph, bindings in cases:
            assert check_graph(graph, bindings) == [], graph.name
            assert check_graph(fuse_graph(graph), bindings) == [], graph.name


class TestFusionLegality:
    def test_builders_fusion_is_io_equivalent(self):
        for graph in (build_encoder_graph(tiny_bert()),
                      build_decode_step_graph(tiny_gpt())):
            assert fusion_invariant_holds(graph)
            assert check_fusion(graph) == []

    def test_lost_output_trips_graph110(self):
        graph = build_encoder_graph(tiny_bert())
        fused = fuse_graph(graph)
        victim = next(n for n, s in fused.tensors.items()
                      if s.kind is TensorKind.OUTPUT)
        fused.tensors[victim] = replace(fused.tensors[victim],
                                        kind=TensorKind.INTERMEDIATE)
        found = codes(check_fusion(graph, fused=fused))
        assert "GRAPH110" in found

    def test_dropped_op_trips_graph110(self):
        graph = build_encoder_graph(tiny_bert())
        fused = fuse_graph(graph)
        fused.nodes.pop()
        found = codes(check_fusion(graph, fused=fused))
        assert "GRAPH110" in found

    def test_fused_barrier_trips_graph112(self):
        graph = small_gemm_graph()
        fused = ComputationGraph(graph.name + ".fused")
        for spec in graph.tensors.values():
            fused.add_tensor(spec)
        fused.add_node(
            "fused0", OpType.FUSED, inputs=("in", "w"), outputs=("out",),
            fused_ops=[{"name": "mm", "op_type": OpType.GEMM.value}],
            eliminated_tensors=[],
        )
        assert "GRAPH112" in codes(check_fusion(graph, fused=fused))

    def test_escaping_eliminated_tensor_trips_graph111(self):
        graph = small_gemm_graph()
        fused = ComputationGraph(graph.name + ".fused")
        for spec in graph.tensors.values():
            fused.add_tensor(spec)
        fused.add_node(
            "fused0", OpType.FUSED, inputs=("in", "w"), outputs=("out",),
            fused_ops=[{"name": "mm", "op_type": OpType.ELEMENTWISE.value}],
            eliminated_tensors=["out"],  # OUTPUT kind: escapes the region
        )
        assert "GRAPH111" in codes(check_fusion(graph, fused=fused))
