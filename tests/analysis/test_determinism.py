"""Determinism linter: RNG/wall-clock/set-order rules and pragmas."""

import textwrap

from repro.analysis import lint_paths, lint_source, parse_pragmas
from repro.analysis.check import default_lint_root
from repro.analysis.diagnostics import Severity


def lint(code: str):
    return lint_source(textwrap.dedent(code), file="snippet.py")


def codes(diags):
    return sorted(d.code for d in diags)


class TestUnseededRng:
    def test_global_random_module_flagged(self):
        diags = lint("""
            import random
            x = random.random()
            y = random.randint(0, 3)
        """)
        assert codes(diags) == ["DET401", "DET401"]

    def test_seeded_random_instance_ok(self):
        assert lint("""
            import random
            rng = random.Random(42)
            x = rng.random()
        """) == []

    def test_unseeded_random_instance_flagged(self):
        assert codes(lint("""
            import random
            rng = random.Random()
        """)) == ["DET401"]

    def test_numpy_global_generator_flagged(self):
        diags = lint("""
            import numpy as np
            x = np.random.rand(3)
            np.random.shuffle(x)
        """)
        assert codes(diags) == ["DET401", "DET401"]

    def test_default_rng_needs_seed(self):
        diags = lint("""
            import numpy as np
            good = np.random.default_rng(0)
            bad = np.random.default_rng()
        """)
        assert codes(diags) == ["DET401"]
        assert diags[0].location.line == 4

    def test_from_import_tracked(self):
        assert codes(lint("""
            from random import choice
            x = choice([1, 2])
        """)) == ["DET401"]


class TestWallClock:
    def test_time_module_flagged(self):
        diags = lint("""
            import time
            a = time.time()
            b = time.perf_counter()
            c = time.monotonic_ns()
        """)
        assert codes(diags) == ["DET402", "DET402", "DET402"]

    def test_datetime_now_flagged(self):
        assert codes(lint("""
            from datetime import datetime
            stamp = datetime.now()
        """)) == ["DET402"]

    def test_sleep_is_fine(self):
        assert lint("""
            import time
            time.sleep(0.1)
        """) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        diags = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert codes(diags) == ["DET403"]
        assert diags[0].severity is Severity.WARNING

    def test_comprehension_over_set_call_flagged(self):
        assert codes(lint("""
            out = [x for x in set([3, 1])]
        """)) == ["DET403"]

    def test_list_of_set_flagged(self):
        assert codes(lint("""
            names = list({"b", "a"})
        """)) == ["DET403"]

    def test_sorted_wrapping_ok(self):
        assert lint("""
            for x in sorted({1, 2, 3}):
                print(x)
            names = sorted(set([3, 1]))
        """) == []

    def test_plain_variable_not_flagged(self):
        # Purely syntactic rule: no type inference on variables.
        assert lint("""
            items = build()
            for x in items:
                print(x)
        """) == []


class TestPragmas:
    def test_parse_pragmas(self):
        pragmas = parse_pragmas(
            "a = 1  # repro: allow(DET402)\n"
            "b = 2\n"
            "c = 3  # repro: allow(DET401, DET403) because reasons\n"
        )
        assert pragmas == {1: {"DET402"}, 3: {"DET401", "DET403"}}

    def test_same_line_pragma_suppresses(self):
        assert lint("""
            import time
            t = time.time()  # repro: allow(DET402)
        """) == []

    def test_star_pragma_suppresses_everything(self):
        assert lint("""
            import time, random
            t = time.time() + random.random()  # repro: allow(*)
        """) == []

    def test_pragma_for_other_code_does_not_suppress(self):
        assert codes(lint("""
            import time
            t = time.time()  # repro: allow(DET401)
        """)) == ["DET402"]

    def test_unknown_code_in_pragma_is_det404(self):
        diags = lint("""
            x = 1  # repro: allow(DET999)
        """)
        assert codes(diags) == ["DET404"]


class TestFiles:
    def test_syntax_error_is_det400(self):
        diags = lint_source("def broken(:\n", file="bad.py")
        assert codes(diags) == ["DET400"]

    def test_repro_source_tree_lints_clean(self):
        # Satellite guarantee: the shipped tree has a clean lint baseline
        # (every legitimate wall-clock use carries an allow pragma).
        diags = lint_paths(default_lint_root())
        assert [d for d in diags if d.severity is Severity.ERROR] == []
