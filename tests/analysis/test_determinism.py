"""Determinism linter: RNG/wall-clock/set-order rules and pragmas."""

import textwrap

from repro.analysis import lint_paths, lint_source, parse_pragmas
from repro.analysis.check import default_lint_root, default_lint_roots
from repro.analysis.diagnostics import Severity


def lint(code: str):
    return lint_source(textwrap.dedent(code), file="snippet.py")


def codes(diags):
    return sorted(d.code for d in diags)


class TestUnseededRng:
    def test_global_random_module_flagged(self):
        diags = lint("""
            import random
            x = random.random()
            y = random.randint(0, 3)
        """)
        assert codes(diags) == ["DET401", "DET401"]

    def test_seeded_random_instance_ok(self):
        assert lint("""
            import random
            rng = random.Random(42)
            x = rng.random()
        """) == []

    def test_unseeded_random_instance_flagged(self):
        assert codes(lint("""
            import random
            rng = random.Random()
        """)) == ["DET401"]

    def test_numpy_global_generator_flagged(self):
        diags = lint("""
            import numpy as np
            x = np.random.rand(3)
            np.random.shuffle(x)
        """)
        assert codes(diags) == ["DET401", "DET401"]

    def test_default_rng_needs_seed(self):
        diags = lint("""
            import numpy as np
            good = np.random.default_rng(0)
            bad = np.random.default_rng()
        """)
        assert codes(diags) == ["DET401"]
        assert diags[0].location.line == 4

    def test_from_import_tracked(self):
        assert codes(lint("""
            from random import choice
            x = choice([1, 2])
        """)) == ["DET401"]


class TestWallClock:
    def test_time_module_flagged(self):
        diags = lint("""
            import time
            a = time.time()
            b = time.perf_counter()
            c = time.monotonic_ns()
        """)
        assert codes(diags) == ["DET402", "DET402", "DET402"]

    def test_datetime_now_flagged(self):
        assert codes(lint("""
            from datetime import datetime
            stamp = datetime.now()
        """)) == ["DET402"]

    def test_sleep_is_fine(self):
        assert lint("""
            import time
            time.sleep(0.1)
        """) == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self):
        diags = lint("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert codes(diags) == ["DET403"]
        assert diags[0].severity is Severity.WARNING

    def test_comprehension_over_set_call_flagged(self):
        assert codes(lint("""
            out = [x for x in set([3, 1])]
        """)) == ["DET403"]

    def test_list_of_set_flagged(self):
        assert codes(lint("""
            names = list({"b", "a"})
        """)) == ["DET403"]

    def test_sorted_wrapping_ok(self):
        assert lint("""
            for x in sorted({1, 2, 3}):
                print(x)
            names = sorted(set([3, 1]))
        """) == []

    def test_plain_variable_not_flagged(self):
        # Purely syntactic rule: no type inference on variables.
        assert lint("""
            items = build()
            for x in items:
                print(x)
        """) == []


class TestEngineApiMisuse:
    def test_direct_heapq_call_flagged(self):
        assert codes(lint("""
            import heapq
            heap = []
            heapq.heappush(heap, (1.0, 0))
            item = heapq.heappop(heap)
        """)) == ["DET405", "DET405"]

    def test_from_import_heapq_flagged(self):
        assert codes(lint("""
            from heapq import heappush
            heappush([], 1)
        """)) == ["DET405"]

    def test_heapq_alias_flagged(self):
        assert codes(lint("""
            import heapq as hq
            hq.heapify([])
        """)) == ["DET405"]

    def test_advance_to_call_flagged(self):
        assert codes(lint("""
            clock.advance_to(5.0)
        """)) == ["DET406"]

    def test_now_attribute_assignment_flagged(self):
        assert codes(lint("""
            clock._now = 7.5
        """)) == ["DET406"]

    def test_now_augmented_assignment_flagged(self):
        assert codes(lint("""
            self.clock._now += 0.5
        """)) == ["DET406"]

    def test_local_now_variable_ok(self):
        assert lint("""
            _now = 7.5
        """) == []

    def test_trigger_outside_ensure_trigger_warns(self):
        diags = lint("""
            def schedule_round(engine):
                engine.schedule(1.0, EventKind.TRIGGER, run_round)
        """)
        assert codes(diags) == ["DET407"]
        assert diags[0].severity is Severity.WARNING

    def test_trigger_inside_ensure_trigger_ok(self):
        assert lint("""
            def ensure_trigger(engine, at):
                engine.schedule(at, EventKind.TRIGGER, run_round)
        """) == []

    def test_trigger_in_closure_under_ensure_trigger_ok(self):
        assert lint("""
            def ensure_trigger(engine, at):
                def arm():
                    engine.schedule(at, EventKind.TRIGGER, run_round)
                arm()
        """) == []

    def test_trigger_keyword_argument_flagged(self):
        assert codes(lint("""
            def go(engine):
                engine.schedule(1.0, kind=EventKind.TRIGGER)
        """)) == ["DET407"]

    def test_other_event_kinds_ok(self):
        assert lint("""
            def go(engine):
                engine.schedule(1.0, EventKind.WAKE, cb)
                engine.schedule(2.0, EventKind.ARRIVAL, cb)
        """) == []


class TestPragmas:
    def test_parse_pragmas(self):
        pragmas = parse_pragmas(
            "a = 1  # repro: allow(DET402)\n"
            "b = 2\n"
            "c = 3  # repro: allow(DET401, DET403) because reasons\n"
        )
        assert pragmas == {1: {"DET402"}, 3: {"DET401", "DET403"}}

    def test_same_line_pragma_suppresses(self):
        assert lint("""
            import time
            t = time.time()  # repro: allow(DET402)
        """) == []

    def test_star_pragma_suppresses_everything(self):
        assert lint("""
            import time, random
            t = time.time() + random.random()  # repro: allow(*)
        """) == []

    def test_pragma_for_other_code_does_not_suppress(self):
        assert codes(lint("""
            import time
            t = time.time()  # repro: allow(DET401)
        """)) == ["DET402"]

    def test_unknown_code_in_pragma_is_det404(self):
        # The fixture pragma is assembled at runtime so linting *this*
        # test file does not see a literal unknown-code pragma.
        diags = lint("x = 1  # repro: " + "allow(DET" + "999)")
        assert codes(diags) == ["DET404"]


class TestFiles:
    def test_syntax_error_is_det400(self):
        diags = lint_source("def broken(:\n", file="bad.py")
        assert codes(diags) == ["DET400"]

    def test_repro_source_tree_lints_clean(self):
        # Satellite guarantee: the shipped tree has a clean lint baseline
        # (every legitimate wall-clock use carries an allow pragma).
        diags = lint_paths(default_lint_root())
        assert [d for d in diags if d.severity is Severity.ERROR] == []

    def test_default_roots_cover_tests_and_lint_clean(self):
        # The default sweep also lints the repo tests/ tree (engine-API
        # misuse in test fixtures carries pragmas, not exemptions).
        roots = default_lint_roots()
        assert any(root.name == "tests" for root in roots)
        for root in roots:
            diags = lint_paths(root)
            assert [d for d in diags if d.severity is Severity.ERROR] == [], \
                root
