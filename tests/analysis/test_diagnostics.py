"""Diagnostic framework: codes, severities, reports, JSON round trip."""

import json

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Location,
    Severity,
    code_title,
    default_severity,
    diag,
    report_from_dicts,
)


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            diag("NOPE999", "whatever")

    def test_empty_message_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            diag("MEM203", "")

    def test_default_severity_from_registry(self):
        assert diag("MEM203", "x").severity is Severity.ERROR
        assert diag("GRAPH104", "x").severity is Severity.WARNING
        assert diag("MEM210", "x").severity is Severity.INFO

    def test_severity_override(self):
        d = diag("MEM203", "x", severity=Severity.WARNING)
        assert d.severity is Severity.WARNING

    def test_every_code_has_severity_and_title(self):
        for code in CODES:
            assert isinstance(default_severity(code), Severity)
            assert code_title(code)

    def test_render_compiler_style(self):
        d = diag("GRAPH101", "boom", graph="bert", node="l0.gemm")
        assert d.render() == "error[GRAPH101] graph bert, node l0.gemm: boom"

    def test_location_str_variants(self):
        assert str(Location()) == "<global>"
        assert str(Location(file="a.py", line=3)) == "a.py:3"
        assert str(Location(file="a.py")) == "a.py"


class TestDiagnosticReport:
    def make(self) -> DiagnosticReport:
        report = DiagnosticReport()
        report.add(
            diag("MEM210", "info thing"),
            diag("GRAPH104", "warn thing", graph="g", node="n"),
            diag("SCHED301", "error thing", graph="s"),
        )
        report.checked["graphs"] = 2
        return report

    def test_counts_and_has_errors(self):
        report = self.make()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert report.has_errors
        assert len(report.errors) == 1
        assert not DiagnosticReport().has_errors

    def test_sorted_puts_errors_first(self):
        codes = [d.code for d in self.make().sorted()]
        assert codes == ["SCHED301", "GRAPH104", "MEM210"]

    def test_render_text_summary(self):
        text = self.make().render_text()
        assert "summary: 1 error(s), 1 warning(s), 1 info" in text
        assert "checked: graphs = 2" in text
        assert text.splitlines()[0].startswith("error[SCHED301]")

    def test_json_round_trip(self):
        report = self.make()
        payload = json.loads(report.render_json())
        assert payload["version"] == 1
        rebuilt = report_from_dicts(payload)
        assert rebuilt.counts() == report.counts()
        assert rebuilt.checked == report.checked
        assert [d.code for d in rebuilt.sorted()] == \
            [d.code for d in report.sorted()]

    def test_json_is_deterministic(self):
        assert self.make().render_json() == self.make().render_json()

    def test_merge(self):
        a, b = self.make(), DiagnosticReport()
        b.add(diag("DET401", "x"))
        b.checked["files"] = 1
        a.merge(b)
        assert a.counts()["error"] == 2
        assert a.checked == {"graphs": 2, "files": 1}

    def test_frozen_and_hashable(self):
        d = diag("MEM203", "x")
        assert d == Diagnostic(code="MEM203", message="x")
        assert hash(d) == hash(Diagnostic(code="MEM203", message="x"))
