"""Sanitizer scenarios + the ``repro check`` filter/sanitize CLI knobs."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import (
    TRACE_SCENARIOS,
    run_sanitized,
    run_scenario_trace,
    sanitize_scenarios,
)


class TestScenarios:
    @pytest.mark.parametrize("name", TRACE_SCENARIOS)
    def test_light_scenario_is_clean(self, name):
        diags, stats = run_scenario_trace(name, seed=0)
        assert diags == [], [d.message for d in diags]
        assert stats["engines"] >= 1
        assert stats["dispatches"] > 0
        assert stats["requests"] > 0
        assert stats["resolves"] >= stats["requests"]

    def test_oneshot_exercises_breaker_and_faults(self):
        # Coverage guarantee: the light sweep must keep every hook hot,
        # or a broken invariant could never be observed.
        _diags, stats = run_scenario_trace("oneshot", seed=0)
        assert stats["breaker_transitions"] > 0

    def test_continuous_exercises_the_kv_ledger(self):
        _diags, stats = run_scenario_trace("continuous", seed=0)
        assert stats["arena_events"] > 0

    def test_run_sanitized_is_deterministic(self):
        a = run_sanitized("oneshot", seed=0)
        b = run_sanitized("oneshot", seed=0)
        assert a.render_json() == b.render_json()
        assert a.checked["sanitize_scenario"] == "oneshot"
        assert a.checked["trace_dispatches"] > 0

    def test_scenario_names_are_sorted_and_complete(self):
        names = sanitize_scenarios()
        assert list(names) == sorted(names)
        for expected in ("oneshot", "ebird", "cluster", "continuous",
                         "smoke", "blackout", "storm",
                         "gen-blackout", "gen-storm"):
            assert expected in names

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown sanitize scenario"):
            run_scenario_trace("nope")


class TestCliKnobs:
    def bug_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        return str(bad)

    def test_families_flag_runs_the_trace_sweep(self, tmp_path, capsys):
        out_file = tmp_path / "check.json"
        assert main(["check", "--families", "engine,lifecycle",
                     "--format", "json", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["error"] == 0
        assert payload["checked"]["trace_scenarios"] == len(TRACE_SCENARIOS)

    def test_select_keeps_only_matching_codes(self, tmp_path, capsys):
        rc = main(["check", "--family", "determinism",
                   "--lint-root", self.bug_file(tmp_path),
                   "--select", "MEM"])
        assert rc == 0  # the DET402 error is filtered out
        assert "DET402" not in capsys.readouterr().out

    def test_select_prefix_retains_the_error(self, tmp_path, capsys):
        rc = main(["check", "--family", "determinism",
                   "--lint-root", self.bug_file(tmp_path),
                   "--select", "DET"])
        assert rc == 1
        assert "DET402" in capsys.readouterr().out

    def test_ignore_drops_exact_code(self, tmp_path, capsys):
        rc = main(["check", "--family", "determinism",
                   "--lint-root", self.bug_file(tmp_path),
                   "--ignore", "DET402"])
        assert rc == 0

    def test_max_warnings_gates_the_exit_code(self, tmp_path, capsys):
        warn = tmp_path / "warn.py"
        # Assembled at runtime so linting this test file never sees a
        # literal unknown-code pragma.
        warn.write_text("x = 1  # repro: " + "allow(DET" + "999)\n")
        root = str(warn)
        assert main(["check", "--family", "determinism",
                     "--lint-root", root]) == 0
        assert main(["check", "--family", "determinism",
                     "--lint-root", root, "--max-warnings", "0"]) == 1
        assert main(["check", "--family", "determinism",
                     "--lint-root", root, "--max-warnings", "1"]) == 0

    def test_sanitize_cli_runs_a_scenario(self, tmp_path, capsys):
        out_file = tmp_path / "sanitize.json"
        assert main(["check", "--sanitize", "oneshot",
                     "--format", "json", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["checked"]["sanitize_scenario"] == "oneshot"
        assert payload["summary"]["error"] == 0

    def test_sanitize_unknown_scenario_exits_2(self, capsys):
        assert main(["check", "--sanitize", "nope"]) == 2
        assert "unknown sanitize scenario" in capsys.readouterr().err

    def test_unknown_families_value_exits_2(self, capsys):
        assert main(["check", "--families", "engine,nope"]) == 2
        assert "unknown checker families" in capsys.readouterr().err
