"""End-to-end ``python -m repro check``: clean tree, seeded bugs, golden JSON."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis import (
    DiagnosticReport,
    check_plan,
    check_schedule,
    lint_source,
    run_check,
)
from repro.gpusim import StreamSchedule
from repro.memory import AllocationPlan, Placement, TensorUsageRecord

GOLDEN = Path(__file__).parent / "golden_report.json"


def seeded_bug_report() -> DiagnosticReport:
    """A fixed set of planted bugs, one per checker family's core rule.

    Used both by the golden-file test and (regenerated) by
    ``python -m tests.analysis.test_check_cli`` if the format evolves.
    """
    report = DiagnosticReport()
    # Memory: two live tensors share bytes.
    plan = AllocationPlan(
        placements={"x": Placement(0, 0), "y": Placement(0, 16)},
        chunk_sizes={0: 64},
    )
    records = [TensorUsageRecord("x", 0, 2, 32), TensorUsageRecord("y", 1, 3, 32)]
    report.extend(check_plan(plan, records, graph="fixture"))
    # Schedule: cross-stream RAW with no sync.
    schedule = StreamSchedule("fixture")
    schedule.launch("producer", "s0", writes=("buf",))
    schedule.launch("consumer", "s1", reads=("buf",))
    report.extend(check_schedule(schedule))
    # Determinism: wall clock + unseeded RNG in one snippet.
    report.extend(lint_source(
        "import time\nimport random\n"
        "t = time.time()\nr = random.random()\n",
        file="fixture.py",
    ))
    report.checked["fixture"] = True
    return report


class TestRunCheck:
    def test_clean_tree_has_no_errors(self):
        report = run_check()
        assert not report.has_errors, report.render_text()
        # Coverage bookkeeping is part of the contract.
        for key in ("graphs", "fusions_verified", "plans", "schedule_ops",
                    "linted_files"):
            assert report.checked[key] > 0, key

    def test_json_output_is_deterministic(self):
        families = ("graph", "schedule")
        assert run_check(families).render_json() == \
            run_check(families).render_json()

    def test_unknown_family_rejected(self):
        try:
            run_check(families=("graph", "nope"))
        except ValueError as exc:
            assert "unknown checker families" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestCli:
    def test_text_mode_exits_zero_on_clean_tree(self, capsys):
        assert main(["check", "--family", "schedule"]) == 0
        out = capsys.readouterr().out
        assert "summary: 0 error(s)" in out

    def test_json_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "check.json"
        assert main(["check", "--family", "schedule", "--format", "json",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["version"] == 1
        assert payload["summary"]["error"] == 0
        assert payload["checked"]["schedule_ops"] > 0

    def test_seeded_bug_fails_the_cli(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        rc = main(["check", "--family", "determinism",
                   "--lint-root", str(bad)])
        assert rc == 1
        assert "DET402" in capsys.readouterr().out

    def test_pragma_makes_seeded_bug_pass(self, tmp_path):
        ok = tmp_path / "ok.py"
        ok.write_text(
            "import time\nstamp = time.time()  # repro: allow(DET402)\n"
        )
        assert main(["check", "--family", "determinism",
                     "--lint-root", str(ok)]) == 0


class TestGolden:
    def test_seeded_bugs_match_golden_json(self):
        report = seeded_bug_report()
        assert report.has_errors
        assert json.loads(report.render_json()) == \
            json.loads(GOLDEN.read_text())

    def test_golden_covers_every_family(self):
        payload = json.loads(GOLDEN.read_text())
        prefixes = {d["code"][:3] for d in payload["diagnostics"]}
        assert prefixes == {"MEM", "SCH", "DET"}


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.write_text(seeded_bug_report().render_json() + "\n")
    print(f"wrote {GOLDEN}")
