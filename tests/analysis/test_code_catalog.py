"""Docs <-> registry drift: the docs/API.md code catalog is generated.

``render_code_catalog`` is the single source of truth for the table
between the CODE CATALOG markers in docs/API.md; regenerate it with::

    python -m tests.analysis.test_code_catalog
"""

import re
from pathlib import Path

import pytest

from repro.analysis import (
    CATALOG_FAMILIES,
    CODES,
    catalog_family,
    render_code_catalog,
)

API_MD = Path(__file__).resolve().parents[2] / "docs" / "API.md"
BLOCK_RE = re.compile(
    r"<!-- BEGIN CODE CATALOG[^\n]*-->\n(.*?)\n<!-- END CODE CATALOG -->",
    re.S,
)


def docs_catalog() -> str:
    match = BLOCK_RE.search(API_MD.read_text(encoding="utf-8"))
    assert match, "CODE CATALOG markers missing from docs/API.md"
    return match.group(1)


class TestCatalogDrift:
    def test_docs_table_matches_the_registry(self):
        assert docs_catalog() == render_code_catalog(), (
            "docs/API.md code catalog is stale; regenerate with "
            "python -m tests.analysis.test_code_catalog"
        )

    def test_every_registered_code_is_documented(self):
        rendered = docs_catalog()
        for code in CODES:
            assert f"`{code}`" in rendered, code

    def test_every_documented_code_is_registered(self):
        mentioned = set(re.findall(r"\b(?:GRAPH|MEM|SCHED|DET|ENG|LIFE)\d{3}\b",
                                   docs_catalog()))
        assert mentioned == set(CODES)


class TestCatalogFamilies:
    def test_every_code_maps_to_exactly_one_family(self):
        names = [name for name, _lo, _hi in CATALOG_FAMILIES]
        for code in CODES:
            assert catalog_family(code) in names, code

    def test_catalog_renders_one_row_per_family(self):
        rendered = render_code_catalog()
        for name, _lo, _hi in CATALOG_FAMILIES:
            assert f"| {name} |" in rendered, name

    def test_out_of_range_code_rejected(self):
        with pytest.raises(ValueError):
            catalog_family("ZZZ999")


if __name__ == "__main__":  # regenerate the docs/API.md catalog block
    text = API_MD.read_text(encoding="utf-8")
    updated = BLOCK_RE.sub(
        lambda m: m.group(0).replace(m.group(1), render_code_catalog()),
        text,
        count=1,
    )
    API_MD.write_text(updated, encoding="utf-8")
    print(f"regenerated catalog block in {API_MD}")
