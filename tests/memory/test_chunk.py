"""Chunk gap search — paper Algorithm 2."""

import pytest

from repro.memory import Chunk, TensorUsageRecord, new_chunk_size
from repro.memory.chunk import DEFAULT_CHUNK_SIZE, K_SCALE


def rec(name, first, last, size):
    return TensorUsageRecord(name, first, last, size)


class TestFindGap:
    def test_empty_chunk_places_at_zero(self):
        chunk = Chunk(0, 1000)
        assert chunk.find_gap(rec("t", 0, 1, 100)) == 0

    def test_too_large_tensor_invalid(self):
        chunk = Chunk(0, 1000)
        assert chunk.find_gap(rec("t", 0, 1, 1001)) is None

    def test_exact_fit_accepted(self):
        chunk = Chunk(0, 1000)
        assert chunk.find_gap(rec("t", 0, 1, 1000)) == 0

    def test_placement_after_overlapping_resident(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 5, 300), 0)
        assert chunk.find_gap(rec("b", 2, 6, 300)) == 300

    def test_disjoint_lifetime_may_alias(self):
        """Tensors that never coexist can share the same bytes."""
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 2, 800), 0)
        assert chunk.find_gap(rec("b", 3, 5, 800)) == 0

    def test_best_fit_prefers_smallest_gap(self):
        """Residents at [0,100) and [400,500) and [550,1000): gaps of 300
        and 50; a 50-byte tensor takes the 50-byte gap."""
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 9, 100), 0)
        chunk.assign(rec("b", 0, 9, 100), 400)
        chunk.assign(rec("c", 0, 9, 450), 550)
        assert chunk.find_gap(rec("t", 0, 9, 50)) == 500

    def test_tail_used_when_no_interior_gap(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 9, 600), 0)
        assert chunk.find_gap(rec("t", 0, 9, 300)) == 600

    def test_interior_gap_too_small_falls_to_tail(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 9, 100), 0)
        chunk.assign(rec("b", 0, 9, 100), 150)  # 50-byte interior gap
        assert chunk.find_gap(rec("t", 0, 9, 80)) == 250

    def test_full_chunk_with_overlap_invalid(self):
        chunk = Chunk(0, 300)
        chunk.assign(rec("a", 0, 9, 300), 0)
        assert chunk.find_gap(rec("t", 0, 9, 10)) is None


class TestAssign:
    def test_out_of_bounds_rejected(self):
        chunk = Chunk(0, 100)
        with pytest.raises(ValueError):
            chunk.assign(rec("t", 0, 1, 60), 50)

    def test_assignments_stay_sorted(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("b", 0, 1, 10), 500)
        chunk.assign(rec("a", 2, 3, 10), 100)
        offsets = [a.offset for a in chunk.assignments]
        assert offsets == sorted(offsets)

    def test_used_bytes_high_water(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 1, 100), 300)
        assert chunk.used_bytes == 400

    def test_clear(self):
        chunk = Chunk(0, 1000)
        chunk.assign(rec("a", 0, 1, 100), 0)
        chunk.clear()
        assert chunk.is_unused

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Chunk(0, 0)


class TestNewChunkSize:
    def test_small_tensor_gets_default(self):
        assert new_chunk_size(1024) == DEFAULT_CHUNK_SIZE

    def test_large_tensor_gets_scaled(self):
        big = 10 * DEFAULT_CHUNK_SIZE
        assert new_chunk_size(big) == int(big * K_SCALE)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            new_chunk_size(0)
