"""Property test: Algorithm 2's best-fit gap search vs exhaustive search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Chunk, TensorUsageRecord


@st.composite
def chunk_state(draw, chunk_size=1000, max_residents=6):
    """A chunk with randomly placed, mutually non-conflicting residents,
    plus a target record to place."""
    chunk = Chunk(0, chunk_size)
    n = draw(st.integers(0, max_residents))
    for i in range(n):
        first = draw(st.integers(0, 9))
        last = draw(st.integers(first, 9))
        size = draw(st.integers(1, 250))
        record = TensorUsageRecord(f"r{i}", first, last, size)
        offset = chunk.find_gap(record)
        if offset is not None:
            chunk.assign(record, offset)
    t_first = draw(st.integers(0, 9))
    t_last = draw(st.integers(t_first, 9))
    t_size = draw(st.integers(1, 400))
    target = TensorUsageRecord("target", t_first, t_last, t_size)
    return chunk, target


def offset_is_feasible(chunk: Chunk, record: TensorUsageRecord, offset: int) -> bool:
    """Ground truth: in-bounds and byte-disjoint from every live resident."""
    if offset < 0 or offset + record.size > chunk.size:
        return False
    for assignment in chunk.assignments:
        other = assignment.record
        if not record.overlaps(other):
            continue
        if offset < assignment.end and assignment.offset < offset + record.size:
            return False
    return True


class TestFindGapProperties:
    @given(chunk_state())
    @settings(max_examples=200, deadline=None)
    def test_returned_offset_is_feasible(self, state):
        chunk, target = state
        offset = chunk.find_gap(target)
        if offset is not None:
            assert offset_is_feasible(chunk, target, offset)

    @given(chunk_state())
    @settings(max_examples=200, deadline=None)
    def test_none_only_when_no_offset_feasible_at_scanned_points(self, state):
        """If find_gap declines, exhaustive byte-level search must confirm
        no feasible offset exists anywhere in the chunk."""
        chunk, target = state
        if chunk.find_gap(target) is not None:
            return
        assert not any(
            offset_is_feasible(chunk, target, offset)
            for offset in range(0, chunk.size - target.size + 1)
        )

    @given(chunk_state())
    @settings(max_examples=200, deadline=None)
    def test_assigning_at_returned_offset_keeps_chunk_consistent(self, state):
        chunk, target = state
        offset = chunk.find_gap(target)
        if offset is None:
            return
        chunk.assign(target, offset)
        # Every pair of time-overlapping residents stays byte-disjoint.
        for i, a in enumerate(chunk.assignments):
            for b in chunk.assignments[i + 1:]:
                if not a.record.overlaps(b.record):
                    continue
                assert a.end <= b.offset or b.end <= a.offset, (
                    a.record.name, b.record.name
                )
