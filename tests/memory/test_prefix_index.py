"""Radix prefix index + copy-on-write page sharing on the KV arena."""

import pytest

from repro.memory import (
    KVArenaError,
    KVCacheArena,
    RadixPrefixIndex,
)

BPT = 64   # bytes per token (arbitrary, small)
P = 8      # page tokens


def arena(capacity_tokens=256, watermark=0.9, **kw):
    return KVCacheArena(capacity_bytes=capacity_tokens * BPT,
                        bytes_per_token=BPT, page_tokens=P,
                        high_watermark=watermark, **kw)


def ids(n, base=0):
    return tuple(range(base, base + n))


class TestCowFork:
    def test_fork_shares_aligned_pages_and_copies_tail(self):
        a = arena()
        a.admit(0, prompt_tokens=20, max_total_tokens=40)  # 3 pages, tail partial
        parent = a.region_of(0)
        assert a.fork(0, 1, max_total_tokens=40)
        child = a.region_of(1)
        # Two full pages shared by refcount, the partial third copied.
        assert child.pages[:2] == parent.pages[:2]
        assert child.pages[2] is not parent.pages[2]
        assert all(p.refcount == 2 for p in parent.pages[:2])
        assert parent.pages[2].refcount == 1
        assert child.shared_tokens == 2 * P
        assert a.verify() == []

    def test_shared_pages_charged_once(self):
        a = arena(capacity_tokens=64, watermark=1.0)
        a.admit(0, prompt_tokens=44, max_total_tokens=48)
        # A full copy (48 tokens) would not fit in the 16 free tokens,
        # but the CoW fork's private footprint is just the 8-token tail.
        assert a.used_bytes == 48 * BPT
        assert a.fork(0, 1, max_total_tokens=48)
        assert a.used_bytes == (48 + P) * BPT
        assert a.verify() == []

    def test_fork_denied_when_private_tail_does_not_fit(self):
        a = arena(capacity_tokens=48, watermark=1.0)
        a.admit(0, prompt_tokens=40, max_total_tokens=40)
        # Tail page (8) fits, but a 16-token growth budget does not.
        assert not a.fork(0, 1, max_total_tokens=40 + 16)
        assert a.denials == 1

    def test_release_frees_only_refcount_zero_pages(self):
        a = arena()
        a.admit(0, prompt_tokens=16, max_total_tokens=32)
        a.fork(0, 1, max_total_tokens=32)
        a.release(0)
        # The child still references both shared pages: nothing freed.
        assert a.used_bytes == 16 * BPT
        assert all(p.refcount == 1 for p in a.region_of(1).pages)
        a.release(1)
        assert a.used_bytes == 0
        assert a.verify(live_req_ids=[]) == []

    def test_append_after_fork_never_touches_shared_pages(self):
        a = arena()
        a.admit(0, prompt_tokens=16, max_total_tokens=48)
        a.fork(0, 1, max_total_tokens=48)
        shared = list(a.region_of(0).pages)
        a.append(1, P)  # child grows into a fresh private page
        assert a.region_of(1).pages[:2] == shared
        assert a.region_of(1).pages[-1].refcount == 1
        assert a.verify() == []

    def test_fork_validation(self):
        a = arena()
        a.admit(0, prompt_tokens=16, max_total_tokens=32)
        with pytest.raises(KVArenaError, match="already has"):
            a.fork(0, 0, max_total_tokens=32)
        with pytest.raises(ValueError, match="fork budget"):
            a.fork(0, 1, max_total_tokens=8)


class TestRadixIndex:
    def publish(self, a, index, req_id, n_tokens, base=0):
        a.admit(req_id, prompt_tokens=n_tokens, max_total_tokens=n_tokens)
        pages = a.region_of(req_id).pages[:n_tokens // P]
        index.insert(ids(n_tokens, base), pages)
        return pages

    def test_lookup_miss_on_empty_index(self):
        a = arena()
        index = RadixPrefixIndex(a)
        assert index.lookup(ids(24)) == (0, [])
        assert index.stats()["lookups"] == 1
        assert index.stats()["hits"] == 0

    def test_insert_lookup_roundtrip(self):
        a = arena()
        index = RadixPrefixIndex(a)
        pages = self.publish(a, index, 0, 24)
        matched, found = index.lookup(ids(24) + (99,))
        assert matched == 24 and found == pages
        # Pages gained one index reference each.
        assert all(p.refcount == 2 for p in pages)

    def test_never_matches_the_whole_prompt(self):
        # At least one token is always left for prefill: a prompt equal
        # to the cached prefix matches one page less.
        a = arena()
        index = RadixPrefixIndex(a)
        pages = self.publish(a, index, 0, 16)
        matched, found = index.lookup(ids(16))
        assert matched == P and found == pages[:1]

    def test_diverging_suffix_matches_common_prefix_only(self):
        a = arena()
        index = RadixPrefixIndex(a)
        pages = self.publish(a, index, 0, 24)
        other = ids(16) + ids(8, base=1000) + (7,)
        matched, found = index.lookup(other)
        assert matched == 16 and found == pages[:2]

    def test_first_publisher_wins(self):
        a = arena()
        index = RadixPrefixIndex(a)
        pages = self.publish(a, index, 0, 16)
        a.admit(1, prompt_tokens=16, max_total_tokens=16)
        rival = a.region_of(1).pages
        assert index.insert(ids(16), rival[:2]) == 0  # nothing new indexed
        assert index.lookup(ids(17))[1] == pages  # original pages stay
        assert all(p.refcount == 1 for p in rival)

    def test_insert_validates_id_coverage(self):
        a = arena()
        a.admit(0, prompt_tokens=16, max_total_tokens=16)
        index = RadixPrefixIndex(a)
        with pytest.raises(KVArenaError, match="token ids"):
            index.insert(ids(8), a.region_of(0).pages)

    def test_release_keeps_indexed_pages_resident(self):
        a = arena()
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 24)
        a.release(0)
        assert a.used_bytes == 24 * BPT
        assert a.reclaimable_bytes == 24 * BPT
        assert a.committed_bytes == 0
        matched, _ = index.lookup(ids(25))
        assert matched == 24
        assert a.verify(live_req_ids=[]) == []

    def test_pinned_pages_are_not_evictable(self):
        a = arena()
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 24)  # region 0 still live: pinned
        assert index.reclaim(1000) == 0
        a.release(0)
        assert index.reclaim(1000) == 24
        assert len(index) == 0 and a.used_bytes == 0

    def test_reclaim_evicts_lru_leaves_first(self):
        a = arena()
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 16)            # path A: 2 nodes
        self.publish(a, index, 1, 16, base=500)  # path B: 2 nodes
        a.release(0)
        a.release(1)
        index.lookup(ids(17))  # touch path A: B's leaf becomes LRU
        assert index.reclaim(P) == P
        assert index.lookup(ids(17))[0] == 16        # A intact
        assert index.lookup(ids(17, base=500))[0] == P  # B lost its leaf
        assert a.verify(live_req_ids=[]) == []

    def test_reclaim_cascades_through_exposed_parents(self):
        a = arena()
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 32)
        a.release(0)
        # Interior nodes become leaves as their children evict: one sweep
        # drains the whole 4-page path.
        assert index.reclaim(32) == 32
        assert len(index) == 0 and a.used_bytes == 0

    def test_allocation_pressure_triggers_reclaim(self):
        a = arena(capacity_tokens=32, watermark=1.0)
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 24)
        a.release(0)  # 24 tokens resident, all index-only
        # A 16-token admit exceeds 32-token residency: the allocator must
        # reclaim cached pages rather than deny (gates exclude them).
        assert a.admit(1, prompt_tokens=16, max_total_tokens=16)
        assert a.pages_reclaimed >= 1
        assert a.used_bytes <= 32 * BPT
        assert a.verify() == []

    def test_clear_drops_all_unpinned(self):
        a = arena()
        index = RadixPrefixIndex(a)
        self.publish(a, index, 0, 16)
        a.release(0)
        assert index.clear() == 16
        assert index.stats()["pages_evicted"] == 2


class TestPreemptRestoreSharedPages:
    def setup_shared(self):
        a = arena()
        index = RadixPrefixIndex(a)
        a.admit(0, prompt_tokens=24, max_total_tokens=24)
        pages = a.region_of(0).pages[:2]
        index.insert(ids(24), pages)
        a.release(0)
        return a, index, pages

    def test_preempt_keeps_indexed_prefix_resident(self):
        a, index, pages = self.setup_shared()
        assert a.admit(1, prompt_tokens=24, max_total_tokens=40,
                       shared_pages=pages)
        a.preempt(1)
        # Private pages are gone; the indexed prefix survives.
        assert a.used_bytes == 16 * BPT
        assert all(p.refcount == 1 for p in pages)
        assert index.lookup(ids(24) + (5,))[0] == 16
        assert a.verify(live_req_ids=[]) == []

    def test_restore_reattaches_still_cached_prefix(self):
        a, index, pages = self.setup_shared()
        assert a.admit(1, prompt_tokens=24, max_total_tokens=40,
                       shared_pages=pages)
        a.append(1, 8)  # generated a bit before eviction
        a.preempt(1)
        matched, found = index.lookup(ids(24))
        assert (matched, found) == (16, list(pages))
        assert a.restore(1, tokens=32, max_total_tokens=40,
                         shared_pages=found)
        region = a.region_of(1)
        assert region.pages[:2] == list(pages)
        assert region.shared_tokens == 16
        assert all(p.refcount == 2 for p in pages)
        assert a.verify() == []
        a.release(1)
        assert a.verify(live_req_ids=[]) == []

    def test_preempt_with_live_sibling_sharing_pages(self):
        a, index, pages = self.setup_shared()
        assert a.admit(1, prompt_tokens=24, max_total_tokens=32,
                       shared_pages=pages)
        assert a.admit(2, prompt_tokens=24, max_total_tokens=32,
                       shared_pages=pages)
        assert all(p.refcount == 3 for p in pages)  # index + two regions
        a.preempt(1)
        assert all(p.refcount == 2 for p in pages)
        # The sibling's region is untouched and the arena stays coherent.
        assert a.region_of(2).pages[:2] == list(pages)
        assert a.verify() == []

    def test_restore_without_cache_after_eviction(self):
        a, index, pages = self.setup_shared()
        assert a.admit(1, prompt_tokens=24, max_total_tokens=40,
                       shared_pages=pages)
        a.preempt(1)
        index.clear()  # cached prefix evicted while preempted
        assert a.used_bytes == 0
        assert a.restore(1, tokens=24, max_total_tokens=40)
        assert a.region_of(1).shared_tokens == 0
        assert a.verify() == []

    def test_stats_surface_sharing_counters(self):
        a, index, pages = self.setup_shared()
        a.admit(1, prompt_tokens=24, max_total_tokens=32, shared_pages=pages)
        a.fork(1, 2, max_total_tokens=32)
        stats = a.stats()
        assert stats["forks"] == 1
        assert stats["shared_tokens_attached"] >= 16
        assert stats["pages_resident"] == len(a._pages)

    def test_shared_page_from_foreign_arena_rejected(self):
        a, index, pages = self.setup_shared()
        other = arena()
        with pytest.raises(KVArenaError, match="not resident"):
            other.admit(0, prompt_tokens=24, max_total_tokens=24,
                        shared_pages=pages)
