"""The sequence-length-aware allocator — paper Algorithm 1."""

import pytest

from repro.graph import fuse_graph, tensor_usage_records
from repro.memory import (
    DEFAULT_CHUNK_SIZE,
    TensorUsageRecord,
    TurboAllocator,
    validate_plan,
)


def rec(name, first, last, size):
    return TensorUsageRecord(name, first, last, size)


class TestPlanning:
    def test_plan_is_valid(self):
        records = [rec(f"t{i}", i, i + 3, 1000 * (i + 1)) for i in range(8)]
        allocator = TurboAllocator(chunk_size=8192)
        plan = allocator.plan(records)
        validate_plan(plan, records)

    def test_disjoint_tensors_share_memory(self):
        records = [rec("a", 0, 1, 5000), rec("b", 2, 3, 5000)]
        allocator = TurboAllocator(chunk_size=8192)
        plan = allocator.plan(records)
        pa, pb = plan.placements["a"], plan.placements["b"]
        assert (pa.chunk_id, pa.offset) == (pb.chunk_id, pb.offset)

    def test_concurrent_tensors_do_not_alias(self):
        records = [rec("a", 0, 5, 3000), rec("b", 0, 5, 3000)]
        allocator = TurboAllocator(chunk_size=8192)
        plan = allocator.plan(records)
        validate_plan(plan, records)

    def test_oversized_tensor_gets_scaled_chunk(self):
        big = 10 * DEFAULT_CHUNK_SIZE
        allocator = TurboAllocator()
        plan = allocator.plan([rec("big", 0, 1, big)])
        chunk_id = plan.placements["big"].chunk_id
        assert plan.chunk_sizes[chunk_id] == int(big * 1.2)

    def test_empty_request(self):
        allocator = TurboAllocator()
        plan = allocator.plan([])
        assert plan.placements == {}


class TestChunkCaching:
    def test_second_identical_request_allocates_nothing(self):
        records = [rec(f"t{i}", i, i + 2, 4000) for i in range(6)]
        allocator = TurboAllocator(chunk_size=8192)
        allocator.process_request(records)
        second = allocator.process_request(records)
        assert second.new_bytes == 0
        assert second.stall_s == 0.0

    def test_smaller_request_reuses_chunks(self):
        big = [rec(f"t{i}", i, i + 2, 8000) for i in range(6)]
        small = [rec(f"t{i}", i, i + 2, 2000) for i in range(3)]
        allocator = TurboAllocator(chunk_size=16384)
        allocator.process_request(big)
        result = allocator.process_request(small)
        assert result.new_bytes == 0

    def test_growth_only_allocates_delta(self):
        allocator = TurboAllocator(chunk_size=4096)
        allocator.process_request([rec("a", 0, 1, 3000)])
        before = allocator.footprint_bytes
        allocator.process_request([rec("a", 0, 1, 3000), rec("b", 0, 1, 3000)])
        assert allocator.footprint_bytes == before + 4096

    def test_release_after_ttl(self):
        allocator = TurboAllocator(chunk_size=4096, release_after=2)
        allocator.process_request([rec("a", 0, 1, 4000), rec("b", 0, 1, 4000)])
        assert len(allocator.chunks) == 2
        small = [rec("a", 0, 1, 4000)]
        allocator.process_request(small)
        allocator.process_request(small)
        assert len(allocator.chunks) == 2  # within grace period
        allocator.process_request(small)
        assert len(allocator.chunks) == 1  # streak exceeded -> released

    def test_eager_release_matches_paper_algorithm(self):
        allocator = TurboAllocator(chunk_size=4096, release_after=0)
        allocator.process_request([rec("a", 0, 1, 4000), rec("b", 0, 1, 4000)])
        allocator.process_request([rec("a", 0, 1, 4000)])
        assert len(allocator.chunks) == 1

    def test_never_release(self):
        allocator = TurboAllocator(chunk_size=4096, release_after=None)
        allocator.process_request([rec("a", 0, 1, 4000), rec("b", 0, 1, 4000)])
        for _ in range(20):
            allocator.process_request([rec("a", 0, 1, 4000)])
        assert len(allocator.chunks) == 2


class TestRealModelPlans:
    @pytest.mark.parametrize("seq_len", [16, 100, 240])
    def test_bert_plans_are_valid(self, bert_graph, seq_len):
        graph = fuse_graph(bert_graph)
        records = tensor_usage_records(graph, {"batch": 1, "seq": seq_len})
        allocator = TurboAllocator()
        plan = allocator.plan(records)
        validate_plan(plan, records)

    def test_replanning_across_lengths_stays_valid(self, bert_graph):
        """The Fig. 6 scenario: consecutive requests of different lengths."""
        graph = fuse_graph(bert_graph)
        allocator = TurboAllocator()
        for seq_len in (200, 240, 120, 500, 16):
            records = tensor_usage_records(graph, {"batch": 1, "seq": seq_len})
            plan = allocator.plan(records)
            validate_plan(plan, records)

    def test_layerwise_reuse_bounds_footprint(self, bert_graph):
        """12 layers of identical shapes must reuse, not stack: footprint
        should be far below the sum of all tensor sizes."""
        graph = fuse_graph(bert_graph)
        records = tensor_usage_records(graph, {"batch": 1, "seq": 128})
        allocator = TurboAllocator()
        allocator.plan(records)
        total = sum(r.size for r in records)
        assert allocator.footprint_bytes < 0.35 * total


class TestValidationErrors:
    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            TurboAllocator(chunk_size=0)

    def test_bad_k_scale(self):
        with pytest.raises(ValueError):
            TurboAllocator(k_scale=0.5)

    def test_bad_release_after(self):
        with pytest.raises(ValueError):
            TurboAllocator(release_after=-1)
