"""Property-based tests: every allocator yields safe plans on random
workloads, and footprints respect the peak-live lower bound."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    GsocAllocator,
    TensorUsageRecord,
    TurboAllocator,
    gsoc_offsets,
    peak_live_bytes,
    validate_plan,
)


@st.composite
def usage_records(draw, max_tensors=16, max_ops=12, max_size=50_000):
    n = draw(st.integers(1, max_tensors))
    records = []
    for i in range(n):
        first = draw(st.integers(0, max_ops - 1))
        last = draw(st.integers(first, max_ops - 1))
        size = draw(st.integers(1, max_size))
        records.append(TensorUsageRecord(f"t{i}", first, last, size))
    return records


class TestTurboAllocatorProperties:
    @given(usage_records())
    @settings(max_examples=100, deadline=None)
    def test_plan_never_aliases_live_tensors(self, records):
        allocator = TurboAllocator(chunk_size=16384)
        plan = allocator.plan(records)
        validate_plan(plan, records)

    @given(usage_records())
    @settings(max_examples=60, deadline=None)
    def test_footprint_at_least_peak_live(self, records):
        allocator = TurboAllocator(chunk_size=16384)
        allocator.plan(records)
        assert allocator.footprint_bytes >= peak_live_bytes(records)

    @given(st.lists(usage_records(max_tensors=10), min_size=2, max_size=5))
    @settings(max_examples=40, deadline=None)
    def test_replanning_stream_stays_safe(self, request_stream):
        """Chunk reuse across requests must never corrupt a later plan."""
        allocator = TurboAllocator(chunk_size=16384)
        for records in request_stream:
            plan = allocator.plan(records)
            validate_plan(plan, records)

    @given(usage_records())
    @settings(max_examples=60, deadline=None)
    def test_plan_deterministic(self, records):
        a = TurboAllocator(chunk_size=16384).plan(records)
        b = TurboAllocator(chunk_size=16384).plan(records)
        assert a.placements == b.placements
        assert a.chunk_sizes == b.chunk_sizes


class TestGsocProperties:
    @given(usage_records())
    @settings(max_examples=100, deadline=None)
    def test_offsets_never_alias_live_tensors(self, records):
        allocator = GsocAllocator()
        result = allocator.process_request(records)
        validate_plan(result.plan, records)

    @given(usage_records())
    @settings(max_examples=60, deadline=None)
    def test_arena_at_least_peak_live(self, records):
        _, arena = gsoc_offsets(records)
        assert arena >= peak_live_bytes(records)

    @given(usage_records())
    @settings(max_examples=60, deadline=None)
    def test_gsoc_arena_not_larger_than_turbo_footprint_much(self, records):
        """GSOC is the near-optimal packing reference: a fresh Turbo plan
        (chunked) should be within a constant factor of it."""
        _, arena = gsoc_offsets(records)
        turbo = TurboAllocator(chunk_size=16384)
        turbo.plan(records)
        # Chunk quantization can only add bounded slack per chunk.
        assert turbo.footprint_bytes <= max(3 * arena, arena + 16384 * 2)
