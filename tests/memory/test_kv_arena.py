"""KVCacheArena: paged KV regions on the chunked allocator, admission gates."""

import pytest

from repro.memory import KVArenaError, KVCacheArena, kv_bytes_per_token
from repro.observability import MetricsRegistry

BPT = 64  # bytes per token used throughout (arbitrary, small)


def arena(capacity_tokens=256, page_tokens=8, watermark=0.9, **kw):
    return KVCacheArena(capacity_bytes=capacity_tokens * BPT,
                        bytes_per_token=BPT, page_tokens=page_tokens,
                        high_watermark=watermark, **kw)


class TestBytesPerToken:
    def test_formula(self):
        # K and V, per layer, per head, head_size wide.
        assert kv_bytes_per_token(2, 2, 8) == 2 * 2 * 2 * 8 * 4
        assert kv_bytes_per_token(2, 2, 8, dtype_bytes=2) == 2 * 2 * 2 * 8 * 2

    @pytest.mark.parametrize("args", [(0, 2, 8), (2, 0, 8), (2, 2, 0),
                                      (2, 2, 8, 0)])
    def test_validation(self, args):
        with pytest.raises(ValueError):
            kv_bytes_per_token(*args)


class TestAdmission:
    def test_admit_reserves_page_rounded_prompt(self):
        a = arena(page_tokens=8)
        assert a.admit(0, prompt_tokens=9, max_total_tokens=20)
        assert a.used_bytes == 16 * BPT  # 9 tokens -> 2 pages

    def test_watermark_gates_admission(self):
        a = arena(capacity_tokens=100, page_tokens=1, watermark=0.5)
        assert a.admit(0, prompt_tokens=50, max_total_tokens=50)
        # Reserved bytes sit exactly at the watermark: next admit denied.
        assert not a.admit(1, prompt_tokens=1, max_total_tokens=1)
        assert a.denials == 1

    def test_worst_case_bound_gates_admission(self):
        """Admission must leave room for every live request to reach its
        full output budget — otherwise append() could fail mid-decode."""
        a = arena(capacity_tokens=100, page_tokens=1, watermark=0.9)
        # Tiny prompt (passes the watermark gate) but a huge budget.
        assert a.admit(0, prompt_tokens=10, max_total_tokens=95)
        assert not a.admit(1, prompt_tokens=10, max_total_tokens=10)

    def test_no_admission_past_high_watermark(self):
        """Invariant: reserved bytes never exceed the watermark at admit."""
        a = arena(capacity_tokens=128, page_tokens=8, watermark=0.75)
        admitted = 0
        while a.admit(admitted, prompt_tokens=8, max_total_tokens=8):
            assert a.used_bytes <= a.watermark_bytes
            admitted += 1
        assert admitted == 12  # 96 tokens = 0.75 * 128

    def test_fits_at_all(self):
        a = arena(capacity_tokens=64, page_tokens=8)
        assert a.fits_at_all(8, 32)
        assert not a.fits_at_all(8, 1000)

    def test_duplicate_admit_rejected(self):
        a = arena()
        assert a.admit(7, 8, 16)
        with pytest.raises(KVArenaError):
            a.admit(7, 8, 16)


class TestGrowthAndRelease:
    def test_append_within_reserved_page_keeps_bytes(self):
        a = arena(page_tokens=8)
        a.admit(0, prompt_tokens=4, max_total_tokens=16)
        before = a.used_bytes
        a.append(0, 1)  # still inside the first page
        assert a.used_bytes == before

    def test_append_across_page_boundary_grows(self):
        a = arena(page_tokens=8)
        a.admit(0, prompt_tokens=8, max_total_tokens=24)
        a.append(0, 1)  # 9 tokens -> second page
        assert a.used_bytes == 16 * BPT

    def test_append_past_worst_case_raises(self):
        a = arena(page_tokens=1)
        a.admit(0, prompt_tokens=4, max_total_tokens=6)
        a.append(0, 2)
        with pytest.raises(KVArenaError):
            a.append(0, 1)

    def test_append_unknown_request_raises(self):
        with pytest.raises(KVArenaError):
            arena().append(42, 1)

    def test_release_frees_every_byte(self):
        a = arena()
        for i in range(4):
            a.admit(i, prompt_tokens=8, max_total_tokens=24)
        for i in range(4):
            a.release(i)
        assert a.used_bytes == 0
        assert a.live_requests == 0
        assert a.releases == 4

    def test_release_unknown_request_raises(self):
        with pytest.raises(KVArenaError):
            arena().release(42)

    def test_grow_to_budget_never_fails_after_admit(self):
        """The no-overflow invariant, end to end: admit greedily, then
        grow every admitted request to its full budget."""
        a = arena(capacity_tokens=256, page_tokens=8, watermark=0.8)
        live = []
        i = 0
        while a.admit(i, prompt_tokens=8, max_total_tokens=40):
            live.append(i)
            i += 1
        assert live
        for req in live:
            a.append(req, 32)  # to the worst case; must not raise
        assert a.used_bytes <= a.capacity_bytes


class TestPreemptionChurn:
    def test_preempt_frees_bytes_and_reports_dropped_tokens(self):
        a = arena(page_tokens=8)
        a.admit(0, prompt_tokens=8, max_total_tokens=24)
        a.append(0, 9)  # 17 tokens live
        dropped = a.preempt(0)
        assert dropped == 17
        assert a.used_bytes == 0
        assert a.live_requests == 0
        with pytest.raises(KVArenaError):
            a.preempt(0)  # region is gone

    def test_restore_recreates_grown_region(self):
        a = arena(page_tokens=8)
        a.admit(0, prompt_tokens=8, max_total_tokens=32)
        a.append(0, 9)
        a.preempt(0)
        assert a.restore(0, tokens=17, max_total_tokens=32)
        assert a.used_bytes == 24 * BPT  # 17 tokens -> 3 pages
        a.append(0, 15)  # grow to the full budget; must not raise
        with pytest.raises(KVArenaError):
            a.restore(0, tokens=17, max_total_tokens=32)  # already live

    def test_restore_respects_dual_admission_gate(self):
        a = arena(capacity_tokens=100, page_tokens=1, watermark=0.5)
        a.admit(0, prompt_tokens=40, max_total_tokens=45)
        a.admit(1, prompt_tokens=5, max_total_tokens=10)
        a.preempt(1)
        # Watermark gate: restoring at a grown length that would cross
        # 50 tokens reserved is denied and counted.
        denials_before = a.denials
        assert not a.restore(1, tokens=11, max_total_tokens=55)
        assert a.denials == denials_before + 1
        a.release(0)
        assert a.restore(1, tokens=11, max_total_tokens=55)

    def test_churn_cycles_leak_nothing(self):
        """admit -> append -> preempt -> restore cycles preserve both
        admission-gate guarantees and leave zero regions at the end."""
        a = arena(capacity_tokens=256, page_tokens=8, watermark=0.8)
        live = {}
        for i in range(4):
            assert a.admit(i, prompt_tokens=8, max_total_tokens=48)
            live[i] = 8
        for cycle in range(6):
            victim = cycle % 4
            a.append(victim, 4)
            live[victim] += 4
            a.preempt(victim)
            assert a.verify(live_req_ids=[r for r in live if r != victim]) == []
            assert a.restore(victim, tokens=live[victim],
                             max_total_tokens=48)
            assert a.used_bytes <= a.watermark_bytes
            assert a.verify(live_req_ids=list(live)) == []
        # Every survivor can still grow to its full budget (gate held
        # through the churn), then everything releases cleanly.
        for i in live:
            a.append(i, 48 - live[i])
        assert a.used_bytes <= a.capacity_bytes
        for i in live:
            a.release(i)
        assert a.used_bytes == 0
        assert a.verify(live_req_ids=[]) == []
        assert a.stats()["preemptions"] == 6
        assert a.stats()["restores"] == 6

    def test_verify_flags_region_outliving_its_request(self):
        a = arena()
        a.admit(0, 8, 16)
        a.admit(1, 8, 16)
        problems = a.verify(live_req_ids=[0])
        assert any("leak" in p for p in problems)
        assert a.verify(live_req_ids=[0, 1]) == []

    def test_restore_unknown_vs_denied_are_distinct(self):
        a = arena(capacity_tokens=16, page_tokens=8)
        a.admit(0, 8, 16)
        with pytest.raises(KVArenaError):
            a.restore(0, tokens=8, max_total_tokens=16)  # still live
        # Denied restore (no capacity) returns False, never raises.
        assert not a.restore(99, tokens=16, max_total_tokens=16)


class TestPlansAndVerify:
    def test_plans_verify_clean_through_lifecycle(self):
        a = arena(capacity_tokens=512, page_tokens=8)
        for i in range(5):
            a.admit(i, prompt_tokens=8 + 8 * i, max_total_tokens=64)
            assert a.verify() == []
        for i in range(5):
            a.append(i, 9)
            assert a.verify() == []
        for i in (0, 2, 4):
            a.release(i)
        assert a.verify() == []

    def test_regions_placed_byte_disjoint(self):
        a = arena(capacity_tokens=512, page_tokens=8)
        for i in range(4):
            a.admit(i, prompt_tokens=16, max_total_tokens=32)
        plan = a.last_plan
        spans = []
        for rec in a.last_records:
            p = plan.placements[rec.name]
            spans.append((p.chunk_id, p.offset, p.offset + rec.size))
        for i, (c1, s1, e1) in enumerate(spans):
            for c2, s2, e2 in spans[i + 1:]:
                assert c1 != c2 or e1 <= s2 or e2 <= s1

    def test_stats_and_metrics_published(self):
        registry = MetricsRegistry()
        a = arena(metrics=registry)
        a.admit(0, 8, 16)
        a.release(0)
        stats = a.stats()
        assert stats["admissions"] == 1
        assert stats["releases"] == 1
        assert stats["live"] == 0
        assert registry.counter("kv_arena_admissions_total").value == 1

    def test_deterministic(self):
        def episode():
            a = arena(capacity_tokens=200, page_tokens=4, watermark=0.85)
            log = []
            for i in range(12):
                log.append(a.admit(i, 4 + (i % 5) * 3, 20 + (i % 7) * 4))
                if i % 3 == 0 and log[-1]:
                    a.append(i, 5)
                if i % 4 == 2:
                    for j in range(i):
                        if j in a._regions:
                            a.release(j)
                            break
            return log, a.stats()

        assert episode() == episode()


class TestValidation:
    @pytest.mark.parametrize("kw", [
        dict(capacity_bytes=0, bytes_per_token=BPT),
        dict(capacity_bytes=1024, bytes_per_token=0),
        dict(capacity_bytes=1024, bytes_per_token=BPT, page_tokens=0),
        dict(capacity_bytes=1024, bytes_per_token=BPT, high_watermark=0.0),
        dict(capacity_bytes=1024, bytes_per_token=BPT, high_watermark=1.5),
    ])
    def test_bad_config_rejected(self, kw):
        with pytest.raises(ValueError):
            KVCacheArena(**kw)

    @pytest.mark.parametrize("args", [(0, 16), (8, 0), (8, 4)])
    def test_bad_admit_rejected(self, args):
        prompt, total = args
        with pytest.raises(ValueError):
            arena().admit(0, prompt, total)


class TestCrashRecoveryEdges:
    """Edge cases the engine-trace sanitizer leans on: crash-evictions of
    already-restored regions, restores denied by each admission gate, and
    the leak audit under interleaved (non-cyclic) preemption churn."""

    def test_restore_then_crash_double_evicts_cleanly(self):
        a = arena(page_tokens=8)
        a.admit(0, prompt_tokens=8, max_total_tokens=48)
        a.append(0, 9)
        first = a.preempt(0)                      # watermark eviction
        assert first == 17
        assert a.restore(0, tokens=17, max_total_tokens=48)
        a.append(0, 7)                            # progress after resume
        second = a.preempt(0)                     # crash evicts it again
        assert second == 24
        assert a.used_bytes == 0
        with pytest.raises(KVArenaError):
            a.preempt(0)                          # already evicted: gone
        assert a.restore(0, tokens=24, max_total_tokens=48)
        a.release(0)
        assert a.verify(live_req_ids=[]) == []
        assert a.stats()["preemptions"] == 2
        assert a.stats()["restores"] == 2

    def test_restore_denied_by_each_admission_gate(self):
        # Gate 1 (watermark): the recompute length itself does not fit
        # under high_watermark * capacity next to the resident request.
        a = arena(capacity_tokens=100, page_tokens=1, watermark=0.5)
        a.admit(0, prompt_tokens=40, max_total_tokens=41)
        a.admit(1, prompt_tokens=8, max_total_tokens=20)
        a.preempt(1)
        assert not a.restore(1, tokens=11, max_total_tokens=20)
        # Gate 2 (worst case): the grown budget cannot fit within raw
        # capacity even though the recompute length is under watermark.
        assert not a.restore(1, tokens=9, max_total_tokens=61)
        assert a.denials == 2
        # A restore respecting both gates still succeeds afterwards.
        assert a.restore(1, tokens=9, max_total_tokens=20)
        assert a.verify(live_req_ids=[0, 1]) == []

    def test_verify_tracks_interleaved_preemption_churn(self):
        a = arena(capacity_tokens=256, page_tokens=8, watermark=0.9)
        for i in range(3):
            a.admit(i, prompt_tokens=16, max_total_tokens=48)
        live = {0, 1, 2}

        def audit():
            assert a.verify(live_req_ids=sorted(live)) == []

        a.preempt(0); live.discard(0); audit()
        a.preempt(1); live.discard(1); audit()
        # A new request admits into the freed space mid-churn.
        a.admit(3, prompt_tokens=16, max_total_tokens=48)
        live.add(3); audit()
        assert a.restore(1, tokens=16, max_total_tokens=48)
        live.add(1); audit()
        a.preempt(3); live.discard(3); audit()
        assert a.restore(0, tokens=16, max_total_tokens=48)
        live.add(0); audit()
        assert a.restore(3, tokens=16, max_total_tokens=48)
        live.add(3); audit()
        # An evicted-but-not-restored region counts as a leak candidate:
        # verify() against the wrong live set must say so.
        a.preempt(2); live.discard(2)
        problems = a.verify(live_req_ids=sorted(live - {0}))
        assert any("leak" in p and "request 0" in p for p in problems)
        audit()
        for i in sorted(live):
            a.release(i)
        assert a.verify(live_req_ids=[]) == []
        assert a.used_bytes == 0
