"""GSOC, caching and naive allocator baselines."""

import pytest

from repro.gpusim import CUDA_MALLOC_STALL_S
from repro.memory import (
    CachingAllocator,
    GsocAllocator,
    NaiveAllocator,
    TensorUsageRecord,
    gsoc_offsets,
    peak_live_bytes,
    round_block_size,
    validate_plan,
)


def rec(name, first, last, size):
    return TensorUsageRecord(name, first, last, size)


class TestGsocOffsets:
    def test_plan_valid(self):
        records = [rec(f"t{i}", i, i + 2, 100 * (i + 1)) for i in range(8)]
        offsets, arena = gsoc_offsets(records)
        assert set(offsets) == {r.name for r in records}
        assert arena >= max(r.size for r in records)

    def test_disjoint_share_offsets(self):
        records = [rec("a", 0, 1, 500), rec("b", 2, 3, 500)]
        offsets, arena = gsoc_offsets(records)
        assert offsets["a"] == offsets["b"] == 0
        assert arena == 500

    def test_near_optimal_for_chain(self):
        """Chained lifetimes (each overlaps only its neighbours) need at
        most two slots of the largest size."""
        records = [rec(f"t{i}", i, i + 1, 100) for i in range(10)]
        _, arena = gsoc_offsets(records)
        assert arena == 200

    def test_arena_at_least_peak(self):
        records = [rec(f"t{i}", 0, 9, 50) for i in range(5)]
        _, arena = gsoc_offsets(records)
        assert arena >= peak_live_bytes(records)


class TestGsocAllocator:
    def test_growth_reallocates_whole_arena(self):
        allocator = GsocAllocator()
        r1 = allocator.process_request([rec("a", 0, 1, 1000)])
        assert r1.new_bytes == 1000
        r2 = allocator.process_request([rec("a", 0, 1, 1000), rec("b", 0, 1, 500)])
        # Contiguous arena: the grown arena is a fresh allocation.
        assert r2.new_bytes == 1500

    def test_shrink_is_free(self):
        allocator = GsocAllocator()
        allocator.process_request([rec("a", 0, 1, 2000)])
        r = allocator.process_request([rec("a", 0, 1, 100)])
        assert r.new_bytes == 0

    def test_plans_are_valid(self):
        allocator = GsocAllocator()
        records = [rec(f"t{i}", i % 4, i % 4 + 3, 128 * (i + 1)) for i in range(12)]
        result = allocator.process_request(records)
        validate_plan(result.plan, records)


class TestRoundBlockSize:
    def test_small_rounds_to_512(self):
        assert round_block_size(1) == 512
        assert round_block_size(513) == 1024

    def test_large_rounds_to_2mb(self):
        two_mb = 2 * 1024 * 1024
        assert round_block_size(two_mb - 5) == two_mb
        assert round_block_size(two_mb + 1) == 2 * two_mb

    def test_invalid(self):
        with pytest.raises(ValueError):
            round_block_size(0)


class TestCachingAllocator:
    def test_second_request_hits_cache(self):
        records = [rec(f"t{i}", i, i + 1, 4096) for i in range(5)]
        allocator = CachingAllocator()
        allocator.process_request(records)
        second = allocator.process_request(records)
        assert second.new_bytes == 0
        assert second.stall_s == 0.0

    def test_footprint_never_shrinks(self):
        allocator = CachingAllocator()
        allocator.process_request([rec("big", 0, 1, 10 * 2**20)])
        allocator.process_request([rec("small", 0, 1, 512)])
        # The 10 MB block stays cached (graph-oblivious retention).
        assert allocator.footprint_bytes >= 10 * 2**20

    def test_distinct_sizes_accumulate(self):
        """Variable-length workloads populate a bucket per size class."""
        allocator = CachingAllocator()
        for mb in (2, 4, 6, 8):
            allocator.process_request([rec("t", 0, 1, mb * 2**20)])
        assert allocator.footprint_bytes >= (2 + 4 + 6 + 8) * 2**20

    def test_cache_hit_counters(self):
        allocator = CachingAllocator()
        records = [rec("a", 0, 1, 1000)]
        allocator.process_request(records)
        allocator.process_request(records)
        assert allocator.cache_misses == 1
        assert allocator.cache_hits == 1

    def test_empty_cache_returns_memory(self):
        allocator = CachingAllocator()
        allocator.process_request([rec("a", 0, 1, 4096)])
        assert allocator.footprint_bytes > 0
        allocator.empty_cache()
        assert allocator.footprint_bytes == 0


class TestNaiveAllocator:
    def test_footprint_is_optimal_but_stalls(self):
        records = [rec("a", 0, 1, 1000), rec("b", 2, 3, 1000)]
        allocator = NaiveAllocator()
        result = allocator.process_request(records)
        assert result.peak_bytes == 1000  # only one live at a time
        assert result.stall_s == pytest.approx(4 * CUDA_MALLOC_STALL_S)

    def test_nothing_retained(self):
        allocator = NaiveAllocator()
        allocator.process_request([rec("a", 0, 1, 1000)])
        assert allocator.footprint_bytes == 0

    def test_every_request_pays_again(self):
        records = [rec("a", 0, 1, 1000)]
        allocator = NaiveAllocator()
        first = allocator.process_request(records)
        second = allocator.process_request(records)
        assert first.new_bytes == second.new_bytes == 1000
