"""Plan cache: LRU mechanics, transparency, and replay idempotence."""

import random

import pytest

from repro.gpusim.memory import DeviceMemory
from repro.graph import tensor_usage_records
from repro.memory import (
    CachedPlan,
    GsocAllocator,
    PlanCache,
    TensorUsageRecord,
    TurboAllocator,
    chunk_fingerprint,
    records_signature,
)


def _records(graph, batch, seq):
    return tensor_usage_records(graph, {"batch": batch, "seq": seq})


def _random_records(rng, n=8):
    out = []
    for i in range(n):
        first = rng.randrange(0, 10)
        out.append(TensorUsageRecord(
            name=f"t{i}", first_op=first,
            last_op=first + rng.randrange(0, 5),
            size=rng.randrange(1, 64) * 1024,
        ))
    return out


class TestPlanCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        entries = {}
        for i in range(3):
            key = ((("t", 0, 0, i),), ())
            entries[i] = CachedPlan(assignments={}, plan=None, hits=0)
            cache.store(key, entries[i])
        assert len(cache) == 2
        assert cache.get(((("t", 0, 0, 0),), ())) is None  # evicted
        assert cache.get(((("t", 0, 0, 2),), ())) is entries[2]

    def test_stats_and_invalidate(self):
        cache = PlanCache()
        key = ((("t", 0, 0, 1),), ())
        assert cache.get(key) is None
        cache.store(key, CachedPlan(assignments={}, plan=None, hits=0))
        assert cache.get(key) is not None
        dropped = cache.invalidate()
        assert dropped == 1
        stats = cache.stats()
        assert stats == {"entries": 0, "hits": 1, "misses": 1,
                         "stores": 1, "invalidations": 1}


class TestTransparency:
    """The cached allocator is observably identical to the uncached one."""

    def test_random_shapes_bit_identical(self, bert_graph):
        rng = random.Random(11)
        shapes = [(rng.randrange(1, 13), rng.randrange(1, 33) * 16)
                  for _ in range(25)]
        reference = TurboAllocator(DeviceMemory(), plan_cache=None)
        fast = TurboAllocator(DeviceMemory(), plan_cache=PlanCache())
        for batch, seq in shapes:
            records = _records(bert_graph, batch, seq)
            for _ in range(2):  # cold + warm, like infer()
                ref = reference.process_request(records)
                got = fast.process_request(records)
                assert (ref.new_bytes, ref.footprint_bytes, ref.peak_bytes,
                        ref.stall_s) == \
                    (got.new_bytes, got.footprint_bytes, got.peak_bytes,
                     got.stall_s)
                assert {n: (p.chunk_id, p.offset)
                        for n, p in ref.plan.placements.items()} == \
                    {n: (p.chunk_id, p.offset)
                     for n, p in got.plan.placements.items()}
            assert (reference.plan_hits, reference.plan_misses,
                    reference.chunks_released) == \
                (fast.plan_hits, fast.plan_misses, fast.chunks_released)
        assert fast.plan_cache.hits > 0

    def test_warm_after_cold_hits(self, bert_graph):
        """Planning is idempotent, so the warm re-plan of any shape —
        including one whose cold plan malloc'ed — replays from cache."""
        allocator = TurboAllocator(DeviceMemory())
        records = _records(bert_graph, 4, 128)
        first = allocator.process_request(records)
        assert not first.plan_cache_hit  # cold: state was never seen
        second = allocator.process_request(records)
        assert second.plan_cache_hit
        assert allocator.last_plan_cached

    def test_replay_idempotent_property(self):
        """plan(); plan() replays bit-identically for random records."""
        rng = random.Random(5)
        for _ in range(50):
            records = _random_records(rng, n=rng.randrange(1, 12))
            cached = TurboAllocator(DeviceMemory(), chunk_size=64 * 1024)
            uncached = TurboAllocator(DeviceMemory(), chunk_size=64 * 1024,
                                      plan_cache=None)
            for _ in range(2):
                got = cached.plan(records)
                want = uncached.plan(records)
                assert got.placements.keys() == want.placements.keys()
                for name in got.placements:
                    g, w = got.placements[name], want.placements[name]
                    assert (g.chunk_id, g.offset) == (w.chunk_id, w.offset)
            assert cached.plan_cache.hits == 1

    def test_cache_disabled_is_reference(self, bert_graph):
        allocator = TurboAllocator(DeviceMemory(), plan_cache=None)
        records = _records(bert_graph, 2, 64)
        allocator.process_request(records)
        allocation = allocator.process_request(records)
        assert not allocation.plan_cache_hit

    def test_invalidate_plan_cache(self, bert_graph):
        allocator = TurboAllocator(DeviceMemory())
        records = _records(bert_graph, 2, 64)
        allocator.process_request(records)
        dropped = allocator.invalidate_plan_cache()
        assert dropped >= 1
        assert not allocator.process_request(records).plan_cache_hit

    def test_gap_search_modes_identical_placements(self, bert_graph):
        fast = TurboAllocator(DeviceMemory(), plan_cache=None)
        reference = TurboAllocator(DeviceMemory(), plan_cache=None,
                                   gap_search="reference")
        for batch, seq in [(1, 16), (3, 96), (6, 256)]:
            records = _records(bert_graph, batch, seq)
            got = fast.process_request(records)
            want = reference.process_request(records)
            assert {n: (p.chunk_id, p.offset)
                    for n, p in got.plan.placements.items()} == \
                {n: (p.chunk_id, p.offset)
                 for n, p in want.plan.placements.items()}

    def test_gap_search_validated(self):
        with pytest.raises(ValueError):
            TurboAllocator(DeviceMemory(), gap_search="bogus")


class TestSignatures:
    def test_records_signature_discriminates(self):
        a = TensorUsageRecord(name="x", first_op=0, last_op=1, size=4)
        b = TensorUsageRecord(name="x", first_op=0, last_op=1, size=8)
        assert records_signature([a]) != records_signature([b])
        assert records_signature([a]) == records_signature([a])

    def test_chunk_fingerprint_tracks_ids_and_sizes(self):
        allocator = TurboAllocator(DeviceMemory())
        assert chunk_fingerprint(allocator.chunks) == ()


class TestGsocMemo:
    def test_offsets_memoized_per_signature(self, bert_graph):
        allocator = GsocAllocator()
        records = _records(bert_graph, 2, 64)
        first = allocator.process_request(records)
        second = allocator.process_request(records)
        assert allocator.plan_cache_hits == 1
        assert allocator.plan_cache_misses == 1
        assert first.footprint_bytes == second.footprint_bytes

    def test_memo_matches_uncached(self, bert_graph):
        cached = GsocAllocator()
        uncached = GsocAllocator(cache_plans=False)
        for batch, seq in [(1, 32), (2, 64), (1, 32)]:
            records = _records(bert_graph, batch, seq)
            got = cached.process_request(records)
            want = uncached.process_request(records)
            assert (got.new_bytes, got.footprint_bytes, got.peak_bytes) == \
                (want.new_bytes, want.footprint_bytes, want.peak_bytes)
