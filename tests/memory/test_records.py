"""Tensor usage records and lifetime overlap."""

import pytest

from repro.memory import TensorUsageRecord, peak_live_bytes, sort_by_size


def rec(name, first, last, size):
    return TensorUsageRecord(name, first, last, size)


class TestOverlap:
    def test_overlapping_intervals(self):
        assert rec("a", 0, 5, 1).overlaps(rec("b", 3, 8, 1))

    def test_touching_intervals_overlap(self):
        """Alg. 2 L8 uses <=: sharing one op index counts as overlap."""
        assert rec("a", 0, 3, 1).overlaps(rec("b", 3, 5, 1))

    def test_disjoint_intervals(self):
        assert not rec("a", 0, 2, 1).overlaps(rec("b", 3, 5, 1))

    def test_symmetry(self):
        a, b = rec("a", 1, 4, 1), rec("b", 2, 9, 1)
        assert a.overlaps(b) == b.overlaps(a)

    def test_containment(self):
        assert rec("a", 0, 10, 1).overlaps(rec("b", 4, 5, 1))


class TestValidation:
    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            rec("a", 5, 3, 1)

    def test_negative_first_rejected(self):
        with pytest.raises(ValueError):
            rec("a", -1, 3, 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            rec("a", 0, 1, 0)


class TestSortBySize:
    def test_non_increasing(self):
        records = [rec("s", 0, 1, 10), rec("l", 0, 1, 100), rec("m", 0, 1, 50)]
        assert [r.name for r in sort_by_size(records)] == ["l", "m", "s"]

    def test_name_breaks_ties_deterministically(self):
        records = [rec("b", 0, 1, 10), rec("a", 0, 1, 10)]
        assert [r.name for r in sort_by_size(records)] == ["a", "b"]


class TestPeakLiveBytes:
    def test_disjoint_tensors_peak_is_max(self):
        records = [rec("a", 0, 1, 100), rec("b", 2, 3, 70)]
        assert peak_live_bytes(records) == 100

    def test_concurrent_tensors_sum(self):
        records = [rec("a", 0, 5, 100), rec("b", 2, 3, 70)]
        assert peak_live_bytes(records) == 170

    def test_empty(self):
        assert peak_live_bytes([]) == 0

    def test_is_lower_bound_for_any_plan(self):
        """Every allocator footprint must be >= peak live bytes."""
        from repro.memory import TurboAllocator

        records = [rec(f"t{i}", i, i + 2, 1000 * (i + 1)) for i in range(10)]
        allocator = TurboAllocator(chunk_size=4096)
        result = allocator.process_request(records)
        assert result.footprint_bytes >= peak_live_bytes(records)
