"""Embedding lookup kernels."""

import numpy as np
import pytest

from repro.kernels import bert_embeddings, embedding_lookup


class TestLookup:
    def test_gathers_rows(self, rng):
        table = rng.normal(size=(10, 4)).astype(np.float32)
        ids = np.array([[1, 3], [0, 9]])
        out = embedding_lookup(table, ids)
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 1], table[3])

    def test_out_of_range_rejected(self, rng):
        table = rng.normal(size=(10, 4))
        with pytest.raises(IndexError):
            embedding_lookup(table, np.array([10]))
        with pytest.raises(IndexError):
            embedding_lookup(table, np.array([-1]))

    def test_float_ids_rejected(self, rng):
        with pytest.raises(TypeError):
            embedding_lookup(rng.normal(size=(10, 4)), np.array([1.0]))

    def test_table_must_be_2d(self, rng):
        with pytest.raises(ValueError):
            embedding_lookup(rng.normal(size=(10,)), np.array([1]))


class TestBertEmbeddings:
    def _tables(self, rng, vocab=20, pos=16, hidden=8):
        return (
            rng.normal(size=(vocab, hidden)).astype(np.float32),
            rng.normal(size=(pos, hidden)).astype(np.float32),
            rng.normal(size=(2, hidden)).astype(np.float32),
        )

    def test_sums_three_embeddings(self, rng):
        tok, pos, seg = self._tables(rng)
        ids = np.array([[3, 5, 7]])
        out = bert_embeddings(tok, pos, seg, ids)
        expected = tok[ids] + pos[:3][None] + seg[0]
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_segment_ids_respected(self, rng):
        tok, pos, seg = self._tables(rng)
        ids = np.array([[1, 2]])
        segs = np.array([[0, 1]])
        out = bert_embeddings(tok, pos, seg, ids, segment_ids=segs)
        np.testing.assert_allclose(out[0, 1], tok[2] + pos[1] + seg[1], rtol=1e-6)

    def test_sequence_longer_than_positions_rejected(self, rng):
        tok, pos, seg = self._tables(rng, pos=4)
        with pytest.raises(ValueError):
            bert_embeddings(tok, pos, seg, np.zeros((1, 5), dtype=np.int64))

    def test_requires_batch_seq(self, rng):
        tok, pos, seg = self._tables(rng)
        with pytest.raises(ValueError):
            bert_embeddings(tok, pos, seg, np.array([1, 2, 3]))
