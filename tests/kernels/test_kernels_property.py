"""Property-based tests (hypothesis) on the numeric kernel invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (
    add_bias_gelu,
    gelu,
    layernorm_one_pass,
    layernorm_reference,
    softmax_fused,
    softmax_reference,
)

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def matrix(max_rows: int = 6, max_cols: int = 32):
    return arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(1, max_rows), st.integers(1, max_cols)
        ),
        elements=finite_floats,
    )


class TestSoftmaxProperties:
    @given(matrix())
    @settings(max_examples=80, deadline=None)
    def test_output_is_probability_distribution(self, x):
        y = softmax_reference(x)
        assert np.isfinite(y).all()
        assert (y >= 0).all()
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-4)

    @given(matrix())
    @settings(max_examples=80, deadline=None)
    def test_fused_matches_reference(self, x):
        np.testing.assert_allclose(
            softmax_fused(x.copy()), softmax_reference(x), rtol=1e-4, atol=1e-6
        )

    @given(matrix(), st.floats(min_value=-20, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_shift_invariance(self, x, shift):
        np.testing.assert_allclose(
            softmax_reference(x + np.float32(shift)),
            softmax_reference(x),
            rtol=1e-3, atol=1e-6,
        )

    @given(matrix())
    @settings(max_examples=50, deadline=None)
    def test_order_preserving(self, x):
        """The max logit's probability is (within ties) the max prob."""
        y = softmax_reference(x)
        max_logit_prob = np.take_along_axis(
            y, np.argmax(x, axis=-1, keepdims=True), axis=-1
        )[..., 0]
        assert (max_logit_prob >= y.max(axis=-1) - 1e-6).all()


class TestLayerNormProperties:
    @given(matrix(max_cols=64))
    @settings(max_examples=80, deadline=None)
    def test_one_pass_matches_two_pass(self, x):
        # E[x^2] - E^2[x] suffers catastrophic cancellation when the mean
        # dominates the variance — the one-pass form's documented weakness.
        # Restrict to rows where FP32 cancellation is benign (the regime of
        # real transformer activations); degenerate rows are covered by
        # test_output_row_statistics (finiteness) and the unit tests.
        mean = x.mean(axis=-1)
        var = x.var(axis=-1)
        assume((var > 1e-3 * (mean * mean + 1.0)).all())
        hidden = x.shape[-1]
        gamma = np.ones(hidden, np.float32)
        beta = np.zeros(hidden, np.float32)
        one = layernorm_one_pass(x, gamma, beta)
        two = layernorm_reference(x, gamma, beta)
        np.testing.assert_allclose(one, two, rtol=1e-2, atol=2e-2)

    @given(matrix(max_cols=64))
    @settings(max_examples=80, deadline=None)
    def test_output_row_statistics(self, x):
        hidden = x.shape[-1]
        y = layernorm_one_pass(x, np.ones(hidden, np.float32),
                               np.zeros(hidden, np.float32))
        assert np.isfinite(y).all()
        # Degenerate (near-constant) rows amplify rounding by 1/sqrt(eps).
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-2)


class TestGeluProperties:
    @given(arrays(np.float32, st.integers(1, 100), elements=finite_floats))
    @settings(max_examples=80, deadline=None)
    def test_bounded_below_and_near_identity_above(self, x):
        y = gelu(x)
        assert np.isfinite(y).all()
        assert (y >= -0.2).all()  # GELU's global minimum is ~ -0.17
        big = x[x > 5]
        if big.size:
            np.testing.assert_allclose(gelu(big), big, rtol=1e-3)

    @given(matrix())
    @settings(max_examples=50, deadline=None)
    def test_fused_bias_gelu_matches(self, x):
        bias = np.linspace(-1, 1, x.shape[-1], dtype=np.float32)
        np.testing.assert_allclose(
            add_bias_gelu(x.copy(), bias), gelu(x + bias), rtol=1e-4, atol=1e-5
        )
