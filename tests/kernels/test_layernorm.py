"""LayerNorm numerics: the Eq. 1 one-pass variance trick vs two-pass."""

import numpy as np
import pytest

from repro.kernels import add_bias_layernorm, layernorm_one_pass, layernorm_reference


def affine(hidden, rng=None):
    if rng is None:
        return np.ones(hidden, np.float32), np.zeros(hidden, np.float32)
    return (
        rng.normal(1.0, 0.1, hidden).astype(np.float32),
        rng.normal(0.0, 0.1, hidden).astype(np.float32),
    )


class TestReference:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(3.0, 2.0, size=(10, 64)).astype(np.float32)
        gamma, beta = affine(64)
        y = layernorm_reference(x, gamma, beta)
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_applied(self, rng):
        x = rng.normal(size=(4, 8)).astype(np.float32)
        gamma = np.full(8, 2.0, np.float32)
        beta = np.full(8, 1.0, np.float32)
        base = layernorm_reference(x, *affine(8))
        scaled = layernorm_reference(x, gamma, beta)
        np.testing.assert_allclose(scaled, base * 2.0 + 1.0, rtol=1e-5)

    def test_shape_mismatch_rejected(self, rng):
        x = rng.normal(size=(4, 8))
        with pytest.raises(ValueError):
            layernorm_reference(x, np.ones(7), np.zeros(8))


class TestOnePassMatchesTwoPass:
    @pytest.mark.parametrize("shape", [(16,), (5, 32), (2, 7, 64)])
    def test_agreement(self, rng, shape):
        x = rng.normal(size=shape).astype(np.float32)
        gamma, beta = affine(shape[-1], rng)
        np.testing.assert_allclose(
            layernorm_one_pass(x, gamma, beta),
            layernorm_reference(x, gamma, beta),
            rtol=1e-4, atol=1e-5,
        )

    def test_large_mean_cancellation_is_clamped(self):
        """E[x^2] - E^2[x] can go slightly negative in floating point when
        the mean dominates; the kernel clamps instead of producing NaN."""
        x = np.full((2, 64), 1e4, dtype=np.float32)
        y = layernorm_one_pass(x, *affine(64))
        assert np.isfinite(y).all()

    def test_out_buffer(self, rng):
        x = rng.normal(size=(3, 16)).astype(np.float32)
        gamma, beta = affine(16)
        out = np.empty_like(x)
        result = layernorm_one_pass(x, gamma, beta, out=out)
        assert result is out
        np.testing.assert_allclose(out, layernorm_reference(x, gamma, beta),
                                   rtol=1e-4, atol=1e-5)

    def test_out_shape_mismatch(self, rng):
        x = rng.normal(size=(3, 16))
        with pytest.raises(ValueError):
            layernorm_one_pass(x, *affine(16), out=np.empty((16, 3)))


class TestAddBiasLayerNorm:
    def test_fused_equals_composition(self, rng):
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        residual = rng.normal(size=(2, 5, 16)).astype(np.float32)
        bias = rng.normal(size=16).astype(np.float32)
        gamma, beta = affine(16, rng)
        fused = add_bias_layernorm(x, residual, bias, gamma, beta)
        composed = layernorm_reference(x + residual + bias, gamma, beta)
        np.testing.assert_allclose(fused, composed, rtol=1e-4, atol=1e-5)

    def test_residual_shape_checked(self, rng):
        x = rng.normal(size=(2, 5, 16))
        with pytest.raises(ValueError):
            add_bias_layernorm(x, x[:, :4], np.zeros(16), *affine(16))
