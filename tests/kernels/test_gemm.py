"""GEMM wrappers."""

import numpy as np
import pytest

from repro.kernels import gemm, linear


class TestGemm:
    def test_plain_matmul(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_transpose_b(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(5, 4))
        np.testing.assert_allclose(gemm(a, b, transpose_b=True), a @ b.T)

    def test_batched(self, rng):
        a = rng.normal(size=(2, 6, 3, 4))
        b = rng.normal(size=(2, 6, 4, 5))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_out_buffer(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 5))
        out = np.empty((3, 5))
        result = gemm(a, b, out=out)
        assert result is out
        np.testing.assert_allclose(out, a @ b)

    def test_inner_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            gemm(rng.normal(size=(3, 4)), rng.normal(size=(5, 6)))

    def test_rank_checked(self, rng):
        with pytest.raises(ValueError):
            gemm(rng.normal(size=(4,)), rng.normal(size=(4, 5)))


class TestLinear:
    def test_with_bias(self, rng):
        x = rng.normal(size=(2, 3, 4))
        w = rng.normal(size=(4, 6))
        b = rng.normal(size=6)
        np.testing.assert_allclose(linear(x, w, b), x @ w + b)

    def test_without_bias(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))
        np.testing.assert_allclose(linear(x, w), x @ w)

    def test_weight_must_be_2d(self, rng):
        with pytest.raises(ValueError):
            linear(rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_bias_shape_checked(self, rng):
        with pytest.raises(ValueError):
            linear(rng.normal(size=(3, 4)), rng.normal(size=(4, 6)), rng.normal(size=5))

    def test_in_dim_checked(self, rng):
        with pytest.raises(ValueError):
            linear(rng.normal(size=(3, 5)), rng.normal(size=(4, 6)))
