"""Activation and bias kernels: fused variants equal compositions."""

import numpy as np
import pytest

from repro.kernels import add_bias, add_bias_gelu, add_bias_relu, gelu, relu


class TestGelu:
    def test_zero_maps_to_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0

    def test_large_positive_is_identity(self):
        np.testing.assert_allclose(gelu(np.array([10.0])), [10.0], rtol=1e-4)

    def test_large_negative_is_zero(self):
        np.testing.assert_allclose(gelu(np.array([-10.0])), [0.0], atol=1e-4)

    def test_monotone_on_positive_axis(self, rng):
        x = np.sort(rng.uniform(0, 5, size=50))
        y = gelu(x)
        assert (np.diff(y) >= 0).all()

    def test_matches_erf_form(self, rng):
        """The tanh approximation tracks the exact erf GELU closely."""
        from scipy.special import erf

        x = rng.normal(size=1000)
        exact = 0.5 * x * (1 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(gelu(x), exact, atol=2e-3)


class TestRelu:
    def test_clamps_negative(self, rng):
        x = rng.normal(size=100)
        y = relu(x)
        assert (y >= 0).all()
        np.testing.assert_array_equal(y[x > 0], x[x > 0])


class TestBias:
    def test_add_bias_broadcasts(self, rng):
        x = rng.normal(size=(2, 3, 8)).astype(np.float32)
        bias = rng.normal(size=8).astype(np.float32)
        np.testing.assert_allclose(add_bias(x, bias), x + bias)

    def test_bias_rank_checked(self, rng):
        x = rng.normal(size=(2, 8))
        with pytest.raises(ValueError):
            add_bias(x, np.zeros((2, 8)))

    def test_bias_length_checked(self, rng):
        x = rng.normal(size=(2, 8))
        with pytest.raises(ValueError):
            add_bias(x, np.zeros(7))


class TestFusedActivations:
    def test_add_bias_gelu_equals_composition(self, rng):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        bias = rng.normal(size=16).astype(np.float32)
        np.testing.assert_allclose(
            add_bias_gelu(x, bias), gelu(x + bias), rtol=1e-5, atol=1e-6
        )

    def test_add_bias_gelu_in_place(self, rng):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        bias = rng.normal(size=16).astype(np.float32)
        expected = gelu(x + bias)
        out = add_bias_gelu(x, bias, out=x)
        assert out is x
        np.testing.assert_allclose(x, expected, rtol=1e-5, atol=1e-6)

    def test_add_bias_relu_equals_composition(self, rng):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        bias = rng.normal(size=16).astype(np.float32)
        np.testing.assert_allclose(add_bias_relu(x, bias), relu(x + bias))

    def test_out_shape_mismatch(self, rng):
        x = rng.normal(size=(4, 16)).astype(np.float32)
        with pytest.raises(ValueError):
            add_bias_gelu(x, np.zeros(16, np.float32), out=np.empty((16, 4), np.float32))
