"""Multi-head attention: fused path == reference path, masking semantics."""

import numpy as np
import pytest

from repro.kernels import (
    AttentionWeights,
    multi_head_attention,
    padding_mask_from_lengths,
    scaled_dot_product_attention,
    split_heads,
)


def make_weights(rng, hidden=16):
    def w():
        return rng.normal(0, 0.1, size=(hidden, hidden)).astype(np.float32)

    def b():
        return rng.normal(0, 0.1, size=hidden).astype(np.float32)

    return AttentionWeights(w(), b(), w(), b(), w(), b(), w(), b())


class TestScaledDotProduct:
    def test_uniform_attention_averages_values(self, rng):
        """Identical keys -> softmax uniform -> output = mean of values."""
        q = rng.normal(size=(1, 1, 2, 4)).astype(np.float32)
        k = np.ones((1, 1, 3, 4), dtype=np.float32)
        v = rng.normal(size=(1, 1, 3, 4)).astype(np.float32)
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out[0, 0, 0], v[0, 0].mean(axis=0), rtol=1e-5)

    def test_fused_equals_reference(self, rng):
        q = rng.normal(size=(2, 3, 4, 8)).astype(np.float32)
        k = rng.normal(size=(2, 3, 5, 8)).astype(np.float32)
        v = rng.normal(size=(2, 3, 5, 8)).astype(np.float32)
        np.testing.assert_allclose(
            scaled_dot_product_attention(q, k, v, fused=True),
            scaled_dot_product_attention(q, k, v, fused=False),
            rtol=1e-5, atol=1e-6,
        )

    def test_masked_keys_ignored(self, rng):
        q = rng.normal(size=(1, 1, 2, 4)).astype(np.float32)
        k = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        v = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        mask = np.where(np.arange(4) < 2, 0.0, -1e9).astype(np.float32)
        masked = scaled_dot_product_attention(q, k, v, mask=mask)
        truncated = scaled_dot_product_attention(q, k[:, :, :2], v[:, :, :2])
        np.testing.assert_allclose(masked, truncated, rtol=1e-4, atol=1e-6)

    def test_rank_checked(self, rng):
        bad = rng.normal(size=(2, 4, 8))
        good = rng.normal(size=(1, 1, 4, 8))
        with pytest.raises(ValueError):
            scaled_dot_product_attention(bad, good, good)

    def test_kv_shape_mismatch(self, rng):
        q = rng.normal(size=(1, 1, 2, 4))
        k = rng.normal(size=(1, 1, 3, 4))
        v = rng.normal(size=(1, 1, 4, 4))
        with pytest.raises(ValueError):
            scaled_dot_product_attention(q, k, v)


class TestMultiHeadAttention:
    def test_fused_equals_reference(self, rng):
        weights = make_weights(rng)
        x = rng.normal(size=(2, 5, 16)).astype(np.float32)
        np.testing.assert_allclose(
            multi_head_attention(x, weights, 4, fused=True),
            multi_head_attention(x, weights, 4, fused=False),
            rtol=1e-4, atol=1e-5,
        )

    def test_cross_attention_uses_kv_states(self, rng):
        weights = make_weights(rng)
        x = rng.normal(size=(1, 3, 16)).astype(np.float32)
        memory = rng.normal(size=(1, 7, 16)).astype(np.float32)
        cross = multi_head_attention(x, weights, 4, kv_states=memory)
        self_attn = multi_head_attention(x, weights, 4)
        assert cross.shape == x.shape
        assert not np.allclose(cross, self_attn)

    def test_output_bias_toggle(self, rng):
        weights = make_weights(rng)
        x = rng.normal(size=(1, 3, 16)).astype(np.float32)
        with_bias = multi_head_attention(x, weights, 4, add_output_bias=True)
        without = multi_head_attention(x, weights, 4, add_output_bias=False)
        np.testing.assert_allclose(with_bias, without + weights.bo, rtol=1e-5)

    def test_padding_mask_matches_truncation(self, rng):
        """Padded positions must not change the valid positions' outputs."""
        weights = make_weights(rng)
        x = rng.normal(size=(1, 6, 16)).astype(np.float32)
        mask = padding_mask_from_lengths(np.array([4]), 6)
        padded_out = multi_head_attention(x, weights, 4, mask=mask)
        trunc_out = multi_head_attention(x[:, :4], weights, 4)
        np.testing.assert_allclose(padded_out[:, :4], trunc_out, rtol=1e-4, atol=1e-5)

    def test_rank_checked(self, rng):
        with pytest.raises(ValueError):
            multi_head_attention(rng.normal(size=(5, 16)), make_weights(rng), 4)


class TestPaddingMask:
    def test_shape(self):
        mask = padding_mask_from_lengths(np.array([2, 5]), 5)
        assert mask.shape == (2, 1, 1, 5)

    def test_values(self):
        mask = padding_mask_from_lengths(np.array([2]), 4)[0, 0, 0]
        assert (mask[:2] == 0.0).all()
        assert (mask[2:] < -1e8).all()

    def test_lengths_validated(self):
        with pytest.raises(ValueError):
            padding_mask_from_lengths(np.array([0]), 4)
        with pytest.raises(ValueError):
            padding_mask_from_lengths(np.array([5]), 4)


class TestAttentionWeights:
    def test_square_weights_enforced(self, rng):
        w = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=16).astype(np.float32)
        with pytest.raises(ValueError):
            AttentionWeights(w, b, w, b, w, b, rng.normal(size=(16, 8)), b)

    def test_bias_shape_enforced(self, rng):
        w = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=16).astype(np.float32)
        with pytest.raises(ValueError):
            AttentionWeights(w, b, w, b, w, np.zeros(8), w, b)
