"""INT8 quantization kernels: round trips, error bounds, GEMM accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels import (
    INT8_MAX,
    QuantizedLinear,
    dequantize,
    quantization_error,
    quantize_symmetric,
)


class TestQuantizeSymmetric:
    def test_round_trip_error_bounded_by_half_step(self, rng):
        x = rng.normal(0, 1, (64,)).astype(np.float32)
        q, scale = quantize_symmetric(x)
        err = np.abs(dequantize(q, scale) - x)
        assert err.max() <= scale / 2 + 1e-7

    def test_range_fully_used(self, rng):
        x = rng.normal(0, 1, (256,)).astype(np.float32)
        q, _ = quantize_symmetric(x)
        assert np.abs(q).max() == INT8_MAX

    def test_zero_tensor(self):
        q, scale = quantize_symmetric(np.zeros(8, np.float32))
        assert (q == 0).all()
        assert scale == 1.0

    def test_per_channel_scales(self, rng):
        w = rng.normal(0, 1, (4, 3)).astype(np.float32)
        w[:, 2] *= 100  # one loud channel
        q, scale = quantize_symmetric(w, axis=1)
        assert scale.shape == (1, 3)
        # The loud channel gets its own large scale; quiet ones stay fine.
        assert scale[0, 2] > 10 * scale[0, 0]
        np.testing.assert_allclose(dequantize(q, scale), w,
                                   atol=float(scale.max()) / 2 + 1e-6)

    @given(arrays(np.float32, st.integers(1, 64),
                  elements=st.floats(-100, 100, allow_nan=False, width=32)))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_property(self, x):
        q, scale = quantize_symmetric(x)
        assert q.dtype == np.int8
        err = np.abs(dequantize(q, scale) - x)
        assert err.max() <= float(scale) / 2 + 1e-5


class TestQuantizedLinear:
    def test_close_to_fp32(self, rng):
        w = rng.normal(0, 0.02, (128, 64)).astype(np.float32)
        x = rng.normal(0, 1, (8, 128)).astype(np.float32)
        assert quantization_error(w, x) < 0.03  # a few percent, as on GPUs

    def test_bias_applied(self, rng):
        w = rng.normal(0, 0.02, (16, 4)).astype(np.float32)
        bias = rng.normal(0, 1, 4).astype(np.float32)
        x = rng.normal(0, 1, (2, 16)).astype(np.float32)
        layer = QuantizedLinear.from_float(w, bias=bias)
        no_bias = QuantizedLinear.from_float(w)
        np.testing.assert_allclose(layer(x), no_bias(x) + bias, rtol=1e-5)

    def test_weight_compression_near_4x(self, rng):
        w = rng.normal(0, 0.02, (768, 768)).astype(np.float32)
        layer = QuantizedLinear.from_float(w)
        assert 3.5 < w.nbytes / layer.weight_bytes <= 4.0

    def test_batched_inputs(self, rng):
        w = rng.normal(0, 0.02, (16, 8)).astype(np.float32)
        x = rng.normal(0, 1, (2, 5, 16)).astype(np.float32)
        out = QuantizedLinear.from_float(w)(x)
        assert out.shape == (2, 5, 8)

    def test_shape_validation(self, rng):
        layer = QuantizedLinear.from_float(rng.normal(0, 1, (16, 8)).astype(np.float32))
        with pytest.raises(ValueError):
            layer(rng.normal(0, 1, (2, 15)))

    def test_dtype_validation(self, rng):
        with pytest.raises(TypeError):
            QuantizedLinear(
                q_weight=np.zeros((4, 4), np.float32),
                weight_scale=np.ones((1, 4), np.float32),
            )

    def test_per_channel_beats_per_tensor_on_skewed_weights(self, rng):
        """The reason production INT8 quantizes weights per channel."""
        w = rng.normal(0, 0.02, (64, 32)).astype(np.float32)
        w[:, 0] *= 50  # one loud output channel
        x = rng.normal(0, 1, (8, 64)).astype(np.float32)
        exact = x @ w
        per_channel = QuantizedLinear.from_float(w)(x)
        q_all, s_all = quantize_symmetric(w, axis=None)
        per_tensor = x @ dequantize(q_all, s_all)
        err_channel = np.linalg.norm(per_channel - exact)
        err_tensor = np.linalg.norm(per_tensor - exact)
        assert err_channel < 0.5 * err_tensor
