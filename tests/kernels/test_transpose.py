"""Head split/merge and the add-bias-transpose fusion."""

import numpy as np
import pytest

from repro.kernels import (
    add_bias,
    add_bias_transpose_for_heads,
    merge_heads,
    split_heads,
)


class TestSplitMerge:
    def test_round_trip(self, rng):
        x = rng.normal(size=(2, 5, 12)).astype(np.float32)
        np.testing.assert_array_equal(merge_heads(split_heads(x, 3)), x)

    def test_split_shape(self, rng):
        x = rng.normal(size=(2, 5, 12))
        assert split_heads(x, 4).shape == (2, 4, 5, 3)

    def test_split_layout(self, rng):
        """Head h of position s holds hidden slice [h*d:(h+1)*d]."""
        x = rng.normal(size=(1, 3, 8)).astype(np.float32)
        heads = split_heads(x, 2)
        np.testing.assert_array_equal(heads[0, 1, 2], x[0, 2, 4:8])

    def test_split_requires_divisible_hidden(self, rng):
        with pytest.raises(ValueError):
            split_heads(rng.normal(size=(1, 2, 10)), 3)

    def test_split_requires_rank3(self, rng):
        with pytest.raises(ValueError):
            split_heads(rng.normal(size=(2, 10)), 2)

    def test_merge_requires_rank4(self, rng):
        with pytest.raises(ValueError):
            merge_heads(rng.normal(size=(2, 5, 12)))

    def test_outputs_contiguous(self, rng):
        x = rng.normal(size=(2, 5, 12))
        assert split_heads(x, 3).flags["C_CONTIGUOUS"]
        assert merge_heads(split_heads(x, 3)).flags["C_CONTIGUOUS"]


class TestFusedAddBiasTranspose:
    def test_equals_composition(self, rng):
        x = rng.normal(size=(2, 5, 12)).astype(np.float32)
        bias = rng.normal(size=12).astype(np.float32)
        fused = add_bias_transpose_for_heads(x, bias, 3)
        composed = split_heads(add_bias(x, bias), 3)
        np.testing.assert_allclose(fused, composed, rtol=1e-6)

    def test_bias_shape_checked(self, rng):
        x = rng.normal(size=(2, 5, 12))
        with pytest.raises(ValueError):
            add_bias_transpose_for_heads(x, np.zeros(11), 3)

    def test_divisibility_checked(self, rng):
        x = rng.normal(size=(2, 5, 10))
        with pytest.raises(ValueError):
            add_bias_transpose_for_heads(x, np.zeros(10), 3)
