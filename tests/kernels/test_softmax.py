"""Softmax numerics: fused == reference, correctness invariants."""

import numpy as np
import pytest

from repro.kernels import softmax_fused, softmax_reference


class TestReference:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(4, 7)).astype(np.float32)
        y = softmax_reference(x)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-6)

    def test_known_values(self):
        y = softmax_reference(np.array([0.0, 0.0]))
        np.testing.assert_allclose(y, [0.5, 0.5])

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(
            softmax_reference(x), softmax_reference(x + 100.0), rtol=1e-6
        )

    def test_large_logits_stable(self):
        y = softmax_reference(np.array([1000.0, 1000.0, -1000.0]))
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y[:2], 0.5, rtol=1e-6)

    def test_mask_excludes_positions(self, rng):
        x = rng.normal(size=(2, 4)).astype(np.float32)
        mask = np.array([[0.0, 0.0, -1e9, -1e9]], dtype=np.float32)
        y = softmax_reference(x, mask=mask)
        assert (y[:, 2:] < 1e-6).all()
        np.testing.assert_allclose(y[:, :2].sum(axis=-1), 1.0, rtol=1e-5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            softmax_reference(np.empty((0,)))


class TestFusedMatchesReference:
    @pytest.mark.parametrize("shape", [(5,), (3, 8), (2, 4, 6), (2, 3, 4, 5)])
    def test_agreement(self, rng, shape):
        x = rng.normal(size=shape).astype(np.float32)
        np.testing.assert_allclose(
            softmax_fused(x.copy()), softmax_reference(x), rtol=1e-5, atol=1e-7
        )

    def test_in_place(self, rng):
        x = rng.normal(size=(4, 6)).astype(np.float32)
        expected = softmax_reference(x)
        out = softmax_fused(x, out=x)
        assert out is x
        np.testing.assert_allclose(x, expected, rtol=1e-5, atol=1e-7)

    def test_with_mask(self, rng):
        x = rng.normal(size=(2, 2, 5)).astype(np.float32)
        mask = np.where(np.arange(5) < 3, 0.0, -1e9).astype(np.float32)
        np.testing.assert_allclose(
            softmax_fused(x, mask=mask),
            softmax_reference(x, mask=mask),
            rtol=1e-5, atol=1e-7,
        )

    def test_out_shape_mismatch(self, rng):
        x = rng.normal(size=(2, 3))
        with pytest.raises(ValueError):
            softmax_fused(x, out=np.empty((3, 2)))

    def test_input_not_clobbered_without_out(self, rng):
        x = rng.normal(size=(3, 4)).astype(np.float32)
        original = x.copy()
        softmax_fused(x)
        np.testing.assert_array_equal(x, original)
