"""WordPiece tokenizer: training, tokenization, round trips."""

import pytest

from repro.text import (
    CLS,
    PAD,
    SEP,
    UNK,
    WordPieceTokenizer,
    basic_tokenize,
    pad_batch,
)

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "serving transformer models with low latency is hard",
    "batching requests improves gpu utilization",
    "variable length inputs complicate memory management",
] * 3


@pytest.fixture(scope="module")
def tokenizer():
    return WordPieceTokenizer.train(CORPUS, vocab_size=200)


class TestBasicTokenize:
    def test_lowercases_and_splits(self):
        assert basic_tokenize("The Quick FOX!") == ["the", "quick", "fox", "!"]

    def test_numbers_kept(self):
        assert basic_tokenize("bert2 rocks") == ["bert2", "rocks"]

    def test_punctuation_isolated(self):
        assert basic_tokenize("a,b") == ["a", ",", "b"]


class TestTraining:
    def test_specials_present(self, tokenizer):
        for token in (PAD, UNK, CLS, SEP):
            assert token in tokenizer.vocab

    def test_all_corpus_chars_covered(self, tokenizer):
        chars = {c for text in CORPUS for c in text.lower() if not c.isspace()}
        for c in chars:
            assert c in tokenizer.vocab

    def test_frequent_words_become_single_pieces(self, tokenizer):
        assert "the" in tokenizer.vocab

    def test_vocab_size_respected(self):
        tok = WordPieceTokenizer.train(CORPUS, vocab_size=120)
        assert tok.vocab_size <= 120

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            WordPieceTokenizer.train(CORPUS, vocab_size=10)

    def test_training_deterministic(self):
        a = WordPieceTokenizer.train(CORPUS, vocab_size=150)
        b = WordPieceTokenizer.train(CORPUS, vocab_size=150)
        assert a.vocab == b.vocab


class TestTokenize:
    def test_known_word_no_unk(self, tokenizer):
        assert UNK not in tokenizer.tokenize("the quick fox")

    def test_unseen_word_decomposes_to_subwords(self, tokenizer):
        pieces = tokenizer.tokenize("transformerization")
        assert len(pieces) >= 2
        assert UNK not in pieces  # char coverage guarantees a decomposition

    def test_unseen_characters_become_unk(self, tokenizer):
        assert tokenizer.tokenize("日本語") == [UNK] * 3

    def test_continuation_pieces_marked(self, tokenizer):
        pieces = tokenizer.tokenize("latencyx")
        assert pieces[0][0] != "#"
        assert all(p.startswith("##") for p in pieces[1:])

    def test_longest_match_first(self, tokenizer):
        """'the' must come out as one piece, not t + ##h + ##e."""
        assert tokenizer.tokenize("the") == ["the"]


class TestEncodeDecode:
    def test_specials_wrapped(self, tokenizer):
        ids = tokenizer.encode("gpu serving")
        assert ids[0] == tokenizer.vocab[CLS]
        assert ids[-1] == tokenizer.vocab[SEP]

    def test_truncation(self, tokenizer):
        ids = tokenizer.encode(" ".join(["latency"] * 100), max_len=16)
        assert len(ids) <= 16

    def test_decode_round_trip(self, tokenizer):
        text = "the lazy dog jumps"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_max_len_validated(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.encode("x", max_len=2)


class TestPadBatch:
    def test_pads_to_longest(self, tokenizer):
        encoded = [tokenizer.encode(t) for t in ("a b c", "a")]
        padded, lengths = pad_batch(encoded, tokenizer.pad_id)
        assert len(padded[0]) == len(padded[1])
        assert lengths == [len(encoded[0]), len(encoded[1])]
        assert padded[1][-1] == tokenizer.pad_id

    def test_empty_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            pad_batch([], tokenizer.pad_id)
