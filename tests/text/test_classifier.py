"""End-to-end text classification: tokenizer -> encoder -> head."""

import numpy as np
import pytest

from repro.models import init_encoder_weights, tiny_bert
from repro.text import (
    TextClassifier,
    WordPieceTokenizer,
    init_classifier_head,
)

CORPUS = [
    "the quick brown fox jumps over the lazy dog",
    "serving transformer models with low latency",
    "batching requests improves gpu utilization",
] * 4


@pytest.fixture(scope="module")
def classifier():
    config = tiny_bert()
    tokenizer = WordPieceTokenizer.train(CORPUS, vocab_size=95)
    return TextClassifier(
        tokenizer=tokenizer,
        config=config,
        weights=init_encoder_weights(config, seed=8),
        head=init_classifier_head(config.hidden_size, num_labels=3, seed=8),
    )


class TestClassifierHead:
    def test_probabilities_normalized(self, classifier):
        probs = classifier.predict_proba(["the quick fox", "gpu serving"])
        assert probs.shape == (2, 3)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    def test_head_shape_validated(self):
        with pytest.raises(ValueError):
            init_classifier_head(16, 3).__class__(
                pooler_w=np.zeros((16, 8), np.float32),
                pooler_b=np.zeros(16, np.float32),
                output_w=np.zeros((16, 3), np.float32),
                output_b=np.zeros(3, np.float32),
            )


class TestEndToEnd:
    def test_deterministic(self, classifier):
        a = classifier.classify(["the lazy dog", "low latency serving"])
        b = classifier.classify(["the lazy dog", "low latency serving"])
        assert a == b

    def test_batching_invariance(self, classifier):
        """The core serving guarantee: padding short texts into a batch
        with long ones must not change their predictions."""
        short = "the fox"
        long = "serving transformer models with low latency " * 4
        solo = classifier.predict_proba([short])[0]
        batched = classifier.predict_proba([short, long])[0]
        np.testing.assert_allclose(batched, solo, rtol=1e-3, atol=1e-4)

    def test_different_texts_differ(self, classifier):
        probs = classifier.predict_proba(
            ["the quick brown fox", "memory management is hard"]
        )
        assert not np.allclose(probs[0], probs[1])

    def test_empty_batch_rejected(self, classifier):
        with pytest.raises(ValueError):
            classifier.classify([])

    def test_vocab_overflow_rejected(self):
        config = tiny_bert()  # vocab_size = 100
        tokenizer = WordPieceTokenizer.train(CORPUS, vocab_size=200)
        if tokenizer.vocab_size <= config.vocab_size:
            pytest.skip("corpus too small to overflow")
        with pytest.raises(ValueError, match="exceeds"):
            TextClassifier(
                tokenizer=tokenizer,
                config=config,
                weights=init_encoder_weights(config),
                head=init_classifier_head(config.hidden_size, 2),
            )
