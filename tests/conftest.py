"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import RTX_2060, TESLA_V100, DeviceSpec
from repro.models import (
    bert_base,
    build_encoder_graph,
    init_encoder_weights,
    tiny_bert,
)


@pytest.fixture(scope="session")
def v100() -> DeviceSpec:
    return TESLA_V100


@pytest.fixture(scope="session")
def rtx2060() -> DeviceSpec:
    return RTX_2060


@pytest.fixture(scope="session")
def bert_graph():
    """Full-size fine-grained BERT graph (structure only; cheap to build)."""
    return build_encoder_graph(bert_base())


@pytest.fixture(scope="session")
def tiny_config():
    return tiny_bert()


@pytest.fixture(scope="session")
def tiny_weights(tiny_config):
    return init_encoder_weights(tiny_config, seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
