"""Warm-up cost table (Alg. 3's cached_cost)."""

import pytest

from repro.models import build_encoder_graph, tiny_bert
from repro.runtime import CostTable, turbo_runtime, warmup_profile


@pytest.fixture(scope="module")
def table():
    runtime = turbo_runtime(graph=build_encoder_graph(tiny_bert()))
    return warmup_profile(runtime, max_batch=4, lengths=[16, 32, 64, 128])


class TestCostTable:
    def test_bucket_rounds_up(self, table):
        assert table.bucket(1) == 16
        assert table.bucket(16) == 16
        assert table.bucket(17) == 32
        assert table.bucket(100) == 128

    def test_bucket_clamps_to_max(self, table):
        assert table.bucket(1000) == 128

    def test_bucket_matches_linear_scan_exhaustively(self, table):
        """Regression for the bisect rewrite: identical to the seed's
        linear scan (smallest profiled length >= seq_len, clamp to max)
        over every length up to past the clamp point, memo included."""
        for seq_len in range(1, 200):
            reference = next((l for l in table.lengths if l >= seq_len),
                             table.lengths[-1])
            assert table.bucket(seq_len) == reference  # memo miss
            assert table.bucket(seq_len) == reference  # memo hit

    def test_bucket_rejects_nonpositive(self, table):
        with pytest.raises(ValueError):
            table.bucket(0)

    def test_cost_monotone_in_length(self, table):
        assert table.cost(128, 1) > table.cost(16, 1)

    def test_cost_monotone_in_batch(self, table):
        assert table.cost(64, 4) > table.cost(64, 1)

    def test_per_request_cost_falls_with_batch(self, table):
        assert table.cost(64, 4) / 4 < table.cost(64, 1)

    def test_batch_out_of_range(self, table):
        with pytest.raises(ValueError):
            table.cost(64, 5)
        with pytest.raises(ValueError):
            table.cost(64, 0)

    def test_missing_entry_raises(self):
        empty = CostTable([16], max_batch=2)
        with pytest.raises(KeyError, match="warm-up"):
            empty.cost(16, 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CostTable([], max_batch=2)
        with pytest.raises(ValueError):
            CostTable([16], max_batch=0)
        with pytest.raises(ValueError):
            CostTable([0, 16], max_batch=2)

    def test_set_rejects_nonpositive_cost(self, table):
        with pytest.raises(ValueError):
            table.set(16, 1, 0.0)


class TestPersistence:
    def test_json_round_trip(self, table, tmp_path):
        """The paper stores cached_cost on disk and reloads it on restart."""
        path = tmp_path / "cost.json"
        table.to_json(path)
        reloaded = CostTable.from_json(path)
        assert reloaded.lengths == table.lengths
        assert reloaded.max_batch == table.max_batch
        assert reloaded.cost(64, 3) == table.cost(64, 3)


class TestInterpolation:
    @pytest.fixture(scope="class")
    def interp_table(self):
        table = CostTable([100, 200], max_batch=2, interpolate=True)
        table.set(100, 1, 0.010)
        table.set(200, 1, 0.020)
        table.set(100, 2, 0.015)
        table.set(200, 2, 0.030)
        return table

    def test_exact_at_grid_points(self, interp_table):
        assert interp_table.cost(100, 1) == pytest.approx(0.010)
        assert interp_table.cost(200, 1) == pytest.approx(0.020)

    def test_linear_between_points(self, interp_table):
        assert interp_table.cost(150, 1) == pytest.approx(0.015)
        assert interp_table.cost(150, 2) == pytest.approx(0.0225)

    def test_clamps_below_grid(self, interp_table):
        assert interp_table.cost(10, 1) == pytest.approx(0.010)

    def test_clamps_above_grid(self, interp_table):
        assert interp_table.cost(999, 1) == pytest.approx(0.020)

    def test_interpolation_never_exceeds_bucket(self, table):
        """Interpolated values are <= the round-up bucket value (cost is
        monotone in length)."""
        interp = CostTable(table.lengths, table.max_batch, interpolate=True)
        for length in table.lengths:
            for batch in range(1, table.max_batch + 1):
                interp.set(length, batch, table.cost(length, batch))
        for seq in (20, 50, 90, 127):
            assert interp.cost(seq, 2) <= table.cost(seq, 2) + 1e-12
