"""Padding-free packed batching: node classification and cost model."""

import pytest

from repro.gpusim import RTX_2060
from repro.graph import fuse_graph
from repro.runtime import (
    PackedRuntime,
    TURBO_CHARACTERISTICS,
    is_quadratic_in_seq,
    seq_occurrences,
    turbo_runtime,
)


@pytest.fixture(scope="module")
def packed(bert_graph):
    return PackedRuntime(bert_graph, TURBO_CHARACTERISTICS, RTX_2060)


class TestClassification:
    def test_attention_core_is_quadratic(self, bert_graph):
        fused = fuse_graph(bert_graph)
        quadratic = {n.name for n in fused.nodes if is_quadratic_in_seq(n)}
        assert "l0.scores_gemm" in quadratic
        assert "l0.context_gemm" in quadratic
        assert any("softmax" in name for name in quadratic)

    def test_projections_are_shared(self, bert_graph):
        fused = fuse_graph(bert_graph)
        shared = {n.name for n in fused.nodes if not is_quadratic_in_seq(n)}
        assert "l0.q_gemm" in shared
        assert "l0.ffn1_gemm" in shared

    def test_three_quadratic_nodes_per_layer(self, packed):
        # scores GEMM, fused scale+softmax, context GEMM
        assert packed.quadratic_node_count == 3 * 12

    def test_seq_occurrences_counts(self, bert_graph):
        scores = bert_graph.find_node("l0.scores_gemm")
        assert seq_occurrences(scores) == 2
        qkv = bert_graph.find_node("l0.q_gemm")
        assert seq_occurrences(qkv) == 1


class TestPackedCost:
    def test_single_request_matches_runtime_kernels(self, packed, bert_graph):
        """A packed 'batch' of one request is just a normal inference."""
        runtime = turbo_runtime(graph=bert_graph, enable_memory_manager=False)
        single = packed.packed_latency([250])
        normal = runtime.latency(1, 250)
        assert single == pytest.approx(normal, rel=0.02)

    def test_packed_beats_padded_on_mixed_lengths(self, packed, bert_graph):
        runtime = turbo_runtime(graph=bert_graph)
        lengths = [17, 18, 52, 63, 77, 250, 400]
        packed_cost = packed.packed_latency(lengths)
        padded_cost = runtime.latency(len(lengths), max(lengths))
        assert packed_cost < 0.6 * padded_cost

    def test_packed_near_padded_on_uniform_lengths(self, packed, bert_graph):
        """With identical lengths there is no padding to save: packed and
        padded should be close (packed still saves per-request attention
        batching differences only)."""
        runtime = turbo_runtime(graph=bert_graph, enable_memory_manager=False)
        lengths = [128] * 8
        packed_cost = packed.packed_latency(lengths)
        padded_cost = runtime.latency(8, 128)
        assert packed_cost == pytest.approx(padded_cost, rel=0.35)

    def test_monotone_in_added_request(self, packed):
        base = packed.packed_latency([100, 200])
        more = packed.packed_latency([100, 200, 50])
        assert more > base

    def test_order_invariant(self, packed):
        assert packed.packed_latency([10, 400, 90]) == \
            packed.packed_latency([400, 90, 10])

    def test_validation(self, packed):
        with pytest.raises(ValueError):
            packed.packed_latency([])
        with pytest.raises(ValueError):
            packed.packed_latency([10, 0])
