"""InferenceRuntime and DecoderRuntime behaviour."""

import pytest

from repro.gpusim import RTX_2060
from repro.models import (
    build_decoder_step_graph,
    seq2seq_decoder,
    tiny_bert,
    build_encoder_graph,
)
from repro.runtime import (
    DecoderRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
    pytorch_runtime,
    turbo_runtime,
)


@pytest.fixture(scope="module")
def turbo(bert_graph):
    return turbo_runtime(graph=bert_graph)


class TestInferenceRuntime:
    def test_latency_positive_and_monotone_in_length(self, turbo):
        latencies = [turbo.latency(1, seq) for seq in (16, 64, 256, 500)]
        assert all(x > 0 for x in latencies)
        assert latencies == sorted(latencies)

    def test_latency_monotone_in_batch(self, turbo):
        latencies = [turbo.latency(b, 128) for b in (1, 4, 16)]
        assert latencies == sorted(latencies)

    def test_batching_amortizes(self, turbo):
        """Per-request cost falls with batch size (Fig. 8)."""
        per_request_1 = turbo.latency(1, 64)
        per_request_16 = turbo.latency(16, 64) / 16
        assert per_request_16 < per_request_1

    def test_latency_memoized(self, turbo):
        assert turbo.latency(2, 100) == turbo.latency(2, 100)

    def test_infer_reports_breakdown(self, turbo):
        result = turbo.infer(1, 128)
        assert result.kernel_launches == len(turbo.graph.nodes)
        assert result.latency_s >= result.kernel_s
        assert result.time_by_kernel

    def test_memory_overhead_below_paper_bound(self, turbo):
        """§6.1.1: less than 6% of performance lost to memory management."""
        turbo.infer(1, 250)  # warm the chunk cache
        result = turbo.infer(1, 250)
        assert result.memory_overhead_fraction < 0.06

    def test_fusion_reduces_launches(self, bert_graph):
        fused = turbo_runtime(graph=bert_graph)
        unfused = pytorch_runtime(graph=bert_graph)
        assert fused.kernel_launch_count < unfused.kernel_launch_count

    def test_fixed_length_runtime_pays_preprocessing_offline(self, bert_graph):
        from repro.runtime import tensorrt_runtime

        rt = tensorrt_runtime(graph=bert_graph)
        rt.infer(1, 100)
        assert rt.preprocess_total_s == rt.chars.preprocess_s
        rt.infer(1, 100)  # same shape: no new engine build
        assert rt.preprocess_total_s == rt.chars.preprocess_s
        rt.infer(1, 200)  # new shape: another engine
        assert rt.preprocess_total_s == 2 * rt.chars.preprocess_s

    def test_invalid_request_rejected(self, turbo):
        with pytest.raises(ValueError):
            turbo.infer(0, 10)
        with pytest.raises(ValueError):
            turbo.latency(1, 0)

    def test_tiny_model_cheaper_than_base(self, bert_graph):
        tiny = turbo_runtime(graph=build_encoder_graph(tiny_bert()))
        base = turbo_runtime(graph=bert_graph)
        assert tiny.latency(1, 32) < base.latency(1, 32)


class TestDecoderRuntime:
    @pytest.fixture(scope="class")
    def runtimes(self):
        config = seq2seq_decoder()
        graph = build_decoder_step_graph(config)
        turbo = DecoderRuntime(graph, TURBO_CHARACTERISTICS, RTX_2060,
                               config.beam_size)
        pytorch = DecoderRuntime(graph, PYTORCH_CHARACTERISTICS, RTX_2060,
                                 config.beam_size, step_overhead_s=2.5e-3)
        return turbo, pytorch

    def test_step_cost_grows_with_cache_length(self, runtimes):
        turbo, _ = runtimes
        assert turbo.step_latency(200, 64) > turbo.step_latency(1, 64)

    def test_decode_grows_with_target_length(self, runtimes):
        turbo, _ = runtimes
        assert turbo.decode_latency(64, 100) > turbo.decode_latency(64, 50)

    def test_decode_grows_with_source_length(self, runtimes):
        turbo, _ = runtimes
        assert turbo.decode_latency(500, 50) > turbo.decode_latency(10, 50)

    def test_turbo_faster_than_pytorch(self, runtimes):
        turbo, pytorch = runtimes
        assert turbo.decode_latency(64, 64) < pytorch.decode_latency(64, 64)

    def test_strided_sum_close_to_exact(self):
        """The stride approximation must track the exact per-step sum."""
        config = seq2seq_decoder()
        graph = build_decoder_step_graph(config)
        exact = DecoderRuntime(graph, TURBO_CHARACTERISTICS, RTX_2060,
                               config.beam_size, stride=1)
        approx = DecoderRuntime(graph, TURBO_CHARACTERISTICS, RTX_2060,
                                config.beam_size, stride=8)
        e = exact.decode_latency(48, 48)
        a = approx.decode_latency(48, 48)
        assert abs(a - e) / e < 0.02

    def test_validation(self, runtimes):
        turbo, _ = runtimes
        with pytest.raises(ValueError):
            turbo.step_latency(0, 10)
        with pytest.raises(ValueError):
            turbo.decode_latency(10, 0)
        with pytest.raises(ValueError):
            DecoderRuntime(
                build_decoder_step_graph(seq2seq_decoder()),
                TURBO_CHARACTERISTICS, RTX_2060, beam_size=0,
            )
