"""Runtime presets implement the Table 1 feature matrix."""

import pytest

from repro.gpusim import ReductionImpl
from repro.runtime import (
    FASTER_TRANSFORMER_CHARACTERISTICS,
    ONNXRUNTIME_CHARACTERISTICS,
    PYTORCH_CHARACTERISTICS,
    RUNTIME_FACTORIES,
    TENSORRT_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
    XLA_CHARACTERISTICS,
)


class TestTable1Properties:
    def test_turbo_no_preprocess_variable_length(self):
        assert TURBO_CHARACTERISTICS.preprocess_s == 0.0
        assert TURBO_CHARACTERISTICS.supports_variable_length
        assert TURBO_CHARACTERISTICS.usage == "easy"

    def test_pytorch_variable_length_no_fusion(self):
        assert PYTORCH_CHARACTERISTICS.supports_variable_length
        assert not PYTORCH_CHARACTERISTICS.fuse_kernels
        assert PYTORCH_CHARACTERISTICS.reduction_impl is ReductionImpl.PYTORCH

    def test_fixed_length_runtimes(self):
        for chars in (XLA_CHARACTERISTICS, TENSORRT_CHARACTERISTICS,
                      FASTER_TRANSFORMER_CHARACTERISTICS):
            assert not chars.supports_variable_length
            assert chars.preprocess_s > 0

    def test_onnx_is_the_variable_length_baseline(self):
        assert ONNXRUNTIME_CHARACTERISTICS.supports_variable_length
        assert ONNXRUNTIME_CHARACTERISTICS.usage == "medium"

    def test_only_turbo_uses_turbo_reductions(self):
        others = [
            PYTORCH_CHARACTERISTICS, ONNXRUNTIME_CHARACTERISTICS,
            XLA_CHARACTERISTICS, TENSORRT_CHARACTERISTICS,
            FASTER_TRANSFORMER_CHARACTERISTICS,
        ]
        assert TURBO_CHARACTERISTICS.reduction_impl is ReductionImpl.TURBO
        assert all(c.reduction_impl is not ReductionImpl.TURBO for c in others)

    def test_tensorrt_hard_usage(self):
        assert TENSORRT_CHARACTERISTICS.usage == "hard"
        assert FASTER_TRANSFORMER_CHARACTERISTICS.usage == "hard"


class TestFactories:
    def test_registry_complete(self):
        assert set(RUNTIME_FACTORIES) == {
            "turbo", "pytorch", "onnxruntime", "xla",
            "fastertransformer", "tensorrt",
        }

    @pytest.mark.parametrize("name", sorted(
        ["turbo", "pytorch", "onnxruntime", "xla", "fastertransformer", "tensorrt"]
    ))
    def test_factory_builds_working_runtime(self, name, bert_graph):
        runtime = RUNTIME_FACTORIES[name](graph=bert_graph)
        assert runtime.latency(1, 32) > 0

    def test_turbo_ablation_flags(self, bert_graph):
        from repro.runtime import turbo_runtime

        no_fusion = turbo_runtime(graph=bert_graph, enable_fusion=False)
        fused = turbo_runtime(graph=bert_graph)
        assert no_fusion.kernel_launch_count > fused.kernel_launch_count
        no_mm = turbo_runtime(graph=bert_graph, enable_memory_manager=False)
        assert no_mm.allocator is None
