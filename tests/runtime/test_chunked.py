"""Prefill chunker: tiling and telescoping cost conservation."""

import pytest

from repro.gpusim import RTX_2060
from repro.models import build_decode_step_graph, build_prefill_graph, tiny_gpt
from repro.runtime import (
    TURBO_CHARACTERISTICS,
    GenerationRuntime,
    PrefillChunk,
    PrefillChunker,
)

CONFIG = tiny_gpt()


@pytest.fixture(scope="module")
def runtime():
    return GenerationRuntime(build_prefill_graph(CONFIG),
                             build_decode_step_graph(CONFIG),
                             TURBO_CHARACTERISTICS, RTX_2060, stride=1)


class TestTiling:
    def test_chunks_tile_prompt(self):
        chunks = PrefillChunker(chunk_tokens=8).chunks(21)
        assert [(c.start, c.end) for c in chunks] == [(0, 8), (8, 16),
                                                      (16, 21)]
        assert [c.index for c in chunks] == [0, 1, 2]
        assert sum(c.tokens for c in chunks) == 21

    def test_exact_multiple(self):
        chunks = PrefillChunker(chunk_tokens=8).chunks(16)
        assert [(c.start, c.tokens) for c in chunks] == [(0, 8), (8, 8)]

    def test_chunk_larger_than_prompt_is_single_chunk(self):
        chunks = PrefillChunker(chunk_tokens=512).chunks(30)
        assert len(chunks) == 1
        assert chunks[0] == PrefillChunk(index=0, start=0, tokens=30)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefillChunker(chunk_tokens=0)
        with pytest.raises(ValueError):
            PrefillChunker(chunk_tokens=8, per_chunk_overhead_s=-1e-9)
        with pytest.raises(ValueError):
            PrefillChunker(chunk_tokens=8).chunks(0)
        with pytest.raises(ValueError):
            PrefillChunk(index=0, start=0, tokens=0)
        with pytest.raises(ValueError):
            PrefillChunk(index=-1, start=0, tokens=1)
        with pytest.raises(ValueError):
            PrefillChunk(index=0, start=-1, tokens=1)


class TestTelescoping:
    @pytest.mark.parametrize("prompt_len", [5, 16, 21, 32])
    @pytest.mark.parametrize("chunk_tokens", [4, 8, 512])
    def test_sum_matches_unchunked(self, runtime, prompt_len, chunk_tokens):
        chunker = PrefillChunker(chunk_tokens=chunk_tokens)
        lats = chunker.pass_latencies(runtime, 2, prompt_len)
        assert all(l >= 0.0 for l in lats)
        assert sum(lats) == pytest.approx(
            runtime.prefill_latency(2, prompt_len), rel=1e-12)

    def test_single_chunk_is_bit_identical(self, runtime):
        chunker = PrefillChunker(chunk_tokens=512)
        [lat] = chunker.pass_latencies(runtime, 3, 30)
        assert lat == runtime.prefill_latency(3, 30)

    def test_marginal_chunks_cost_positive(self, runtime):
        # Every chunk does real work (the cost model is increasing in
        # prompt length, so no marginal chunk collapses to zero).
        lats = PrefillChunker(chunk_tokens=8).pass_latencies(runtime, 1, 32)
        assert len(lats) == 4
        assert all(l > 0.0 for l in lats)

    def test_per_chunk_overhead_charged_after_first(self, runtime):
        base = PrefillChunker(chunk_tokens=8)
        taxed = PrefillChunker(chunk_tokens=8, per_chunk_overhead_s=1e-5)
        extra = sum(taxed.pass_latencies(runtime, 1, 24)) \
            - sum(base.pass_latencies(runtime, 1, 24))
        assert extra == pytest.approx(2e-5)  # 3 chunks -> 2 taxed

    def test_non_monotone_cost_model_clamped(self):
        class Weird:
            def prefill_latency(self, batch, tokens):
                return 1.0 if tokens <= 8 else 0.5  # decreasing!

        chunker = PrefillChunker(chunk_tokens=8)
        lats = chunker.pass_latencies(Weird(), 1, 16)
        assert lats == [1.0, 0.0]  # clamped, never negative
