"""Device-memory capacity planning (§4.2's footprint/batch-size link)."""

import pytest

from repro.runtime import max_feasible_batch, safe_max_batch, serving_batch_limits

MB = 2**20


class TestMaxFeasibleBatch:
    def test_monotone_in_budget(self, bert_graph):
        small = max_feasible_batch(bert_graph, 256, 64 * MB, max_batch=32)
        large = max_feasible_batch(bert_graph, 256, 512 * MB, max_batch=32)
        assert small < large

    def test_monotone_in_length(self, bert_graph):
        limits = serving_batch_limits(bert_graph, 128 * MB, [64, 256, 500],
                                      max_batch=32)
        assert limits[64] >= limits[256] >= limits[500]

    def test_zero_when_nothing_fits(self, bert_graph):
        assert max_feasible_batch(bert_graph, 500, 1 * MB, max_batch=4) == 0

    def test_capped_by_max_batch(self, bert_graph):
        assert max_feasible_batch(bert_graph, 64, 10**12, max_batch=8) == 8

    def test_plan_at_limit_really_fits(self, bert_graph):
        """The returned batch is actually plannable within the budget."""
        from repro.gpusim.memory import DeviceMemory
        from repro.graph import fuse_graph, tensor_usage_records
        from repro.memory import TurboAllocator

        budget = 96 * MB
        limit = max_feasible_batch(bert_graph, 256, budget, max_batch=32)
        assert limit > 0
        records = tensor_usage_records(
            fuse_graph(bert_graph), {"batch": limit, "seq": 256}
        )
        allocator = TurboAllocator(device_memory=DeviceMemory(capacity_bytes=budget))
        allocator.plan(records)  # must not raise
        assert allocator.footprint_bytes <= budget

    def test_safe_max_batch_is_worst_case(self, bert_graph):
        safe = safe_max_batch(bert_graph, 128 * MB, max_seq_len=500, max_batch=32)
        at_500 = max_feasible_batch(bert_graph, 500, 128 * MB, max_batch=32)
        assert safe == at_500

    @pytest.mark.parametrize("kwargs", [
        {"seq_len": 0, "activation_budget_bytes": MB},
        {"seq_len": 10, "activation_budget_bytes": 0},
        {"seq_len": 10, "activation_budget_bytes": MB, "max_batch": 0},
    ])
    def test_validation(self, bert_graph, kwargs):
        with pytest.raises(ValueError):
            max_feasible_batch(bert_graph, **kwargs)
