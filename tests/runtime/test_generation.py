"""GenerationRuntime: prefill/decode latency model."""

import pytest

from repro.gpusim import RTX_2060
from repro.models import build_decode_step_graph, build_prefill_graph, gpt_small
from repro.runtime import (
    GenerationRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
)


@pytest.fixture(scope="module")
def runtimes():
    config = gpt_small()
    prefill = build_prefill_graph(config)
    decode = build_decode_step_graph(config)
    turbo = GenerationRuntime(prefill, decode, TURBO_CHARACTERISTICS,
                              RTX_2060, step_overhead_s=0.1e-3)
    pytorch = GenerationRuntime(prefill, decode, PYTORCH_CHARACTERISTICS,
                                RTX_2060, step_overhead_s=2.5e-3)
    return turbo, pytorch


class TestPrefill:
    def test_grows_with_prompt(self, runtimes):
        turbo, _ = runtimes
        assert turbo.prefill_latency(1, 512) > turbo.prefill_latency(1, 32)

    def test_batch_amortizes(self, runtimes):
        turbo, _ = runtimes
        per1 = turbo.prefill_latency(1, 64)
        per8 = turbo.prefill_latency(8, 64) / 8
        assert per8 < per1


class TestDecode:
    def test_step_grows_with_cache(self, runtimes):
        turbo, _ = runtimes
        assert turbo.decode_step_latency(1, 900) > turbo.decode_step_latency(1, 8)

    def test_decode_step_cheaper_than_prefill(self, runtimes):
        """One token's work vs a whole prompt's."""
        turbo, _ = runtimes
        assert turbo.decode_step_latency(1, 128) < turbo.prefill_latency(1, 128)

    def test_generate_latency_composition(self, runtimes):
        turbo, _ = runtimes
        total = turbo.generate_latency(128, 32)
        assert total > turbo.prefill_latency(1, 128)
        assert total > 32 * turbo.decode_step_latency(1, 128) * 0.5

    def test_turbo_beats_pytorch(self, runtimes):
        turbo, pytorch = runtimes
        assert turbo.generate_latency(128, 64) < pytorch.generate_latency(128, 64)

    def test_tokens_per_second_sane(self, runtimes):
        turbo, _ = runtimes
        tps = turbo.tokens_per_second(128, 64)
        assert 10 < tps < 10_000

    def test_strided_close_to_exact(self):
        config = gpt_small()
        prefill = build_prefill_graph(config)
        decode = build_decode_step_graph(config)
        exact = GenerationRuntime(prefill, decode, TURBO_CHARACTERISTICS,
                                  RTX_2060, stride=1)
        approx = GenerationRuntime(prefill, decode, TURBO_CHARACTERISTICS,
                                   RTX_2060, stride=8)
        e = exact.generate_latency(64, 48)
        a = approx.generate_latency(64, 48)
        assert abs(a - e) / e < 0.02

    def test_validation(self, runtimes):
        turbo, _ = runtimes
        with pytest.raises(ValueError):
            turbo.prefill_latency(0, 10)
        with pytest.raises(ValueError):
            turbo.decode_step_latency(1, 0)
        with pytest.raises(ValueError):
            turbo.generate_latency(10, 0)


class TestInstrumentation:
    """The shared observability path every generative consumer funnels
    through (continuous server, request-level control, trace CLI)."""

    def test_timeline_total_matches_generate_latency(self, runtimes):
        turbo, _ = runtimes
        for prompt, new in ((32, 1), (64, 7), (128, 48)):
            timeline = turbo.generate_timeline(prompt, new, batch=2)
            assert timeline.total_s == turbo.generate_latency(prompt, new, 2)
            assert timeline.ttft_s == turbo.prefill_latency(2, prompt)
            assert timeline.tpot_s == pytest.approx(
                (timeline.total_s - timeline.ttft_s) / new)

    def test_timeline_emits_one_span_per_stride(self, runtimes):
        from repro.observability import MetricsRegistry, Tracer

        turbo, _ = runtimes
        tracer = Tracer()
        registry = MetricsRegistry()
        timeline = turbo.generate_timeline(64, 20, tracer=tracer,
                                           metrics=registry, system="test")
        events = tracer.to_dict()["traceEvents"]
        decode = [e for e in events if e["name"].startswith("decode x")]
        prefill = [e for e in events if e["name"].startswith("prefill x")]
        # 20 tokens at the module stride of 8 -> strides of 8, 8, 4.
        assert len(decode) == len(timeline.stride_ends) == 3
        assert len(prefill) == 1
        # Spans tile the timeline: each stride starts where the last ended.
        assert decode[0]["ts"] == pytest.approx(prefill[0]["ts"]
                                                + prefill[0]["dur"])
        assert registry.counter("generation_requests_total",
                                system="test").value == 1

    def test_publish_request_metrics_shared_names(self, runtimes):
        from repro.observability import MetricsRegistry

        turbo, _ = runtimes
        registry = MetricsRegistry()
        turbo.publish_request_metrics(registry, req_id=1, ttft_s=0.01,
                                      tpot_s=0.001, system="loop-a")
        turbo.publish_request_metrics(registry, req_id=2, ttft_s=0.02,
                                      tpot_s=0.002, system="loop-b")
        # Same histogram family, distinguished only by the system label.
        for system in ("loop-a", "loop-b"):
            h = registry.histogram("generation_ttft_ms", system=system)
            assert h.count == 1

    def test_disabled_tracer_and_no_metrics_are_free(self, runtimes):
        turbo, _ = runtimes
        # None sinks must be accepted and change nothing.
        timeline = turbo.generate_timeline(32, 4, tracer=None, metrics=None)
        assert timeline.total_s == turbo.generate_latency(32, 4, 1)
