"""End-to-end allocator validation: real numerics through planned buffers.

The strongest correctness evidence in the repository: the fine-grained
encoder graph executes with every intermediate tensor living at its
Algorithm-1-planned (chunk, offset) — disjoint-lifetime tensors genuinely
share bytes — and the result matches the straight-line NumPy forward.
"""

import numpy as np
import pytest

from repro.memory import TurboAllocator
from repro.models import (
    build_albert_graph,
    build_encoder_graph,
    encoder_forward,
    init_albert_weights,
    init_encoder_weights,
    tiny_albert,
    tiny_bert,
)
from repro.runtime.executor import ExecutionError, PlannedGraphExecutor


@pytest.fixture(scope="module")
def bert_setup():
    config = tiny_bert()
    weights = init_encoder_weights(config, seed=21)
    graph = build_encoder_graph(config)
    return config, weights, graph


class TestPlannedExecution:
    def test_matches_reference_forward(self, bert_setup):
        config, weights, graph = bert_setup
        executor = PlannedGraphExecutor(graph, config, weights)
        ids = np.random.default_rng(0).integers(0, config.vocab_size, (2, 12))
        planned = executor.run(ids)
        reference = encoder_forward(config, weights, ids, fused=False)
        np.testing.assert_allclose(planned, reference, rtol=1e-3, atol=1e-4)

    def test_albert_graph_executes(self):
        config = tiny_albert()
        weights = init_albert_weights(config, seed=3)
        graph = build_albert_graph(config)
        executor = PlannedGraphExecutor(graph, config, weights)
        ids = np.random.default_rng(1).integers(0, config.vocab_size, (1, 9))
        from repro.models import albert_forward

        np.testing.assert_allclose(
            executor.run(ids),
            albert_forward(config, weights, ids, fused=False),
            rtol=1e-3, atol=1e-4,
        )

    def test_variable_lengths_share_one_allocator(self, bert_setup):
        """The Fig. 6 scenario with real numerics: consecutive requests of
        different lengths re-plan into the same chunk cache and all stay
        correct."""
        config, weights, graph = bert_setup
        allocator = TurboAllocator()
        executor = PlannedGraphExecutor(graph, config, weights, allocator)
        rng = np.random.default_rng(2)
        for seq_len in (20, 32, 8, 48, 20):
            ids = rng.integers(0, config.vocab_size, (1, seq_len))
            planned = executor.run(ids)
            reference = encoder_forward(config, weights, ids, fused=False)
            np.testing.assert_allclose(planned, reference, rtol=1e-3, atol=1e-4)

    def test_arena_far_smaller_than_total_tensor_bytes(self, bert_setup):
        """Lifetime sharing is real: the arena is a fraction of the sum of
        all intermediate tensor sizes."""
        from repro.graph import tensor_usage_records

        config, weights, graph = bert_setup
        # Small chunks so quantization does not mask the sharing (the tiny
        # test model's tensors are far below the 2 MB production default).
        executor = PlannedGraphExecutor(
            graph, config, weights, TurboAllocator(chunk_size=8192)
        )
        ids = np.random.default_rng(3).integers(0, config.vocab_size, (2, 24))
        executor.run(ids)
        total = sum(
            r.size for r in tensor_usage_records(graph, {"batch": 2, "seq": 24})
        )
        assert executor.arena_bytes() < 0.5 * total

    def test_batch_execution(self, bert_setup):
        config, weights, graph = bert_setup
        executor = PlannedGraphExecutor(graph, config, weights)
        ids = np.random.default_rng(4).integers(0, config.vocab_size, (4, 16))
        out = executor.run(ids)
        assert out.shape == (4, 16, config.hidden_size)

    def test_rank_validated(self, bert_setup):
        config, weights, graph = bert_setup
        executor = PlannedGraphExecutor(graph, config, weights)
        with pytest.raises(ValueError):
            executor.run(np.array([1, 2, 3]))

    def test_arena_bytes_requires_run(self, bert_setup):
        config, weights, graph = bert_setup
        executor = PlannedGraphExecutor(graph, config, weights)
        with pytest.raises(ExecutionError):
            executor.arena_bytes()


class TestAliasingIsLoadBearing:
    def test_corrupt_plan_would_corrupt_output(self, bert_setup):
        """Demonstrate the test above has teeth: force two *live* tensors
        to overlap and show execution through such an arena diverges from
        the reference (validate_plan rejects it first, of course)."""
        from repro.graph import tensor_usage_records
        from repro.memory import PlanError, Placement, validate_plan

        config, weights, graph = bert_setup
        records = tensor_usage_records(graph, {"batch": 1, "seq": 8})
        allocator = TurboAllocator()
        plan = allocator.plan(records)
        # Overlap two concurrently-live tensors: q_proj and k_proj.
        q = plan.placements["l0.q_proj"]
        plan.placements["l0.k_proj"] = Placement(q.chunk_id, q.offset)
        with pytest.raises(PlanError, match="overlap"):
            validate_plan(plan, records)


class TestFusedGraphExecution:
    """Numeric validation of the fusion pass itself: the FUSED graph (what
    Turbo actually plans and runs) produces the same outputs through
    planned buffers, with eliminated tensors living only in a transient
    overlay (the register/shared-memory analogue)."""

    def test_fused_graph_matches_reference(self, bert_setup):
        from repro.graph import fuse_graph

        config, weights, graph = bert_setup
        fused = fuse_graph(graph)
        executor = PlannedGraphExecutor(fused, config, weights)
        ids = np.random.default_rng(5).integers(0, config.vocab_size, (2, 10))
        planned = executor.run(ids)
        reference = encoder_forward(config, weights, ids, fused=False)
        np.testing.assert_allclose(planned, reference, rtol=1e-3, atol=1e-4)

    def test_fused_arena_smaller_than_fine_arena(self, bert_setup):
        """Fusion eliminates short-lived intermediates from the plan."""
        from repro.graph import fuse_graph, tensor_usage_records

        config, weights, graph = bert_setup
        bindings = {"batch": 2, "seq": 24}
        fine = sum(r.size for r in tensor_usage_records(graph, bindings))
        fused_graph = fuse_graph(graph)
        fused = sum(r.size for r in tensor_usage_records(fused_graph, bindings))
        assert fused < fine

    def test_fused_variable_length_stream(self, bert_setup):
        from repro.graph import fuse_graph

        config, weights, graph = bert_setup
        executor = PlannedGraphExecutor(fuse_graph(graph), config, weights)
        rng = np.random.default_rng(6)
        for seq_len in (16, 40, 8):
            ids = rng.integers(0, config.vocab_size, (1, seq_len))
            np.testing.assert_allclose(
                executor.run(ids),
                encoder_forward(config, weights, ids, fused=False),
                rtol=1e-3, atol=1e-4,
            )
