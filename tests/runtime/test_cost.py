"""Graph-node cost mapping."""

import pytest

from repro.gpusim import RTX_2060, ReductionImpl
from repro.graph import ComputationGraph, OpType, TensorKind, fuse_graph
from repro.runtime import RuntimeCharacteristics, graph_cost, node_cost, resolve_product


PLAIN = RuntimeCharacteristics(
    name="plain", fuse_kernels=False, reduction_impl=ReductionImpl.TURBO
)


class TestResolveProduct:
    def test_scalar(self):
        assert resolve_product(7, {}) == 7

    def test_symbol(self):
        assert resolve_product("seq", {"seq": 5}) == 5

    def test_product(self):
        assert resolve_product(("batch", 12, "seq"), {"batch": 2, "seq": 10}) == 240

    def test_unbound_raises(self):
        with pytest.raises(KeyError):
            resolve_product(("batch",), {})


def small_graph() -> ComputationGraph:
    g = ComputationGraph("g")
    g.tensor("in", ("batch", 8), TensorKind.INPUT)
    g.tensor("w", (8, 8), TensorKind.WEIGHT)
    g.tensor("h", ("batch", 8))
    g.tensor("h2", ("batch", 8))
    g.tensor("out", ("batch", 8), TensorKind.OUTPUT)
    g.add_node("gemm", OpType.GEMM, ["in", "w"], ["h"], m=("batch",), n=8, k=8)
    g.add_node("bias", OpType.ELEMENTWISE, ["h"], ["h2"],
               nelems=("batch", 8), reads=1, writes=1, flops_per_elem=1)
    g.add_node("ln", OpType.LAYERNORM, ["h2"], ["out"], rows=("batch",), row_len=8)
    return g


class TestNodeCost:
    def test_every_node_priced(self):
        timings = graph_cost(small_graph().nodes, {"batch": 4}, PLAIN, RTX_2060)
        assert len(timings) == 3
        assert all(t.total_s > 0 for t in timings)

    def test_cost_scales_with_bindings(self):
        nodes = small_graph().nodes
        small = sum(t.total_s for t in graph_cost(nodes, {"batch": 4}, PLAIN, RTX_2060))
        large = sum(t.total_s for t in graph_cost(nodes, {"batch": 4000}, PLAIN, RTX_2060))
        assert large > small

    def test_reduction_impl_respected(self):
        node = small_graph().nodes[2]
        fast = node_cost(node, {"batch": 50000}, PLAIN, RTX_2060)
        slow_chars = RuntimeCharacteristics(
            name="slow", fuse_kernels=False, reduction_impl=ReductionImpl.PYTORCH
        )
        slow = node_cost(node, {"batch": 50000}, slow_chars, RTX_2060)
        assert slow.total_s > fast.total_s

    def test_gemm_tuning_boost_capped(self):
        """Autotuning recovers underfill; a saturating GEMM gets nothing."""
        g = ComputationGraph("g2")
        g.tensor("in", (10000, 768), TensorKind.INPUT)
        g.tensor("w", (768, 768), TensorKind.WEIGHT)
        g.tensor("out", (10000, 768), TensorKind.OUTPUT)
        g.add_node("big", OpType.GEMM, ["in", "w"], ["out"], m=10000, n=768, k=768)
        node = g.nodes[0]
        tuned = RuntimeCharacteristics(
            name="t", fuse_kernels=False, reduction_impl=ReductionImpl.TURBO,
            gemm_tuning=1.5,
        )
        base = node_cost(node, {}, PLAIN, RTX_2060)
        boosted = node_cost(node, {}, tuned, RTX_2060)
        assert boosted.total_s == pytest.approx(base.total_s)

    def test_gemm_tuning_helps_small_gemm(self):
        node = small_graph().nodes[0]
        tuned = RuntimeCharacteristics(
            name="t", fuse_kernels=False, reduction_impl=ReductionImpl.TURBO,
            gemm_tuning=1.5,
        )
        base = node_cost(node, {"batch": 4}, PLAIN, RTX_2060)
        boosted = node_cost(node, {"batch": 4}, tuned, RTX_2060)
        assert boosted.compute_s < base.compute_s

    def test_gemm_derate_always_applies(self):
        node = small_graph().nodes[0]
        derated = RuntimeCharacteristics(
            name="d", fuse_kernels=False, reduction_impl=ReductionImpl.TURBO,
            gemm_tuning=0.5,
        )
        base = node_cost(node, {"batch": 4}, PLAIN, RTX_2060)
        slow = node_cost(node, {"batch": 4}, derated, RTX_2060)
        assert slow.compute_s == pytest.approx(base.compute_s * 2)

    def test_fused_node_single_launch(self):
        fused = fuse_graph(small_graph())
        fused_node = next(n for n in fused.nodes if n.op_type is OpType.FUSED)
        timing = node_cost(fused_node, {"batch": 4}, PLAIN, RTX_2060)
        assert timing.launch_s == RTX_2060.launch_overhead_s

    def test_fusion_cheaper_than_unfused(self):
        g = small_graph()
        fused = fuse_graph(g)
        unfused_total = sum(
            t.total_s for t in graph_cost(g.nodes, {"batch": 128}, PLAIN, RTX_2060)
        )
        fused_total = sum(
            t.total_s for t in graph_cost(fused.nodes, {"batch": 128}, PLAIN, RTX_2060)
        )
        assert fused_total < unfused_total


class TestCharacteristics:
    def test_padded_length(self):
        chars = RuntimeCharacteristics(
            name="p", fuse_kernels=True, reduction_impl=ReductionImpl.TURBO,
            pad_to_multiple=64,
        )
        assert chars.padded_length(1) == 64
        assert chars.padded_length(64) == 64
        assert chars.padded_length(65) == 128

    def test_padded_length_validates(self):
        with pytest.raises(ValueError):
            PLAIN.padded_length(0)

    @pytest.mark.parametrize("kwargs", [
        {"gemm_tuning": 0.0},
        {"reduction_x_elems": 0},
        {"pad_to_multiple": 0},
    ])
    def test_invalid_characteristics(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeCharacteristics(
                name="bad", fuse_kernels=True,
                reduction_impl=ReductionImpl.TURBO, **kwargs
            )
