"""Compiled cost models: bit-exact equivalence with the interpretive path."""

import pytest

from repro.graph import UsageRecordTemplates, tensor_usage_records
from repro.models import bert_base, build_encoder_graph, tiny_bert
from repro.runtime import (
    RUNTIME_FACTORIES,
    CompiledCostModel,
    compile_graph,
    lower_product,
    turbo_runtime,
    verify_equivalence,
)
from repro.runtime.cost import graph_cost

#: Shapes straddling the tensorrt/xla padding boundaries (16/64-multiples).
SHAPES = [(1, 1), (1, 16), (1, 17), (2, 63), (2, 64), (2, 65),
          (4, 128), (7, 100), (8, 512)]


class TestLowerProduct:
    def test_literal(self):
        assert lower_product(6) == (6, ())

    def test_symbol(self):
        assert lower_product("batch") == (1, ("batch",))

    def test_mixed_sequence(self):
        const, names = lower_product([4, "batch", "seq", 2])
        assert const == 8
        assert sorted(names) == ["batch", "seq"]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lower_product(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            lower_product(True)


class TestCompiledEquivalence:
    @pytest.mark.parametrize("name", sorted(RUNTIME_FACTORIES))
    def test_bit_identical_timings_every_factory(self, name):
        runtime = RUNTIME_FACTORIES[name]()
        compiled = runtime.compiled_model()
        for batch, seq in SHAPES:
            padded = runtime.chars.padded_length(seq)
            bindings = {"batch": batch, "seq": padded}
            fast = compiled.timings(bindings)
            reference = graph_cost(runtime.graph.nodes, bindings,
                                   runtime.chars, runtime.device)
            assert len(fast) == len(reference)
            for f, r in zip(fast, reference):
                assert (f.name, f.launch_s, f.compute_s, f.memory_s) == \
                    (r.name, r.launch_s, r.compute_s, r.memory_s)

    @pytest.mark.parametrize("name", sorted(RUNTIME_FACTORIES))
    def test_verify_equivalence_clean(self, name):
        runtime = RUNTIME_FACTORIES[name]()
        bindings = [{"batch": b, "seq": runtime.chars.padded_length(s)}
                    for b, s in SHAPES]
        assert verify_equivalence(runtime.graph.nodes, bindings,
                                  runtime.chars, runtime.device) == []

    def test_total_matches_stream_accumulation(self):
        runtime = turbo_runtime()
        compiled = runtime.compiled_model()
        for batch, seq in SHAPES:
            bindings = {"batch": batch, "seq": seq}
            elapsed, launches = compiled.total(bindings)
            timings = graph_cost(runtime.graph.nodes, bindings,
                                 runtime.chars, runtime.device)
            reference = 0.0
            for t in timings:
                reference += t.total_s
            assert elapsed == reference
            assert launches == len(timings)

    def test_cells_deduplicate_repeated_layers(self, bert_graph):
        runtime = turbo_runtime(graph=bert_graph)
        compiled = runtime.compiled_model()
        # 12 identical encoder layers collapse onto shared pricing cells.
        assert compiled.cell_count < compiled.node_count / 3

    def test_compile_graph_helper(self):
        runtime = turbo_runtime(graph=build_encoder_graph(tiny_bert()))
        compiled = compile_graph(runtime.graph, runtime.chars, runtime.device)
        assert isinstance(compiled, CompiledCostModel)
        assert compiled.total({"batch": 2, "seq": 32}) == \
            runtime.compiled_model().total({"batch": 2, "seq": 32})


class TestFastLatency:
    """`latency()` via the compiled fast path == the seed double-infer path."""

    @pytest.mark.parametrize("name", sorted(RUNTIME_FACTORIES))
    def test_latency_cold_warm_compiled_identical(self, name):
        fast = RUNTIME_FACTORIES[name]()
        reference = RUNTIME_FACTORIES[name]()
        reference.use_compiled = False
        reference.memoize_records = False
        allocator = reference.allocator
        if allocator is not None and hasattr(allocator, "plan_cache"):
            allocator.plan_cache = None
        for batch, seq in SHAPES:
            cold = reference.latency(batch, seq)
            warm = reference.latency(batch, seq)  # latency memo hit
            compiled = fast.latency(batch, seq)
            assert cold == warm == compiled

    def test_infer_matches_between_paths(self):
        fast = turbo_runtime()
        reference = turbo_runtime()
        reference.use_compiled = False
        reference.memoize_records = False
        reference.allocator.plan_cache = None
        for batch, seq in [(1, 16), (2, 63), (4, 128)]:
            f = fast.infer(batch, seq)
            r = reference.infer(batch, seq)
            assert f.latency_s == r.latency_s
            assert f.kernel_s == r.kernel_s
            assert f.memory_overhead_s == r.memory_overhead_s
            assert f.time_by_kernel == r.time_by_kernel
        assert fast.preprocess_total_s == reference.preprocess_total_s

    def test_invalidate_caches_resets_fast_state(self):
        runtime = turbo_runtime()
        runtime.latency(2, 64)
        assert runtime._latency_cache
        runtime.invalidate_caches()
        assert not runtime._latency_cache
        assert runtime._compiled is None
        assert runtime.latency(2, 64) == turbo_runtime().latency(2, 64)


class TestRecordsMemo:
    def test_same_object_returned(self):
        runtime = turbo_runtime()
        first = runtime.usage_records(2, 64)
        second = runtime.usage_records(2, 64)
        assert first is second  # the memo, not a recomputation
        assert runtime.records_memo_hits == 1
        assert runtime.records_memo_misses == 1

    def test_memo_disabled_recomputes(self):
        runtime = turbo_runtime()
        runtime.memoize_records = False
        assert runtime.usage_records(2, 64) is not runtime.usage_records(2, 64)

    def test_templates_match_interpretive_records(self, bert_graph):
        templates = UsageRecordTemplates(bert_graph)
        for batch, seq in SHAPES:
            bindings = {"batch": batch, "seq": seq}
            assert templates.evaluate(bindings) == \
                tensor_usage_records(bert_graph, bindings)


class TestHostPathStats:
    def test_stats_and_metrics_publication(self):
        from repro.observability import MetricsRegistry

        runtime = turbo_runtime()
        runtime.latency(2, 64)
        stats = runtime.host_path_stats()
        assert stats["latency_cache_entries"] == 1
        assert stats["compiled_evals"] >= 1
        assert "plan_cache_hits" in stats
        registry = MetricsRegistry()
        runtime.publish_host_metrics(registry)
        assert registry.counter("host_records_memo_misses_total").value == \
            stats["records_memo_misses"]
        # Publishing twice must not double-count (delta semantics).
        runtime.publish_host_metrics(registry)
        assert registry.counter("host_records_memo_misses_total").value == \
            stats["records_memo_misses"]


def test_equivalence_includes_cost_table_grid():
    """The profiler sweep built from the compiled path equals the
    interpretive one cell for cell (small grid)."""
    from repro.runtime import warmup_profile

    fast_rt = turbo_runtime(graph=build_encoder_graph(tiny_bert()))
    ref_rt = turbo_runtime(graph=build_encoder_graph(tiny_bert()))
    ref_rt.use_compiled = False
    ref_rt.memoize_records = False
    ref_rt.allocator.plan_cache = None
    fast = warmup_profile(fast_rt, max_batch=4, max_length=128, length_step=32)
    reference = warmup_profile(ref_rt, max_batch=4, max_length=128,
                               length_step=32)
    for length in fast.lengths:
        for batch in range(1, 5):
            assert fast.cost(length, batch) == reference.cost(length, batch)
