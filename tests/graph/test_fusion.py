"""Kernel fusion pass (Fig. 3)."""

import pytest

from repro.graph import (
    ComputationGraph,
    OpType,
    TensorKind,
    count_kernels,
    eliminated_tensor_names,
    fuse_graph,
)


def chain_graph() -> ComputationGraph:
    """gemm -> bias -> gelu -> gemm -> bias -> ln  (two fusable runs)."""
    g = ComputationGraph("chain")
    g.tensor("in", ("batch", 8), TensorKind.INPUT)
    g.tensor("w1", (8, 8), TensorKind.WEIGHT)
    g.tensor("w2", (8, 8), TensorKind.WEIGHT)
    g.tensor("h1", ("batch", 8))
    g.tensor("h2", ("batch", 8))
    g.tensor("h3", ("batch", 8))
    g.tensor("h4", ("batch", 8))
    g.tensor("h5", ("batch", 8))
    g.tensor("out", ("batch", 8), TensorKind.OUTPUT)
    g.add_node("gemm1", OpType.GEMM, ["in", "w1"], ["h1"], m=("batch",), n=8, k=8)
    g.add_node("bias1", OpType.ELEMENTWISE, ["h1"], ["h2"], nelems=("batch", 8))
    g.add_node("gelu", OpType.ELEMENTWISE, ["h2"], ["h3"], nelems=("batch", 8))
    g.add_node("gemm2", OpType.GEMM, ["h3", "w2"], ["h4"], m=("batch",), n=8, k=8)
    g.add_node("bias2", OpType.ELEMENTWISE, ["h4"], ["h5"], nelems=("batch", 8))
    g.add_node("ln", OpType.LAYERNORM, ["h5"], ["out"], rows=("batch",), row_len=8)
    return g


class TestFusion:
    def test_runs_between_gemms_collapse(self):
        fused = fuse_graph(chain_graph())
        # gemm1, fused(bias1+gelu), gemm2, fused(bias2+ln)
        assert count_kernels(fused) == 4
        types = [n.op_type for n in fused.nodes]
        assert types == [OpType.GEMM, OpType.FUSED, OpType.GEMM, OpType.FUSED]

    def test_internal_tensors_eliminated(self):
        fused = fuse_graph(chain_graph())
        gone = set(eliminated_tensor_names(fused))
        # h2 is internal to (bias1+gelu); h5 internal to (bias2+ln)
        assert gone == {"h2", "h5"}
        assert "h2" not in fused.tensors
        assert "h5" not in fused.tensors

    def test_outputs_survive(self):
        fused = fuse_graph(chain_graph())
        assert "out" in fused.tensors
        assert fused.tensors["out"].kind is TensorKind.OUTPUT

    def test_fused_graph_validates(self):
        fuse_graph(chain_graph()).validate()

    def test_original_untouched(self):
        g = chain_graph()
        fuse_graph(g)
        assert count_kernels(g) == 6
        assert "h2" in g.tensors

    def test_fused_ops_recorded(self):
        fused = fuse_graph(chain_graph())
        node = fused.nodes[1]
        names = [op["name"] for op in node.attrs["fused_ops"]]
        assert names == ["bias1", "gelu"]

    def test_singleton_run_left_alone(self):
        g = ComputationGraph("single")
        g.tensor("in", (4,), TensorKind.INPUT)
        g.tensor("w", (4, 4), TensorKind.WEIGHT)
        g.tensor("h", (4,))
        g.tensor("out", (4,), TensorKind.OUTPUT)
        g.add_node("gemm", OpType.GEMM, ["in", "w"], ["h"], m=4, n=4, k=4)
        g.add_node("act", OpType.ELEMENTWISE, ["h"], ["out"], nelems=(4,))
        fused = fuse_graph(g)
        assert count_kernels(fused) == 2
        assert fused.nodes[1].op_type is OpType.ELEMENTWISE

    def test_tensor_consumed_after_run_survives(self):
        """A tensor read by a later node must not be eliminated."""
        g = ComputationGraph("escape")
        g.tensor("in", (4,), TensorKind.INPUT)
        g.tensor("w", (4, 4), TensorKind.WEIGHT)
        g.tensor("a", (4,))
        g.tensor("b", (4,))
        g.tensor("c", (4,))
        g.tensor("out", (4,), TensorKind.OUTPUT)
        g.add_node("e1", OpType.ELEMENTWISE, ["in"], ["a"], nelems=(4,))
        g.add_node("e2", OpType.ELEMENTWISE, ["a"], ["b"], nelems=(4,))
        g.add_node("gemm", OpType.GEMM, ["b", "w"], ["c"], m=4, n=4, k=4)
        # 'a' escapes the fused run: consumed by the final residual add.
        g.add_node("resid", OpType.ELEMENTWISE, ["c", "a"], ["out"], nelems=(4,))
        fused = fuse_graph(g)
        assert "a" in fused.tensors
        assert "b" in fused.tensors  # consumed by the GEMM outside the run

    def test_bert_fusion_reduces_kernels_substantially(self, bert_graph):
        fused = fuse_graph(bert_graph)
        assert count_kernels(fused) < 0.7 * count_kernels(bert_graph)

    def test_embedding_is_barrier(self):
        g = ComputationGraph("emb")
        g.tensor("ids", (4,), TensorKind.INPUT)
        g.tensor("table", (10, 4), TensorKind.WEIGHT)
        g.tensor("e", (4, 4))
        g.tensor("out", (4, 4), TensorKind.OUTPUT)
        g.add_node("embed", OpType.EMBEDDING, ["ids", "table"], ["e"], nelems=(4, 4))
        g.add_node("ln", OpType.LAYERNORM, ["e"], ["out"], rows=(4,), row_len=4)
        fused = fuse_graph(g)
        assert fused.nodes[0].op_type is OpType.EMBEDDING
