"""Property-based tests: fusion and serialization on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    ComputationGraph,
    OpType,
    TensorKind,
    count_kernels,
    eliminated_tensor_names,
    fuse_graph,
    graph_from_dict,
    graph_to_dict,
    tensor_usage_records,
)

#: Fusable op types the generator draws from (plus GEMM barriers).
_FUSABLE = [OpType.ELEMENTWISE, OpType.TRANSPOSE, OpType.LAYERNORM, OpType.SOFTMAX]


@st.composite
def random_chain_graph(draw, max_nodes: int = 14):
    """A random single-chain graph with GEMM barriers sprinkled in, plus
    random skip connections (tensors consumed again later)."""
    n = draw(st.integers(2, max_nodes))
    g = ComputationGraph("random")
    g.tensor("in", ("batch", 8), TensorKind.INPUT)
    g.tensor("w", (8, 8), TensorKind.WEIGHT)
    previous = "in"
    produced = []
    for i in range(n):
        is_gemm = draw(st.booleans()) and draw(st.booleans())  # ~25% barriers
        out = f"t{i}"
        is_last = i == n - 1
        g.tensor(out, ("batch", 8),
                 TensorKind.OUTPUT if is_last else TensorKind.INTERMEDIATE)
        # Occasionally add a skip input from an earlier tensor.
        inputs = [previous]
        if produced and draw(st.booleans()) and not is_gemm:
            skip = produced[draw(st.integers(0, len(produced) - 1))]
            if skip != previous:
                inputs.append(skip)
        if is_gemm:
            g.add_node(f"op{i}", OpType.GEMM, [previous, "w"], [out],
                       m=("batch",), n=8, k=8)
        else:
            op_type = _FUSABLE[draw(st.integers(0, len(_FUSABLE) - 1))]
            attrs = (
                {"rows": ("batch",), "row_len": 8}
                if op_type in (OpType.LAYERNORM, OpType.SOFTMAX)
                else {"nelems": ("batch", 8)}
            )
            g.add_node(f"op{i}", op_type, inputs, [out], **attrs)
        produced.append(out)
        previous = out
    g.validate()
    return g


class TestFusionProperties:
    @given(random_chain_graph())
    @settings(max_examples=100, deadline=None)
    def test_fused_graph_always_validates(self, graph):
        fuse_graph(graph).validate()

    @given(random_chain_graph())
    @settings(max_examples=100, deadline=None)
    def test_fusion_never_increases_kernels(self, graph):
        assert count_kernels(fuse_graph(graph)) <= count_kernels(graph)

    @given(random_chain_graph())
    @settings(max_examples=100, deadline=None)
    def test_gemm_barriers_preserved(self, graph):
        fused = fuse_graph(graph)
        assert len(fused.gemm_nodes()) == len(graph.gemm_nodes())

    @given(random_chain_graph())
    @settings(max_examples=100, deadline=None)
    def test_outputs_and_io_preserved(self, graph):
        fused = fuse_graph(graph)
        for name, spec in graph.tensors.items():
            if spec.kind is not TensorKind.INTERMEDIATE:
                assert name in fused.tensors, name

    @given(random_chain_graph())
    @settings(max_examples=100, deadline=None)
    def test_eliminated_tensors_have_no_external_consumer(self, graph):
        fused = fuse_graph(graph)
        gone = set(eliminated_tensor_names(fused))
        assert gone.isdisjoint(fused.tensors)
        # Every eliminated tensor was an intermediate of the original graph.
        for name in gone:
            assert graph.tensors[name].kind is TensorKind.INTERMEDIATE

    @given(random_chain_graph())
    @settings(max_examples=60, deadline=None)
    def test_fused_records_are_a_subset(self, graph):
        bindings = {"batch": 4}
        fine = {r.name for r in tensor_usage_records(graph, bindings)}
        fused = {r.name for r in tensor_usage_records(fuse_graph(graph), bindings)}
        assert fused <= fine


class TestSerializationProperties:
    @given(random_chain_graph())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_identity(self, graph):
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.name == graph.name
        assert set(restored.tensors) == set(graph.tensors)
        for a, b in zip(graph.nodes, restored.nodes):
            assert a == b

    @given(random_chain_graph())
    @settings(max_examples=60, deadline=None)
    def test_fused_graph_round_trips(self, graph):
        fused = fuse_graph(graph)
        restored = graph_from_dict(graph_to_dict(fused))
        for a, b in zip(fused.nodes, restored.nodes):
            assert a.attrs == b.attrs
