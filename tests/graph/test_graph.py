"""Computation graph container: validation, topo sort, producers/consumers."""

import pytest

from repro.graph import ComputationGraph, GraphError, OpType, TensorKind


def diamond_graph() -> ComputationGraph:
    """a -> (b, c) -> d: a small DAG with a join."""
    g = ComputationGraph("diamond")
    g.tensor("in", (4,), TensorKind.INPUT)
    g.tensor("a", (4,))
    g.tensor("b", (4,))
    g.tensor("c", (4,))
    g.tensor("d", (4,), TensorKind.OUTPUT)
    g.add_node("make_a", OpType.ELEMENTWISE, ["in"], ["a"], nelems=(4,))
    g.add_node("make_b", OpType.ELEMENTWISE, ["a"], ["b"], nelems=(4,))
    g.add_node("make_c", OpType.ELEMENTWISE, ["a"], ["c"], nelems=(4,))
    g.add_node("make_d", OpType.ELEMENTWISE, ["b", "c"], ["d"], nelems=(4,))
    return g


class TestConstruction:
    def test_duplicate_tensor_rejected(self):
        g = ComputationGraph("g")
        g.tensor("x", (1,))
        with pytest.raises(GraphError):
            g.tensor("x", (1,))

    def test_unknown_tensor_reference_rejected(self):
        g = ComputationGraph("g")
        g.tensor("x", (1,), TensorKind.INPUT)
        with pytest.raises(GraphError):
            g.add_node("op", OpType.ELEMENTWISE, ["x"], ["missing"])

    def test_duplicate_op_name_rejected(self):
        g = ComputationGraph("g")
        g.tensor("x", (1,), TensorKind.INPUT)
        g.tensor("y", (1,))
        g.add_node("op", OpType.ELEMENTWISE, ["x"], ["y"])
        g.tensor("z", (1,))
        with pytest.raises(GraphError):
            g.add_node("op", OpType.ELEMENTWISE, ["y"], ["z"])


class TestValidation:
    def test_valid_graph_passes(self):
        diamond_graph().validate()

    def test_consume_before_produce_rejected(self):
        g = ComputationGraph("g")
        g.tensor("in", (1,), TensorKind.INPUT)
        g.tensor("a", (1,))
        g.tensor("b", (1,))
        g.add_node("use_a", OpType.ELEMENTWISE, ["a"], ["b"])  # a not yet made
        g.add_node("make_a", OpType.ELEMENTWISE, ["in"], ["a"])
        with pytest.raises(GraphError, match="before it is produced"):
            g.validate()

    def test_orphan_intermediate_rejected(self):
        g = ComputationGraph("g")
        g.tensor("floating", (1,))
        with pytest.raises(GraphError, match="no producer"):
            g.validate()

    def test_double_producer_rejected(self):
        g = ComputationGraph("g")
        g.tensor("in", (1,), TensorKind.INPUT)
        g.tensor("a", (1,))
        g.add_node("p1", OpType.ELEMENTWISE, ["in"], ["a"])
        g.add_node("p2", OpType.ELEMENTWISE, ["in"], ["a"])
        with pytest.raises(GraphError, match="produced by both"):
            g.producer_index()


class TestTopoSort:
    def test_diamond_order(self):
        g = diamond_graph()
        order = g.topo_sort()
        pos = {i: p for p, i in enumerate(order)}
        assert pos[0] < pos[1] < pos[3]
        assert pos[0] < pos[2] < pos[3]

    def test_full_bert_graph_sorts(self, bert_graph):
        order = bert_graph.topo_sort()
        assert sorted(order) == list(range(len(bert_graph.nodes)))


class TestQueries:
    def test_consumers(self):
        g = diamond_graph()
        consumers = g.consumer_indices()
        assert consumers["a"] == [1, 2]
        assert consumers["d"] == []

    def test_gemm_nodes_empty_for_elementwise_graph(self):
        assert diamond_graph().gemm_nodes() == []

    def test_find_node(self):
        g = diamond_graph()
        assert g.find_node("make_b") is not None
        assert g.find_node("nope") is None

    def test_intermediates_and_weights(self, bert_graph):
        inter = bert_graph.intermediates()
        weights = bert_graph.weights()
        assert len(inter) > 100
        assert len(weights) == 12 * 6 + 1  # 6 weight mats/layer + embedding

    def test_len(self):
        assert len(diamond_graph()) == 4
