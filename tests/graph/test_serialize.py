"""Graph JSON serialization round-trips."""

import pytest

from repro.graph import (
    GraphError,
    fuse_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.models import (
    build_decoder_step_graph,
    build_encoder_graph,
    seq2seq_decoder,
    tiny_bert,
)


def assert_graphs_equal(a, b):
    assert a.name == b.name
    assert set(a.tensors) == set(b.tensors)
    for name, spec in a.tensors.items():
        other = b.tensors[name]
        assert spec.dims == other.dims
        assert spec.kind == other.kind
        assert spec.dtype_bytes == other.dtype_bytes
    assert len(a.nodes) == len(b.nodes)
    for na, nb in zip(a.nodes, b.nodes):
        assert na.name == nb.name
        assert na.op_type == nb.op_type
        assert na.inputs == nb.inputs
        assert na.outputs == nb.outputs
        assert na.attrs == nb.attrs


class TestRoundTrip:
    def test_bert_graph(self):
        graph = build_encoder_graph(tiny_bert())
        assert_graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    def test_decoder_graph(self):
        graph = build_decoder_step_graph(seq2seq_decoder())
        assert_graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    def test_fused_graph(self):
        """FUSED nodes carry nested attrs (fused_ops) — must survive."""
        graph = fuse_graph(build_encoder_graph(tiny_bert()))
        assert_graphs_equal(graph, graph_from_dict(graph_to_dict(graph)))

    def test_symbolic_dims_stay_tuples(self):
        graph = build_encoder_graph(tiny_bert())
        restored = graph_from_dict(graph_to_dict(graph))
        node = restored.gemm_nodes()[0]
        assert isinstance(node.attrs["m"], tuple)

    def test_file_round_trip(self, tmp_path):
        graph = build_encoder_graph(tiny_bert())
        path = tmp_path / "bert.graph.json"
        save_graph(graph, path)
        assert_graphs_equal(graph, load_graph(path))

    def test_restored_graph_is_usable(self):
        """The reloaded graph must drive the cost model identically."""
        from repro.runtime import turbo_runtime

        graph = build_encoder_graph(tiny_bert())
        restored = graph_from_dict(graph_to_dict(graph))
        original = turbo_runtime(graph=graph).latency(1, 32)
        reloaded = turbo_runtime(graph=restored).latency(1, 32)
        assert original == reloaded


class TestValidation:
    def test_wrong_schema_version_rejected(self):
        payload = graph_to_dict(build_encoder_graph(tiny_bert()))
        payload["schema_version"] = 99
        with pytest.raises(GraphError, match="schema version"):
            graph_from_dict(payload)

    def test_dangling_tensor_reference_rejected(self):
        payload = graph_to_dict(build_encoder_graph(tiny_bert()))
        payload["tensors"] = payload["tensors"][:-1]  # drop one tensor
        with pytest.raises(GraphError):
            graph_from_dict(payload)

    def test_unserializable_attr_rejected(self):
        from repro.graph.serialize import _encode_value

        with pytest.raises(TypeError):
            _encode_value(object())
