"""Tensor lifetime analysis: graph -> usage records."""

import pytest

from repro.graph import (
    ComputationGraph,
    OpType,
    TensorKind,
    fuse_graph,
    tensor_usage_records,
)


def linear_graph() -> ComputationGraph:
    g = ComputationGraph("linear")
    g.tensor("in", ("seq", 4), TensorKind.INPUT)
    g.tensor("a", ("seq", 4))
    g.tensor("b", ("seq", 4))
    g.tensor("out", ("seq", 4), TensorKind.OUTPUT)
    g.add_node("op0", OpType.ELEMENTWISE, ["in"], ["a"], nelems=("seq", 4))
    g.add_node("op1", OpType.ELEMENTWISE, ["a"], ["b"], nelems=("seq", 4))
    g.add_node("op2", OpType.ELEMENTWISE, ["b"], ["out"], nelems=("seq", 4))
    return g


class TestUsageRecords:
    def test_first_and_last_op(self):
        records = {r.name: r for r in tensor_usage_records(linear_graph(), {"seq": 3})}
        assert records["a"].first_op == 0
        assert records["a"].last_op == 1
        assert records["b"].first_op == 1
        assert records["b"].last_op == 2

    def test_sizes_track_bindings(self):
        short = {r.name: r for r in tensor_usage_records(linear_graph(), {"seq": 2})}
        long = {r.name: r for r in tensor_usage_records(linear_graph(), {"seq": 10})}
        assert long["a"].size == 5 * short["a"].size

    def test_inputs_weights_excluded(self):
        names = {r.name for r in tensor_usage_records(linear_graph(), {"seq": 3})}
        assert names == {"a", "b"}  # 'in' is INPUT, 'out' is OUTPUT

    def test_unconsumed_output_lives_at_producer(self):
        g = ComputationGraph("tail")
        g.tensor("in", (4,), TensorKind.INPUT)
        g.tensor("dangling", (4,))  # produced, never consumed
        g.tensor("used", (4,))
        g.tensor("out", (4,), TensorKind.OUTPUT)
        g.add_node("p", OpType.ELEMENTWISE, ["in"], ["dangling", "used"], nelems=(4,))
        g.add_node("q", OpType.ELEMENTWISE, ["used"], ["out"], nelems=(4,))
        records = {r.name: r for r in tensor_usage_records(g, {})}
        assert records["dangling"].first_op == records["dangling"].last_op == 0

    def test_bert_records_cover_all_intermediates(self, bert_graph):
        records = tensor_usage_records(bert_graph, {"batch": 1, "seq": 16})
        assert len(records) == len(bert_graph.intermediates())
        for r in records:
            assert r.first_op <= r.last_op
            assert r.size > 0

    def test_fusion_shrinks_record_count(self, bert_graph):
        fine = tensor_usage_records(bert_graph, {"batch": 1, "seq": 16})
        fused = tensor_usage_records(fuse_graph(bert_graph), {"batch": 1, "seq": 16})
        assert len(fused) < len(fine)

    def test_scores_tensor_scales_quadratically(self, bert_graph):
        """Attention scores are O(seq^2): the variable-length pain point."""
        def scores_size(seq: int) -> int:
            records = tensor_usage_records(bert_graph, {"batch": 1, "seq": seq})
            return next(r.size for r in records if r.name == "l0.scores")

        assert scores_size(100) == 100 * scores_size(10)
