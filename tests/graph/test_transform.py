"""Graph transformations: precision casting."""

import pytest

from repro.graph import (
    TensorKind,
    cast_graph_precision,
    graph_weight_bytes,
    tensor_usage_records,
)
from repro.models import build_encoder_graph, tiny_bert


class TestPrecisionCast:
    def test_float_tensors_halved(self):
        graph = build_encoder_graph(tiny_bert())
        fp16 = cast_graph_precision(graph, 2)
        for name, spec in fp16.tensors.items():
            if spec.kind in (TensorKind.INTERMEDIATE, TensorKind.OUTPUT,
                             TensorKind.WEIGHT):
                assert spec.dtype_bytes == 2, name

    def test_integer_inputs_untouched(self):
        graph = build_encoder_graph(tiny_bert())
        fp16 = cast_graph_precision(graph, 2)
        assert fp16.tensors["input_ids"].dtype_bytes == 8

    def test_original_untouched(self):
        graph = build_encoder_graph(tiny_bert())
        cast_graph_precision(graph, 2)
        assert graph.tensors["embed_sum"].dtype_bytes == 4

    def test_memory_plan_halves(self):
        graph = build_encoder_graph(tiny_bert())
        fp16 = cast_graph_precision(graph, 2)
        bindings = {"batch": 1, "seq": 32}
        full = sum(r.size for r in tensor_usage_records(graph, bindings))
        half = sum(r.size for r in tensor_usage_records(fp16, bindings))
        assert half * 2 == full

    def test_weight_bytes_halve(self):
        graph = build_encoder_graph(tiny_bert())
        assert graph_weight_bytes(cast_graph_precision(graph, 2)) * 2 == \
            graph_weight_bytes(graph)

    def test_validates(self):
        graph = build_encoder_graph(tiny_bert())
        cast_graph_precision(graph, 2).validate()

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            cast_graph_precision(build_encoder_graph(tiny_bert()), 8)


class TestFp16Runtime:
    def test_fp16_faster_than_fp32(self, bert_graph):
        from repro.runtime import turbo_fp16_runtime, turbo_runtime

        fp32 = turbo_runtime(graph=bert_graph)
        fp16 = turbo_fp16_runtime(graph=bert_graph)
        for seq in (64, 250, 500):
            assert fp16.latency(1, seq) < fp32.latency(1, seq)

    def test_fp16_speedup_bounded_by_two(self, bert_graph):
        """Half traffic + double rate bounds the ideal gain at 2x; fixed
        overheads keep the realized gain below it."""
        from repro.runtime import turbo_fp16_runtime, turbo_runtime

        fp32 = turbo_runtime(graph=bert_graph)
        fp16 = turbo_fp16_runtime(graph=bert_graph)
        speedup = fp32.latency(1, 500) / fp16.latency(1, 500)
        assert 1.2 < speedup < 2.0

    def test_fp16_halves_activation_footprint(self, bert_graph):
        from repro.runtime import turbo_fp16_runtime, turbo_runtime

        fp32 = turbo_runtime(graph=bert_graph).infer(1, 250)
        fp16 = turbo_fp16_runtime(graph=bert_graph).infer(1, 250)
        assert fp16.allocation.footprint_bytes < 0.7 * fp32.allocation.footprint_bytes

    def test_invalid_precision_rejected(self, bert_graph):
        from repro.runtime import turbo_runtime

        with pytest.raises(ValueError):
            turbo_runtime(graph=bert_graph, precision_bytes=3)
