"""Symbolic tensor specs."""

import pytest

from repro.graph import TensorKind, TensorSpec, resolve_dim


class TestResolveDim:
    def test_concrete_passthrough(self):
        assert resolve_dim(7, {}) == 7

    def test_symbol_lookup(self):
        assert resolve_dim("seq", {"seq": 128}) == 128

    def test_unbound_symbol(self):
        with pytest.raises(KeyError, match="unbound"):
            resolve_dim("seq", {"batch": 1})

    def test_nonpositive_binding(self):
        with pytest.raises(ValueError):
            resolve_dim("seq", {"seq": 0})

    def test_nonpositive_concrete(self):
        with pytest.raises(ValueError):
            resolve_dim(0, {})

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            resolve_dim(True, {})


class TestTensorSpec:
    def test_shape_resolution(self):
        spec = TensorSpec("x", ("batch", "seq", 768))
        assert spec.shape({"batch": 2, "seq": 10}) == (2, 10, 768)

    def test_numel_and_nbytes(self):
        spec = TensorSpec("x", ("batch", 4), dtype_bytes=4)
        assert spec.numel({"batch": 3}) == 12
        assert spec.nbytes({"batch": 3}) == 48

    def test_symbols_deduplicated_ordered(self):
        spec = TensorSpec("scores", ("batch", 12, "seq", "seq"))
        assert spec.symbols == ("batch", "seq")

    def test_is_variable(self):
        assert TensorSpec("x", ("seq",)).is_variable
        assert not TensorSpec("w", (768, 768)).is_variable

    def test_default_kind(self):
        assert TensorSpec("x", (1,)).kind is TensorKind.INTERMEDIATE

    @pytest.mark.parametrize("bad_dims", [(), (0,), (-1,), ("",), (1.5,)])
    def test_bad_dims_rejected(self, bad_dims):
        with pytest.raises((ValueError, TypeError)):
            TensorSpec("x", bad_dims)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("", (1,))

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("x", (1,), dtype_bytes=0)
