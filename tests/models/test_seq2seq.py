"""End-to-end Seq2Seq: encode + translate + latency composition."""

import numpy as np
import pytest

from repro.gpusim import RTX_2060
from repro.models import (
    Seq2SeqLatencyModel,
    Seq2SeqModel,
    encoder_config_for,
    seq2seq_decoder,
    tiny_seq2seq,
)
from repro.runtime import PYTORCH_CHARACTERISTICS, TURBO_CHARACTERISTICS


@pytest.fixture(scope="module")
def model():
    return Seq2SeqModel.random_init(tiny_seq2seq(), seed=0)


class TestEncoderConfig:
    def test_matches_decoder_geometry(self):
        config = seq2seq_decoder()
        enc = encoder_config_for(config)
        assert enc.hidden_size == config.hidden_size
        assert enc.num_layers == config.num_layers


class TestTranslate:
    def test_encode_shape(self, model):
        ids = np.random.default_rng(0).integers(0, 100, (3, 7))
        memory = model.encode(ids)
        assert memory.shape == (3, 7, model.config.hidden_size)

    def test_translate_batch(self, model):
        ids = np.random.default_rng(1).integers(0, 100, (2, 6))
        hyps = model.translate(ids, max_len=8)
        assert len(hyps) == 2
        for h in hyps:
            assert 1 <= len(h.tokens) <= 8
            assert h.score <= 0.0

    def test_deterministic(self, model):
        ids = np.random.default_rng(2).integers(0, 100, (1, 5))
        a = model.translate(ids, max_len=6)[0]
        b = model.translate(ids, max_len=6)[0]
        assert a.tokens == b.tokens

    def test_source_content_matters(self, model):
        rng = np.random.default_rng(3)
        a = model.translate(rng.integers(0, 50, (1, 6)), max_len=6)[0]
        b = model.translate(rng.integers(50, 100, (1, 6)), max_len=6)[0]
        assert a.tokens != b.tokens or a.score != b.score

    def test_source_rank_validated(self, model):
        with pytest.raises(ValueError):
            model.encode(np.array([1, 2, 3]))


class TestLatencyModel:
    @pytest.fixture(scope="class")
    def latency_models(self):
        config = seq2seq_decoder()
        return (
            Seq2SeqLatencyModel(config, TURBO_CHARACTERISTICS, RTX_2060,
                                step_overhead_s=0.1e-3),
            Seq2SeqLatencyModel(config, PYTORCH_CHARACTERISTICS, RTX_2060,
                                step_overhead_s=2.5e-3),
        )

    def test_encode_plus_decode_composition(self, latency_models):
        turbo, _ = latency_models
        total = turbo.translate_latency(64, 64)
        encode = turbo.encoder_runtime.latency(1, 64)
        decode = turbo.decoder_runtime.decode_latency(64, 64)
        assert total == pytest.approx(encode + decode)

    def test_decode_dominates_encode(self, latency_models):
        """Autoregressive decoding is ~tgt_len sequential passes: far more
        expensive than the single parallel encoder pass."""
        turbo, _ = latency_models
        encode = turbo.encoder_runtime.latency(1, 100)
        decode = turbo.decoder_runtime.decode_latency(100, 100)
        assert decode > 10 * encode

    def test_turbo_faster_end_to_end(self, latency_models):
        turbo, pytorch = latency_models
        assert turbo.translate_latency(64) < pytorch.translate_latency(64)

    def test_validation(self, latency_models):
        turbo, _ = latency_models
        with pytest.raises(ValueError):
            turbo.translate_latency(0)
