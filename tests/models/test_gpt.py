"""GPT decoder-only model: graphs and numeric generation."""

import numpy as np
import pytest

from repro.graph import OpType, fuse_graph
from repro.models import (
    build_decode_step_graph,
    build_prefill_graph,
    generate,
    gpt_small,
    init_gpt_weights,
    tiny_gpt,
)


@pytest.fixture(scope="module")
def tiny():
    config = tiny_gpt()
    return config, init_gpt_weights(config, seed=4)


class TestGraphs:
    def test_prefill_has_lm_head(self):
        graph = build_prefill_graph(gpt_small())
        node = graph.find_node("lm_head")
        assert node is not None
        assert node.attrs["n"] == gpt_small().vocab_size

    def test_prefill_validates_and_fuses(self):
        graph = build_prefill_graph(gpt_small())
        graph.validate()
        assert len(fuse_graph(graph).nodes) < len(graph.nodes)

    def test_decode_step_symbols(self):
        graph = build_decode_step_graph(gpt_small())
        symbols = set()
        for spec in graph.tensors.values():
            symbols.update(spec.symbols)
        assert symbols == {"batch", "past"}

    def test_decode_has_no_cross_attention(self):
        graph = build_decode_step_graph(gpt_small())
        softmaxes = [n for n in graph.nodes if n.op_type is OpType.SOFTMAX]
        # One self-attention softmax per layer, nothing else.
        assert len(softmaxes) == gpt_small().num_layers

    def test_kv_cache_tensors_are_inputs(self):
        from repro.graph import TensorKind

        graph = build_decode_step_graph(gpt_small())
        assert graph.tensors["l0.kcache"].kind is TensorKind.INPUT


class TestGeneration:
    def test_greedy_deterministic(self, tiny):
        config, weights = tiny
        prompt = np.array([1, 2, 3])
        a = generate(config, weights, prompt, max_new_tokens=5)
        b = generate(config, weights, prompt, max_new_tokens=5)
        assert a == b
        assert len(a) == 5

    def test_tokens_in_vocab(self, tiny):
        config, weights = tiny
        tokens = generate(config, weights, np.array([7]), max_new_tokens=8)
        assert all(0 <= t < config.vocab_size for t in tokens)

    def test_sampling_differs_from_greedy_somewhere(self, tiny):
        config, weights = tiny
        prompt = np.array([1, 2, 3])
        greedy = generate(config, weights, prompt, max_new_tokens=8)
        sampled = [
            generate(config, weights, prompt, max_new_tokens=8,
                     temperature=2.0, seed=s)
            for s in range(4)
        ]
        assert any(s != greedy for s in sampled)

    def test_sampling_deterministic_given_seed(self, tiny):
        config, weights = tiny
        prompt = np.array([1, 2])
        a = generate(config, weights, prompt, max_new_tokens=5,
                     temperature=1.0, seed=9)
        b = generate(config, weights, prompt, max_new_tokens=5,
                     temperature=1.0, seed=9)
        assert a == b

    def test_eos_stops_generation(self, tiny):
        config, weights = tiny
        prompt = np.array([1, 2, 3])
        greedy = generate(config, weights, prompt, max_new_tokens=6)
        eos = greedy[2]
        stopped = generate(config, weights, prompt, max_new_tokens=6, eos_id=eos)
        assert stopped[-1] == eos
        assert len(stopped) == 3

    def test_position_limit_respected(self, tiny):
        config, weights = tiny
        prompt = np.arange(1, config.max_position - 2)
        tokens = generate(config, weights, prompt, max_new_tokens=50)
        assert len(prompt) + len(tokens) <= config.max_position

    def test_validation(self, tiny):
        config, weights = tiny
        with pytest.raises(ValueError):
            generate(config, weights, np.array([]), max_new_tokens=3)
        with pytest.raises(ValueError):
            generate(config, weights, np.array([1]), max_new_tokens=0)
        with pytest.raises(ValueError):
            generate(config, weights, np.array([1]), max_new_tokens=1,
                     temperature=-1.0)
