"""Seq2Seq decoder: step graph structure and beam-search behaviour."""

import numpy as np
import pytest

from repro.graph import fuse_graph
from repro.models import (
    beam_search,
    build_decoder_step_graph,
    init_decoder_weights,
    seq2seq_decoder,
    tiny_seq2seq,
)


@pytest.fixture(scope="module")
def tiny():
    config = tiny_seq2seq()
    weights = init_decoder_weights(config, seed=11)
    rng = np.random.default_rng(2)
    memory = rng.normal(0, 0.5, size=(6, config.hidden_size)).astype(np.float32)
    return config, weights, memory


class TestStepGraph:
    def test_symbols(self):
        graph = build_decoder_step_graph(seq2seq_decoder())
        symbols = set()
        for spec in graph.tensors.values():
            symbols.update(spec.symbols)
        assert symbols == {"beam", "tgt_pos", "src_len"}

    def test_validates_and_fuses(self):
        graph = build_decoder_step_graph(seq2seq_decoder())
        graph.validate()
        fused = fuse_graph(graph)
        assert len(fused.nodes) < len(graph.nodes)

    def test_two_softmax_per_layer_plus_vocab(self):
        from repro.graph import OpType

        config = seq2seq_decoder()
        graph = build_decoder_step_graph(config)
        softmaxes = [n for n in graph.nodes if n.op_type is OpType.SOFTMAX]
        assert len(softmaxes) == 2 * config.num_layers + 1

    def test_vocab_projection_present(self):
        graph = build_decoder_step_graph(seq2seq_decoder())
        node = graph.find_node("logit_gemm")
        assert node is not None
        assert node.attrs["n"] == seq2seq_decoder().vocab_size


class TestBeamSearch:
    def test_produces_tokens(self, tiny):
        config, weights, memory = tiny
        hyp = beam_search(config, weights, memory, max_len=8)
        assert 1 <= len(hyp.tokens) <= 8
        assert all(0 <= t < config.vocab_size for t in hyp.tokens)

    def test_deterministic(self, tiny):
        config, weights, memory = tiny
        a = beam_search(config, weights, memory, max_len=6)
        b = beam_search(config, weights, memory, max_len=6)
        assert a.tokens == b.tokens
        assert a.score == b.score

    def test_score_is_log_probability(self, tiny):
        config, weights, memory = tiny
        hyp = beam_search(config, weights, memory, max_len=6)
        assert hyp.score <= 0.0

    def test_memory_affects_output(self, tiny):
        config, weights, memory = tiny
        other_memory = memory + 2.0
        a = beam_search(config, weights, memory, max_len=6)
        b = beam_search(config, weights, other_memory, max_len=6)
        assert a.tokens != b.tokens or a.score != b.score

    def test_wider_beam_never_worse(self, tiny):
        """Beam k's best score is monotone non-decreasing in k (same
        length cap, no length penalty)."""
        config, weights, memory = tiny
        from dataclasses import replace

        narrow = beam_search(replace(config, beam_size=1), weights, memory, max_len=5)
        wide = beam_search(replace(config, beam_size=4), weights, memory, max_len=5)
        assert wide.score >= narrow.score - 1e-9

    def test_memory_shape_validated(self, tiny):
        config, weights, _ = tiny
        with pytest.raises(ValueError):
            beam_search(config, weights, np.zeros((6, 3)))
