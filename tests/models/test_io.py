"""Checkpoint save/load round-trips."""

import numpy as np

from repro.models import (
    encoder_forward,
    init_decoder_weights,
    init_encoder_weights,
    load_decoder_weights,
    load_encoder_weights,
    save_decoder_weights,
    save_encoder_weights,
    tiny_albert,
    tiny_bert,
    tiny_seq2seq,
)


class TestEncoderCheckpoints:
    def test_bert_round_trip(self, tmp_path):
        weights = init_encoder_weights(tiny_bert(), seed=3)
        path = tmp_path / "bert.npz"
        save_encoder_weights(weights, path)
        restored = load_encoder_weights(path)
        np.testing.assert_array_equal(
            restored.layers[1].ffn_w1, weights.layers[1].ffn_w1
        )
        np.testing.assert_array_equal(
            restored.token_embedding, weights.token_embedding
        )
        assert restored.embedding_projection is None

    def test_restored_weights_produce_same_outputs(self, tmp_path):
        config = tiny_bert()
        weights = init_encoder_weights(config, seed=3)
        path = tmp_path / "bert.npz"
        save_encoder_weights(weights, path)
        restored = load_encoder_weights(path)
        ids = np.random.default_rng(0).integers(0, config.vocab_size, (1, 8))
        np.testing.assert_array_equal(
            encoder_forward(config, weights, ids),
            encoder_forward(config, restored, ids),
        )

    def test_albert_sharing_preserved(self, tmp_path):
        weights = init_encoder_weights(tiny_albert(), seed=3)
        path = tmp_path / "albert.npz"
        save_encoder_weights(weights, path)
        restored = load_encoder_weights(path)
        # Shared layers restored as a single object, stored once on disk.
        assert all(layer is restored.layers[0] for layer in restored.layers)
        assert len(restored.layers) == len(weights.layers)
        assert restored.embedding_projection is not None

    def test_albert_checkpoint_smaller_than_bert(self, tmp_path):
        bert_path = tmp_path / "bert.npz"
        albert_path = tmp_path / "albert.npz"
        save_encoder_weights(init_encoder_weights(tiny_bert()), bert_path)
        save_encoder_weights(init_encoder_weights(tiny_albert()), albert_path)
        assert albert_path.stat().st_size < bert_path.stat().st_size


class TestDecoderCheckpoints:
    def test_round_trip(self, tmp_path):
        weights = init_decoder_weights(tiny_seq2seq(), seed=5)
        path = tmp_path / "decoder.npz"
        save_decoder_weights(weights, path)
        restored = load_decoder_weights(path)
        assert len(restored.layers) == len(weights.layers)
        np.testing.assert_array_equal(
            restored.layers[0].cross_attention.wk,
            weights.layers[0].cross_attention.wk,
        )
        np.testing.assert_array_equal(
            restored.output_projection, weights.output_projection
        )

    def test_restored_decoder_translates_identically(self, tmp_path):
        from repro.models import beam_search

        config = tiny_seq2seq()
        weights = init_decoder_weights(config, seed=5)
        path = tmp_path / "decoder.npz"
        save_decoder_weights(weights, path)
        restored = load_decoder_weights(path)
        memory = np.random.default_rng(1).normal(
            0, 0.5, (5, config.hidden_size)
        ).astype(np.float32)
        a = beam_search(config, weights, memory, max_len=6)
        b = beam_search(config, restored, memory, max_len=6)
        assert a.tokens == b.tokens
        assert a.score == b.score
