"""ALBERT: weight sharing, factorized embedding, numeric forward."""

import numpy as np
import pytest

from repro.models import (
    albert_forward,
    build_albert_graph,
    init_albert_weights,
    init_encoder_weights,
    tiny_albert,
    tiny_bert,
)


@pytest.fixture(scope="module")
def setup():
    config = tiny_albert()
    weights = init_albert_weights(config, seed=5)
    rng = np.random.default_rng(1)
    ids = rng.integers(0, config.vocab_size, size=(2, 10))
    return config, weights, ids


class TestForward:
    def test_fused_matches_reference(self, setup):
        config, weights, ids = setup
        np.testing.assert_allclose(
            albert_forward(config, weights, ids, fused=True),
            albert_forward(config, weights, ids, fused=False),
            rtol=1e-3, atol=1e-4,
        )

    def test_output_shape_is_hidden_not_embedding(self, setup):
        config, weights, ids = setup
        out = albert_forward(config, weights, ids)
        assert out.shape == (2, 10, config.hidden_size)

    def test_requires_projection(self, setup):
        config, _, ids = setup
        bert_weights = init_encoder_weights(tiny_bert())
        with pytest.raises(ValueError, match="projection"):
            albert_forward(config, bert_weights, ids)


class TestGraph:
    def test_has_embedding_projection_gemm(self):
        graph = build_albert_graph(tiny_albert())
        assert graph.find_node("embedding_projection") is not None

    def test_weights_registered_once(self):
        """Cross-layer sharing: one shared weight set, not one per layer."""
        graph = build_albert_graph(tiny_albert())
        weight_names = {t.name for t in graph.weights()}
        shared = {n for n in weight_names if n.startswith("shared.")}
        assert len(shared) == 6  # wq, wk, wv, wo, ffn_w1, ffn_w2

    def test_structure_mirrors_bert(self):
        from repro.models import build_encoder_graph

        albert = build_albert_graph(tiny_albert())
        bert = build_encoder_graph(tiny_bert())
        # Same op count plus the single projection GEMM.
        assert len(albert.nodes) == len(bert.nodes) + 1
