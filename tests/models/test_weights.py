"""Weight initialization: determinism, sharing, parameter accounting."""

import numpy as np

from repro.models import (
    albert_base,
    bert_base,
    init_decoder_weights,
    init_encoder_weights,
    seq2seq_decoder,
    tiny_albert,
    tiny_bert,
    tiny_seq2seq,
)


class TestDeterminism:
    def test_same_seed_same_weights(self):
        a = init_encoder_weights(tiny_bert(), seed=3)
        b = init_encoder_weights(tiny_bert(), seed=3)
        np.testing.assert_array_equal(a.layers[0].ffn_w1, b.layers[0].ffn_w1)

    def test_different_seed_different_weights(self):
        a = init_encoder_weights(tiny_bert(), seed=3)
        b = init_encoder_weights(tiny_bert(), seed=4)
        assert not np.array_equal(a.layers[0].ffn_w1, b.layers[0].ffn_w1)


class TestShapes:
    def test_bert_layer_shapes(self):
        config = tiny_bert()
        w = init_encoder_weights(config)
        hidden = config.hidden_size
        layer = w.layers[0]
        assert layer.attention.wq.shape == (hidden, hidden)
        assert layer.ffn_w1.shape == (hidden, config.intermediate_size)
        assert layer.ffn_w2.shape == (config.intermediate_size, hidden)
        assert w.embedding_projection is None

    def test_albert_factorized_embedding(self):
        config = tiny_albert()
        w = init_encoder_weights(config)
        assert w.token_embedding.shape == (config.vocab_size, config.embedding_size)
        assert w.embedding_projection.shape == (
            config.embedding_size, config.hidden_size
        )

    def test_decoder_shapes(self):
        config = tiny_seq2seq()
        w = init_decoder_weights(config)
        assert len(w.layers) == config.num_layers
        assert w.output_projection.shape == (config.hidden_size, config.vocab_size)


class TestSharing:
    def test_albert_layers_share_one_object(self):
        w = init_encoder_weights(tiny_albert())
        assert all(layer is w.layers[0] for layer in w.layers)

    def test_bert_layers_are_distinct(self):
        w = init_encoder_weights(tiny_bert())
        assert w.layers[0] is not w.layers[1]


class TestParameterBytes:
    def test_bert_base_is_about_440mb(self):
        """§4.2 quotes 440 MB of parameters for FP32 BERT-base."""
        w = init_encoder_weights(bert_base())
        mb = w.parameter_bytes / 2**20
        assert 350 < mb < 520

    def test_albert_is_much_smaller_than_bert(self):
        """Weight sharing: ALBERT ~1/10th of BERT's parameters."""
        bert = init_encoder_weights(bert_base()).parameter_bytes
        albert = init_encoder_weights(albert_base()).parameter_bytes
        assert albert < 0.25 * bert
