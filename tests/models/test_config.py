"""Model configurations — paper Table 3."""

import pytest

from repro.models import (
    AlbertConfig,
    BertConfig,
    Seq2SeqConfig,
    albert_base,
    bert_base,
    seq2seq_decoder,
    tiny_bert,
)


class TestTable3:
    def test_bert_matches_table3(self):
        config = bert_base()
        assert config.num_layers == 12
        assert config.num_heads == 12
        assert config.head_size == 64
        assert config.hidden_size == 768
        assert config.intermediate_size == 3072

    def test_albert_matches_table3(self):
        config = albert_base()
        assert config.num_layers == 12
        assert config.num_heads == 12
        assert config.head_size == 64
        assert config.embedding_size < config.hidden_size  # factorized

    def test_decoder_matches_table3(self):
        config = seq2seq_decoder()
        assert config.num_layers == 6
        assert config.num_heads == 16
        assert config.head_size == 64
        assert config.hidden_size == 1024
        assert config.beam_size == 4
        assert config.max_target_len == 500


class TestValidation:
    @pytest.mark.parametrize("field", ["num_layers", "num_heads", "head_size"])
    def test_nonpositive_rejected(self, field):
        with pytest.raises(ValueError):
            BertConfig(**{field: 0})

    def test_bad_beam_rejected(self):
        with pytest.raises(ValueError):
            Seq2SeqConfig(beam_size=0)

    def test_bad_embedding_size_rejected(self):
        with pytest.raises(ValueError):
            AlbertConfig(embedding_size=0)

    def test_scaled_override(self):
        small = bert_base().scaled(num_layers=2)
        assert small.num_layers == 2
        assert small.hidden_size == 768

    def test_tiny_configs_are_small(self):
        tiny = tiny_bert()
        assert tiny.hidden_size <= 64
        assert tiny.num_layers <= 2
