"""BERT numeric forward (fused vs reference) and graph builder structure."""

import numpy as np
import pytest

from repro.graph import OpType, fuse_graph
from repro.models import (
    build_encoder_graph,
    encoder_forward,
    init_encoder_weights,
    tiny_bert,
)


@pytest.fixture(scope="module")
def setup():
    config = tiny_bert()
    weights = init_encoder_weights(config, seed=7)
    rng = np.random.default_rng(0)
    ids = rng.integers(0, config.vocab_size, size=(2, 12))
    return config, weights, ids


class TestNumericForward:
    def test_fused_matches_reference(self, setup):
        """Deliverable-critical: the Turbo kernel path reproduces the
        framework path to FP rounding."""
        config, weights, ids = setup
        fused = encoder_forward(config, weights, ids, fused=True)
        reference = encoder_forward(config, weights, ids, fused=False)
        np.testing.assert_allclose(fused, reference, rtol=1e-3, atol=1e-4)

    def test_output_shape(self, setup):
        config, weights, ids = setup
        out = encoder_forward(config, weights, ids)
        assert out.shape == (2, 12, config.hidden_size)

    def test_deterministic(self, setup):
        config, weights, ids = setup
        a = encoder_forward(config, weights, ids)
        b = encoder_forward(config, weights, ids)
        np.testing.assert_array_equal(a, b)

    def test_outputs_finite_and_normalized(self, setup):
        config, weights, ids = setup
        out = encoder_forward(config, weights, ids)
        assert np.isfinite(out).all()
        # Final op is LayerNorm: per-position stats are standardized.
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)

    def test_padding_does_not_change_valid_positions(self, setup):
        """The zero-padding equivalence the serving batcher relies on."""
        config, weights, ids = setup
        short = ids[:, :8]
        lengths = np.array([8, 8])
        padded_out = encoder_forward(config, weights, ids, lengths=lengths)
        short_out = encoder_forward(config, weights, short)
        np.testing.assert_allclose(
            padded_out[:, :8], short_out, rtol=1e-3, atol=1e-4
        )

    def test_batch_independence(self, setup):
        """Row i of a batch equals running request i alone."""
        config, weights, ids = setup
        batch_out = encoder_forward(config, weights, ids)
        solo_out = encoder_forward(config, weights, ids[:1])
        np.testing.assert_allclose(batch_out[:1], solo_out, rtol=1e-3, atol=1e-4)

    def test_rank_validated(self, setup):
        config, weights, _ = setup
        with pytest.raises(ValueError):
            encoder_forward(config, weights, np.array([1, 2, 3]))


class TestGraphBuilder:
    def test_node_count_scales_with_layers(self):
        two = build_encoder_graph(tiny_bert())
        twelve = build_encoder_graph(tiny_bert().scaled(num_layers=12))
        per_layer = (len(twelve.nodes) - len(two.nodes)) / 10
        assert per_layer == pytest.approx(22, abs=3)

    def test_gemm_count(self, bert_graph):
        """8 GEMM-class ops per layer: qkv(3) + scores + context + out + 2 ffn."""
        gemms = bert_graph.gemm_nodes()
        assert len(gemms) == 12 * 8

    def test_symbols_are_batch_and_seq(self, bert_graph):
        symbols = set()
        for spec in bert_graph.tensors.values():
            symbols.update(spec.symbols)
        assert symbols == {"batch", "seq"}

    def test_graph_validates(self, bert_graph):
        bert_graph.validate()

    def test_fusion_keeps_gemms(self, bert_graph):
        fused = fuse_graph(bert_graph)
        assert len(fused.gemm_nodes()) == len(bert_graph.gemm_nodes())

    def test_softmax_per_layer(self, bert_graph):
        softmaxes = [n for n in bert_graph.nodes if n.op_type is OpType.SOFTMAX]
        assert len(softmaxes) == 12

    def test_layernorms(self, bert_graph):
        lns = [n for n in bert_graph.nodes if n.op_type is OpType.LAYERNORM]
        assert len(lns) == 2 * 12 + 1  # attn + ffn per layer, + embedding
