"""Qualitative shape checks for the cheap experiment harnesses.

Each test asserts the property the paper's table/figure demonstrates
(who wins, direction of trends), not absolute numbers.  The expensive
serving experiments (Fig. 10-12, Table 4) are shape-checked inside their
benchmark targets instead.
"""

import pytest

from repro.experiments.fig5_batch_reduction import run_fig5
from repro.experiments.fig6_allocation_example import run_fig6
from repro.experiments.fig7_allocator_comparison import run_fig7
from repro.experiments.fig8_batching_gain import run_fig8
from repro.experiments.fig9_scheduler_example import (
    paper_example_cost,
    run_fig9,
)
from repro.experiments.table1_runtime_matrix import format_table1, run_table1
from repro.experiments.table2_reduction_share import run_table2


class TestTable1:
    def test_six_runtimes(self):
        rows = run_table1()
        assert len(rows) == 6

    def test_turbo_row_matches_paper(self):
        turbo = next(r for r in run_table1() if "Turbo" in r.name)
        assert not turbo.needs_preprocess
        assert turbo.variable_length
        assert turbo.usage == "easy"

    def test_variable_length_column(self):
        """Only PyTorch, onnxruntime and Turbo handle variable length."""
        rows = run_table1()
        capable = {r.name for r in rows if r.variable_length}
        assert capable == {"PyTorch", "onnxruntime", "TurboTransformers"}

    def test_renders(self):
        assert "TurboTransformers" in format_table1()


class TestTable2:
    @pytest.fixture(scope="class")
    def shares(self):
        return run_table2()

    def test_optimization_always_shrinks_share(self, shares):
        for s in shares:
            assert s.after < s.before

    def test_softmax_dominates_before_at_heavy_load(self, shares):
        heavy = next(s for s in shares
                     if s.kernel == "softmax" and (s.batch, s.seq) == (20, 500))
        assert heavy.before > 0.5  # paper: 90.68%
        assert heavy.after < 0.25  # paper: 15.46%

    def test_layernorm_share_small_after(self, shares):
        for s in shares:
            if s.kernel == "layernorm":
                assert s.after < 0.10  # paper: 1.9%-7.2% after

    def test_softmax_share_grows_with_seq(self, shares):
        before = {
            s.seq: s.before for s in shares
            if s.kernel == "softmax" and s.batch == 20
        }
        assert before[10] < before[100] < before[500]


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        return run_fig5()

    def test_turbo_wins_almost_everywhere(self, points):
        losses = [p for p in points if p.speedup < 0.98]
        assert len(losses) <= 2  # only the launch-bound tiny cases

    def test_speedup_grows_with_length(self, points):
        series = [p for p in points
                  if p.kernel == "softmax" and p.baseline == "faster_transformer"
                  and p.batch == 20]
        by_seq = sorted(series, key=lambda p: p.seq)
        assert by_seq[-1].speedup > by_seq[0].speedup

    def test_cudnn_gap_larger_than_ft_gap(self, points):
        cudnn = max(p.speedup for p in points if p.baseline == "cudnn")
        ft = max(p.speedup for p in points
                 if p.kernel == "softmax" and p.baseline == "faster_transformer")
        assert cudnn > ft

    def test_batch20_speedup_at_least_batch1(self, points):
        for seq in (100, 500):
            b1 = next(p.speedup for p in points
                      if (p.kernel, p.baseline, p.batch, p.seq)
                      == ("softmax", "faster_transformer", 1, seq))
            b20 = next(p.speedup for p in points
                       if (p.kernel, p.baseline, p.batch, p.seq)
                       == ("softmax", "faster_transformer", 20, seq))
            assert b20 >= b1 * 0.95


class TestFig6:
    def test_longer_request_adds_chunk(self):
        first, second = run_fig6(200, 240)
        assert second.num_chunks >= first.num_chunks
        assert second.new_mb < first.new_mb  # only the delta is allocated

    def test_footprint_grows_modestly(self):
        first, second = run_fig6(200, 240)
        assert second.footprint_mb < 1.5 * first.footprint_mb


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(num_requests=30, seed=0)

    def test_turbo_allocates_least_new_memory(self, result):
        """The paper's headline: 0.70 MB/request vs 2.78 MB for GSOC."""
        assert result.avg_new_mb("turbo") <= result.avg_new_mb("gsoc")
        assert result.avg_new_mb("turbo") < result.avg_new_mb("caching")
        assert result.avg_new_mb("turbo") < result.avg_new_mb("naive")

    def test_caching_footprint_is_largest(self, result):
        assert result.footprint("caching") > result.footprint("turbo")
        assert result.footprint("caching") > result.footprint("gsoc")

    def test_naive_stalls_most(self, result):
        naive = result.results["naive"].total_stall_s
        for name in ("turbo", "gsoc", "caching"):
            assert naive > result.results[name].total_stall_s

    def test_turbo_footprint_within_factor_of_optimal(self, result):
        assert result.footprint("turbo") < 3 * result.footprint("gsoc")


class TestFig8:
    def test_batching_always_helps(self):
        points = run_fig8()
        for p in points:
            if p.batch > 1:
                assert p.normalized < 1.0

    def test_gain_largest_for_short_sequences(self):
        points = run_fig8()
        at_20 = {p.seq: p.normalized for p in points if p.batch == 20}
        assert at_20[10] < at_20[100] < at_20[500]


class TestFig9:
    def test_paper_story_reproduced(self):
        outcomes = {o.scheduler: o for o in run_fig9()}
        # Single padded batch loses to no batching in the paper's regime...
        assert outcomes["naive"].throughput_rps < outcomes["nobatch"].throughput_rps
        # ...and the DP partition beats both.
        assert outcomes["dp"].throughput_rps >= outcomes["nobatch"].throughput_rps
        improvement = (outcomes["dp"].throughput_rps
                       / outcomes["naive"].throughput_rps - 1)
        assert 0.2 < improvement < 0.6  # paper: ~35%

    def test_dp_splits_into_multiple_batches(self):
        dp = next(o for o in run_fig9() if o.scheduler == "dp")
        assert 2 <= len(dp.batches) <= 4  # paper shows 3

    def test_cost_model_validates(self):
        with pytest.raises(ValueError):
            paper_example_cost(0, 1)
