"""Report generator (python -m repro.experiments.report)."""

from repro.experiments.report import generate_report, main


class TestGenerateReport:
    def test_quick_report_covers_all_cheap_experiments(self):
        report = generate_report(include_serving=False)
        for marker in (
            "Table 1", "Table 2", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8",
            "Fig. 9", "Fig. 10", "Fig. 11",
        ):
            assert marker in report, marker
        # Serving excluded in quick mode.
        assert "Fig. 12" not in report

    def test_report_contains_measured_values(self):
        report = generate_report(include_serving=False)
        assert "TurboTransformers" in report
        assert "x" in report  # speedup cells

    def test_cli_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        code = main(["--quick", str(out)])
        assert code == 0
        text = out.read_text()
        assert text.startswith("# TurboTransformers reproduction")
        assert "Fig. 11" in text
