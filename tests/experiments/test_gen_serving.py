"""gen_serving_throughput: sweep shape, headline claim, determinism."""

import pytest

from repro.experiments.gen_serving_throughput import (
    GenServingBench,
    OutputMix,
    format_gen_serving,
    run_gen_serving,
)
from repro.serving import GenServingMetrics

RATES = (200.0, 1500.0)
MIXES = (OutputMix("test-tail", mean_new_tokens=16.0, max_new_tokens=96),)
DURATION = 0.5


@pytest.fixture(scope="module")
def bench():
    return GenServingBench()


@pytest.fixture(scope="module")
def sweep(bench):
    return bench.run_sweep(RATES, MIXES, DURATION, seed=0)


class TestSweep:
    def test_shape(self, sweep):
        mix = sweep["test-tail"]
        assert set(mix) == {"request-level", "ebird", "continuous",
                            "continuous-chunked"}
        for system in mix:
            assert len(mix[system]) == len(RATES)

    def test_gen_systems_report_gen_metrics(self, sweep):
        for system in ("request-level", "continuous"):
            for m in sweep["test-tail"][system]:
                assert isinstance(m, GenServingMetrics)
                assert m.ttft.count > 0
                assert m.tokens_generated > 0

    def test_continuous_beats_request_level_at_high_rate(self, sweep):
        """The experiment's headline: response throughput AND mean TTFT
        both favor iteration-level batching once the rate is high."""
        top = len(RATES) - 1
        cont = sweep["test-tail"]["continuous"][top]
        rl = sweep["test-tail"]["request-level"][top]
        assert cont.response_throughput > rl.response_throughput
        assert cont.ttft.avg_ms < rl.ttft.avg_ms

    def test_deterministic(self, bench, sweep):
        again = bench.run_sweep(RATES, MIXES, DURATION, seed=0)

        def key(m):
            base = (m.response_throughput, m.completed, m.saturated)
            if isinstance(m, GenServingMetrics):
                base += (m.ttft.avg_ms, m.tpot_ms_avg, m.tokens_generated,
                         m.decode_steps, m.kv_peak_bytes)
            return base

        for system in sweep["test-tail"]:
            first = [key(m) for m in sweep["test-tail"][system]]
            second = [key(m) for m in again["test-tail"][system]]
            assert first == second, system


class TestHarness:
    def test_run_gen_serving_wrapper(self, bench):
        out = run_gen_serving(bench, rates=(200.0,), mixes=MIXES,
                              duration_s=0.2)
        assert "test-tail" in out

    def test_format_table(self, bench):
        text = format_gen_serving(bench, rates=(200.0,), mixes=MIXES,
                                  duration_s=0.2)
        assert "continuous" in text
        assert "request-level" in text
        assert "ttft" in text

    def test_workload_respects_mix(self, bench):
        mix = OutputMix("capped", mean_new_tokens=4.0, max_new_tokens=7)
        reqs = bench.workload(500.0, 0.5, seed=3, mix=mix)
        assert reqs
        assert all(1 <= r.max_new_tokens <= 7 for r in reqs)
        assert all(bench.prompt_lo <= r.seq_len <= bench.prompt_hi
                   for r in reqs)

    def test_bad_inputs_rejected(self, bench):
        with pytest.raises(ValueError):
            GenServingBench(model="huge")
        with pytest.raises(ValueError):
            bench.run_point("no-such-system", 100.0, 0.2)


class TestChunkedOverlap:
    """The PR's headline: chunked prefill + dual-stream overlap flattens
    the TTFT tail at saturating rates without changing a single token."""

    RATE = 3000.0
    MIX = OutputMix("saturating", mean_new_tokens=16.0, max_new_tokens=96)

    def _token_stream(self, requests):
        return [(r.req_id, r.state.name, r.generated)
                for r in sorted(requests, key=lambda r: r.req_id)]

    def test_ttft_p99_improves_at_least_25pct(self, bench):
        base = bench.run_point("continuous", self.RATE, duration_s=1.0,
                               seed=0, mix=self.MIX)
        chunked = bench.run_point("continuous-chunked", self.RATE,
                                  duration_s=1.0, seed=0, mix=self.MIX)
        assert chunked.completed == base.completed
        assert chunked.tokens_generated == base.tokens_generated
        assert chunked.ttft.p99_ms <= base.ttft.p99_ms * 0.75
        assert chunked.prefill_chunks > 0
        assert chunked.overlap_saved_s > 0.0

    def test_token_streams_bit_identical(self, bench):
        reqs_base = bench.workload(self.RATE, 0.5, seed=0, mix=self.MIX)
        reqs_chunk = bench.workload(self.RATE, 0.5, seed=0, mix=self.MIX)
        bench.run_continuous(reqs_base, 0.5)
        bench.run_continuous(reqs_chunk, 0.5,
                             chunk_tokens=bench.chunk_tokens)
        assert self._token_stream(reqs_chunk) == self._token_stream(reqs_base)
