"""Cross-layer integration tests.

Each test exercises a full pipeline the README promises, end to end:
graph -> fusion -> cost -> allocator -> scheduler -> server, and the
text -> tokens -> model -> service path.
"""

import numpy as np
import pytest

from repro.gpusim import RTX_2060
from repro.graph import fuse_graph
from repro.models import bert_base, build_encoder_graph, init_encoder_weights, tiny_bert
from repro.runtime import graph_cost, turbo_runtime, warmup_profile
from repro.serving import (
    DPBatchScheduler,
    InferenceService,
    ModelRegistry,
    ModelVersion,
    Request,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


class TestReadmeQuickstartPath:
    """The exact flow shown in README.md must work as written."""

    def test_latency_then_serving(self, bert_graph):
        turbo = turbo_runtime(graph=bert_graph)
        assert turbo.latency(batch=1, seq_len=128) > 0

        table = warmup_profile(turbo, max_batch=20, lengths=range(64, 513, 64))
        metrics = simulate_serving(
            generate_requests(rate_per_s=60, duration_s=3.0),
            DPBatchScheduler(), table.cost, ServingConfig(max_batch=20),
            duration_s=3.0,
        )
        assert metrics.completed == metrics.offered
        assert "(" in metrics.latency.format_cell()


class TestFusionCostConsistency:
    """Fusion must never *increase* modeled cost for any node it creates."""

    def test_fused_nodes_cheaper_than_constituents(self, bert_graph):
        from repro.graph import OpType
        from repro.runtime import TURBO_CHARACTERISTICS, node_cost

        fused = fuse_graph(bert_graph)
        bindings = {"batch": 2, "seq": 128}
        fine_by_name = {n.name: n for n in bert_graph.nodes}
        for node in fused.nodes:
            if node.op_type is not OpType.FUSED:
                continue
            fused_cost = node_cost(node, bindings, TURBO_CHARACTERISTICS,
                                   RTX_2060).total_s
            constituents = sum(
                node_cost(fine_by_name[op["name"]], bindings,
                          TURBO_CHARACTERISTICS, RTX_2060).total_s
                for op in node.attrs["fused_ops"]
            )
            assert fused_cost <= constituents + 1e-12, node.name

    def test_whole_graph_fusion_saves_time(self, bert_graph):
        from repro.runtime import TURBO_CHARACTERISTICS

        bindings = {"batch": 1, "seq": 128}
        fine = sum(t.total_s for t in graph_cost(
            bert_graph.nodes, bindings, TURBO_CHARACTERISTICS, RTX_2060))
        fused = sum(t.total_s for t in graph_cost(
            fuse_graph(bert_graph).nodes, bindings, TURBO_CHARACTERISTICS,
            RTX_2060))
        assert fused < fine


class TestTextToServicePipeline:
    """Raw text -> tokenizer -> requests -> cached service -> labels."""

    def test_full_stack(self):
        from repro.text import (
            TextClassifier,
            WordPieceTokenizer,
            init_classifier_head,
        )

        corpus = [
            "the quick brown fox jumps over the lazy dog",
            "serving transformer models with low latency",
            "batching requests improves gpu utilization",
        ] * 3
        tokenizer = WordPieceTokenizer.train(corpus, vocab_size=95)
        config = tiny_bert()
        classifier = TextClassifier(
            tokenizer=tokenizer,
            config=config,
            weights=init_encoder_weights(config, seed=2),
            head=init_classifier_head(config.hidden_size, 3, seed=2),
        )

        texts = ["the quick fox", "gpu serving", "the quick fox", "low latency"]
        labels = classifier.classify(texts)
        assert len(labels) == 4
        assert labels[0] == labels[2]  # identical text, identical label

        # The serving plane: each text becomes a request whose payload is
        # its token ids, so the response cache deduplicates repeats.
        encoded = [tuple(tokenizer.encode(t)) for t in texts * 5]
        requests = [
            Request(req_id=i, seq_len=len(ids), arrival_s=0.01 * i, payload=ids)
            for i, ids in enumerate(encoded)
        ]
        registry = ModelRegistry()
        registry.register(ModelVersion(
            "clf", 1, lambda l, b: 0.002 + 0.0001 * l * b
        ))
        service = InferenceService(registry, "clf")
        metrics = service.serve(requests, duration_s=0.5)
        assert metrics.completed == len(requests)
        assert service.cache.hits > 0  # repeats were answered from cache


class TestAllocatorRuntimeServingAgreement:
    """The memory plane the runtime charges is the plane the allocator
    actually builds: runtime overhead equals allocator stall + host model."""

    def test_runtime_allocation_matches_standalone_allocator(self, bert_graph):
        from repro.graph import tensor_usage_records
        from repro.memory import TurboAllocator

        runtime = turbo_runtime(graph=bert_graph)
        result = runtime.infer(1, 200)
        standalone = TurboAllocator()
        records = tensor_usage_records(fuse_graph(bert_graph),
                                       {"batch": 1, "seq": 200})
        expected = standalone.process_request(records)
        assert result.allocation.footprint_bytes == expected.footprint_bytes
        assert result.allocation.new_bytes == expected.new_bytes
