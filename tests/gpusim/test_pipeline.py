"""Scoreboard simulator, and its agreement with the warp cost model."""

import pytest

from repro.gpusim import TESLA_V100, RTX_2060, warp_allreduce_cycles
from repro.gpusim.pipeline import (
    Instruction,
    schedule,
    simulate_warp_allreduce,
    warp_allreduce_program,
)
from repro.gpusim.warp import warp_allreduce_cycles_bound


class TestScoreboard:
    def test_independent_instructions_pipeline(self):
        program = [
            Instruction("OP", f"r{i}", (), latency=10) for i in range(4)
        ]
        result = schedule(program, issue_cycles=1)
        # Issue at 0,1,2,3; last completes at 3 + 10.
        assert result.total_cycles == 13
        assert result.issue_cycle == [0, 1, 2, 3]

    def test_dependent_chain_serializes(self):
        program = [
            Instruction("OP", "a", (), latency=10),
            Instruction("OP", "b", ("a",), latency=10),
            Instruction("OP", "c", ("b",), latency=10),
        ]
        result = schedule(program, issue_cycles=1)
        assert result.total_cycles == 30

    def test_issue_width_bounds_throughput(self):
        program = [Instruction("OP", f"r{i}", (), latency=1) for i in range(8)]
        wide = schedule(program, issue_cycles=1).total_cycles
        narrow = schedule(program, issue_cycles=4).total_cycles
        assert narrow > wide

    def test_validation(self):
        with pytest.raises(ValueError):
            Instruction("OP", "a", (), latency=0)
        with pytest.raises(ValueError):
            Instruction("OP", "", (), latency=1)
        with pytest.raises(ValueError):
            schedule([], issue_cycles=0)


class TestWarpProgram:
    def test_program_shape(self):
        program = warp_allreduce_program(TESLA_V100, 2)
        # 5 levels x (2 SHFL + 2 FADD) = 20 instructions.
        assert len(program) == 20
        assert program[0].opcode == "SHFL_DOWN"
        assert program[2].opcode == "FADD"

    def test_classical_matches_closed_form_exactly(self):
        """X = 1 is a pure dependence chain: both models agree exactly."""
        for device in (TESLA_V100, RTX_2060):
            assert simulate_warp_allreduce(device, 1) == \
                warp_allreduce_cycles_bound(device, 1)

    @pytest.mark.parametrize("x", [2, 3, 4, 8, 16])
    def test_closed_form_is_a_valid_upper_bound(self, x):
        sim = simulate_warp_allreduce(TESLA_V100, x)
        bound = warp_allreduce_cycles_bound(TESLA_V100, x)
        assert sim <= bound

    @pytest.mark.parametrize("x", [1, 2, 4, 8])
    def test_cost_model_is_scoreboard_backed(self, x):
        assert warp_allreduce_cycles(TESLA_V100, x) == \
            simulate_warp_allreduce(TESLA_V100, x)

    def test_interleaving_amortizes_per_row(self):
        per_row = [simulate_warp_allreduce(TESLA_V100, x) / x for x in (1, 2, 4, 8)]
        assert per_row == sorted(per_row, reverse=True)
        assert per_row[1] < 0.6 * per_row[0]

    def test_issue_bound_asymptote(self):
        """For very large X, per-row cost approaches the issue-rate floor:
        2 instructions per level per row."""
        device = TESLA_V100
        levels = 5
        floor = 2 * levels * device.issue_cycles
        per_row_big = simulate_warp_allreduce(device, 64) / 64
        assert per_row_big < 1.5 * floor
        assert per_row_big >= floor
