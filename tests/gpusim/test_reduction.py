"""Batch-reduction kernel timing: the Fig. 5 / Table 2 substrate."""

import pytest

from repro.gpusim import (
    RTX_2060,
    TESLA_V100,
    ReductionImpl,
    layernorm_time,
    reduction_speedup,
    softmax_time,
)


class TestSoftmaxOrdering:
    """Turbo <= FasterTransformer <= cuDNN <= PyTorch across workloads."""

    @pytest.mark.parametrize("rows,row_len", [
        (12 * 100, 100), (240 * 500, 500), (12 * 500, 500),
    ])
    def test_implementation_ordering(self, rows, row_len):
        times = {
            impl: softmax_time(TESLA_V100, rows, row_len, impl).total_s
            for impl in ReductionImpl
        }
        assert times[ReductionImpl.TURBO] <= times[ReductionImpl.FASTER_TRANSFORMER]
        assert times[ReductionImpl.FASTER_TRANSFORMER] < times[ReductionImpl.CUDNN]
        assert times[ReductionImpl.CUDNN] < times[ReductionImpl.PYTORCH]

    def test_tiny_workload_is_launch_bound(self):
        """At (1, 10) every implementation collapses to launch overhead;
        Turbo may not win (Fig. 5's flat left edge)."""
        turbo = softmax_time(TESLA_V100, 120, 10, ReductionImpl.TURBO).total_s
        classical = softmax_time(
            TESLA_V100, 120, 10, ReductionImpl.FASTER_TRANSFORMER
        ).total_s
        assert turbo <= classical * 1.05
        assert turbo < 3 * TESLA_V100.launch_overhead_s

    def test_speedup_grows_with_workload(self):
        """Fig. 5: longer sequences / bigger batches -> bigger speedup."""
        light = reduction_speedup(TESLA_V100, 12 * 10, 10, "softmax",
                                  ReductionImpl.FASTER_TRANSFORMER)
        heavy = reduction_speedup(TESLA_V100, 240 * 500, 500, "softmax",
                                  ReductionImpl.FASTER_TRANSFORMER)
        assert heavy > light

    def test_turbo_beats_ft_on_heavy_workload(self):
        speedup = reduction_speedup(TESLA_V100, 240 * 500, 500, "softmax",
                                    ReductionImpl.FASTER_TRANSFORMER)
        assert 1.1 < speedup < 3.0

    def test_cudnn_speedup_larger_than_ft_speedup(self):
        """Fig. 5 shows a much larger gap against cuDNN."""
        vs_ft = reduction_speedup(TESLA_V100, 240 * 300, 300, "softmax",
                                  ReductionImpl.FASTER_TRANSFORMER)
        vs_cudnn = reduction_speedup(TESLA_V100, 240 * 300, 300, "softmax",
                                     ReductionImpl.CUDNN)
        assert vs_cudnn > vs_ft


class TestXElem:
    def test_more_chains_help_until_issue_bound(self):
        times = [
            softmax_time(TESLA_V100, 24000, 500, ReductionImpl.TURBO, x).total_s
            for x in (1, 2, 4)
        ]
        assert times[1] < times[0]
        assert times[2] <= times[1]

    def test_x1_turbo_still_beats_classical(self):
        """Even without batching, Turbo's single-read-cached layout (3 vs 4
        memory passes) wins."""
        turbo_x1 = softmax_time(TESLA_V100, 24000, 500, ReductionImpl.TURBO, 1)
        classical = softmax_time(TESLA_V100, 24000, 500,
                                 ReductionImpl.FASTER_TRANSFORMER)
        assert turbo_x1.total_s <= classical.total_s

    def test_invalid_x_rejected(self):
        with pytest.raises(ValueError):
            softmax_time(TESLA_V100, 10, 10, ReductionImpl.TURBO, 0)


class TestLayerNorm:
    @pytest.mark.parametrize("rows", [10, 2000, 10000])
    def test_implementation_ordering(self, rows):
        times = {
            impl: layernorm_time(TESLA_V100, rows, 768, impl).total_s
            for impl in ReductionImpl
        }
        assert times[ReductionImpl.TURBO] <= times[ReductionImpl.FASTER_TRANSFORMER]
        assert times[ReductionImpl.FASTER_TRANSFORMER] < times[ReductionImpl.PYTORCH]

    def test_one_pass_variance_trick_wins(self):
        """Eq. 1: reducing (x, x^2) together beats two sequential passes."""
        one = layernorm_time(TESLA_V100, 10000, 768, ReductionImpl.TURBO,
                             one_pass_variance=True)
        two = layernorm_time(TESLA_V100, 10000, 768, ReductionImpl.TURBO,
                             one_pass_variance=False)
        assert one.total_s < two.total_s

    def test_trick_also_helps_classical(self):
        one = layernorm_time(TESLA_V100, 10000, 768,
                             ReductionImpl.FASTER_TRANSFORMER, one_pass_variance=True)
        two = layernorm_time(TESLA_V100, 10000, 768,
                             ReductionImpl.FASTER_TRANSFORMER, one_pass_variance=False)
        assert one.total_s < two.total_s


class TestDeviceScaling:
    def test_v100_faster_than_rtx2060(self):
        for impl in ReductionImpl:
            v = softmax_time(TESLA_V100, 24000, 500, impl).total_s
            r = softmax_time(RTX_2060, 24000, 500, impl).total_s
            assert v < r, impl

    def test_additive_stall_model(self):
        """Reduction device time is traffic + stall, strictly above pure
        traffic (the barriers cannot overlap memory)."""
        t = softmax_time(TESLA_V100, 24000, 500, ReductionImpl.FASTER_TRANSFORMER)
        assert t.device_s > t.memory_s

    @pytest.mark.parametrize("rows,row_len", [(0, 10), (10, 0), (-1, 5)])
    def test_validation(self, rows, row_len):
        with pytest.raises(ValueError):
            softmax_time(TESLA_V100, rows, row_len)
        with pytest.raises(ValueError):
            layernorm_time(TESLA_V100, rows, row_len)

    def test_speedup_unknown_kernel(self):
        with pytest.raises(ValueError):
            reduction_speedup(TESLA_V100, 10, 10, "conv",
                              ReductionImpl.FASTER_TRANSFORMER)
