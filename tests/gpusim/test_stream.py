"""Stream timeline accumulation."""

import pytest

from repro.gpusim import KernelTiming, Stream


def timing(name: str, total_device: float = 1e-6) -> KernelTiming:
    return KernelTiming(name, launch_s=1e-6, compute_s=total_device, memory_s=0.0)


class TestStream:
    def test_elapsed_accumulates(self):
        s = Stream()
        s.submit(timing("a", 2e-6))
        s.submit(timing("b", 3e-6))
        assert s.elapsed_s == pytest.approx(7e-6)  # two launches + device
        assert s.launches == 2

    def test_time_by_kernel_aggregates_same_name(self):
        s = Stream()
        s.submit(timing("gemm", 2e-6))
        s.submit(timing("gemm", 2e-6))
        s.submit(timing("softmax", 1e-6))
        by = s.time_by_kernel()
        assert by["gemm"] == pytest.approx(6e-6)
        assert set(by) == {"gemm", "softmax"}

    def test_time_matching_substring(self):
        s = Stream()
        s.submit(timing("softmax[turbo]:l0", 1e-6))
        s.submit(timing("softmax[turbo]:l1", 1e-6))
        s.submit(timing("gemm:q", 5e-6))
        assert s.time_matching("softmax") == pytest.approx(4e-6)

    def test_trace_disabled_still_counts(self):
        s = Stream(trace_enabled=False)
        s.extend([timing("a"), timing("b")])
        assert s.launches == 2
        assert s.trace == []

    def test_reset(self):
        s = Stream()
        s.submit(timing("a"))
        s.reset()
        assert s.elapsed_s == 0.0
        assert s.launches == 0
        assert s.time_by_kernel() == {}
