"""CUDA occupancy calculator."""

import pytest

from repro.gpusim import (
    RTX_2060,
    TESLA_V100,
    KernelResources,
    device_resident_blocks,
    occupancy,
)


class TestOccupancy:
    def test_lean_kernel_reaches_full_occupancy(self):
        result = occupancy(TESLA_V100, KernelResources(512, registers_per_thread=32))
        assert result.occupancy == 1.0
        assert result.limiter == "threads"
        assert result.blocks_per_sm == 4

    def test_shared_memory_bound_kernel(self):
        """A 48 KB smem kernel fits twice into the 96 KB pool — the
        framework-kernel pathology the reduction model encodes."""
        result = occupancy(
            TESLA_V100,
            KernelResources(128, registers_per_thread=32,
                            shared_memory_bytes=48 * 1024),
        )
        assert result.blocks_per_sm == 2
        assert result.limiter == "shared_memory"
        assert result.occupancy < 0.2

    def test_register_bound_kernel(self):
        result = occupancy(
            TESLA_V100, KernelResources(1024, registers_per_thread=128)
        )
        assert result.limiter == "registers"
        assert result.occupancy < 1.0

    def test_block_cap_limits_tiny_blocks(self):
        result = occupancy(TESLA_V100, KernelResources(32, registers_per_thread=16))
        assert result.limiter == "blocks"
        assert result.blocks_per_sm == 32

    def test_more_registers_never_raise_occupancy(self):
        light = occupancy(TESLA_V100, KernelResources(256, registers_per_thread=32))
        heavy = occupancy(TESLA_V100, KernelResources(256, registers_per_thread=96))
        assert heavy.blocks_per_sm <= light.blocks_per_sm

    def test_device_wide_blocks(self):
        kernel = KernelResources(512, registers_per_thread=32)
        per_sm = occupancy(RTX_2060, kernel).blocks_per_sm
        assert device_resident_blocks(RTX_2060, kernel) == per_sm * 30

    @pytest.mark.parametrize("kwargs", [
        {"block_threads": 0},
        {"block_threads": 32, "registers_per_thread": 0},
        {"block_threads": 32, "shared_memory_bytes": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            KernelResources(**kwargs)


class TestRoofline:
    def test_ridge_point_positive(self):
        from repro.gpusim import ridge_point

        assert ridge_point(TESLA_V100) > ridge_point(RTX_2060) * 0.5

    def test_report_classifies_and_ranks(self, bert_graph):
        from repro.gpusim import roofline_report
        from repro.runtime import turbo_runtime

        runtime = turbo_runtime(graph=bert_graph)
        report = roofline_report(RTX_2060, runtime.kernel_timings(1, 250))
        assert report.total_s > 0
        top = report.top_kernels(3)
        assert top[0].time_s >= top[1].time_s >= top[2].time_s
        # BERT at seq 250 is GEMM-heavy: mostly compute-bound time.
        assert report.memory_bound_fraction < 0.5
        rendered = report.render()
        assert "bound" in rendered and "total" in rendered

    def test_short_sequences_more_memory_bound(self, bert_graph):
        from repro.gpusim import roofline_report
        from repro.runtime import turbo_runtime

        runtime = turbo_runtime(graph=bert_graph)
        short = roofline_report(RTX_2060, runtime.kernel_timings(1, 10))
        long = roofline_report(RTX_2060, runtime.kernel_timings(1, 500))
        assert short.memory_bound_fraction > long.memory_bound_fraction
