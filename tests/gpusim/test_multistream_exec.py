"""Stream-timing executor: playing StreamSchedules on virtual clocks."""

import pytest

from repro.gpusim import (
    KernelLaunch,
    StreamSchedule,
    execute_schedule,
)


def sched(name="s"):
    return StreamSchedule(name=name)


class TestSingleStream:
    def test_makespan_equals_serial_sum_bitwise(self):
        # One stream is a serial device: the makespan must be *bit*
        # identical to the serial sum (both are the same left-fold).
        s = sched()
        durs = {}
        vals = [0.1, 0.2, 0.3, 1e-7, 0.040000000000000001]
        for i, d in enumerate(vals):
            s.launch(f"k{i}", "main")
            durs[f"k{i}"] = d
        t = execute_schedule(s, durs)
        acc = 0.0
        for d in vals:
            acc += d
        assert t.makespan_s == acc
        assert t.serial_s == acc
        assert t.overlap_saved_s == 0.0
        assert t.per_stream_busy == {"main": acc}

    def test_spans_are_contiguous(self):
        s = sched()
        s.launch("a", "main")
        s.launch("b", "main")
        t = execute_schedule(s, {"a": 1.0, "b": 2.0})
        assert [(sp.start_s, sp.end_s) for sp in t.spans] == [(0.0, 1.0),
                                                              (1.0, 3.0)]
        assert t.spans[1].duration_s == 2.0


class TestTwoStreams:
    def test_independent_streams_overlap(self):
        s = sched()
        s.launch("p", "prefill")
        s.launch("d", "decode")
        t = execute_schedule(s, {"p": 3.0, "d": 2.0})
        assert t.makespan_s == 3.0
        assert t.serial_s == 5.0
        assert t.overlap_saved_s == 2.0
        assert t.per_stream_busy == {"prefill": 3.0, "decode": 2.0}

    def test_event_wait_joins_streams(self):
        s = sched()
        s.launch("p", "prefill")
        s.record("done", "prefill")
        s.wait("done", "decode")
        s.launch("d", "decode")
        t = execute_schedule(s, {"p": 3.0, "d": 2.0})
        # decode starts only after the prefill's record.
        (_, d_span) = t.spans
        assert d_span.start_s == 3.0
        assert t.makespan_s == 5.0

    def test_record_captures_progress_at_record_time(self):
        s = sched()
        s.launch("p1", "prefill")
        s.record("mid", "prefill")
        s.launch("p2", "prefill")
        s.wait("mid", "decode")
        s.launch("d", "decode")
        t = execute_schedule(s, {"p1": 1.0, "p2": 5.0, "d": 1.0})
        d_span = t.spans[-1]
        assert d_span.start_s == 1.0  # waits for p1 only, not p2


class TestEdgeCases:
    def test_wait_without_record_is_noop(self):
        # cudaStreamWaitEvent on an unrecorded event does not block; the
        # race detector flags it, but the executor must not deadlock or
        # shift clocks.
        s = sched()
        s.launch("p", "prefill")
        s.wait("never-recorded", "decode")
        s.launch("d", "decode")
        t = execute_schedule(s, {"p": 3.0, "d": 2.0})
        assert t.spans[-1].start_s == 0.0
        assert t.makespan_s == 3.0

    def test_back_to_back_device_sync(self):
        s = sched()
        s.launch("a", "s0")
        s.launch("b", "s1")
        s.sync()
        s.sync()  # second barrier is a no-op at the same instant
        s.launch("c", "s0")
        t = execute_schedule(s, {"a": 1.0, "b": 4.0, "c": 1.0})
        assert t.spans[-1].start_s == 4.0
        assert t.makespan_s == 5.0

    def test_sync_floors_streams_first_used_after_it(self):
        s = sched()
        s.launch("a", "s0")
        s.sync()
        s.launch("b", "s1")  # s1 never seen before the sync
        t = execute_schedule(s, {"a": 2.0, "b": 1.0})
        assert t.spans[-1].start_s == 2.0
        assert t.makespan_s == 3.0

    def test_sync_only_schedule(self):
        s = sched()
        s.sync()
        t = execute_schedule(s, {})
        assert t.makespan_s == 0.0
        assert t.serial_s == 0.0
        assert t.spans == ()

    def test_empty_schedule(self):
        t = execute_schedule(sched(), {})
        assert t.makespan_s == 0.0
        assert t.per_stream_busy == {}


class TestDurations:
    def test_unknown_kernel_raises(self):
        s = sched()
        s.launch("mystery", "main")
        with pytest.raises(ValueError, match="no duration for kernel"):
            execute_schedule(s, {"other": 1.0})

    def test_negative_duration_raises(self):
        s = sched()
        s.launch("k", "main")
        with pytest.raises(ValueError, match="negative duration"):
            execute_schedule(s, {"k": -1.0})

    def test_callable_duration_model(self):
        s = sched()
        s.launch("k7", "main")

        def model(op: KernelLaunch) -> float:
            return int(op.kernel[1:]) * 0.5

        t = execute_schedule(s, model)
        assert t.makespan_s == 3.5
