"""DeviceSpec validation, presets, and unit conversions."""

import pytest

from repro.gpusim import RTX_2060, TESLA_M40, TESLA_V100, DeviceSpec, get_device


class TestPresets:
    def test_v100_geometry(self):
        assert TESLA_V100.num_sms == 80
        assert TESLA_V100.warp_size == 32

    def test_rtx2060_geometry(self):
        assert RTX_2060.num_sms == 30

    def test_presets_are_distinct(self):
        names = {TESLA_V100.name, RTX_2060.name, TESLA_M40.name}
        assert len(names) == 3

    def test_v100_is_fastest(self):
        assert TESLA_V100.peak_fp32_tflops > RTX_2060.peak_fp32_tflops
        assert TESLA_V100.mem_bandwidth_gbs > RTX_2060.mem_bandwidth_gbs

    @pytest.mark.parametrize("name,expected", [
        ("v100", TESLA_V100),
        ("V100", TESLA_V100),
        ("Tesla-V100", TESLA_V100),
        ("rtx2060", RTX_2060),
        ("RTX 2060", RTX_2060),
        ("m40", TESLA_M40),
    ])
    def test_lookup(self, name, expected):
        assert get_device(name) is expected

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError, match="unknown device"):
            get_device("a100")


class TestUnits:
    def test_cycle_round_trip(self):
        cycles = 12345.0
        seconds = TESLA_V100.cycles_to_seconds(cycles)
        assert TESLA_V100.seconds_to_cycles(seconds) == pytest.approx(cycles)

    def test_one_second_of_cycles(self):
        assert RTX_2060.seconds_to_cycles(1.0) == pytest.approx(1.68e9)

    def test_launch_overhead_in_seconds(self):
        assert RTX_2060.launch_overhead_s == pytest.approx(5e-6)

    def test_bandwidth_bytes(self):
        assert TESLA_V100.mem_bandwidth_bytes == pytest.approx(720e9)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_sms", 0),
        ("num_sms", -4),
        ("clock_ghz", 0.0),
        ("mem_bandwidth_gbs", -1.0),
        ("peak_fp32_tflops", 0.0),
        ("warp_size", 33),
    ])
    def test_bad_fields_rejected(self, field, value):
        kwargs = dict(
            name="bad", num_sms=10, clock_ghz=1.0,
            mem_bandwidth_gbs=100.0, peak_fp32_tflops=1.0,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_with_overrides_returns_new_spec(self):
        slower = TESLA_V100.with_overrides(clock_ghz=1.0)
        assert slower.clock_ghz == 1.0
        assert TESLA_V100.clock_ghz == 1.53  # original untouched
        assert slower.num_sms == TESLA_V100.num_sms
