"""cudaMalloc/cudaFree accounting."""

import pytest

from repro.gpusim import CUDA_MALLOC_STALL_S, DeviceMemory, OutOfDeviceMemoryError


class TestDeviceMemory:
    def test_malloc_free_cycle(self):
        mem = DeviceMemory()
        h = mem.malloc(1024)
        assert mem.allocated_bytes == 1024
        assert mem.live_allocations == 1
        mem.free(h)
        assert mem.allocated_bytes == 0
        assert mem.live_allocations == 0

    def test_peak_tracks_high_water(self):
        mem = DeviceMemory()
        a = mem.malloc(100)
        b = mem.malloc(200)
        mem.free(a)
        mem.free(b)
        assert mem.peak_bytes == 300
        assert mem.allocated_bytes == 0

    def test_each_call_stalls_the_stream(self):
        mem = DeviceMemory()
        h = mem.malloc(64)
        mem.free(h)
        assert mem.stall_s == pytest.approx(2 * CUDA_MALLOC_STALL_S)

    def test_total_alloc_is_cumulative(self):
        mem = DeviceMemory()
        for _ in range(3):
            mem.free(mem.malloc(50))
        assert mem.total_alloc_bytes == 150
        assert mem.allocated_bytes == 0

    def test_capacity_enforced(self):
        mem = DeviceMemory(capacity_bytes=100)
        mem.malloc(80)
        with pytest.raises(OutOfDeviceMemoryError):
            mem.malloc(21)

    def test_unlimited_when_capacity_zero(self):
        mem = DeviceMemory(capacity_bytes=0)
        mem.malloc(10**12)  # fine

    def test_double_free_rejected(self):
        mem = DeviceMemory()
        h = mem.malloc(10)
        mem.free(h)
        with pytest.raises(ValueError):
            mem.free(h)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            DeviceMemory().malloc(0)

    def test_reset_stats_keeps_live(self):
        mem = DeviceMemory()
        mem.malloc(100)
        mem.reset_stats()
        assert mem.allocated_bytes == 100
        assert mem.malloc_calls == 0
        assert mem.total_alloc_bytes == 0
        assert mem.peak_bytes == 100
