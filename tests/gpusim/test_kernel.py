"""Roofline kernel cost model."""

import pytest

from repro.gpusim import (
    RTX_2060,
    TESLA_V100,
    KernelTiming,
    elementwise_time,
    gemm_time,
    gemm_utilization,
    memcpy_time,
)


class TestKernelTiming:
    def test_total_is_launch_plus_roofline_max(self):
        t = KernelTiming("k", launch_s=1e-6, compute_s=5e-6, memory_s=3e-6)
        assert t.device_s == 5e-6
        assert t.total_s == pytest.approx(6e-6)
        assert not t.is_memory_bound

    def test_memory_bound_detection(self):
        t = KernelTiming("k", launch_s=0.0, compute_s=1e-6, memory_s=9e-6)
        assert t.is_memory_bound

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            KernelTiming("k", launch_s=-1e-6, compute_s=0.0, memory_s=1e-6)

    def test_scaled(self):
        t = KernelTiming("k", launch_s=1e-6, compute_s=4e-6, memory_s=2e-6)
        half = t.scaled(0.5)
        assert half.compute_s == pytest.approx(2e-6)
        assert half.launch_s == t.launch_s  # launch unaffected

    def test_scaled_rejects_nonpositive(self):
        t = KernelTiming("k", 1e-6, 1e-6, 1e-6)
        with pytest.raises(ValueError):
            t.scaled(0.0)


class TestGemm:
    def test_flops_dominate_large_gemm(self):
        t = gemm_time(TESLA_V100, 8192, 8192, 8192)
        assert not t.is_memory_bound
        # 2*8192^3 flops at 75% of 15.7 TF
        expected = 2 * 8192**3 / (15.7e12 * 0.75)
        assert t.compute_s == pytest.approx(expected, rel=1e-6)

    def test_small_gemm_runs_at_low_efficiency(self):
        """Underfilled GEMMs achieve far less of peak than saturating ones."""
        small = gemm_time(TESLA_V100, 4, 64, 64)
        large = gemm_time(TESLA_V100, 8192, 8192, 8192)
        small_rate = 2 * 4 * 64 * 64 / small.device_s
        large_rate = 2 * 8192**3 / large.device_s
        assert small_rate < 0.2 * large_rate

    def test_utilization_saturates(self):
        assert gemm_utilization(TESLA_V100, 100000, 768) == 1.0

    def test_utilization_penalizes_small_m(self):
        small = gemm_utilization(RTX_2060, 10, 768)
        large = gemm_utilization(RTX_2060, 5000, 768)
        assert small < large == 1.0

    def test_batching_raises_utilization(self):
        """The mechanism behind Fig. 8's batching gain."""
        u1 = gemm_utilization(RTX_2060, 64, 768, batch=1)
        u8 = gemm_utilization(RTX_2060, 64, 768, batch=8)
        assert u8 > u1

    def test_batched_gemm_cost_scales(self):
        t1 = gemm_time(TESLA_V100, 128, 128, 64, batch=1)
        t16 = gemm_time(TESLA_V100, 128, 128, 64, batch=16)
        assert t16.device_s > t1.device_s

    @pytest.mark.parametrize("m,n,k,batch", [(0, 1, 1, 1), (1, -1, 1, 1), (1, 1, 1, 0)])
    def test_validation(self, m, n, k, batch):
        with pytest.raises(ValueError):
            gemm_time(TESLA_V100, m, n, k, batch)


class TestElementwise:
    def test_bandwidth_bound(self):
        t = elementwise_time(TESLA_V100, 10_000_000, reads=1, writes=1)
        assert t.is_memory_bound
        assert t.memory_s == pytest.approx(2 * 4 * 10_000_000 / 720e9)

    def test_more_passes_cost_more(self):
        one = elementwise_time(TESLA_V100, 1_000_000, reads=1, writes=1)
        three = elementwise_time(TESLA_V100, 1_000_000, reads=2, writes=1)
        assert three.memory_s > one.memory_s

    def test_zero_passes_rejected(self):
        with pytest.raises(ValueError):
            elementwise_time(TESLA_V100, 100, reads=0, writes=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            elementwise_time(TESLA_V100, 0)


class TestMemcpy:
    def test_counts_read_and_write(self):
        t = memcpy_time(TESLA_V100, 720_000_000)  # 720 MB
        assert t.memory_s == pytest.approx(2.0 * 720e6 / 720e9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            memcpy_time(TESLA_V100, 0)
