"""Warp-level timing model: the paper's XElem batching claims."""

import pytest

from repro.gpusim import (
    TESLA_V100,
    boundary_divergence_cycles,
    reduction_levels,
    smem_tree_reduce_cycles,
    warp_allreduce_cycles,
    warp_allreduce_cycles_per_row,
)


class TestReductionLevels:
    def test_warp32_has_5_levels(self):
        assert reduction_levels(32) == 5

    @pytest.mark.parametrize("size,levels", [(2, 1), (4, 2), (16, 4), (64, 6)])
    def test_power_of_two_sizes(self, size, levels):
        assert reduction_levels(size) == levels

    @pytest.mark.parametrize("bad", [0, -1, 3, 33])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ValueError):
            reduction_levels(bad)


class TestWarpAllReduce:
    def test_classical_is_latency_bound(self):
        """X=1 pays the full SHFL->FADD chain latency at every level."""
        device = TESLA_V100
        expected = 5 * (device.shuffle_latency_cycles + device.alu_latency_cycles)
        assert warp_allreduce_cycles(device, 1) == expected

    def test_batching_amortizes_latency(self):
        """The paper's key claim: per-row cost drops roughly as 1/X."""
        device = TESLA_V100
        per_row = [warp_allreduce_cycles_per_row(device, x) for x in (1, 2, 4, 8)]
        assert per_row == sorted(per_row, reverse=True)
        # X=2 should roughly halve the per-row cost (issue slots are cheap).
        assert per_row[1] < 0.62 * per_row[0]

    def test_total_grows_sublinearly_in_x(self):
        device = TESLA_V100
        t1 = warp_allreduce_cycles(device, 1)
        t4 = warp_allreduce_cycles(device, 4)
        assert t1 < t4 < 4 * t1

    def test_diminishing_returns(self):
        """Once issue-bound, adding more chains stops helping much."""
        device = TESLA_V100
        gain_2 = (warp_allreduce_cycles_per_row(device, 1)
                  / warp_allreduce_cycles_per_row(device, 2))
        gain_32 = (warp_allreduce_cycles_per_row(device, 16)
                   / warp_allreduce_cycles_per_row(device, 32))
        assert gain_2 > gain_32

    def test_invalid_x(self):
        with pytest.raises(ValueError):
            warp_allreduce_cycles(TESLA_V100, 0)


class TestSmemTree:
    def test_tree_scales_with_log_threads(self):
        device = TESLA_V100
        t128 = smem_tree_reduce_cycles(device, 128)
        t512 = smem_tree_reduce_cycles(device, 512)
        assert t512 == pytest.approx(t128 * 9 / 7)

    def test_tree_slower_than_shuffle(self):
        """Shared-memory trees pay barriers every level; shuffles don't."""
        device = TESLA_V100
        assert smem_tree_reduce_cycles(device, 32) > warp_allreduce_cycles(device, 1)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            smem_tree_reduce_cycles(TESLA_V100, 0)


class TestDivergence:
    def test_aligned_rows_free(self):
        assert boundary_divergence_cycles(TESLA_V100, 256) == 0.0

    def test_misaligned_rows_pay(self):
        assert boundary_divergence_cycles(TESLA_V100, 100) > 0.0

    def test_merging_amortizes(self):
        """XElem merges X boundary regions into one (paper §4.1.2)."""
        single = boundary_divergence_cycles(TESLA_V100, 100, rows_merged=1)
        merged = boundary_divergence_cycles(TESLA_V100, 100, rows_merged=4)
        assert merged == pytest.approx(single / 4)

    @pytest.mark.parametrize("row_len,rows", [(0, 1), (10, 0), (-5, 1)])
    def test_validation(self, row_len, rows):
        with pytest.raises(ValueError):
            boundary_divergence_cycles(TESLA_V100, row_len, rows)
