"""Batch schedulers — DP optimality (Algorithm 3) and baselines."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    DPBatchScheduler,
    FixedPadScheduler,
    NaiveBatchScheduler,
    NoBatchScheduler,
    Request,
    brute_force_optimal_makespan,
    schedule_makespan,
    throughput_of_schedule,
)


def reqs(lengths):
    return [Request(req_id=i, seq_len=l, arrival_s=0.0) for i, l in enumerate(lengths)]


def affine_cost(fixed=0.5, per_token=0.05, alpha=0.9):
    def cost(seq_len, batch):
        return fixed + per_token * seq_len * batch ** alpha
    return cost


def all_set_partitions(items):
    """Every partition of a list into non-empty groups (Bell number many)."""
    if len(items) == 1:
        yield [items]
        return
    first, rest = items[0], items[1:]
    for partition in all_set_partitions(rest):
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        yield [[first]] + partition


class TestDPScheduler:
    def test_covers_every_request_once(self):
        requests = reqs([17, 18, 52, 63, 77])
        batches = DPBatchScheduler().schedule(requests, affine_cost(), 20)
        scheduled = [r.req_id for b in batches for r in b.requests]
        assert sorted(scheduled) == list(range(5))

    def test_respects_max_batch(self):
        requests = reqs([10] * 50)
        batches = DPBatchScheduler().schedule(requests, affine_cost(), 8)
        assert all(b.size <= 8 for b in batches)

    def test_matches_contiguous_brute_force(self):
        requests = reqs([17, 18, 52, 63, 77, 4, 91, 33])
        dp = DPBatchScheduler()
        got = dp.optimal_makespan(requests, affine_cost(), 20)
        want = brute_force_optimal_makespan(requests, affine_cost(), 20)
        assert got == pytest.approx(want)

    def test_optimal_over_all_set_partitions(self):
        """With cost monotone in length, the sorted-contiguous DP optimum
        is globally optimal over every partition of the request set."""
        lengths = [17, 18, 52, 63, 77, 30]
        requests = reqs(lengths)
        cost = affine_cost()
        dp_makespan = DPBatchScheduler().optimal_makespan(requests, cost, 20)
        best = math.inf
        for partition in all_set_partitions(lengths):
            total = sum(cost(max(group), len(group)) for group in partition)
            best = min(best, total)
        assert dp_makespan == pytest.approx(best)

    def test_identical_lengths_fill_batches(self):
        """Equal lengths have zero padding cost: batching always wins under
        sub-linear batch scaling, so the DP should fill max_batch."""
        requests = reqs([50] * 12)
        batches = DPBatchScheduler().schedule(requests, affine_cost(), 6)
        assert sorted(b.size for b in batches) == [6, 6]

    def test_extreme_length_gap_splits(self):
        """A tiny and a huge request shouldn't share a batch when the cost
        is dominated by padded length."""
        cost = affine_cost(fixed=0.001, per_token=1.0, alpha=1.0)
        batches = DPBatchScheduler().schedule(reqs([5, 500]), cost, 20)
        assert len(batches) == 2

    def test_strong_fixed_cost_merges(self):
        """A huge per-batch fixed cost forces one batch."""
        cost = affine_cost(fixed=1000.0, per_token=0.001)
        batches = DPBatchScheduler().schedule(reqs([5, 500]), cost, 20)
        assert len(batches) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DPBatchScheduler().schedule([], affine_cost(), 20)

    @given(
        st.lists(st.integers(1, 500), min_size=1, max_size=12),
        st.floats(0.01, 5.0),
        st.floats(0.001, 0.2),
        st.floats(0.5, 1.0),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_dp_never_worse_than_baselines(self, lengths, fixed, per_token,
                                           alpha, max_batch):
        """Property: DP <= naive and DP <= no-batch for any workload/cost."""
        requests = reqs(lengths)
        cost = affine_cost(fixed, per_token, alpha)
        dp = schedule_makespan(
            DPBatchScheduler().schedule(requests, cost, max_batch), cost
        )
        naive = schedule_makespan(
            NaiveBatchScheduler().schedule(requests, cost, max_batch), cost
        )
        nobatch = schedule_makespan(
            NoBatchScheduler().schedule(requests, cost, max_batch), cost
        )
        assert dp <= naive + 1e-9
        assert dp <= nobatch + 1e-9

    @given(st.lists(st.integers(1, 300), min_size=1, max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_dp_matches_brute_force_property(self, lengths):
        requests = reqs(lengths)
        cost = affine_cost()
        got = DPBatchScheduler().optimal_makespan(requests, cost, 20)
        want = brute_force_optimal_makespan(requests, cost, 20)
        assert got == pytest.approx(want)


class TestBaselineSchedulers:
    def test_nobatch_singletons(self):
        batches = NoBatchScheduler().schedule(reqs([1, 2, 3]), affine_cost(), 20)
        assert [b.size for b in batches] == [1, 1, 1]

    def test_naive_single_batch(self):
        batches = NaiveBatchScheduler().schedule(reqs([10, 20, 30]), affine_cost(), 20)
        assert len(batches) == 1
        assert batches[0].padded_len == 30

    def test_naive_chunks_at_max_batch(self):
        batches = NaiveBatchScheduler().schedule(reqs([10] * 45), affine_cost(), 20)
        assert [b.size for b in batches] == [20, 20, 5]

    def test_fixed_pad_static_shape(self):
        scheduler = FixedPadScheduler(pad_len=500, batch_size=8)
        batches = scheduler.schedule(reqs([10, 20, 30]), affine_cost(), 20)
        assert len(batches) == 1
        assert batches[0].padded_len == 500
        assert batches[0].cost_batch_size == 8

    def test_fixed_pad_rejects_overlong(self):
        scheduler = FixedPadScheduler(pad_len=100, batch_size=4)
        with pytest.raises(ValueError, match="longer than"):
            scheduler.schedule(reqs([150]), affine_cost(), 20)

    def test_throughput_metric(self):
        cost = affine_cost()
        batches = NoBatchScheduler().schedule(reqs([10, 10]), cost, 20)
        rps = throughput_of_schedule(batches, cost)
        assert rps == pytest.approx(2 / (2 * cost(10, 1)))


class TestSptOrdering:
    def test_partition_unchanged(self):
        cost = affine_cost()
        requests = reqs([17, 18, 52, 63, 77, 200, 210])
        fifo = DPBatchScheduler("fifo").schedule(requests, cost, 20)
        spt = DPBatchScheduler("spt").schedule(requests, cost, 20)
        assert sorted(tuple(r.req_id for r in b.requests) for b in fifo) == \
            sorted(tuple(r.req_id for r in b.requests) for b in spt)

    def test_spt_minimizes_mean_completion(self):
        """Shortest-processing-time-first is optimal for mean completion of
        a fixed batch set; verify against the FIFO order and brute force."""
        import itertools

        cost = affine_cost()
        requests = reqs([10, 12, 300, 310, 80, 85])
        spt_batches = DPBatchScheduler("spt").schedule(requests, cost, 20)

        def mean_completion(batches):
            t, total, count = 0.0, 0.0, 0
            for b in batches:
                t += cost(b.padded_len, b.size)
                total += t * b.size
                count += b.size
            return total / count

        spt_mc = mean_completion(spt_batches)
        best = min(
            mean_completion(list(perm))
            for perm in itertools.permutations(spt_batches)
        )
        assert spt_mc == pytest.approx(best)

    def test_costs_ascend(self):
        cost = affine_cost()
        requests = reqs([10, 400, 90, 15, 380, 95])
        batches = DPBatchScheduler("spt").schedule(requests, cost, 2)
        costs = [cost(b.padded_len, b.size) for b in batches]
        assert costs == sorted(costs)

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            DPBatchScheduler("random")
