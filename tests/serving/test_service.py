"""Service facade: model registry, ensembles, cache-integrated serving."""

import pytest

from repro.serving import (
    InferenceService,
    ModelRegistry,
    ModelRegistryError,
    ModelVersion,
    Request,
    ensemble_cost_fn,
)


def cost_v1(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def cost_v2(seq_len, batch):  # the "optimized" deployment
    return 0.001 + 0.00003 * seq_len * batch


def registry():
    r = ModelRegistry()
    r.register(ModelVersion("bert-clf", 1, cost_v1, "initial"))
    r.register(ModelVersion("bert-clf", 2, cost_v2, "fused kernels"))
    return r


class TestModelRegistry:
    def test_first_version_serves_by_default(self):
        r = registry()
        assert r.serving_version("bert-clf") == 1
        assert r.get("bert-clf").version == 1

    def test_deploy_and_rollback(self):
        r = registry()
        r.serve_version("bert-clf", 2)
        assert r.get("bert-clf").version == 2
        r.serve_version("bert-clf", 1)  # rollback
        assert r.get("bert-clf").version == 1

    def test_explicit_version_fetch(self):
        r = registry()
        assert r.get("bert-clf", 2).description == "fused kernels"

    def test_duplicate_version_rejected(self):
        r = registry()
        with pytest.raises(ModelRegistryError):
            r.register(ModelVersion("bert-clf", 1, cost_v1))

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelRegistryError):
            registry().get("nope")

    def test_unknown_version_rejected(self):
        with pytest.raises(ModelRegistryError):
            registry().get("bert-clf", 9)

    def test_retire_old_version(self):
        r = registry()
        r.serve_version("bert-clf", 2)
        r.retire("bert-clf", 1)
        assert r.versions("bert-clf") == [2]

    def test_serving_version_cannot_retire(self):
        r = registry()
        with pytest.raises(ModelRegistryError, match="currently serving"):
            r.retire("bert-clf", 1)

    def test_models_listing(self):
        r = registry()
        r.register(ModelVersion("gpt", 1, cost_v1))
        assert r.models() == ["bert-clf", "gpt"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelVersion("", 1, cost_v1)
        with pytest.raises(ValueError):
            ModelVersion("m", 0, cost_v1)


class TestEnsemble:
    def test_cost_is_sum_of_members(self):
        ens = ensemble_cost_fn([cost_v1, cost_v2])
        assert ens(100, 4) == pytest.approx(cost_v1(100, 4) + cost_v2(100, 4))

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            ensemble_cost_fn([])

    def test_ensemble_served_through_registry(self):
        r = registry()
        r.register(ModelVersion(
            "bert-ensemble", 1, ensemble_cost_fn([cost_v1, cost_v2])
        ))
        service = InferenceService(r, "bert-ensemble")
        requests = [Request(req_id=i, seq_len=50, arrival_s=0.05 * i)
                    for i in range(10)]
        metrics = service.serve(requests, duration_s=1.0)
        assert metrics.completed == 10
        # Ensemble latency exceeds either member alone.
        assert metrics.latency.min_ms * 1e-3 >= cost_v2(50, 1)


class TestInferenceService:
    def _requests(self, payloads, gap=0.01):
        return [
            Request(req_id=i, seq_len=40, arrival_s=i * gap,
                    payload=(payload,))
            for i, payload in enumerate(payloads)
        ]

    def test_serves_with_active_version(self):
        r = registry()
        service = InferenceService(r, "bert-clf")
        metrics = service.serve(self._requests(range(20)), duration_s=0.5)
        assert metrics.system == "bert-clf@v1"
        assert metrics.completed == 20

    def test_upgrade_changes_served_version(self):
        r = registry()
        service = InferenceService(r, "bert-clf")
        r.serve_version("bert-clf", 2)
        metrics = service.serve(self._requests(range(5)), duration_s=0.5)
        assert metrics.system == "bert-clf@v2"

    def test_cache_short_circuits_repeats(self):
        """Clipper-style response caching: repeated payloads skip the model."""
        r = registry()
        service = InferenceService(r, "bert-clf")
        payloads = [0, 1, 2, 3] * 10  # heavy repetition
        metrics = service.serve(self._requests(payloads), duration_s=1.0)
        assert service.cache.hits > 0
        # Cached responses complete at arrival: minimum latency is zero.
        assert metrics.latency.min_ms == pytest.approx(0.0)

    def test_cache_disabled_on_request(self):
        r = registry()
        service = InferenceService(r, "bert-clf")
        service.serve(self._requests([7] * 10), duration_s=1.0, use_cache=False)
        assert service.cache.hits == 0

    def test_cache_lowers_average_latency(self):
        r = registry()
        skewed = [0] * 30 + list(range(30))
        import random

        rng = random.Random(5)
        rng.shuffle(skewed)
        with_cache = InferenceService(r, "bert-clf")
        m1 = with_cache.serve(self._requests(skewed, gap=0.004), duration_s=0.5)
        without = InferenceService(r, "bert-clf")
        m2 = without.serve(self._requests(skewed, gap=0.004), duration_s=0.5,
                           use_cache=False)
        assert m1.latency.avg_ms < m2.latency.avg_ms

    def test_unknown_model_rejected_early(self):
        with pytest.raises(ModelRegistryError):
            InferenceService(registry(), "missing")
