"""Hungry/lazy trigger policies."""

import pytest

from repro.serving import HungryPolicy, LazyPolicy, MessageQueue, Request


def queue_with(arrivals):
    q = MessageQueue()
    for i, t in enumerate(arrivals):
        q.push(Request(req_id=i, seq_len=10, arrival_s=t))
    return q


class TestHungry:
    def test_fires_whenever_nonempty(self):
        policy = HungryPolicy()
        assert not policy.should_schedule(queue_with([]), 0.0)
        assert policy.should_schedule(queue_with([0.0]), 0.0)

    def test_no_future_decision_time(self):
        policy = HungryPolicy()
        assert policy.next_decision_time(queue_with([0.0]), 0.0) == float("inf")


class TestLazy:
    def test_waits_below_thresholds(self):
        policy = LazyPolicy(timeout_s=0.01, max_batch=4, latency_slo_s=10.0)
        q = queue_with([0.0, 0.0])
        assert not policy.should_schedule(q, 0.001)

    def test_fires_on_max_batch(self):
        policy = LazyPolicy(timeout_s=10.0, max_batch=3, latency_slo_s=100.0)
        assert policy.should_schedule(queue_with([0.0] * 3), 0.0)

    def test_fires_on_timeout(self):
        policy = LazyPolicy(timeout_s=0.01, max_batch=100, latency_slo_s=100.0)
        q = queue_with([0.0])
        assert not policy.should_schedule(q, 0.005)
        assert policy.should_schedule(q, 0.011)

    def test_slo_escape_hatch(self):
        """Front request's age + estimated execution > SLO/2 -> fire now."""
        policy = LazyPolicy(timeout_s=10.0, max_batch=100, latency_slo_s=0.1,
                            estimated_exec_s=0.04)
        q = queue_with([0.0])
        assert not policy.should_schedule(q, 0.005)
        assert policy.should_schedule(q, 0.011)  # 0.011 + 0.04 >= 0.05

    def test_next_decision_time_is_earliest_trigger(self):
        policy = LazyPolicy(timeout_s=0.02, max_batch=100, latency_slo_s=0.5)
        q = queue_with([1.0])
        assert policy.next_decision_time(q, 1.0) == pytest.approx(1.02)

    def test_empty_queue_never_fires(self):
        policy = LazyPolicy()
        assert not policy.should_schedule(queue_with([]), 5.0)
        assert policy.next_decision_time(queue_with([]), 5.0) == float("inf")

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0}, {"max_batch": 0}, {"latency_slo_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LazyPolicy(**kwargs)
