"""Hungry/lazy trigger policies."""

import pytest

from repro.serving import HungryPolicy, LazyPolicy, MessageQueue, Request


def queue_with(arrivals):
    q = MessageQueue()
    for i, t in enumerate(arrivals):
        q.push(Request(req_id=i, seq_len=10, arrival_s=t))
    return q


class TestHungry:
    def test_fires_whenever_nonempty(self):
        policy = HungryPolicy()
        assert not policy.should_schedule(queue_with([]), 0.0)
        assert policy.should_schedule(queue_with([0.0]), 0.0)

    def test_no_future_decision_time(self):
        policy = HungryPolicy()
        assert policy.next_decision_time(queue_with([0.0]), 0.0) == float("inf")


class TestLazy:
    def test_waits_below_thresholds(self):
        policy = LazyPolicy(timeout_s=0.01, max_batch=4, latency_slo_s=10.0)
        q = queue_with([0.0, 0.0])
        assert not policy.should_schedule(q, 0.001)

    def test_fires_on_max_batch(self):
        policy = LazyPolicy(timeout_s=10.0, max_batch=3, latency_slo_s=100.0)
        assert policy.should_schedule(queue_with([0.0] * 3), 0.0)

    def test_fires_on_timeout(self):
        policy = LazyPolicy(timeout_s=0.01, max_batch=100, latency_slo_s=100.0)
        q = queue_with([0.0])
        assert not policy.should_schedule(q, 0.005)
        assert policy.should_schedule(q, 0.011)

    def test_slo_escape_hatch(self):
        """Front request's age + estimated execution > SLO/2 -> fire now."""
        policy = LazyPolicy(timeout_s=10.0, max_batch=100, latency_slo_s=0.1,
                            estimated_exec_s=0.04)
        q = queue_with([0.0])
        assert not policy.should_schedule(q, 0.005)
        assert policy.should_schedule(q, 0.011)  # 0.011 + 0.04 >= 0.05

    def test_next_decision_time_is_earliest_trigger(self):
        policy = LazyPolicy(timeout_s=0.02, max_batch=100, latency_slo_s=0.5)
        q = queue_with([1.0])
        assert policy.next_decision_time(q, 1.0) == pytest.approx(1.02)

    def test_next_decision_time_clamped_to_now(self):
        """Regression (ISSUE 1): a large estimated_exec_s pushed the SLO
        trigger (arrival + slo/2 - estimate) into the past; an event
        simulator advancing to a past trigger makes no progress and falls
        into anti-stall micro-stepping."""
        policy = LazyPolicy(timeout_s=10.0, max_batch=100, latency_slo_s=0.1,
                            estimated_exec_s=5.0)
        q = queue_with([0.0])
        assert policy.next_decision_time(q, 1.0) == 1.0

    @pytest.mark.parametrize("estimate", [0.0, 0.04, 0.5, 5.0, 500.0])
    def test_next_decision_time_never_in_past(self, estimate):
        policy = LazyPolicy(timeout_s=0.02, max_batch=100, latency_slo_s=0.1,
                            estimated_exec_s=estimate)
        q = queue_with([0.0])
        for now in (0.0, 0.001, 0.019, 1.0):
            assert policy.next_decision_time(q, now) >= now

    def test_large_estimated_exec_no_micro_stepping(self):
        """A huge per-request cost must not degrade the simulation into
        thousands of 1e-9 s anti-stall steps: the number of policy
        decision-time evaluations stays on the order of the request
        count."""
        from repro.serving import NaiveBatchScheduler, ServingConfig, simulate_serving

        calls = []

        class CountingLazy(LazyPolicy):
            def next_decision_time(self, queue, now_s):
                t = super().next_decision_time(queue, now_s)
                calls.append((now_s, t))
                return t

        requests = [Request(req_id=i, seq_len=10, arrival_s=0.01 * i)
                    for i in range(20)]
        config = ServingConfig(
            max_batch=4,
            policy=CountingLazy(timeout_s=0.005, max_batch=4,
                                latency_slo_s=0.1),
        )
        metrics = simulate_serving(
            requests, NaiveBatchScheduler(),
            lambda seq_len, batch: 1.0 + 0.1 * batch,  # enormous exec cost
            config=config, duration_s=0.2,
        )
        assert metrics.completed == 20
        assert all(t >= now for now, t in calls)
        assert len(calls) < 200

    def test_empty_queue_never_fires(self):
        policy = LazyPolicy()
        assert not policy.should_schedule(queue_with([]), 5.0)
        assert policy.next_decision_time(queue_with([]), 5.0) == float("inf")

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0}, {"max_batch": 0}, {"latency_slo_s": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LazyPolicy(**kwargs)
