"""Workload generation: length distributions and Poisson arrivals."""

import numpy as np
import pytest

from repro.serving import (
    MAX_LEN,
    MIN_LEN,
    generate_requests,
    normal_lengths,
    poisson_arrivals,
    uniform_lengths,
)


class TestLengths:
    def test_normal_within_range(self, rng):
        lengths = normal_lengths(rng, 2000)
        assert lengths.min() >= MIN_LEN
        assert lengths.max() <= MAX_LEN

    def test_normal_centered(self, rng):
        lengths = normal_lengths(rng, 5000)
        assert abs(lengths.mean() - (MIN_LEN + MAX_LEN) / 2) < 10

    def test_uniform_within_range(self, rng):
        lengths = uniform_lengths(rng, 2000, 10, 50)
        assert lengths.min() >= 10
        assert lengths.max() <= 50

    def test_uniform_covers_range(self, rng):
        lengths = uniform_lengths(rng, 5000, 1, 10)
        assert set(np.unique(lengths)) == set(range(1, 11))

    def test_invalid_ranges(self, rng):
        with pytest.raises(ValueError):
            normal_lengths(rng, 10, lo=10, hi=5)
        with pytest.raises(ValueError):
            uniform_lengths(rng, 10, lo=0, hi=5)


class TestPoisson:
    def test_arrivals_sorted_within_horizon(self, rng):
        times = poisson_arrivals(rng, rate_per_s=100, duration_s=5.0)
        assert (np.diff(times) >= 0).all()
        assert times.max() < 5.0

    def test_rate_approximately_honoured(self, rng):
        times = poisson_arrivals(rng, rate_per_s=200, duration_s=20.0)
        rate = len(times) / 20.0
        assert rate == pytest.approx(200, rel=0.1)

    def test_exponential_gaps(self, rng):
        times = poisson_arrivals(rng, rate_per_s=50, duration_s=50.0)
        gaps = np.diff(times)
        assert gaps.mean() == pytest.approx(1 / 50, rel=0.1)
        # Memorylessness: std of exponential equals its mean.
        assert gaps.std() == pytest.approx(gaps.mean(), rel=0.15)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rng, 10, 0)


class TestGenerateRequests:
    def test_deterministic_given_seed(self):
        a = generate_requests(50, 2.0, seed=9)
        b = generate_requests(50, 2.0, seed=9)
        assert [(r.seq_len, r.arrival_s) for r in a] == \
               [(r.seq_len, r.arrival_s) for r in b]

    def test_ids_unique_and_ordered(self):
        requests = generate_requests(100, 2.0, seed=0)
        ids = [r.req_id for r in requests]
        assert ids == sorted(set(ids))

    def test_custom_length_sampler(self):
        requests = generate_requests(
            50, 2.0, seed=0,
            length_sampler=lambda rng, n: uniform_lengths(rng, n, 7, 7),
        )
        assert all(r.seq_len == 7 for r in requests)
