"""Trace persistence and the CLI entry point."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    Request,
    ServingConfig,
    generate_requests,
    load_trace,
    save_trace,
    simulate_serving,
)


class TestTraceRoundTrip:
    def test_fields_preserved(self, tmp_path):
        requests = [
            Request(req_id=0, seq_len=17, arrival_s=0.1, priority=1,
                    payload=(3, 4, 5)),
            Request(req_id=1, seq_len=400, arrival_s=0.2),
        ]
        path = tmp_path / "trace.json"
        save_trace(requests, path)
        restored = load_trace(path)
        assert len(restored) == 2
        assert restored[0].seq_len == 17
        assert restored[0].priority == 1
        assert restored[0].payload == (3, 4, 5)
        assert restored[1].payload is None

    def test_completion_state_not_persisted(self, tmp_path):
        request = Request(req_id=0, seq_len=10, arrival_s=0.0)
        request.completion_s = 5.0
        path = tmp_path / "trace.json"
        save_trace([request], path)
        restored = load_trace(path)[0]
        assert restored.completion_s is None

    def test_replay_is_identical(self, tmp_path):
        """Serving a saved trace reproduces the original run exactly."""
        def cost(seq_len, batch):
            return 0.002 + 0.00005 * seq_len * batch

        original = generate_requests(80, 3.0, seed=17)
        path = tmp_path / "trace.json"
        save_trace(original, path)
        first = simulate_serving(original, DPBatchScheduler(), cost,
                                 ServingConfig(max_batch=20), duration_s=3.0)
        replayed = load_trace(path)
        second = simulate_serving(replayed, DPBatchScheduler(), cost,
                                  ServingConfig(max_batch=20), duration_s=3.0)
        assert first.latency.avg_ms == second.latency.avg_ms
        assert first.response_throughput == second.response_throughput

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"schema_version": 99, "requests": []}')
        with pytest.raises(ValueError, match="schema"):
            load_trace(path)


class TestCli:
    def test_selfcheck_passes(self, capsys):
        from repro.__main__ import main

        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck passed" in out
        assert "turbo" in out

    def test_report_quick(self, tmp_path, capsys):
        from repro.__main__ import main

        out_path = tmp_path / "r.md"
        assert main(["report", "--quick", str(out_path)]) == 0
        assert out_path.read_text().startswith("# TurboTransformers")

    def test_unknown_command_rejected(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["frobnicate"])
