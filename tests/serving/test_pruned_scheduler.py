"""PrunedDPBatchScheduler: identical partitions to the reference DP."""

import random

import pytest

from repro.serving import (
    DPBatchScheduler,
    PrunedDPBatchScheduler,
    Request,
    brute_force_optimal_makespan,
    schedule_makespan,
)


def reqs(lengths):
    return [Request(req_id=i, seq_len=l, arrival_s=0.0)
            for i, l in enumerate(lengths)]


def monotone_cost(seq_len, batch):
    return (1.0 + 0.002 * seq_len) * (0.3 + 0.1 * batch) * 1e-3


def affine_cost(seq_len, batch):
    return 0.5 + 0.05 * seq_len * batch ** 0.9


def jagged_cost(seq_len, batch):
    """Deliberately NOT monotone in batch size (pruning must disable)."""
    return 1.0 + 0.01 * seq_len + (0.3 if batch % 3 == 0 else 1.0) * batch


def partition(batches):
    return [[r.req_id for r in b.requests] for b in batches]


class TestIdenticalPartitions:
    def test_random_monotone_workloads(self):
        rng = random.Random(7)
        for trial in range(150):
            lengths = [rng.randrange(1, 33) * 16
                       for _ in range(rng.randrange(1, 40))]
            max_batch = rng.randrange(1, 17)
            reference = DPBatchScheduler().schedule(
                reqs(lengths), monotone_cost, max_batch)
            pruned = PrunedDPBatchScheduler().schedule(
                reqs(lengths), monotone_cost, max_batch)
            assert partition(pruned) == partition(reference), \
                f"trial {trial}: lengths={lengths} max_batch={max_batch}"

    def test_non_monotone_cost_disables_pruning_but_stays_exact(self):
        rng = random.Random(13)
        scheduler = PrunedDPBatchScheduler()
        for trial in range(100):
            lengths = [rng.randrange(1, 200)
                       for _ in range(rng.randrange(1, 25))]
            max_batch = rng.randrange(1, 9)
            reference = DPBatchScheduler().schedule(
                reqs(lengths), jagged_cost, max_batch)
            pruned = scheduler.schedule(reqs(lengths), jagged_cost, max_batch)
            assert partition(pruned) == partition(reference), \
                f"trial {trial}: lengths={lengths} max_batch={max_batch}"
        assert not scheduler._prunable

    def test_brute_force_certification(self):
        rng = random.Random(3)
        for _ in range(60):
            lengths = [rng.randrange(1, 100)
                       for _ in range(rng.randrange(1, 9))]
            max_batch = rng.randrange(1, 5)
            batches = PrunedDPBatchScheduler().schedule(
                reqs(lengths), affine_cost, max_batch)
            got = schedule_makespan(batches, affine_cost)
            want = brute_force_optimal_makespan(
                reqs(lengths), affine_cost, max_batch)
            assert abs(got - want) < 1e-9

    def test_spt_ordering_matches_reference(self):
        lengths = [64, 16, 128, 16, 256, 32]
        reference = DPBatchScheduler(order_batches="spt").schedule(
            reqs(lengths), monotone_cost, 4)
        pruned = PrunedDPBatchScheduler(order_batches="spt").schedule(
            reqs(lengths), monotone_cost, 4)
        assert partition(pruned) == partition(reference)


class TestIncrementalReuse:
    def test_growing_queue_reuses_prefix(self):
        rng = random.Random(21)
        scheduler = PrunedDPBatchScheduler()
        reference = DPBatchScheduler()
        lengths = []
        for round_no in range(30):
            lengths.extend(rng.randrange(1, 33) * 16
                           for _ in range(rng.randrange(1, 5)))
            got = scheduler.schedule(reqs(lengths), monotone_cost, 8)
            want = reference.schedule(reqs(lengths), monotone_cost, 8)
            assert partition(got) == partition(want), f"round {round_no}"
        stats = scheduler.stats()
        assert stats["rounds"] == 30
        assert stats["positions_reused"] > 0
        # Memoized rows: far fewer cost calls than n * max_batch per round.
        assert stats["cost_calls"] == stats["distinct_lengths"] * 8

    def test_reset_on_cost_fn_change(self):
        scheduler = PrunedDPBatchScheduler()
        lengths = [16, 32, 48, 64]
        scheduler.schedule(reqs(lengths), monotone_cost, 4)
        # New cost function: memoized rows/states must not leak across.
        got = scheduler.schedule(reqs(lengths), affine_cost, 4)
        want = DPBatchScheduler().schedule(reqs(lengths), affine_cost, 4)
        assert partition(got) == partition(want)

    def test_reset_on_max_batch_change(self):
        scheduler = PrunedDPBatchScheduler()
        lengths = [16, 16, 32, 32, 48, 48]
        scheduler.schedule(reqs(lengths), monotone_cost, 2)
        got = scheduler.schedule(reqs(lengths), monotone_cost, 6)
        want = DPBatchScheduler().schedule(reqs(lengths), monotone_cost, 6)
        assert partition(got) == partition(want)

    def test_flags_off_still_exact(self):
        rng = random.Random(17)
        scheduler = PrunedDPBatchScheduler(prune=False, incremental=False)
        for _ in range(25):
            lengths = [rng.randrange(1, 300)
                       for _ in range(rng.randrange(1, 20))]
            got = scheduler.schedule(reqs(lengths), affine_cost, 6)
            want = DPBatchScheduler().schedule(reqs(lengths), affine_cost, 6)
            assert partition(got) == partition(want)


class TestGenerationCostTable:
    def test_identical_partitions_on_generation_costs(self):
        """Property test with a cost table built from *generation* costs
        (prefill + decode through GenerationRuntime) rather than a
        closed-form stand-in — the table the request-level generation
        server schedules with.  Pruned DP must emit the identical
        partition, pruning enabled or not (generation cost is monotone in
        batch and length, so pruning stays active)."""
        from repro.gpusim import RTX_2060
        from repro.models import (
            build_decode_step_graph,
            build_prefill_graph,
            tiny_gpt,
        )
        from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
        from repro.serving import request_level_cost_fn

        config = tiny_gpt()
        runtime = GenerationRuntime(build_prefill_graph(config),
                                    build_decode_step_graph(config),
                                    TURBO_CHARACTERISTICS, RTX_2060)
        gen_cost = request_level_cost_fn(runtime, est_new_tokens=8)

        rng = random.Random(23)
        pruned = PrunedDPBatchScheduler()
        for trial in range(40):
            lengths = [rng.randrange(1, 9) * 8
                       for _ in range(rng.randrange(1, 25))]
            max_batch = rng.randrange(1, 9)
            reference = DPBatchScheduler().schedule(
                reqs(lengths), gen_cost, max_batch)
            got = pruned.schedule(reqs(lengths), gen_cost, max_batch)
            assert partition(got) == partition(reference), \
                f"trial {trial}: lengths={lengths} max_batch={max_batch}"
        # Monotone generation costs: pruning must have stayed enabled.
        assert pruned._prunable

    def test_generation_makespan_matches_brute_force(self):
        from repro.gpusim import RTX_2060
        from repro.models import (
            build_decode_step_graph,
            build_prefill_graph,
            tiny_gpt,
        )
        from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
        from repro.serving import request_level_cost_fn

        config = tiny_gpt()
        runtime = GenerationRuntime(build_prefill_graph(config),
                                    build_decode_step_graph(config),
                                    TURBO_CHARACTERISTICS, RTX_2060)
        gen_cost = request_level_cost_fn(runtime, est_new_tokens=4)
        lengths = [8, 8, 16, 24, 32, 40]
        batches = PrunedDPBatchScheduler().schedule(reqs(lengths), gen_cost, 3)
        got = schedule_makespan(batches, gen_cost)
        want = brute_force_optimal_makespan(reqs(lengths), gen_cost, 3)
        assert got == pytest.approx(want, rel=1e-12)


class TestStats:
    def test_counters_populated(self):
        scheduler = PrunedDPBatchScheduler()
        scheduler.schedule(reqs([16] * 20 + [32] * 20), monotone_cost, 8)
        stats = scheduler.stats()
        assert stats["rounds"] == 1
        assert stats["distinct_lengths"] == 2
        assert stats["cost_calls"] == 16  # 2 rows x max_batch
        assert stats["transitions_pruned"] > 0

    def test_reset_clears_state(self):
        scheduler = PrunedDPBatchScheduler()
        scheduler.schedule(reqs([16, 32]), monotone_cost, 2)
        scheduler.reset()
        assert scheduler.stats()["distinct_lengths"] == 0
        assert scheduler._prunable
