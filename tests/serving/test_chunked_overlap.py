"""Chunked prefill + dual-stream overlap in the continuous server.

The contract under test: ``chunk_tokens`` changes *timing only*.  Token
streams, completion sets and per-request generated counts must be
byte-identical to the unchunked loop; every emitted round schedule must
be race-free; and at saturating arrival rates the TTFT tail must flatten.
"""

import pytest

from repro.analysis.schedule_checks import check_emitted_schedules
from repro.gpusim import RTX_2060
from repro.memory import KVCacheArena, kv_bytes_per_token
from repro.models import build_decode_step_graph, build_prefill_graph, tiny_gpt
from repro.observability import MetricsRegistry, Tracer
from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
from repro.serving import (
    ContinuousBatchingConfig,
    ContinuousBatchingServer,
    generate_generation_requests,
    geometric_output_lengths,
    uniform_lengths,
)
from repro.serving.continuous import _merged_busy_in_horizon

CONFIG = tiny_gpt()
BPT = kv_bytes_per_token(CONFIG.num_layers, CONFIG.num_heads, CONFIG.head_size)


@pytest.fixture(scope="module")
def runtime():
    return GenerationRuntime(build_prefill_graph(CONFIG),
                             build_decode_step_graph(CONFIG),
                             TURBO_CHARACTERISTICS, RTX_2060, stride=1)


def make_arena(capacity_tokens=4096):
    return KVCacheArena(capacity_bytes=capacity_tokens * BPT,
                        bytes_per_token=BPT, page_tokens=16)


def workload(rate=300.0, duration=0.5, seed=0):
    return generate_generation_requests(
        rate, duration, seed=seed,
        prompt_sampler=lambda rng, n: uniform_lengths(rng, n, lo=4, hi=32),
        output_sampler=lambda rng, n: geometric_output_lengths(
            rng, n, mean=8.0, hi=32),
    )


def serve(runtime, chunk_tokens, rate=300.0, duration=0.5, seed=0,
          capacity_tokens=4096, **config_kw):
    requests = workload(rate, duration, seed)
    server = ContinuousBatchingServer(
        runtime, make_arena(capacity_tokens),
        ContinuousBatchingConfig(chunk_tokens=chunk_tokens, **config_kw),
    )
    metrics = server.serve(requests, duration_s=duration)
    return requests, server, metrics


def token_stream(requests):
    return [(r.req_id, r.state.name, r.generated, r.max_new_tokens)
            for r in sorted(requests, key=lambda r: r.req_id)]


class TestEquivalence:
    @pytest.mark.parametrize("chunk_tokens", [4, 8, 512])
    def test_token_streams_identical_to_unchunked(self, runtime,
                                                  chunk_tokens):
        base_reqs, _, base = serve(runtime, None)
        chunk_reqs, _, chunked = serve(runtime, chunk_tokens)
        assert token_stream(chunk_reqs) == token_stream(base_reqs)
        assert chunked.completed == base.completed
        assert chunked.tokens_generated == base.tokens_generated

    def test_identical_under_kv_pressure(self, runtime):
        # Preemption/restore path: a tight arena forces evictions.
        from repro.serving import KVPreemptionPolicy

        base_reqs, _, _ = serve(runtime, None, capacity_tokens=256,
                                preemption=KVPreemptionPolicy(2))
        chunk_reqs, _, _ = serve(runtime, 8, capacity_tokens=256,
                                 preemption=KVPreemptionPolicy(2))
        assert token_stream(chunk_reqs) == token_stream(base_reqs)

    def test_deterministic_across_runs(self, runtime):
        reqs_a, _, m_a = serve(runtime, 8)
        reqs_b, _, m_b = serve(runtime, 8)
        assert token_stream(reqs_a) == token_stream(reqs_b)
        assert m_a.ttft.p99_ms == m_b.ttft.p99_ms
        assert m_a.overlap_saved_s == m_b.overlap_saved_s
        assert m_a.prefill_chunks == m_b.prefill_chunks


class TestSchedules:
    def test_every_emitted_schedule_race_free(self, runtime):
        _, server, _ = serve(runtime, 8)
        assert server.emitted_schedules, "chunked run must emit schedules"
        assert check_emitted_schedules(server.emitted_schedules) == []

    def test_schedules_use_both_streams(self, runtime):
        _, server, _ = serve(runtime, 8)
        streams = {s for sched in server.emitted_schedules
                   for s in sched.streams()}
        assert "prefill" in streams
        assert "decode" in streams

    def test_unchunked_emits_no_schedules(self, runtime):
        _, server, _ = serve(runtime, None)
        assert server.emitted_schedules == []

    def test_verify_schedules_inline_passes(self, runtime):
        # The belt-and-braces config knob: every round is checked as it
        # is emitted; a clean run must not raise.
        _, server, _ = serve(runtime, 8, verify_schedules=True)
        assert server.emitted_schedules


class TestMetrics:
    def test_chunked_metrics_populated(self, runtime):
        _, _, m = serve(runtime, 8)
        assert m.prefill_chunks > 0
        assert m.overlap_saved_s > 0.0
        assert m.stall_s >= 0.0

    def test_unchunked_metrics_zero(self, runtime):
        _, _, m = serve(runtime, None)
        assert m.prefill_chunks == 0
        assert m.overlap_saved_s == 0.0

    def test_registry_counters(self, runtime):
        registry = MetricsRegistry()
        requests = workload()
        server = ContinuousBatchingServer(
            runtime, make_arena(),
            ContinuousBatchingConfig(chunk_tokens=8), metrics=registry,
        )
        m = server.serve(requests, duration_s=0.5)
        assert registry.sum_values("gen_prefill_chunks_total") \
            == m.prefill_chunks

    def test_tracer_has_per_stream_lanes(self, runtime):
        tracer = Tracer()
        requests = workload()
        server = ContinuousBatchingServer(
            runtime, make_arena(),
            ContinuousBatchingConfig(chunk_tokens=8), tracer=tracer,
        )
        server.serve(requests, duration_s=0.5)
        tids = {e.get("tid") for e in tracer.events
                if e.get("ph") == "X"}
        assert "gpu:prefill" in tids
        assert "gpu:decode" in tids


class TestConfigValidation:
    def test_chunk_tokens_must_be_positive(self):
        with pytest.raises(ValueError):
            ContinuousBatchingConfig(chunk_tokens=0)

    def test_chunk_overhead_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            ContinuousBatchingConfig(chunk_tokens=8, chunk_overhead_s=-1e-9)


class TestMergedBusyInHorizon:
    def test_disjoint_spans_clip_per_span(self):
        # The straddling-pass fix: [0,1] counts fully, [2,3] clips to
        # [2,2.5] — per-chunk clipping, not per-pass.
        assert _merged_busy_in_horizon([(0.0, 1.0), (2.0, 3.0)], 2.5) == 1.5

    def test_overlapping_spans_not_double_counted(self):
        # Concurrent streams overlap in wall time; busy is wall-clock
        # occupancy, so the union is what counts.
        assert _merged_busy_in_horizon([(0.0, 2.0), (1.0, 3.0)], 10.0) == 3.0

    def test_span_fully_past_horizon(self):
        assert _merged_busy_in_horizon([(5.0, 6.0)], 2.0) == 0.0

    def test_empty(self):
        assert _merged_busy_in_horizon([], 1.0) == 0.0

    def test_unsorted_input(self):
        assert _merged_busy_in_horizon([(2.0, 3.0), (0.0, 1.0)], 10.0) == 2.0
