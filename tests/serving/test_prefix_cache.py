"""Prefix caching in the continuous server.

The contract under test: ``prefix_cache=True`` changes *work only*.
Token streams, admission orders and completion sets must be
byte-identical to the cache-off loop at every sharing ratio; the KV
arena's refcount/conservation audit must stay clean (MEM224); and at
saturating arrival rates over a prefix-heavy population the TTFT p99
must drop by at least 25% — the headline the experiment exists to show.
"""

import pytest

from repro.gpusim import RTX_2060
from repro.memory import KVCacheArena, kv_bytes_per_token
from repro.models import build_decode_step_graph, build_prefill_graph, tiny_gpt
from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
from repro.serving import (
    ContinuousBatchingConfig,
    ContinuousBatchingServer,
    KVPreemptionPolicy,
    generate_prefix_population_requests,
    geometric_output_lengths,
)

CONFIG = tiny_gpt()
BPT = kv_bytes_per_token(CONFIG.num_layers, CONFIG.num_heads, CONFIG.head_size)


@pytest.fixture(scope="module")
def runtime():
    return GenerationRuntime(build_prefill_graph(CONFIG),
                             build_decode_step_graph(CONFIG),
                             TURBO_CHARACTERISTICS, RTX_2060, stride=1)


def make_arena(capacity_tokens=4096):
    return KVCacheArena(capacity_bytes=capacity_tokens * BPT,
                        bytes_per_token=BPT, page_tokens=16)


def workload(rate=200.0, duration=0.5, seed=0, sharing=0.9,
             mean_new=8.0, max_new=32):
    return generate_prefix_population_requests(
        rate, duration, seed=seed, sharing_ratio=sharing,
        output_sampler=lambda rng, n: geometric_output_lengths(
            rng, n, mean=mean_new, hi=max_new),
    )


def serve(runtime, prefix_cache, rate=200.0, duration=0.5, seed=0,
          sharing=0.9, capacity_tokens=4096, mean_new=8.0, max_new=32,
          **config_kw):
    requests = workload(rate, duration, seed, sharing, mean_new, max_new)
    server = ContinuousBatchingServer(
        runtime, make_arena(capacity_tokens),
        ContinuousBatchingConfig(prefix_cache=prefix_cache, **config_kw),
    )
    metrics = server.serve(requests, duration_s=duration)
    return requests, server, metrics


def token_stream(requests):
    return [(r.req_id, r.state.name, r.generated, r.max_new_tokens)
            for r in sorted(requests, key=lambda r: r.req_id)]


class TestEquivalence:
    @pytest.mark.parametrize("sharing", [0.0, 0.5, 0.9])
    def test_streams_and_admission_order_identical(self, runtime, sharing):
        base_reqs, base_srv, base = serve(runtime, False, sharing=sharing)
        on_reqs, on_srv, on = serve(runtime, True, sharing=sharing)
        assert token_stream(on_reqs) == token_stream(base_reqs)
        assert on_srv.admission_order == base_srv.admission_order
        assert on.completed == base.completed
        assert on.tokens_generated == base.tokens_generated

    def test_identical_with_chunked_prefill(self, runtime):
        base_reqs, _, _ = serve(runtime, False)
        on_reqs, _, on = serve(runtime, True, chunk_tokens=32)
        assert token_stream(on_reqs) == token_stream(base_reqs)
        assert on.prefix_hits > 0

    def test_identical_under_kv_pressure(self, runtime):
        # Preemption/restore path over shared pages: a tight arena forces
        # evictions while the index keeps hot prefixes resident.
        kw = dict(rate=150.0, capacity_tokens=256, chunk_tokens=8,
                  preemption=KVPreemptionPolicy(max_victims_per_event=2))
        base_reqs, _, base = serve(runtime, False, **kw)
        on_reqs, on_srv, on = serve(runtime, True, **kw)
        assert token_stream(on_reqs) == token_stream(base_reqs)
        assert on.completed == base.completed
        # Shared prefixes shrink the resident private footprint, so the
        # cache side preempts (and recomputes) far less — work may
        # differ, tokens may not.
        assert base.preemptions > 0
        assert on.preemptions <= base.preemptions
        assert on.prefix_hits > 0
        assert on_srv.arena.verify() == []

    def test_arena_refcounts_clean_after_serving(self, runtime):
        # The MEM224 audit: refcounts must equal the reference count from
        # live regions + index nodes at end of run.
        _, srv, m = serve(runtime, True)
        assert m.prefix_hits > 0
        assert srv.arena.verify() == []
        assert srv.prefix_index.stats()["nodes"] == \
            len(srv.prefix_index.resident_pages())


class TestWins:
    def test_hits_scale_with_sharing_ratio(self, runtime):
        _, _, low = serve(runtime, True, sharing=0.0)
        _, _, mid = serve(runtime, True, sharing=0.5)
        _, _, high = serve(runtime, True, sharing=0.9)
        assert low.prefix_hits == 0
        assert 0 < mid.prefix_hits < high.prefix_hits
        assert 0 < mid.prefix_tokens_reused < high.prefix_tokens_reused

    def test_flops_saved_priced_at_device_peak(self, runtime):
        _, _, m = serve(runtime, True)
        assert m.prefill_flops_saved > 0
        # FLOPs = saved seconds x peak rate: a sub-second run on a
        # 15.7 TFLOPs device stays below that product.
        assert m.prefill_flops_saved < 0.5 * RTX_2060.peak_fp32_flops

    def test_ttft_p99_reduction_gate_at_saturating_rate(self, runtime):
        """The acceptance gate: >= 25% TTFT p99 reduction at sharing 0.5
        under a rate that queues prefills, with a clean refcount audit."""
        kw = dict(rate=1200.0, duration=1.0, sharing=0.5,
                  mean_new=16.0, max_new=96, warmup_fraction=0.1)
        _, _, off = serve(runtime, False, **kw)
        _, srv, on = serve(runtime, True, **kw)
        assert on.ttft.p99_ms <= 0.75 * off.ttft.p99_ms
        assert srv.arena.verify() == []

    def test_cache_off_has_no_prefix_counters(self, runtime):
        _, srv, m = serve(runtime, False)
        assert m.prefix_hits == 0
        assert m.prefix_tokens_reused == 0
        assert m.prefill_flops_saved == 0.0
        assert srv.prefix_index is None


class TestWorkloadGenerator:
    def test_lengths_identical_across_sharing_ratios(self):
        a = workload(sharing=0.0)
        b = workload(sharing=0.9)
        assert [(r.arrival_s, r.seq_len, r.max_new_tokens) for r in a] == \
            [(r.arrival_s, r.seq_len, r.max_new_tokens) for r in b]

    def test_prompt_ids_cover_seq_len(self):
        for r in workload():
            assert r.prompt_ids is not None
            assert len(r.prompt_ids) == r.seq_len

    def test_deterministic_given_seed(self):
        assert [r.prompt_ids for r in workload(seed=3)] == \
            [r.prompt_ids for r in workload(seed=3)]
        assert [r.prompt_ids for r in workload(seed=3)] != \
            [r.prompt_ids for r in workload(seed=4)]
