"""Request and batch semantics."""

import pytest

from repro.serving import Batch, Request, make_batch


def req(req_id, seq_len, arrival=0.0):
    return Request(req_id=req_id, seq_len=seq_len, arrival_s=arrival)


class TestRequest:
    def test_latency(self):
        r = req(0, 10, arrival=1.0)
        r.completion_s = 1.5
        assert r.latency_s == pytest.approx(0.5)

    def test_latency_before_completion_raises(self):
        with pytest.raises(ValueError):
            _ = req(0, 10).latency_s

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=0, arrival_s=0.0)
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=5, arrival_s=-1.0)


class TestBatch:
    def test_pads_to_longest(self):
        batch = make_batch([req(0, 17), req(1, 77)])
        assert batch.padded_len == 77
        assert batch.size == 2
        assert batch.cost_batch_size == 2

    def test_padding_waste(self):
        batch = make_batch([req(0, 17), req(1, 77)])
        assert batch.padding_waste == 60

    def test_fixed_size_execution(self):
        batch = make_batch([req(0, 10)], execution_size=8, padded_len=500)
        assert batch.cost_batch_size == 8
        # 490 wasted on the real request + 7 empty slots of 500
        assert batch.padding_waste == 490 + 7 * 500

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(requests=(), padded_len=10)

    def test_short_pad_rejected(self):
        with pytest.raises(ValueError):
            make_batch([req(0, 100)], padded_len=50)

    def test_execution_size_below_batch_rejected(self):
        with pytest.raises(ValueError):
            make_batch([req(0, 10), req(1, 20)], execution_size=1)
