"""Request and batch semantics."""

import pytest

from repro.serving import (
    Batch,
    Request,
    RequestNotCompleted,
    RequestState,
    make_batch,
)


def req(req_id, seq_len, arrival=0.0):
    return Request(req_id=req_id, seq_len=seq_len, arrival_s=arrival)


class TestRequest:
    def test_latency(self):
        r = req(0, 10, arrival=1.0)
        r.completion_s = 1.5
        assert r.latency_s == pytest.approx(0.5)

    def test_latency_before_completion_raises(self):
        with pytest.raises(RequestNotCompleted):
            _ = req(0, 10).latency_s
        # The dedicated error stays catchable as the ValueError it replaced.
        with pytest.raises(ValueError):
            _ = req(0, 10).latency_s

    def test_validation(self):
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=0, arrival_s=0.0)
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=5, arrival_s=-1.0)
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=5, arrival_s=0.0, deadline_s=0.0)
        with pytest.raises(ValueError):
            Request(req_id=0, seq_len=5, arrival_s=0.0, attempt=-1)


class TestRequestLifecycle:
    def test_states_terminal(self):
        assert not RequestState.PENDING.is_terminal
        for state in (RequestState.COMPLETED, RequestState.TIMED_OUT,
                      RequestState.FAILED, RequestState.SHED):
            assert state.is_terminal

    def test_resolve_completed_records_time(self):
        r = req(0, 10, arrival=1.0)
        r.resolve(RequestState.COMPLETED, 1.5)
        assert r.is_completed
        assert r.latency_s == pytest.approx(0.5)

    def test_resolve_completed_requires_time(self):
        with pytest.raises(ValueError):
            req(0, 10).resolve(RequestState.COMPLETED)

    def test_resolve_rejects_pending(self):
        with pytest.raises(ValueError):
            req(0, 10).resolve(RequestState.PENDING)

    def test_non_completed_terminal_is_not_completed(self):
        r = req(0, 10)
        r.resolve(RequestState.TIMED_OUT)
        assert not r.is_completed
        with pytest.raises(RequestNotCompleted):
            _ = r.latency_s

    def test_legacy_completion_without_state_counts(self):
        r = req(0, 10)
        r.completion_s = 0.5  # pre-resilience code path
        assert r.is_completed

    def test_expired(self):
        r = Request(req_id=0, seq_len=10, arrival_s=1.0, deadline_s=0.5)
        assert not r.expired(1.5)
        assert r.expired(1.51)
        assert not req(0, 10).expired(1e9)  # no deadline: never expires


class TestBatch:
    def test_pads_to_longest(self):
        batch = make_batch([req(0, 17), req(1, 77)])
        assert batch.padded_len == 77
        assert batch.size == 2
        assert batch.cost_batch_size == 2

    def test_padding_waste(self):
        batch = make_batch([req(0, 17), req(1, 77)])
        assert batch.padding_waste == 60

    def test_fixed_size_execution(self):
        batch = make_batch([req(0, 10)], execution_size=8, padded_len=500)
        assert batch.cost_batch_size == 8
        # 490 wasted on the real request + 7 empty slots of 500
        assert batch.padding_waste == 490 + 7 * 500

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            Batch(requests=(), padded_len=10)

    def test_short_pad_rejected(self):
        with pytest.raises(ValueError):
            make_batch([req(0, 100)], padded_len=50)

    def test_execution_size_below_batch_rejected(self):
        with pytest.raises(ValueError):
            make_batch([req(0, 10), req(1, 20)], execution_size=1)

    def test_packed_batch_reports_zero_waste(self):
        """Regression: a cost_override batch is packed (concatenated, not
        padded) — charging the pad-dim gap on top of the override would
        double-count waste the execution never materializes."""
        batch = make_batch([req(0, 17), req(1, 77)], cost_override=0.004)
        assert batch.padding_waste == 0

    def test_cost_override_validated(self):
        with pytest.raises(ValueError):
            make_batch([req(0, 10)], cost_override=0.0)
