"""Message queue and response cache."""

import pytest

from repro.serving import MessageQueue, Request, ResponseCache


def req(i, arrival=0.0):
    return Request(req_id=i, seq_len=10, arrival_s=arrival)


class TestMessageQueue:
    def test_fifo_order(self):
        q = MessageQueue()
        for i in range(3):
            q.push(req(i))
        drained = q.drain()
        assert [r.req_id for r in drained] == [0, 1, 2]
        assert len(q) == 0

    def test_drain_limit(self):
        q = MessageQueue()
        for i in range(5):
            q.push(req(i))
        assert [r.req_id for r in q.drain(2)] == [0, 1]
        assert len(q) == 3

    def test_drain_invalid_limit(self):
        q = MessageQueue()
        with pytest.raises(ValueError):
            q.drain(0)

    def test_front_peeks_without_pop(self):
        q = MessageQueue()
        q.push(req(7))
        assert q.front().req_id == 7
        assert len(q) == 1

    def test_front_empty(self):
        assert MessageQueue().front() is None

    def test_stats(self):
        q = MessageQueue()
        for i in range(4):
            q.push(req(i))
        q.drain(3)
        q.push(req(9))
        assert q.total_enqueued == 5
        assert q.peak_depth == 4

    def test_bool(self):
        q = MessageQueue()
        assert not q
        q.push(req(0))
        assert q


class TestBoundedQueue:
    def test_unbounded_by_default(self):
        q = MessageQueue()
        assert q.capacity is None
        assert all(q.push(req(i)) for i in range(1000))
        assert q.total_rejected == 0

    def test_full_queue_rejects(self):
        q = MessageQueue(capacity=2)
        assert q.push(req(0))
        assert q.push(req(1))
        assert not q.push(req(2))
        assert len(q) == 2
        assert q.total_rejected == 1
        assert q.total_enqueued == 2

    def test_drain_frees_capacity(self):
        q = MessageQueue(capacity=1)
        q.push(req(0))
        assert not q.push(req(1))
        q.drain()
        assert q.push(req(2))
        assert [r.req_id for r in q] == [2]
        assert q.total_rejected == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MessageQueue(capacity=0)
        with pytest.raises(ValueError):
            MessageQueue(capacity=-3)


class TestResponseCache:
    def test_hit_and_miss(self):
        cache = ResponseCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = ResponseCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_put_refreshes_recency(self):
        cache = ResponseCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_hit_rate(self):
        cache = ResponseCache()
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResponseCache(capacity=0)

    def test_metrics_registry_wiring(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResponseCache(capacity=4, metrics=registry)
        cache.put("x", 1)
        cache.get("x")
        cache.get("y")
        cache.get("x")
        assert registry.value("response_cache_hits_total") == 2
        assert registry.value("response_cache_misses_total") == 1
        assert registry.value("response_cache_hit_rate") == \
            pytest.approx(2 / 3)

    def test_metrics_name_prefix(self):
        from repro.observability import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResponseCache(capacity=4, metrics=registry, name="plan")
        cache.get("missing")
        assert registry.value("plan_cache_misses_total") == 1

    def test_service_threads_registry_to_cache(self):
        from repro.observability import MetricsRegistry
        from repro.serving import (
            InferenceService,
            ModelRegistry,
            ModelVersion,
        )

        models = ModelRegistry()
        models.register(ModelVersion("m", 1, lambda seq_len, batch: 1.0,
                                     "initial"))
        registry = MetricsRegistry()
        service = InferenceService(models, "m", metrics=registry)
        assert service.cache.metrics is registry
