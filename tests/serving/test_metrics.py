"""Latency/throughput metrics."""

import pytest

from repro.serving import LatencyStats, Request, response_throughput


def completed(req_id, arrival, completion, seq_len=10):
    r = Request(req_id=req_id, seq_len=seq_len, arrival_s=arrival)
    r.completion_s = completion
    return r


class TestLatencyStats:
    def test_avg_min_max(self):
        requests = [
            completed(0, 0.0, 0.010),
            completed(1, 0.0, 0.020),
            completed(2, 0.0, 0.060),
        ]
        stats = LatencyStats.from_requests(requests)
        assert stats.avg_ms == pytest.approx(30.0)
        assert stats.min_ms == pytest.approx(10.0)
        assert stats.max_ms == pytest.approx(60.0)
        assert stats.count == 3

    def test_pending_requests_ignored(self):
        requests = [completed(0, 0.0, 0.010), Request(1, 10, 0.0)]
        assert LatencyStats.from_requests(requests).count == 1

    def test_empty_is_infinite(self):
        stats = LatencyStats.from_requests([])
        assert stats.avg_ms == float("inf")
        assert stats.format_cell() == "+inf"

    def test_format_cell_matches_paper_style(self):
        stats = LatencyStats(avg_ms=77.71, min_ms=10.61, max_ms=158.06, count=9)
        assert stats.format_cell() == "77.71 (10.61, 158.06)"


class TestResponseThroughput:
    def test_counts_only_window(self):
        requests = [
            completed(0, 0.0, 0.5),
            completed(1, 0.0, 1.5),
            completed(2, 0.0, 2.5),  # outside [0, 2]
        ]
        assert response_throughput(requests, 0.0, 2.0) == pytest.approx(1.0)

    def test_completion_exactly_at_window_end_counted(self):
        """Regression (ISSUE 1): the window is closed at both ends.  The
        deterministic simulator lands batch completions exactly on the
        horizon; a half-open window silently dropped them."""
        requests = [completed(0, 0.0, 1.0), completed(1, 0.0, 2.0)]
        assert response_throughput(requests, 0.0, 2.0) == pytest.approx(1.0)

    def test_completion_exactly_at_window_start_counted(self):
        requests = [completed(0, 0.0, 1.0)]
        assert response_throughput(requests, 1.0, 2.0) == pytest.approx(1.0)

    def test_completion_after_window_end_dropped(self):
        requests = [completed(0, 0.0, 2.0 + 1e-9)]
        assert response_throughput(requests, 0.0, 2.0) == 0.0

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            response_throughput([], 1.0, 1.0)


class TestNearestRankPercentile:
    """Pin p50/p95/p99 to the textbook nearest-rank rule, ceil(q*n)
    (ISSUE 1): Python's round() uses banker's rounding, which made p50 of
    an even-length list implementation folklore (off by one element)."""

    def test_p50_even_list_is_lower_middle(self):
        assert LatencyStats._percentile([1.0, 2.0], 0.50) == 1.0
        assert LatencyStats._percentile([1.0, 2.0, 3.0, 4.0], 0.50) == 2.0

    def test_p50_odd_list_is_middle(self):
        assert LatencyStats._percentile([1.0, 2.0, 3.0], 0.50) == 2.0
        assert LatencyStats._percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.50) == 3.0

    def test_hundred_values_hit_exact_ranks(self):
        values = [float(i) for i in range(1, 101)]
        assert LatencyStats._percentile(values, 0.50) == 50.0
        assert LatencyStats._percentile(values, 0.95) == 95.0
        assert LatencyStats._percentile(values, 0.99) == 99.0

    def test_extremes(self):
        values = [5.0, 6.0, 7.0]
        assert LatencyStats._percentile(values, 0.0) == 5.0
        assert LatencyStats._percentile(values, 1.0) == 7.0

    def test_singleton(self):
        assert LatencyStats._percentile([4.2], 0.5) == 4.2
        assert LatencyStats._percentile([4.2], 0.99) == 4.2

    def test_empty_is_infinite(self):
        assert LatencyStats._percentile([], 0.5) == float("inf")


class TestPercentiles:
    def test_percentiles_ordered(self):
        requests = [completed(i, 0.0, 0.001 * (i + 1)) for i in range(100)]
        stats = LatencyStats.from_requests(requests)
        assert stats.min_ms <= stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms

    def test_median_of_uniform_grid(self):
        requests = [completed(i, 0.0, 0.001 * (i + 1)) for i in range(101)]
        stats = LatencyStats.from_requests(requests)
        assert stats.p50_ms == pytest.approx(51.0)

    def test_p99_catches_tail_outlier(self):
        requests = [completed(i, 0.0, 0.010) for i in range(50)]
        requests.append(completed(50, 0.0, 1.0))
        stats = LatencyStats.from_requests(requests)
        assert stats.p99_ms >= 100.0  # nearest-rank p99 lands on the outlier
        assert stats.p95_ms == pytest.approx(10.0)

    def test_meets_slo(self):
        requests = [completed(i, 0.0, 0.010) for i in range(20)]
        stats = LatencyStats.from_requests(requests)
        assert stats.meets_slo(15.0, quantile=0.95)
        assert not stats.meets_slo(5.0, quantile=0.95)

    def test_empty_percentiles_infinite(self):
        stats = LatencyStats.from_requests([])
        assert stats.p99_ms == float("inf")
