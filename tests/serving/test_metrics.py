"""Latency/throughput metrics."""

import pytest

from repro.serving import LatencyStats, Request, response_throughput


def completed(req_id, arrival, completion, seq_len=10):
    r = Request(req_id=req_id, seq_len=seq_len, arrival_s=arrival)
    r.completion_s = completion
    return r


class TestLatencyStats:
    def test_avg_min_max(self):
        requests = [
            completed(0, 0.0, 0.010),
            completed(1, 0.0, 0.020),
            completed(2, 0.0, 0.060),
        ]
        stats = LatencyStats.from_requests(requests)
        assert stats.avg_ms == pytest.approx(30.0)
        assert stats.min_ms == pytest.approx(10.0)
        assert stats.max_ms == pytest.approx(60.0)
        assert stats.count == 3

    def test_pending_requests_ignored(self):
        requests = [completed(0, 0.0, 0.010), Request(1, 10, 0.0)]
        assert LatencyStats.from_requests(requests).count == 1

    def test_empty_is_infinite(self):
        stats = LatencyStats.from_requests([])
        assert stats.avg_ms == float("inf")
        assert stats.format_cell() == "+inf"

    def test_format_cell_matches_paper_style(self):
        stats = LatencyStats(avg_ms=77.71, min_ms=10.61, max_ms=158.06, count=9)
        assert stats.format_cell() == "77.71 (10.61, 158.06)"


class TestResponseThroughput:
    def test_counts_only_window(self):
        requests = [
            completed(0, 0.0, 0.5),
            completed(1, 0.0, 1.5),
            completed(2, 0.0, 2.5),  # outside [0, 2)
        ]
        assert response_throughput(requests, 0.0, 2.0) == pytest.approx(1.0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            response_throughput([], 1.0, 1.0)


class TestPercentiles:
    def test_percentiles_ordered(self):
        requests = [completed(i, 0.0, 0.001 * (i + 1)) for i in range(100)]
        stats = LatencyStats.from_requests(requests)
        assert stats.min_ms <= stats.p50_ms <= stats.p95_ms <= stats.p99_ms <= stats.max_ms

    def test_median_of_uniform_grid(self):
        requests = [completed(i, 0.0, 0.001 * (i + 1)) for i in range(101)]
        stats = LatencyStats.from_requests(requests)
        assert stats.p50_ms == pytest.approx(51.0)

    def test_p99_catches_tail_outlier(self):
        requests = [completed(i, 0.0, 0.010) for i in range(50)]
        requests.append(completed(50, 0.0, 1.0))
        stats = LatencyStats.from_requests(requests)
        assert stats.p99_ms >= 100.0  # nearest-rank p99 lands on the outlier
        assert stats.p95_ms == pytest.approx(10.0)

    def test_meets_slo(self):
        requests = [completed(i, 0.0, 0.010) for i in range(20)]
        stats = LatencyStats.from_requests(requests)
        assert stats.meets_slo(15.0, quantile=0.95)
        assert not stats.meets_slo(5.0, quantile=0.95)

    def test_empty_percentiles_infinite(self):
        stats = LatencyStats.from_requests([])
        assert stats.p99_ms == float("inf")
