"""Ebird-style concurrent elastic batching (processor-sharing model)."""

import pytest

from repro.serving import NoBatchScheduler, Request, simulate_ebird_serving, simulate_serving


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def reqs(specs):
    """specs: list of (seq_len, arrival_s)."""
    return [Request(req_id=i, seq_len=l, arrival_s=t)
            for i, (l, t) in enumerate(specs)]


class TestEbirdSimulation:
    def test_everything_completes(self):
        requests = reqs([(100, 0.01 * i) for i in range(30)])
        metrics = simulate_ebird_serving(requests, cost, duration_s=0.5)
        assert metrics.completed == 30
        for r in requests:
            assert r.completion_s >= r.arrival_s

    def test_single_request_latency_matches_cost(self):
        requests = reqs([(100, 0.0)])
        simulate_ebird_serving(requests, cost, efficiency=1.0, duration_s=0.1)
        assert requests[0].latency_s == pytest.approx(cost(100, 1))

    def test_short_request_overtakes_long_batch(self):
        """The Ebird selling point: a short request dispatched while a long
        batch is in flight completes before it (processor sharing), unlike
        serial execution."""
        specs = [(500, 0.0), (10, 0.001)]
        concurrent = reqs(specs)
        simulate_ebird_serving(concurrent, cost, duration_s=0.05)
        serial = reqs(specs)
        simulate_serving(serial, NoBatchScheduler(), cost, duration_s=0.05)
        assert concurrent[1].completion_s < concurrent[0].completion_s
        # Serially the short request waits behind the long one.
        assert serial[1].completion_s > serial[0].completion_s
        assert concurrent[1].latency_s < serial[1].latency_s

    def test_sharing_conserves_capacity(self):
        """Concurrency reshuffles latency, it does not add throughput:
        total completion time of a fixed work set is (at best) serial."""
        specs = [(200, 0.0)] * 8
        concurrent = reqs(specs)
        simulate_ebird_serving(concurrent, cost, max_streams=4, max_batch=1,
                               efficiency=1.0, duration_s=0.1)
        makespan = max(r.completion_s for r in concurrent)
        serial_total = 8 * cost(200, 1)
        assert makespan == pytest.approx(serial_total, rel=0.01)

    def test_single_resident_batch_charged_efficiency(self):
        """Regression pin for a deliberate modelling choice: ``efficiency``
        applies even at k=1 (a solo batch progresses at ``efficiency``,
        not 1.0), because Ebird's elastic stream-pool dispatch overhead is
        a property of how work is launched, not of co-residency — and a
        discount at k=1 would make the progress rate discontinuous at the
        k=1 -> 2 boundary.  See the module docstring."""
        solo = reqs([(100, 0.0)])
        simulate_ebird_serving(solo, cost, efficiency=0.8, duration_s=0.1)
        assert solo[0].latency_s == pytest.approx(cost(100, 1) / 0.8)
        # Strictly slower than the uncharged run, by exactly 1/efficiency.
        ideal = reqs([(100, 0.0)])
        simulate_ebird_serving(ideal, cost, efficiency=1.0, duration_s=0.1)
        assert solo[0].latency_s == pytest.approx(
            ideal[0].latency_s / 0.8)

    def test_interference_efficiency_charged(self):
        fast = reqs([(200, 0.0)] * 4)
        simulate_ebird_serving(fast, cost, efficiency=1.0, duration_s=0.1)
        slow = reqs([(200, 0.0)] * 4)
        simulate_ebird_serving(slow, cost, efficiency=0.8, duration_s=0.1)
        assert max(r.completion_s for r in slow) > \
            max(r.completion_s for r in fast)

    def test_stream_limit_queues_excess(self):
        requests = reqs([(100, 0.0)] * 10)
        metrics = simulate_ebird_serving(
            requests, cost, max_streams=2, max_batch=1, duration_s=0.1
        )
        assert metrics.completed == 10
        # With 2 streams the last completions happen in later waves.
        completions = sorted(r.completion_s for r in requests)
        assert completions[-1] > completions[0] * 2

    def test_deterministic(self):
        a = reqs([(100, 0.005 * i) for i in range(20)])
        b = reqs([(100, 0.005 * i) for i in range(20)])
        ma = simulate_ebird_serving(a, cost, duration_s=0.2)
        mb = simulate_ebird_serving(b, cost, duration_s=0.2)
        assert ma.latency.avg_ms == mb.latency.avg_ms

    @pytest.mark.parametrize("kwargs", [
        {"max_streams": 0}, {"efficiency": 0.0}, {"efficiency": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            simulate_ebird_serving(reqs([(10, 0.0)]), cost, **kwargs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            simulate_ebird_serving([], cost)


class TestBurstyWorkload:
    def test_bursty_rate_matches_average(self, rng):
        from repro.serving import bursty_arrivals

        times = bursty_arrivals(rng, 200, 20.0)
        assert len(times) / 20.0 == pytest.approx(200, rel=0.15)

    def test_all_arrivals_inside_on_windows(self, rng):
        from repro.serving import bursty_arrivals

        times = bursty_arrivals(rng, 100, 10.0, on_fraction=0.25, cycle_s=1.0)
        assert ((times % 1.0) < 0.25 + 1e-9).all()

    def test_validation(self, rng):
        from repro.serving import bursty_arrivals

        with pytest.raises(ValueError):
            bursty_arrivals(rng, 10, 1.0, on_fraction=0.0)
        with pytest.raises(ValueError):
            bursty_arrivals(rng, 10, 1.0, cycle_s=0.0)
