"""Multi-server cluster: routing policies, scaling, balance."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    NaiveBatchScheduler,
    Request,
    RoutingPolicy,
    generate_requests,
    simulate_cluster,
)


def linear_cost(per_token=0.00005, fixed=0.002):
    def cost(seq_len, batch):
        return fixed + per_token * seq_len * batch
    return cost


def run(policy, num_servers=4, rate=300, duration=4.0, seed=0,
        scheduler=NaiveBatchScheduler):
    requests = generate_requests(rate, duration, seed=seed)
    return simulate_cluster(
        requests, num_servers, scheduler, linear_cost(),
        policy=policy, duration_s=duration,
    )


class TestCompleteness:
    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_every_request_completes(self, policy):
        metrics = run(policy, rate=100, duration=2.0)
        assert metrics.serving.completed == metrics.serving.offered

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_deterministic(self, policy):
        a = run(policy, rate=100, duration=2.0)
        b = run(policy, rate=100, duration=2.0)
        assert a.serving.latency.avg_ms == b.serving.latency.avg_ms


class TestScaling:
    def test_more_servers_more_throughput(self):
        """An overloaded single server scales out to stability."""
        one = run(RoutingPolicy.LEAST_WORK, num_servers=1, rate=500)
        four = run(RoutingPolicy.LEAST_WORK, num_servers=4, rate=500)
        assert four.serving.response_throughput > one.serving.response_throughput
        assert four.serving.latency.avg_ms < one.serving.latency.avg_ms

    def test_near_linear_capacity_scaling(self):
        one = run(RoutingPolicy.LEAST_WORK, num_servers=1, rate=800)
        four = run(RoutingPolicy.LEAST_WORK, num_servers=4, rate=800)
        assert four.serving.response_throughput > \
            2.5 * one.serving.response_throughput


class TestRouting:
    def test_round_robin_balances_counts(self):
        metrics = run(RoutingPolicy.ROUND_ROBIN, rate=200, duration=4.0)
        assert metrics.balance_ratio < 1.1

    def test_least_work_no_worse_than_round_robin(self):
        rr = run(RoutingPolicy.ROUND_ROBIN, rate=400)
        lw = run(RoutingPolicy.LEAST_WORK, rate=400)
        assert lw.serving.latency.avg_ms <= rr.serving.latency.avg_ms * 1.1

    def test_length_aware_reduces_padding_waste(self):
        """Routing by length band makes each server's batches homogeneous,
        so naive batching pays far less padding than with mixed routing.
        (Requires a length distribution that loads the bands evenly —
        under the skewed normal distribution the middle bands overload,
        which is exactly why Nexus balances by *work*, not by kind.)"""
        from repro.serving import uniform_lengths

        def run_uniform(policy):
            requests = generate_requests(
                500, 3.0, seed=3,
                length_sampler=lambda rng, n: uniform_lengths(rng, n, 5, 500),
            )
            return simulate_cluster(
                requests, 4, NaiveBatchScheduler, linear_cost(),
                policy=policy, duration_s=3.0,
            )

        mixed = run_uniform(RoutingPolicy.ROUND_ROBIN)
        banded = run_uniform(RoutingPolicy.LENGTH_AWARE)
        assert banded.serving.latency.avg_ms < mixed.serving.latency.avg_ms

    def test_length_aware_unbalances_skewed_workloads(self):
        """The flip side: under the paper's normal length distribution the
        middle length bands receive most of the traffic."""
        metrics = run(RoutingPolicy.LENGTH_AWARE, rate=200, duration=4.0)
        assert metrics.balance_ratio > 2.0

    def test_length_aware_routes_by_band(self):
        requests = [
            Request(req_id=0, seq_len=5, arrival_s=0.0),
            Request(req_id=1, seq_len=500, arrival_s=0.0),
        ]
        metrics = simulate_cluster(
            requests, 4, NaiveBatchScheduler, linear_cost(),
            policy=RoutingPolicy.LENGTH_AWARE, duration_s=1.0,
        )
        # Short and long requests landed on different servers.
        assert metrics.per_server_completed[0] == 1
        assert metrics.per_server_completed[3] == 1


class TestDpInCluster:
    def test_dp_scheduler_composes_with_cluster(self):
        metrics = run(RoutingPolicy.LEAST_WORK, rate=400,
                      scheduler=DPBatchScheduler)
        assert metrics.serving.completed == metrics.serving.offered
        naive = run(RoutingPolicy.LEAST_WORK, rate=400)
        assert metrics.serving.latency.avg_ms <= naive.serving.latency.avg_ms


class TestHealthyRouting:
    """The router must skip dead/breaker-open replicas (ISSUE 2)."""

    def setup_method(self):
        from repro.serving import ClusterRouter, ServerState
        from repro.serving.scheduler import NaiveBatchScheduler as S

        self.router_cls = ClusterRouter
        self.servers = [ServerState(i, S()) for i in range(4)]

    def router(self, policy, max_len=512):
        return self.router_cls(policy, 4, linear_cost(), max_len=max_len)

    def request(self, seq_len=100):
        return Request(req_id=0, seq_len=seq_len, arrival_s=0.0)

    def test_least_work_excludes_unhealthy_minimum(self):
        """Pending-work estimates are taken over the healthy set only: the
        idle (least-loaded) server is down, so work goes to the lightest
        *live* one instead."""
        router = self.router(RoutingPolicy.LEAST_WORK)
        self.servers[0].busy_until = 0.0   # idle but dead
        self.servers[1].busy_until = 5.0
        self.servers[2].busy_until = 1.0   # lightest healthy
        self.servers[3].busy_until = 3.0
        assert router.route(self.request(), self.servers, now=0.0) == 0
        assert router.route(self.request(), self.servers, now=0.0,
                            healthy={1, 2, 3}) == 2

    def test_least_queued_excludes_unhealthy(self):
        router = self.router(RoutingPolicy.LEAST_QUEUED)
        self.servers[1].queue = [self.request()]
        self.servers[2].queue = [self.request()] * 3
        self.servers[3].queue = [self.request()] * 2
        assert router.route(self.request(), self.servers, now=0.0,
                            healthy={1, 2, 3}) == 1

    def test_round_robin_skips_dead_servers(self):
        router = self.router(RoutingPolicy.ROUND_ROBIN)
        picks = [router.route(self.request(), self.servers, now=0.0,
                              healthy={1, 3}) for _ in range(4)]
        assert picks == [1, 3, 1, 3]

    def test_length_aware_falls_to_nearest_band(self):
        router = self.router(RoutingPolicy.LENGTH_AWARE)
        long = self.request(seq_len=500)   # band 3
        assert router.route(long, self.servers, now=0.0) == 3
        assert router.route(long, self.servers, now=0.0, healthy={0, 1, 2}) == 2

    def test_all_dead_falls_back_to_full_set(self):
        """Queueing on a downed server beats dropping on the floor."""
        router = self.router(RoutingPolicy.LEAST_QUEUED)
        assert router.route(self.request(), self.servers, now=0.0,
                            healthy=set()) in range(4)

    def test_healthy_none_unchanged(self):
        a = self.router(RoutingPolicy.ROUND_ROBIN)
        b = self.router(RoutingPolicy.ROUND_ROBIN)
        picks_a = [a.route(self.request(), self.servers, now=0.0)
                   for _ in range(6)]
        picks_b = [b.route(self.request(), self.servers, now=0.0,
                           healthy={0, 1, 2, 3}) for _ in range(6)]
        assert picks_a == picks_b == [0, 1, 2, 3, 0, 1]

    def test_open_breaker_diverts_work(self):
        """End to end: a permanently failing replica's breaker opens and
        the healthy servers absorb (nearly) all completions."""
        from repro.resilience import (
            CircuitBreaker,
            FaultPlan,
            ResilienceConfig,
            RetryPolicy,
            TransientFailures,
        )

        plan = FaultPlan(failures=(
            TransientFailures(start_s=0.0, end_s=10.0, failure_rate=1.0,
                              server_id=1),))
        metrics = simulate_cluster(
            generate_requests(200, 2.0, seed=0), 3, NaiveBatchScheduler,
            linear_cost(), policy=RoutingPolicy.LEAST_WORK, duration_s=2.0,
            resilience=ResilienceConfig(
                faults=plan,
                retry=RetryPolicy(max_attempts=5, budget=500),
                breaker_factory=lambda i: CircuitBreaker(
                    window=10, min_samples=4, cooldown_s=10.0,
                    name=f"server{i}"),
            ),
        )
        assert metrics.serving.resilience.breaker_transitions >= 1
        # Server 1 stops receiving work once its breaker opens.
        assert metrics.per_server_completed[1] == 0
        assert metrics.serving.completed > 0.9 * metrics.serving.offered


class TestValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            simulate_cluster([], 2, NaiveBatchScheduler, linear_cost())

    def test_bad_server_count_rejected(self):
        from repro.serving import ClusterRouter

        with pytest.raises(ValueError):
            ClusterRouter(RoutingPolicy.ROUND_ROBIN, 0, linear_cost())


class TestGenerationCluster:
    """Continuous-batching replicas behind the least-loaded router, with
    and without faults."""

    def gen_setup(self):
        from repro.gpusim import RTX_2060
        from repro.memory import KVCacheArena, kv_bytes_per_token
        from repro.models import (build_decode_step_graph,
                                  build_prefill_graph, tiny_gpt)
        from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
        from repro.serving import (generate_generation_requests,
                                   geometric_output_lengths, uniform_lengths)

        config = tiny_gpt()
        bpt = kv_bytes_per_token(config.num_layers, config.num_heads,
                                 config.head_size)
        runtime = GenerationRuntime(build_prefill_graph(config),
                                    build_decode_step_graph(config),
                                    TURBO_CHARACTERISTICS, RTX_2060, stride=1)

        def arena_factory(_replica_id):
            return KVCacheArena(capacity_bytes=4096 * bpt,
                                bytes_per_token=bpt, page_tokens=16)

        def gen_workload(rate, duration, seed=0):
            return generate_generation_requests(
                rate, duration, seed=seed,
                prompt_sampler=lambda rng, n: uniform_lengths(rng, n,
                                                              lo=4, hi=32),
                output_sampler=lambda rng, n: geometric_output_lengths(
                    rng, n, mean=8.0, hi=32),
            )

        return runtime, arena_factory, gen_workload

    def test_fault_free_cluster_completes_and_balances(self):
        from repro.serving import simulate_generation_cluster

        runtime, arenas, gen_workload = self.gen_setup()
        m = simulate_generation_cluster(gen_workload(300.0, 0.5), 2,
                                        runtime, arenas, duration_s=0.5)
        assert m.serving.completed == m.serving.offered
        assert m.kv_leaks == []
        assert all(c > 0 for c in m.per_replica_completed)
        assert m.serving.preemptions == 0
        assert m.serving.tokens_recomputed == 0

    def test_replica_crash_fails_over_with_recompute(self):
        """Crash one of two replicas mid-run: its in-flight KV is lost,
        work re-routes to the survivor, prefixes are recomputed, and the
        end-of-run leak audit is clean on every replica."""
        from repro.resilience import (FaultPlan, ResilienceConfig,
                                      RetryPolicy, ServerCrash)
        from repro.serving import simulate_generation_cluster

        runtime, arenas, gen_workload = self.gen_setup()
        res = ResilienceConfig(
            faults=FaultPlan(crashes=(ServerCrash(0.1, 0.3, server_id=0),)),
            retry=RetryPolicy(max_attempts=5, base_backoff_s=0.005,
                              multiplier=2.0, max_backoff_s=0.1,
                              jitter=0.2, budget=1000),
        )
        m = simulate_generation_cluster(gen_workload(900.0, 0.5), 2,
                                        runtime, arenas, duration_s=0.5,
                                        resilience=res)
        assert m.serving.completed >= 0.9 * m.serving.offered
        assert m.serving.preemptions > 0
        assert m.serving.tokens_recomputed > 0
        assert m.kv_leaks == []
        # The survivor carried the outage: it completed more.
        assert m.per_replica_completed[1] > m.per_replica_completed[0]

    def test_deterministic_under_faults(self):
        from repro.resilience import (FaultPlan, LatencySpike,
                                      ResilienceConfig, RetryPolicy,
                                      TransientFailures)
        from repro.serving import simulate_generation_cluster

        runtime, arenas, gen_workload = self.gen_setup()

        def run():
            res = ResilienceConfig(
                faults=FaultPlan(
                    spikes=(LatencySpike(0.1, 0.2, 3.0, server_id=0),),
                    failures=(TransientFailures(0.1, 0.3, 0.3,
                                                server_id=0),),
                ),
                retry=RetryPolicy(max_attempts=4, base_backoff_s=0.005,
                                  multiplier=2.0, max_backoff_s=0.1,
                                  jitter=0.2, budget=500),
            )
            m = simulate_generation_cluster(gen_workload(200.0, 0.4, seed=5),
                                            2, runtime, arenas,
                                            duration_s=0.4, resilience=res)
            return (m.serving, tuple(m.per_replica_completed),
                    tuple(m.kv_leaks))

        assert run() == run()
