"""Multi-server cluster: routing policies, scaling, balance."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    NaiveBatchScheduler,
    Request,
    RoutingPolicy,
    generate_requests,
    simulate_cluster,
)


def linear_cost(per_token=0.00005, fixed=0.002):
    def cost(seq_len, batch):
        return fixed + per_token * seq_len * batch
    return cost


def run(policy, num_servers=4, rate=300, duration=4.0, seed=0,
        scheduler=NaiveBatchScheduler):
    requests = generate_requests(rate, duration, seed=seed)
    return simulate_cluster(
        requests, num_servers, scheduler, linear_cost(),
        policy=policy, duration_s=duration,
    )


class TestCompleteness:
    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_every_request_completes(self, policy):
        metrics = run(policy, rate=100, duration=2.0)
        assert metrics.serving.completed == metrics.serving.offered

    @pytest.mark.parametrize("policy", list(RoutingPolicy))
    def test_deterministic(self, policy):
        a = run(policy, rate=100, duration=2.0)
        b = run(policy, rate=100, duration=2.0)
        assert a.serving.latency.avg_ms == b.serving.latency.avg_ms


class TestScaling:
    def test_more_servers_more_throughput(self):
        """An overloaded single server scales out to stability."""
        one = run(RoutingPolicy.LEAST_WORK, num_servers=1, rate=500)
        four = run(RoutingPolicy.LEAST_WORK, num_servers=4, rate=500)
        assert four.serving.response_throughput > one.serving.response_throughput
        assert four.serving.latency.avg_ms < one.serving.latency.avg_ms

    def test_near_linear_capacity_scaling(self):
        one = run(RoutingPolicy.LEAST_WORK, num_servers=1, rate=800)
        four = run(RoutingPolicy.LEAST_WORK, num_servers=4, rate=800)
        assert four.serving.response_throughput > \
            2.5 * one.serving.response_throughput


class TestRouting:
    def test_round_robin_balances_counts(self):
        metrics = run(RoutingPolicy.ROUND_ROBIN, rate=200, duration=4.0)
        assert metrics.balance_ratio < 1.1

    def test_least_work_no_worse_than_round_robin(self):
        rr = run(RoutingPolicy.ROUND_ROBIN, rate=400)
        lw = run(RoutingPolicy.LEAST_WORK, rate=400)
        assert lw.serving.latency.avg_ms <= rr.serving.latency.avg_ms * 1.1

    def test_length_aware_reduces_padding_waste(self):
        """Routing by length band makes each server's batches homogeneous,
        so naive batching pays far less padding than with mixed routing.
        (Requires a length distribution that loads the bands evenly —
        under the skewed normal distribution the middle bands overload,
        which is exactly why Nexus balances by *work*, not by kind.)"""
        from repro.serving import uniform_lengths

        def run_uniform(policy):
            requests = generate_requests(
                500, 3.0, seed=3,
                length_sampler=lambda rng, n: uniform_lengths(rng, n, 5, 500),
            )
            return simulate_cluster(
                requests, 4, NaiveBatchScheduler, linear_cost(),
                policy=policy, duration_s=3.0,
            )

        mixed = run_uniform(RoutingPolicy.ROUND_ROBIN)
        banded = run_uniform(RoutingPolicy.LENGTH_AWARE)
        assert banded.serving.latency.avg_ms < mixed.serving.latency.avg_ms

    def test_length_aware_unbalances_skewed_workloads(self):
        """The flip side: under the paper's normal length distribution the
        middle length bands receive most of the traffic."""
        metrics = run(RoutingPolicy.LENGTH_AWARE, rate=200, duration=4.0)
        assert metrics.balance_ratio > 2.0

    def test_length_aware_routes_by_band(self):
        requests = [
            Request(req_id=0, seq_len=5, arrival_s=0.0),
            Request(req_id=1, seq_len=500, arrival_s=0.0),
        ]
        metrics = simulate_cluster(
            requests, 4, NaiveBatchScheduler, linear_cost(),
            policy=RoutingPolicy.LENGTH_AWARE, duration_s=1.0,
        )
        # Short and long requests landed on different servers.
        assert metrics.per_server_completed[0] == 1
        assert metrics.per_server_completed[3] == 1


class TestDpInCluster:
    def test_dp_scheduler_composes_with_cluster(self):
        metrics = run(RoutingPolicy.LEAST_WORK, rate=400,
                      scheduler=DPBatchScheduler)
        assert metrics.serving.completed == metrics.serving.offered
        naive = run(RoutingPolicy.LEAST_WORK, rate=400)
        assert metrics.serving.latency.avg_ms <= naive.serving.latency.avg_ms


class TestValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            simulate_cluster([], 2, NaiveBatchScheduler, linear_cost())

    def test_bad_server_count_rejected(self):
        from repro.serving import ClusterRouter

        with pytest.raises(ValueError):
            ClusterRouter(RoutingPolicy.ROUND_ROBIN, 0, linear_cost())
