"""Deadline-based load shedding under overload."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    NoBatchScheduler,
    Request,
    ServingConfig,
    simulate_serving,
    simulate_serving_with_shedding,
)


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def flood(rate, duration, seq_len=100, start_id=0):
    gap = 1.0 / rate
    n = int(rate * duration)
    return [Request(req_id=start_id + i, seq_len=seq_len, arrival_s=i * gap)
            for i in range(n)]


class TestShedding:
    def test_no_drops_below_capacity(self):
        requests = flood(rate=50, duration=2.0)  # capacity ~ 140/s
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.5, duration_s=2.0
        )
        assert result.dropped == 0
        assert result.serving.completed == len(requests)

    def test_overload_sheds_and_bounds_latency(self):
        requests = flood(rate=500, duration=2.0)  # ~3.5x capacity
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.2, duration_s=2.0
        )
        assert result.dropped > 0
        assert result.drop_rate > 0.4
        # Served requests stay near the deadline instead of diverging.
        assert result.serving.latency.max_ms < 1.5 * 200

    def test_unshed_overload_diverges_for_contrast(self):
        requests = flood(rate=500, duration=2.0)
        metrics = simulate_serving(
            requests, NoBatchScheduler(), cost,
            ServingConfig(max_batch=20), duration_s=2.0,
        )
        # Without shedding the tail blows past any deadline.
        assert metrics.latency.max_ms > 1000

    def test_goodput_near_capacity_under_overload(self):
        requests = flood(rate=500, duration=3.0)
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.2, duration_s=3.0
        )
        capacity = 1.0 / cost(100, 1)
        assert result.goodput > 0.7 * capacity

    def test_batching_scheduler_composes(self):
        requests = flood(rate=800, duration=2.0)
        result = simulate_serving_with_shedding(
            requests, DPBatchScheduler(), cost, deadline_s=0.3,
            max_batch=20, duration_s=2.0,
        )
        served_plus_dropped = result.serving.completed + result.dropped
        assert served_plus_dropped == len(requests)
        # Batching raises goodput over per-request shedding.
        solo = simulate_serving_with_shedding(
            flood(rate=800, duration=2.0), NoBatchScheduler(), cost,
            deadline_s=0.3, duration_s=2.0,
        )
        assert result.goodput > solo.goodput

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving_with_shedding(
                [], NoBatchScheduler(), cost, deadline_s=0.1
            )
        with pytest.raises(ValueError):
            simulate_serving_with_shedding(
                flood(10, 1.0), NoBatchScheduler(), cost, deadline_s=0.0
            )
