"""Deadline-based load shedding under overload."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    NoBatchScheduler,
    Request,
    ServingConfig,
    simulate_serving,
    simulate_serving_with_shedding,
)


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def flood(rate, duration, seq_len=100, start_id=0):
    gap = 1.0 / rate
    n = int(rate * duration)
    return [Request(req_id=start_id + i, seq_len=seq_len, arrival_s=i * gap)
            for i in range(n)]


class TestShedding:
    def test_no_drops_below_capacity(self):
        requests = flood(rate=50, duration=2.0)  # capacity ~ 140/s
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.5, duration_s=2.0
        )
        assert result.dropped == 0
        assert result.serving.completed == len(requests)

    def test_overload_sheds_and_bounds_latency(self):
        requests = flood(rate=500, duration=2.0)  # ~3.5x capacity
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.2, duration_s=2.0
        )
        assert result.dropped > 0
        assert result.drop_rate > 0.4
        # Served requests stay near the deadline instead of diverging.
        assert result.serving.latency.max_ms < 1.5 * 200

    def test_unshed_overload_diverges_for_contrast(self):
        requests = flood(rate=500, duration=2.0)
        metrics = simulate_serving(
            requests, NoBatchScheduler(), cost,
            ServingConfig(max_batch=20), duration_s=2.0,
        )
        # Without shedding the tail blows past any deadline.
        assert metrics.latency.max_ms > 1000

    def test_goodput_near_capacity_under_overload(self):
        requests = flood(rate=500, duration=3.0)
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=0.2, duration_s=3.0
        )
        capacity = 1.0 / cost(100, 1)
        assert result.goodput > 0.7 * capacity

    def test_batching_scheduler_composes(self):
        requests = flood(rate=800, duration=2.0)
        result = simulate_serving_with_shedding(
            requests, DPBatchScheduler(), cost, deadline_s=0.3,
            max_batch=20, duration_s=2.0,
        )
        served_plus_dropped = result.serving.completed + result.dropped
        assert served_plus_dropped == len(requests)
        # Batching raises goodput over per-request shedding.
        solo = simulate_serving_with_shedding(
            flood(rate=800, duration=2.0), NoBatchScheduler(), cost,
            deadline_s=0.3, duration_s=2.0,
        )
        assert result.goodput > solo.goodput

    def test_goodput_at_drop_rate_zero(self):
        """drop_rate 0: every response counts — goodput is exactly the
        serving throughput and nothing is shed."""
        requests = flood(rate=50, duration=2.0)
        result = simulate_serving_with_shedding(
            requests, NoBatchScheduler(), cost, deadline_s=5.0, duration_s=2.0
        )
        assert result.drop_rate == 0.0
        assert result.goodput == result.serving.response_throughput
        assert result.goodput > 0

    def test_goodput_at_drop_rate_one(self):
        """drop_rate 1: everyone was shed, so goodput collapses to zero.

        Arrivals are bunched at t=0 behind one huge head-of-line request,
        so by the time the second round starts every queued request is
        already past its deadline."""
        blocker = Request(req_id=0, seq_len=512, arrival_s=0.0)
        victims = [Request(req_id=1 + i, seq_len=10, arrival_s=1e-6)
                   for i in range(20)]

        def slow_cost(seq_len, batch):
            return 10.0  # any batch takes 10s; deadline is 1s

        result = simulate_serving_with_shedding(
            [blocker] + victims, NoBatchScheduler(), slow_cost,
            deadline_s=1.0, duration_s=1.0,
        )
        assert result.dropped == len(victims)
        # All measured-window responses were shed (the blocker finishes
        # far outside the horizon), so goodput is zero.
        assert result.goodput == 0.0
        victim_rate = result.dropped / max(1, result.serving.offered - 1)
        assert victim_rate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_serving_with_shedding(
                [], NoBatchScheduler(), cost, deadline_s=0.1
            )
        with pytest.raises(ValueError):
            simulate_serving_with_shedding(
                flood(10, 1.0), NoBatchScheduler(), cost, deadline_s=0.0
            )
