"""Priority-class scheduling."""

import pytest

from repro.serving import (
    AdaptiveBatchScheduler,
    DPBatchScheduler,
    PriorityBatchScheduler,
    Request,
    ServingConfig,
    make_batch,
    simulate_serving,
)


def cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


def req(i, seq_len, priority, arrival=0.0):
    return Request(req_id=i, seq_len=seq_len, arrival_s=arrival,
                   priority=priority)


class TestPriorityScheduler:
    def test_high_priority_batches_first(self):
        scheduler = PriorityBatchScheduler(DPBatchScheduler())
        requests = [req(0, 100, 1), req(1, 50, 0), req(2, 200, 1), req(3, 60, 0)]
        batches = scheduler.schedule(requests, cost, 20)
        first_ids = {r.req_id for r in batches[0].requests}
        assert first_ids <= {1, 3}  # priority-0 requests lead

    def test_classes_never_mix_in_a_batch(self):
        scheduler = PriorityBatchScheduler(DPBatchScheduler())
        requests = [req(i, 100, i % 3) for i in range(12)]
        for batch in scheduler.schedule(requests, cost, 20):
            priorities = {r.priority for r in batch.requests}
            assert len(priorities) == 1

    def test_all_requests_covered(self):
        scheduler = PriorityBatchScheduler(DPBatchScheduler())
        requests = [req(i, 10 + i, i % 2) for i in range(9)]
        batches = scheduler.schedule(requests, cost, 4)
        ids = sorted(r.req_id for b in batches for r in b.requests)
        assert ids == list(range(9))

    def test_observe_forwarded_to_adaptive_inner(self):
        inner = AdaptiveBatchScheduler(latency_slo_s=0.1, initial_cap=1)
        scheduler = PriorityBatchScheduler(inner)
        scheduler.observe(make_batch([req(0, 10, 0)]), 0.01)
        assert inner.observations == 1

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            req(0, 10, -1)


class TestPriorityUnderLoad:
    def test_interactive_latency_protected(self):
        """Under overload, priority-0 latency stays far below priority-1's."""
        requests = []
        for i in range(300):
            requests.append(req(2 * i, 100, 1, arrival=i * 0.004))       # batch tier
            requests.append(req(2 * i + 1, 100, 0, arrival=i * 0.004))   # interactive
        metrics = simulate_serving(
            requests, PriorityBatchScheduler(DPBatchScheduler()), cost,
            ServingConfig(max_batch=20), duration_s=1.2,
        )
        assert metrics.completed == 600
        interactive = [r for r in requests if r.priority == 0]
        batch_tier = [r for r in requests if r.priority == 1]
        avg = lambda rs: sum(r.latency_s for r in rs) / len(rs)
        assert avg(interactive) < 0.7 * avg(batch_tier)
