"""Clipper-style adaptive batching: SLO bounding + AIMD feedback."""

import pytest

from repro.serving import (
    AdaptiveBatchScheduler,
    NoBatchScheduler,
    Request,
    ServingConfig,
    make_batch,
    simulate_serving,
)


def reqs(lengths):
    return [Request(req_id=i, seq_len=l, arrival_s=0.0) for i, l in enumerate(lengths)]


def linear_cost(per_token=0.0001, fixed=0.001):
    def cost(seq_len, batch):
        return fixed + per_token * seq_len * batch
    return cost


class TestSloBounding:
    def test_batches_respect_slo_prediction(self):
        cost = linear_cost()
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.02, initial_cap=20)
        batches = scheduler.schedule(reqs([50] * 12), cost, 20)
        for batch in batches:
            assert cost(batch.padded_len, batch.size) <= 0.02

    def test_tight_slo_forces_singletons(self):
        cost = linear_cost()
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.0065, initial_cap=20)
        batches = scheduler.schedule(reqs([50] * 6), cost, 20)
        assert all(b.size == 1 for b in batches)

    def test_arrival_order_preserved(self):
        """Length-oblivious: requests batch in arrival order, not sorted."""
        scheduler = AdaptiveBatchScheduler(latency_slo_s=10.0, initial_cap=2)
        batches = scheduler.schedule(reqs([500, 5, 400, 6]), linear_cost(), 20)
        assert [r.seq_len for r in batches[0].requests] == [500, 5]

    def test_cap_respected(self):
        scheduler = AdaptiveBatchScheduler(latency_slo_s=10.0, initial_cap=3)
        batches = scheduler.schedule(reqs([10] * 9), linear_cost(), 20)
        assert all(b.size <= 3 for b in batches)

    def test_every_request_scheduled_once(self):
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.01, initial_cap=20)
        requests = reqs([10, 200, 30, 499, 5])
        batches = scheduler.schedule(requests, linear_cost(), 20)
        ids = sorted(r.req_id for b in batches for r in b.requests)
        assert ids == [0, 1, 2, 3, 4]


class TestAimd:
    def test_cap_grows_on_compliance(self):
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.1, initial_cap=1)
        batch = make_batch(reqs([10]))
        for _ in range(5):
            scheduler.observe(batch, 0.01)
        assert scheduler.cap == 6
        assert scheduler.slo_violations == 0

    def test_cap_halves_on_violation(self):
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.1, initial_cap=8)
        scheduler.observe(make_batch(reqs([10])), 0.5)
        assert scheduler.cap == 4
        assert scheduler.slo_violations == 1

    def test_cap_never_below_one(self):
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.1, initial_cap=1)
        for _ in range(5):
            scheduler.observe(make_batch(reqs([10])), 1.0)
        assert scheduler.cap == 1

    def test_server_feeds_observations(self):
        """simulate_serving reports executions through the observe hook."""
        scheduler = AdaptiveBatchScheduler(latency_slo_s=0.05, initial_cap=1)
        requests = [Request(req_id=i, seq_len=20, arrival_s=0.0005 * i)
                    for i in range(40)]
        simulate_serving(requests, scheduler, linear_cost(),
                         ServingConfig(max_batch=20), duration_s=0.05)
        assert scheduler.observations > 0
        assert scheduler.cap > 1  # compliant workload grew the cap

    @pytest.mark.parametrize("kwargs", [
        {"latency_slo_s": 0.0},
        {"additive_step": 0},
        {"multiplicative_backoff": 1.0},
        {"initial_cap": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveBatchScheduler(**kwargs)


class TestVsDp:
    def test_adaptive_wastes_more_padding_on_mixed_lengths(self):
        """The gap the paper's DP closes: arrival-order batching mixes
        short and long requests and pays padding for it."""
        from repro.serving import DPBatchScheduler, schedule_makespan

        cost = linear_cost()
        requests = reqs([10, 490, 12, 480, 9, 500, 11, 470])
        adaptive = AdaptiveBatchScheduler(latency_slo_s=1.0, initial_cap=20)
        adaptive_time = schedule_makespan(
            adaptive.schedule(requests, cost, 20), cost
        )
        dp_time = schedule_makespan(
            DPBatchScheduler().schedule(requests, cost, 20), cost
        )
        assert dp_time < adaptive_time
