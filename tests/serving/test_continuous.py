"""Iteration-level continuous batching vs the request-level control."""

import pytest

from repro.gpusim import RTX_2060
from repro.memory import KVCacheArena, kv_bytes_per_token
from repro.models import build_decode_step_graph, build_prefill_graph, tiny_gpt
from repro.observability import MetricsRegistry, Tracer
from repro.runtime import TURBO_CHARACTERISTICS, GenerationRuntime
from repro.serving import (
    ContinuousBatchingConfig,
    ContinuousBatchingServer,
    GenRequest,
    RequestLevelGenerationServer,
    RequestState,
    generate_generation_requests,
    request_level_cost_fn,
    uniform_lengths,
)

CONFIG = tiny_gpt()
BPT = kv_bytes_per_token(CONFIG.num_layers, CONFIG.num_heads, CONFIG.head_size)


@pytest.fixture(scope="module")
def runtime():
    return GenerationRuntime(build_prefill_graph(CONFIG),
                             build_decode_step_graph(CONFIG),
                             TURBO_CHARACTERISTICS, RTX_2060, stride=1)


def make_arena(capacity_tokens=4096, **kw):
    return KVCacheArena(capacity_bytes=capacity_tokens * BPT,
                        bytes_per_token=BPT, page_tokens=16, **kw)


def gen_reqs(specs):
    """specs: list of (prompt_len, arrival_s, max_new_tokens)."""
    return [GenRequest(req_id=i, seq_len=l, arrival_s=t, max_new_tokens=m)
            for i, (l, t, m) in enumerate(specs)]


def workload(rate, duration, seed=0, mean_new=12.0):
    from repro.serving import geometric_output_lengths

    return generate_generation_requests(
        rate, duration, seed=seed,
        prompt_sampler=lambda rng, n: uniform_lengths(rng, n, lo=4, hi=32),
        output_sampler=lambda rng, n: geometric_output_lengths(
            rng, n, mean=mean_new, hi=64),
    )


class TestGenRequest:
    def test_ttft_and_tpot(self):
        r = GenRequest(req_id=0, seq_len=8, arrival_s=1.0, max_new_tokens=5)
        r.first_token_s = 1.5
        r.completion_s = 2.5
        r.generated = 5
        assert r.ttft_s == pytest.approx(0.5)
        assert r.tpot_s == pytest.approx(0.25)

    def test_single_token_tpot_zero(self):
        r = GenRequest(req_id=0, seq_len=8, arrival_s=0.0, max_new_tokens=1)
        r.first_token_s = 0.1
        r.completion_s = 0.1
        r.generated = 1
        assert r.tpot_s == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GenRequest(req_id=0, seq_len=8, arrival_s=0.0, max_new_tokens=0)
        with pytest.raises(ValueError):
            GenRequest(req_id=0, seq_len=8, arrival_s=0.0).ttft_s


class TestContinuousLoop:
    def test_everything_completes(self, runtime):
        requests = workload(100.0, 0.5)
        metrics = ContinuousBatchingServer(runtime, make_arena()).serve(
            requests, duration_s=0.5)
        assert metrics.completed == metrics.offered == len(requests)
        assert metrics.tokens_generated == sum(r.generated for r in requests)
        for r in requests:
            assert r.generated == r.max_new_tokens
            assert r.completion_s >= r.first_token_s >= r.arrival_s

    def test_finished_request_exits_slot_immediately(self, runtime):
        """Two requests decode together only while both live; once the
        short one finishes, steps are priced at batch 1 — so the long
        request's completion matches a solo tail."""
        requests = gen_reqs([(8, 0.0, 21), (8, 0.0, 3)])
        ContinuousBatchingServer(runtime, make_arena()).serve(
            requests, duration_s=0.1)
        long, short = requests
        # Shared prefill, then 2 shared decode steps (short retires at
        # generated=3), then 18 solo steps for the long request.
        expected = runtime.prefill_latency(2, 8)
        past = 8
        for step in range(2):
            expected += runtime.decode_step_latency(2, past + step + 1)
        for step in range(18):
            expected += runtime.decode_step_latency(1, past + 3 + step)
        assert long.completion_s == pytest.approx(expected, rel=1e-12)

    def test_midflight_admission(self, runtime):
        """A request arriving while a long decode is in flight joins the
        batch at the next step instead of waiting for the round to end."""
        long_total = runtime.prefill_latency(1, 16) \
            + sum(runtime.decode_step_latency(1, 16 + i + 1)
                  for i in range(39))
        late_arrival = long_total / 4
        requests = gen_reqs([(16, 0.0, 40)]) + [
            GenRequest(req_id=1, seq_len=8, arrival_s=late_arrival,
                       max_new_tokens=2)]
        ContinuousBatchingServer(runtime, make_arena()).serve(
            requests, duration_s=long_total)
        late = requests[1]
        assert late.is_completed
        # Admitted mid-flight: done long before the long request.
        assert late.completion_s < requests[0].completion_s
        assert late.first_token_s - late.arrival_s < long_total / 4

    def test_kv_bounds_batch_size_not_max_batch(self, runtime):
        """With no slot cap, concurrency is limited by KV capacity: a
        small arena admits fewer requests at once and records denials."""
        requests = gen_reqs([(32, 0.0, 32)] * 12)
        small = make_arena(capacity_tokens=256)  # 4 worst-case requests
        m = ContinuousBatchingServer(runtime, small).serve(
            requests, duration_s=0.1)
        assert m.completed == 12
        assert m.kv_denials > 0
        assert small.peak_used_bytes <= small.capacity_bytes
        # Same workload with room for everyone: no denials.
        big = make_arena(capacity_tokens=8192)
        requests2 = gen_reqs([(32, 0.0, 32)] * 12)
        m2 = ContinuousBatchingServer(runtime, big).serve(
            requests2, duration_s=0.1)
        assert m2.kv_denials == 0
        assert m2.prefill_batches < m.prefill_batches

    def test_oversized_request_shed_not_stuck(self, runtime):
        requests = gen_reqs([(8, 0.0, 4), (32, 0.0, 10000), (8, 0.001, 4)])
        m = ContinuousBatchingServer(runtime, make_arena(64)).serve(
            requests, duration_s=0.01)
        assert requests[1].state is RequestState.SHED
        assert m.completed == 2

    def test_every_region_freed_on_completion(self, runtime):
        arena = make_arena()
        ContinuousBatchingServer(runtime, arena).serve(
            workload(150.0, 0.3, seed=2), duration_s=0.3)
        assert arena.live_requests == 0
        assert arena.used_bytes == 0
        assert arena.stats()["admissions"] == arena.stats()["releases"]

    def test_deterministic_for_fixed_seed(self, runtime):
        def run():
            reqs = workload(300.0, 0.4, seed=9)
            m = ContinuousBatchingServer(runtime, make_arena()).serve(
                reqs, duration_s=0.4)
            return (m.response_throughput, m.ttft.avg_ms, m.tpot_ms_avg,
                    m.tokens_generated, m.decode_steps, m.kv_peak_bytes,
                    [r.completion_s for r in reqs])

        assert run() == run()

    def test_metrics_and_trace_populated(self, runtime):
        registry = MetricsRegistry()
        tracer = Tracer()
        ContinuousBatchingServer(
            runtime, make_arena(metrics=registry),
            tracer=tracer, metrics=registry,
        ).serve(workload(100.0, 0.2), duration_s=0.2)
        assert registry.counter("gen_decode_steps_total",
                                system="Turbo-Continuous").value > 0
        names = {e["name"] for e in tracer.to_dict()["traceEvents"]}
        assert any(n.startswith("decode x") for n in names)
        assert any(n.startswith("prefill x") for n in names)
        assert "request" in names

    def test_validation(self, runtime):
        server = ContinuousBatchingServer(runtime, make_arena())
        with pytest.raises(ValueError):
            server.serve([], duration_s=1.0)
        with pytest.raises(ValueError):
            ContinuousBatchingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ContinuousBatchingConfig(warmup_fraction=1.0)


class TestRequestLevelControl:
    def test_everything_completes(self, runtime):
        requests = workload(100.0, 0.5)
        m = RequestLevelGenerationServer(runtime).serve(
            requests, duration_s=0.5)
        assert m.completed == len(requests)
        for r in requests:
            assert r.generated == r.max_new_tokens

    def test_full_width_charged_to_longest(self, runtime):
        """The padded-slot waste continuous batching removes: a batch of
        (3, 21) output budgets decodes 20 steps at width 2."""
        requests = gen_reqs([(8, 0.0, 21), (8, 0.0, 3)])
        RequestLevelGenerationServer(runtime, max_batch=2).serve(
            requests, duration_s=0.1)
        expected = runtime.prefill_latency(2, 8) + sum(
            runtime.decode_step_latency(2, 8 + step + 1)
            for step in range(20))
        assert requests[0].completion_s == pytest.approx(expected, rel=1e-12)

    def test_members_release_at_own_step(self, runtime):
        requests = gen_reqs([(8, 0.0, 21), (8, 0.0, 3)])
        RequestLevelGenerationServer(runtime, max_batch=2).serve(
            requests, duration_s=0.1)
        assert requests[1].completion_s < requests[0].completion_s

    def test_cost_fn_prices_full_generation(self, runtime):
        fn = request_level_cost_fn(runtime, est_new_tokens=8)
        assert fn(16, 2) == runtime.generate_latency(16, 8, 2)
        with pytest.raises(ValueError):
            request_level_cost_fn(runtime, est_new_tokens=0)


class TestContinuousBeatsRequestLevel:
    def test_throughput_and_ttft_at_high_rate(self, runtime):
        """The tentpole claim (asserted, not just plotted): at a rate that
        saturates request-level batching, continuous batching sustains
        higher response throughput AND lower mean TTFT."""
        rate, duration = 1500.0, 0.5
        cont = ContinuousBatchingServer(runtime, make_arena()).serve(
            workload(rate, duration, seed=1, mean_new=16.0),
            duration_s=duration)
        rl = RequestLevelGenerationServer(runtime).serve(
            workload(rate, duration, seed=1, mean_new=16.0),
            duration_s=duration)
        assert cont.response_throughput > rl.response_throughput
        assert cont.ttft.avg_ms < rl.ttft.avg_ms


class TestResilientContinuous:
    """Fault injection through the engine layer: crash eviction with
    recompute-on-resume, KV-pressure preemption, retry exhaustion."""

    def resilience(self, faults=None, **retry_kw):
        from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy

        defaults = dict(max_attempts=5, base_backoff_s=0.005, multiplier=2.0,
                        max_backoff_s=0.1, jitter=0.2, budget=1000)
        defaults.update(retry_kw)
        return ResilienceConfig(faults=faults or FaultPlan(),
                                retry=RetryPolicy(**defaults))

    def test_crash_evicts_then_recovers_with_recompute(self, runtime):
        from repro.resilience import FaultPlan, ServerCrash

        requests = workload(200.0, 0.5)
        arena = make_arena()
        plan = FaultPlan(crashes=(ServerCrash(0.1, 0.2, server_id=0),))
        m = ContinuousBatchingServer(
            runtime, arena, resilience=self.resilience(plan)
        ).serve(requests, duration_s=0.5)
        assert m.completed == len(requests)
        assert not any(r.state is RequestState.FAILED for r in requests)
        assert m.preemptions > 0          # in-flight KV lost to the crash
        assert m.tokens_recomputed > 0    # resumes recomputed the prefix
        assert m.retries > 0
        assert arena.verify(live_req_ids=[]) == []  # no region leaked

    def test_preemption_relieves_watermark_pressure(self, runtime):
        """Two requests, KV room for one worst case: the watermark holds
        the head, so the loop preempts the active request, runs the head,
        and resumes the victim with its prefix recomputed."""
        from repro.serving import ContinuousBatchingConfig, KVPreemptionPolicy

        arena = make_arena(capacity_tokens=48)
        config = ContinuousBatchingConfig(
            preemption=KVPreemptionPolicy(max_victims_per_event=1))
        requests = gen_reqs([(8, 0.0, 24), (8, 0.0, 24)])
        # Backoff long enough that the admitted request finishes before
        # the victim's retry lands — no eviction ping-pong.
        m = ContinuousBatchingServer(
            runtime, arena, config=config,
            resilience=self.resilience(base_backoff_s=1.0, max_backoff_s=8.0,
                                       jitter=0.0),
        ).serve(requests, duration_s=0.1)
        assert m.completed == 2
        assert m.preemptions == 1
        # Victim held prompt (8) + 1 generated token when evicted.
        assert m.tokens_recomputed == 9
        assert m.retries == 1
        assert arena.verify(live_req_ids=[]) == []

    def test_fault_free_resilience_config_is_identity(self, runtime):
        """An empty plan with no retry policy must not perturb a single
        float: the resilient loop is byte-identical to the plain one."""
        from repro.resilience import ResilienceConfig

        base = ContinuousBatchingServer(runtime, make_arena()).serve(
            workload(300.0, 0.3), duration_s=0.3)
        res = ContinuousBatchingServer(
            runtime, make_arena(), resilience=ResilienceConfig()
        ).serve(workload(300.0, 0.3), duration_s=0.3)
        assert res == base

    def test_transient_failures_exhaust_attempts_to_failed(self, runtime):
        from repro.resilience import FaultPlan, TransientFailures

        arena = make_arena()
        plan = FaultPlan(failures=(TransientFailures(0.0, 100.0, 1.0),))
        requests = gen_reqs([(8, 0.0, 4), (8, 0.0, 4), (16, 0.0, 8)])
        m = ContinuousBatchingServer(
            runtime, arena, resilience=self.resilience(plan, max_attempts=2)
        ).serve(requests, duration_s=0.1)
        assert m.completed == 0
        assert all(r.state is RequestState.FAILED for r in requests)
        assert m.attempts_failed == 2 * len(requests)  # initial + one retry
        assert arena.verify(live_req_ids=[]) == []

    def test_deterministic_under_faults(self, runtime):
        from repro.resilience import FaultPlan, ServerCrash, TransientFailures

        plan = FaultPlan(
            crashes=(ServerCrash(0.1, 0.15, server_id=0),),
            failures=(TransientFailures(0.2, 0.3, 0.25, server_id=0),),
        )

        def run():
            return ContinuousBatchingServer(
                runtime, make_arena(), resilience=self.resilience(plan)
            ).serve(workload(200.0, 0.4, seed=3), duration_s=0.4)

        assert run() == run()
