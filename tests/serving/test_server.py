"""Discrete-event serving simulation."""

import pytest

from repro.serving import (
    DPBatchScheduler,
    LazyPolicy,
    NaiveBatchScheduler,
    NoBatchScheduler,
    Request,
    ServingConfig,
    generate_requests,
    simulate_serving,
)


def constant_cost(per_request=0.01):
    """Batch cost = fixed + linear in batch: simple and monotone."""
    def cost(seq_len, batch):
        return 0.002 + per_request * batch
    return cost


def sparse_requests(gap_s, n, seq_len=10):
    return [
        Request(req_id=i, seq_len=seq_len, arrival_s=i * gap_s) for i in range(n)
    ]


class TestSimulation:
    def test_all_requests_complete(self):
        requests = sparse_requests(0.05, 20)
        metrics = simulate_serving(
            requests, NoBatchScheduler(), constant_cost(), duration_s=1.0
        )
        assert metrics.completed == 20
        assert all(r.completion_s is not None for r in requests)

    def test_completion_after_arrival(self):
        requests = sparse_requests(0.05, 10)
        simulate_serving(requests, NoBatchScheduler(), constant_cost(),
                         duration_s=0.5)
        for r in requests:
            assert r.completion_s >= r.arrival_s

    def test_underload_latency_is_service_time(self):
        """With big gaps, each request is served alone immediately."""
        cost = constant_cost(0.01)
        requests = sparse_requests(1.0, 5)
        metrics = simulate_serving(requests, NoBatchScheduler(), cost,
                                   duration_s=5.0)
        assert metrics.latency.avg_ms == pytest.approx(12.0, rel=0.01)
        assert not metrics.saturated

    def test_overload_detected(self):
        # Service takes 12 ms/request; offer one every 2 ms.
        requests = sparse_requests(0.002, 500)
        metrics = simulate_serving(requests, NoBatchScheduler(), constant_cost(),
                                   duration_s=1.0)
        assert metrics.saturated
        assert metrics.backlog_at_end > 0
        # Throughput saturates at service capacity (~1/12ms).
        assert metrics.response_throughput == pytest.approx(1 / 0.012, rel=0.1)

    def test_batching_raises_capacity(self):
        requests = generate_requests(400, 2.0, seed=3)
        cost = constant_cost(0.01)
        nobatch = simulate_serving(
            list(requests), NoBatchScheduler(), cost, duration_s=2.0
        )
        requests2 = generate_requests(400, 2.0, seed=3)
        batched = simulate_serving(
            list(requests2), NaiveBatchScheduler(), cost, duration_s=2.0,
            config=ServingConfig(max_batch=20),
        )
        assert batched.response_throughput > nobatch.response_throughput

    def test_deterministic(self):
        a = simulate_serving(generate_requests(100, 2.0, seed=4),
                             DPBatchScheduler(), constant_cost(), duration_s=2.0)
        b = simulate_serving(generate_requests(100, 2.0, seed=4),
                             DPBatchScheduler(), constant_cost(), duration_s=2.0)
        assert a.response_throughput == b.response_throughput
        assert a.latency.avg_ms == b.latency.avg_ms

    def test_lazy_policy_completes_everything(self):
        requests = sparse_requests(0.001, 50)
        config = ServingConfig(
            max_batch=10,
            policy=LazyPolicy(timeout_s=0.005, max_batch=10, latency_slo_s=0.5),
        )
        metrics = simulate_serving(requests, NaiveBatchScheduler(),
                                   constant_cost(), config=config,
                                   duration_s=0.1)
        assert metrics.completed == 50

    def test_lazy_batches_more_than_hungry(self):
        """Delayed batching under light load accumulates bigger batches."""
        cost_calls = []

        def tracking_cost(seq_len, batch):
            cost_calls.append(batch)
            return 0.001 + 0.001 * batch

        requests = sparse_requests(0.0005, 40)
        config = ServingConfig(
            max_batch=20,
            policy=LazyPolicy(timeout_s=0.02, max_batch=20, latency_slo_s=10.0),
        )
        simulate_serving(requests, NaiveBatchScheduler(), tracking_cost,
                         config=config, duration_s=0.05)
        assert max(cost_calls) >= 10

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            simulate_serving([], NoBatchScheduler(), constant_cost())

    def test_round_limit_bounds_scheduling_scope(self):
        requests = sparse_requests(0.0, 30)  # all arrive at t=0
        config = ServingConfig(max_batch=20, round_limit=5)
        metrics = simulate_serving(requests, NaiveBatchScheduler(),
                                   constant_cost(), config=config,
                                   duration_s=0.01)
        assert metrics.completed == 30


class TestBacklogSnapshot:
    def test_backlog_snapshotted_at_horizon_despite_late_arrival(self):
        """Regression (ISSUE 1): the backlog must be recorded at the first
        event crossing the horizon, not once every arrival has been
        ingested.  A burst that saturates the horizon plus one straggler
        arriving long after it used to defer the snapshot until the
        straggler — by which time the backlog had drained to ~0 and the
        run was misclassified as stable."""
        requests = [
            Request(req_id=i, seq_len=10, arrival_s=0.0001 * i)
            for i in range(100)
        ]
        requests.append(Request(req_id=100, seq_len=10, arrival_s=2.0))
        metrics = simulate_serving(requests, NoBatchScheduler(),
                                   constant_cost(), duration_s=0.05)
        assert metrics.completed == 101
        # 12 ms service vs ~100 requests in the first 10 ms: at the 50 ms
        # horizon nearly everything is still queued.
        assert metrics.backlog_at_end > 50
        assert metrics.saturated

    def test_post_horizon_arrivals_not_counted_as_backlog(self):
        """Requests offered after the horizon are not backlog of the
        measured load, even if a long batch carries the clock past both
        the horizon and their arrivals before the snapshot happens."""
        requests = [Request(req_id=0, seq_len=10, arrival_s=0.0)]
        requests += [
            Request(req_id=i, seq_len=10, arrival_s=0.011 + 0.0001 * i)
            for i in range(1, 5)
        ]
        # Horizon inside the first request's 12 ms execution: the first
        # post-execution event sits past the horizon with the four
        # post-horizon arrivals already queued.
        metrics = simulate_serving(requests, NoBatchScheduler(),
                                   constant_cost(), duration_s=0.01)
        assert metrics.backlog_at_end == 0
        assert not metrics.saturated

    def test_drained_before_horizon_reports_zero_backlog(self):
        metrics = simulate_serving(sparse_requests(0.05, 5),
                                   NoBatchScheduler(), constant_cost(),
                                   duration_s=10.0)
        assert metrics.backlog_at_end == 0

    def test_batches_executed_reported(self):
        requests = sparse_requests(0.0, 30)
        metrics = simulate_serving(requests, NaiveBatchScheduler(),
                                   constant_cost(),
                                   ServingConfig(max_batch=10),
                                   duration_s=0.01)
        assert metrics.batches_executed == 3


class TestServingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(warmup_fraction=1.0)


class TestUtilization:
    def test_light_load_low_utilization(self):
        requests = sparse_requests(0.1, 10)  # 12ms work every 100ms
        metrics = simulate_serving(requests, NoBatchScheduler(),
                                   constant_cost(), duration_s=1.0)
        assert 0.05 < metrics.utilization < 0.3

    def test_overload_saturates_utilization(self):
        requests = sparse_requests(0.002, 500)
        metrics = simulate_serving(requests, NoBatchScheduler(),
                                   constant_cost(), duration_s=1.0)
        assert metrics.utilization > 0.95

    def test_utilization_bounded(self):
        requests = sparse_requests(0.001, 1000)
        metrics = simulate_serving(requests, NaiveBatchScheduler(),
                                   constant_cost(),
                                   ServingConfig(max_batch=20), duration_s=1.0)
        assert 0.0 <= metrics.utilization <= 1.0
