"""Regressions pinned by the event-engine port of ``simulate_serving``.

Three bugs died with the private ``while``/``heapq`` loop, and one
behaviour became specifiable at all: the dispatch order of a retry
wake-up, a new arrival, and a trigger-policy decision landing at the same
virtual instant.  Each test here fails against the pre-engine loop.
"""

import pytest

from repro.observability import MetricsRegistry, Tracer
from repro.resilience import (
    DegradationController,
    DegradationLadder,
    DegradationRung,
    FaultPlan,
    ResilienceConfig,
    RetryPolicy,
    TransientFailures,
)
from repro.serving import (
    DPBatchScheduler,
    LazyPolicy,
    NaiveBatchScheduler,
    Request,
    ServingConfig,
    simulate_serving,
)


def burst(n, seq_len=10, at=0.0):
    return [Request(req_id=i, seq_len=seq_len, arrival_s=at) for i in range(n)]


class RecordingScheduler(NaiveBatchScheduler):
    """Naive batching that remembers each round's queue order."""

    def __init__(self):
        self.rounds = []

    def schedule(self, requests, cost_fn, max_batch):
        self.rounds.append([r.req_id for r in requests])
        return super().schedule(requests, cost_fn, max_batch)


class TestActiveRungPricesTheRound:
    """Bugfix: scheduling and the LazyPolicy estimate must use the active
    degradation rung's cost function, not the base ``cost_fn`` (execution
    always charged the rung's — the old loop *partitioned* with the wrong
    model)."""

    # Base model: a huge fixed per-batch cost makes one merged batch
    # DP-optimal.  Degraded rung: superlinear batch cost makes singleton
    # batches DP-optimal.  The partition therefore reveals which cost
    # function the scheduler was given.
    @staticmethod
    def base_cost(seq_len, batch):
        return 1.0 + 0.001 * batch

    @staticmethod
    def rung_cost(seq_len, batch):
        return 0.01 * batch * batch

    def _ladder(self):
        return DegradationLadder([
            DegradationRung(label="full", cost_fn=self.base_cost),
            DegradationRung(label="cheap", cost_fn=self.rung_cost),
        ])

    def test_dp_partitions_with_the_rung_chosen_for_the_round(self):
        # Five simultaneous requests exceed depth_threshold=1, so the
        # controller escalates to the cheap rung in the very round that
        # schedules them; pricing with the rung yields five singleton
        # batches, pricing with the base model would merge all five.
        requests = burst(5)
        controller = DegradationController(self._ladder(), depth_threshold=1)
        metrics = simulate_serving(
            requests, DPBatchScheduler(), self.base_cost,
            duration_s=1.0,
            resilience=ResilienceConfig(degradation=controller),
        )
        assert controller.level == 1
        assert len(controller.switches) == 1
        assert metrics.completed == 5
        assert metrics.batches_executed == 5

    def test_lazy_policy_estimate_uses_the_active_rung(self):
        requests = [Request(req_id=0, seq_len=10, arrival_s=0.0)]
        controller = DegradationController(self._ladder(), depth_threshold=1)
        # Pre-stress the controller onto the cheap rung; a depth-1 round
        # is not calm enough (hysteresis at threshold // 2) to descend.
        controller.on_round(queue_depth=10, breaker_open=False, now_s=0.0)
        assert controller.level == 1
        policy = LazyPolicy(timeout_s=0.01, max_batch=8, latency_slo_s=10.0)
        simulate_serving(
            requests, NaiveBatchScheduler(), self.base_cost,
            config=ServingConfig(policy=policy),
            duration_s=1.0,
            resilience=ResilienceConfig(degradation=controller),
        )
        assert policy.estimated_exec_s == pytest.approx(self.rung_cost(10, 1))


class TestQueueDepthPreDrain:
    """Bugfix: the queue-depth trace counter was emitted after
    ``queue.drain`` and always showed ~0 while the metrics gauge recorded
    the pre-drain depth.  Both now report the pre-drain value from one
    sample."""

    def test_trace_counter_and_gauge_agree_on_pre_drain_depth(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        simulate_serving(
            burst(5), NaiveBatchScheduler(), lambda s, b: 0.01,
            duration_s=1.0, tracer=tracer, metrics=metrics,
        )
        depths = [e["args"]["depth"] for e in tracer.events
                  if e.get("ph") == "C" and e["name"] == "queue"]
        # Five arrivals (depth 1..5), then the round samples the queue it
        # is about to drain — 5, not the post-drain 0 the old loop traced.
        assert depths == [1.0, 2.0, 3.0, 4.0, 5.0, 5.0]
        assert metrics.gauge("serving_queue_depth").series == [(0.0, 5.0)]


class TestSameInstantDeterminism:
    """A retry wake-up, a new arrival, and a trigger decision at the same
    virtual time dispatch in the engine's documented order —
    ARRIVAL < RETRY < TRIGGER — so the round sees the arrival queued
    before the retried request, and two runs agree exactly."""

    # All timestamps are exact binary fractions so the three events land
    # on bit-identical times: r0 fails at 0.5, retries at 0.5 + 0.5 = 1.0;
    # r2 (arrival 0.75) arms the lazy timeout trigger at 0.75 + 0.25 = 1.0;
    # r1 arrives at 1.0.
    def _run(self):
        r0 = Request(req_id=0, seq_len=10, arrival_s=0.0)
        r1 = Request(req_id=1, seq_len=10, arrival_s=1.0)
        r2 = Request(req_id=2, seq_len=10, arrival_s=0.75)
        scheduler = RecordingScheduler()
        policy = LazyPolicy(timeout_s=0.25, max_batch=10, latency_slo_s=100.0)
        resilience = ResilienceConfig(
            faults=FaultPlan(failures=(
                TransientFailures(start_s=0.0, end_s=0.3, failure_rate=1.0),
            )),
            retry=RetryPolicy(max_attempts=3, base_backoff_s=0.5,
                              multiplier=2.0, max_backoff_s=2.0, jitter=0.0),
        )
        metrics = simulate_serving(
            [r0, r1, r2], scheduler, lambda s, b: 0.25,
            config=ServingConfig(policy=policy),
            duration_s=2.0, resilience=resilience,
        )
        return scheduler.rounds, metrics

    def test_arrival_enters_queue_before_retry(self):
        rounds, metrics = self._run()
        # Round 1 (trigger at 0.25): r0 alone; it fails inside the fault
        # window.  Round 2 (all three events at t=1.0): r2 was already
        # queued, the new arrival r1 enters next, the retried r0 last.
        assert rounds == [[0], [2, 1, 0]]
        assert metrics.completed == 3
        assert metrics.resilience.retries == 1

    def test_identical_across_two_runs(self):
        first_rounds, first_metrics = self._run()
        second_rounds, second_metrics = self._run()
        assert first_rounds == second_rounds
        assert first_metrics == second_metrics
