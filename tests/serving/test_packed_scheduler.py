"""PackedBatchScheduler + cost_override plumbing."""

import pytest

from repro.serving import (
    PackedBatchScheduler,
    Request,
    ServingConfig,
    batch_execution_cost,
    make_batch,
    simulate_serving,
)


def reqs(lengths, gap=0.0):
    return [Request(req_id=i, seq_len=l, arrival_s=i * gap)
            for i, l in enumerate(lengths)]


def packed_cost(lengths):
    """Token-proportional packed cost with a per-batch constant."""
    return 0.002 + 0.00005 * sum(lengths)


def padded_cost(seq_len, batch):
    return 0.002 + 0.00005 * seq_len * batch


class TestScheduling:
    def test_respects_request_cap(self):
        scheduler = PackedBatchScheduler(packed_cost, max_tokens=10**9)
        batches = scheduler.schedule(reqs([10] * 25), padded_cost, 10)
        assert [b.size for b in batches] == [10, 10, 5]

    def test_respects_token_cap(self):
        scheduler = PackedBatchScheduler(packed_cost, max_tokens=500)
        batches = scheduler.schedule(reqs([200, 200, 200]), padded_cost, 20)
        assert [b.size for b in batches] == [2, 1]

    def test_oversized_single_request_still_scheduled(self):
        scheduler = PackedBatchScheduler(packed_cost, max_tokens=100)
        batches = scheduler.schedule(reqs([500]), padded_cost, 20)
        assert len(batches) == 1

    def test_cost_override_set(self):
        scheduler = PackedBatchScheduler(packed_cost, max_tokens=10**9)
        batches = scheduler.schedule(reqs([17, 77]), padded_cost, 20)
        batch = batches[0]
        assert batch.cost_override == pytest.approx(packed_cost([17, 77]))
        # Execution uses the override, not the padded table.
        assert batch_execution_cost(batch, padded_cost) == batch.cost_override

    def test_validation(self):
        with pytest.raises(ValueError):
            PackedBatchScheduler(packed_cost, max_tokens=0)
        scheduler = PackedBatchScheduler(packed_cost)
        with pytest.raises(ValueError):
            scheduler.schedule([], padded_cost, 20)


class TestCostOverridePlumbing:
    def test_override_validated(self):
        with pytest.raises(ValueError):
            make_batch(reqs([10]), cost_override=0.0)

    def test_default_batches_use_cost_fn(self):
        batch = make_batch(reqs([10, 20]))
        assert batch_execution_cost(batch, padded_cost) == \
            pytest.approx(padded_cost(20, 2))


class TestServingWithPacking:
    def test_packed_sustains_more_than_padded_naive(self):
        """Padding-free batching turns padded tokens into real throughput."""
        from repro.serving import NaiveBatchScheduler

        requests_a = reqs([20, 480] * 200, gap=0.002)  # wildly mixed lengths
        packed = simulate_serving(
            requests_a, PackedBatchScheduler(packed_cost), padded_cost,
            ServingConfig(max_batch=20), duration_s=0.8,
        )
        requests_b = reqs([20, 480] * 200, gap=0.002)
        padded = simulate_serving(
            requests_b, NaiveBatchScheduler(), padded_cost,
            ServingConfig(max_batch=20), duration_s=0.8,
        )
        assert packed.response_throughput > padded.response_throughput
        assert packed.latency.avg_ms < padded.latency.avg_ms
