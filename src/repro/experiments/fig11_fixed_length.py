"""Fig. 11: runtime comparison on the fixed-length BERT task.

Every runtime is tuned (offline) for each exact input dimension; the grid
is sequence lengths 10-500 x batch {1, 20} on both the simulated RTX 2060
and Tesla V100.  Values are normalized speedups of TurboTransformers over
each baseline (> 1 means Turbo is faster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..gpusim import RTX_2060, TESLA_V100, DeviceSpec
from ..models import bert_base, build_encoder_graph
from ..runtime import (
    fastertransformer_runtime,
    onnxruntime_runtime,
    tensorrt_runtime,
    turbo_runtime,
    xla_runtime,
)
from .tables import format_table

FIG11_LENGTHS: Tuple[int, ...] = (10, 50, 100, 150, 200, 250, 300, 350, 400, 500)
FIG11_BATCHES: Tuple[int, ...] = (1, 20)

BASELINE_FACTORIES = {
    "TensorFlow-XLA": xla_runtime,
    "FasterTransformers": fastertransformer_runtime,
    "TensorRT": tensorrt_runtime,
    "onnxruntime": onnxruntime_runtime,
}


@dataclass(frozen=True)
class FixedLengthCase:
    device: str
    batch: int
    seq: int
    turbo_s: float
    baseline_s: Dict[str, float]

    def speedup(self, baseline: str) -> float:
        return self.baseline_s[baseline] / self.turbo_s

    @property
    def turbo_is_best(self) -> bool:
        return all(self.turbo_s <= s for s in self.baseline_s.values())


def run_fig11(
    device: DeviceSpec,
    lengths: Sequence[int] = FIG11_LENGTHS,
    batches: Sequence[int] = FIG11_BATCHES,
) -> List[FixedLengthCase]:
    graph = build_encoder_graph(bert_base())
    turbo = turbo_runtime(graph=graph, device=device)
    baselines = {
        name: factory(graph=graph, device=device)
        for name, factory in BASELINE_FACTORIES.items()
    }
    cases: List[FixedLengthCase] = []
    for batch in batches:
        for seq in lengths:
            cases.append(
                FixedLengthCase(
                    device=device.name,
                    batch=batch,
                    seq=seq,
                    turbo_s=turbo.latency(batch, seq),
                    baseline_s={
                        name: rt.latency(batch, seq) for name, rt in baselines.items()
                    },
                )
            )
    return cases


def win_count(cases: Sequence[FixedLengthCase], baseline: str) -> int:
    """Cases where Turbo strictly beats the given baseline."""
    return sum(1 for c in cases if c.speedup(baseline) > 1.0)


def format_fig11(device: DeviceSpec = RTX_2060) -> str:
    cases = run_fig11(device)
    names = sorted(BASELINE_FACTORIES)
    rows = [
        [f"({c.batch},{c.seq})"] + [f"{c.speedup(n):.2f}x" for n in names]
        for c in cases
    ]
    table = format_table(["(batch,seq)"] + names, rows)
    summary = ", ".join(
        f"turbo beats {n} in {win_count(cases, n)}/{len(cases)}" for n in names
    )
    return f"[{device.name}] {summary}\n{table}"


def run_fig11_both() -> Dict[str, List[FixedLengthCase]]:
    return {"RTX 2060": run_fig11(RTX_2060), "Tesla V100": run_fig11(TESLA_V100)}
