"""Fig. 6: the allocator's chunk layout as the request length changes.

The paper illustrates a BERT inference whose input length grows from 200
to 240: the allocator re-plans the offsets inside its cached chunks and
appends one more chunk.  This module reproduces that walkthrough and
exposes the layouts for rendering/assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph import fuse_graph, tensor_usage_records
from ..memory import MB, RequestAllocation, TurboAllocator
from ..models import bert_base, build_encoder_graph
from .tables import format_table


@dataclass(frozen=True)
class AllocationSnapshot:
    """Chunk layout after planning one request."""

    seq_len: int
    num_chunks: int
    footprint_mb: float
    new_mb: float
    chunk_tensors: Dict[int, List[str]]


def run_fig6(first_len: int = 200, second_len: int = 240, batch: int = 1
             ) -> List[AllocationSnapshot]:
    """Plan two consecutive BERT requests and snapshot the chunk layouts."""
    if first_len <= 0 or second_len <= 0:
        raise ValueError("lengths must be positive")
    graph = fuse_graph(build_encoder_graph(bert_base()))
    allocator = TurboAllocator()
    snapshots: List[AllocationSnapshot] = []
    for seq_len in (first_len, second_len):
        records = tensor_usage_records(graph, {"batch": batch, "seq": seq_len})
        result: RequestAllocation = allocator.process_request(records)
        snapshots.append(
            AllocationSnapshot(
                seq_len=seq_len,
                num_chunks=len(allocator.chunks),
                footprint_mb=result.footprint_bytes / MB,
                new_mb=result.new_mb,
                chunk_tensors=allocator.chunk_layout(),
            )
        )
    return snapshots


def format_fig6() -> str:
    snaps = run_fig6()
    rows = [
        [s.seq_len, s.num_chunks, f"{s.footprint_mb:.2f}", f"{s.new_mb:.2f}"]
        for s in snaps
    ]
    return format_table(
        ["seq_len", "chunks", "footprint (MB)", "newly allocated (MB)"], rows
    )
