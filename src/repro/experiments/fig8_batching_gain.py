"""Fig. 8: batching brings performance gain for BERT serving on RTX 2060.

For each sequence length, the per-request latency of a batch of size ``b``
is normalized against serving the same request at batch size 1.  The gain
is largest for short sequences (which underfill the GPU alone) — exactly
the effect the DP batch scheduler exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..gpusim import RTX_2060, DeviceSpec
from ..models import bert_base, build_encoder_graph
from ..runtime import InferenceRuntime, turbo_runtime
from .tables import format_table

FIG8_LENGTHS: Tuple[int, ...] = (10, 50, 100, 200, 300, 400, 500)
FIG8_BATCHES: Tuple[int, ...] = (1, 2, 4, 8, 16, 20)


@dataclass(frozen=True)
class BatchingGain:
    """Per-request latency of (batch, seq) relative to batch 1."""

    seq: int
    batch: int
    per_request_s: float
    normalized: float  # per_request(batch) / per_request(1); < 1 is a gain

    @property
    def speedup(self) -> float:
        return 1.0 / self.normalized


def run_fig8(
    device: DeviceSpec = RTX_2060,
    lengths: Sequence[int] = FIG8_LENGTHS,
    batches: Sequence[int] = FIG8_BATCHES,
    runtime: InferenceRuntime = None,
) -> List[BatchingGain]:
    rt = runtime if runtime is not None else turbo_runtime(
        graph=build_encoder_graph(bert_base()), device=device
    )
    points: List[BatchingGain] = []
    for seq in lengths:
        single = rt.latency(1, seq)
        for batch in batches:
            per_request = rt.latency(batch, seq) / batch
            points.append(
                BatchingGain(
                    seq=seq, batch=batch, per_request_s=per_request,
                    normalized=per_request / single,
                )
            )
    return points


def format_fig8(device: DeviceSpec = RTX_2060) -> str:
    points = run_fig8(device)
    by_seq: Dict[int, List[BatchingGain]] = {}
    for p in points:
        by_seq.setdefault(p.seq, []).append(p)
    rows = []
    for seq in sorted(by_seq):
        cells: List[object] = [seq]
        for p in sorted(by_seq[seq], key=lambda x: x.batch):
            cells.append(f"{p.normalized:.2f}")
        rows.append(cells)
    return format_table(
        ["seq len"] + [f"b={b}" for b in FIG8_BATCHES], rows
    )
