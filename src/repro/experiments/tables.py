"""Plain-text table rendering shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (markdown-ish) for bench output."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return "+inf" if value > 0 else "-inf"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.2f}"
    return str(value)
