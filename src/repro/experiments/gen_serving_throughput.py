"""Generative serving: request-level vs. iteration-level batching.

The paper's serving evaluation (Fig. 12) batches one-shot BERT requests;
this experiment asks the follow-on question for GPT-style generation:
what does the DP batching scheduler give up by working at *request*
granularity once requests hold their batch slot for a variable number of
decode steps?

Three systems serve identical Poisson workloads (prompt lengths x
geometric output budgets) on the simulated RTX 2060:

* ``Turbo-DP-Request``   — request-level control: the queue is
  partitioned by the (pruned) DP scheduler, each batch runs prefill +
  decode at full width until its **longest** member finishes.
* ``Ebird-Gen``          — elastic concurrent batches (processor
  sharing); generation is priced as one opaque
  ``generate_latency(L, E[new], b)`` unit of work, so it relieves
  head-of-line blocking but cannot exit finished slots early.
* ``Turbo-Continuous``   — iteration-level: the decode batch re-forms at
  every step, finished requests exit immediately, admission is gated by
  the simulated KV-cache arena.
* ``Turbo-Chunked``      — the continuous loop with chunked prefill and
  dual-stream overlap: prefill chunks run on a second simulated stream
  concurrently with decode steps, so a round costs its critical-path
  makespan instead of the serial sum.  Token streams are bit-identical
  to ``Turbo-Continuous``; only the timing (and thus the TTFT tail at
  high rates) changes.

The sweep crosses arrival rates with output-length mixes; the claim under
test is that continuous batching beats request-level DP on *both*
response throughput and mean TTFT at high arrival rates, and that the gap
widens with output-length variance (stragglers pin request-level
batches).  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..gpusim import DeviceSpec
from ..gpusim.device import RTX_2060
from ..memory import KVCacheArena, kv_bytes_per_token
from ..models.gpt import (
    build_decode_step_graph,
    build_prefill_graph,
    gpt_small,
    tiny_gpt,
)
from ..runtime import TURBO_CHARACTERISTICS, GenerationRuntime
from ..serving import (
    ContinuousBatchingConfig,
    ContinuousBatchingServer,
    GenRequest,
    GenServingMetrics,
    RequestLevelGenerationServer,
    ServingMetrics,
    generate_generation_requests,
    geometric_output_lengths,
    simulate_ebird_serving,
    uniform_lengths,
)
from .tables import format_table

#: Offered request rates for the sweep (req/s).  The top rates push
#: request-level batching past saturation while continuous batching still
#: keeps up — the regime the experiment exists to show.
GEN_RATES: Tuple[float, ...] = (200.0, 800.0, 1500.0, 3000.0)

DEFAULT_DURATION_S = 1.0

SYSTEMS = ("request-level", "ebird", "continuous",
           "continuous-chunked")


@dataclass(frozen=True)
class OutputMix:
    """An output-length distribution (geometric, clipped)."""

    name: str
    mean_new_tokens: float
    max_new_tokens: int


#: Short, chatty replies vs. a heavy-tailed mix with long stragglers —
#: the shape that punishes run-to-the-longest request-level batches.
OUTPUT_MIXES: Tuple[OutputMix, ...] = (
    OutputMix("short", mean_new_tokens=6.0, max_new_tokens=24),
    OutputMix("long-tail", mean_new_tokens=16.0, max_new_tokens=96),
)


class GenServingBench:
    """Builds the generation runtime once, runs many (system, rate) points."""

    def __init__(
        self,
        model: str = "tiny",
        device: DeviceSpec = RTX_2060,
        prompt_lo: int = 4,
        prompt_hi: int = 32,
        capacity_tokens: int = 4096,
        page_tokens: int = 16,
        max_batch: int = 8,
        warmup_fraction: float = 0.1,
        chunk_tokens: int = 512,
    ) -> None:
        if model not in ("tiny", "small"):
            raise ValueError(f"model must be 'tiny' or 'small', got {model!r}")
        config = tiny_gpt() if model == "tiny" else gpt_small()
        self.config = config
        self.runtime = GenerationRuntime(
            build_prefill_graph(config),
            build_decode_step_graph(config),
            TURBO_CHARACTERISTICS,
            device,
            stride=1,  # serving decodes one step at a time
        )
        self.bytes_per_token = kv_bytes_per_token(
            config.num_layers, config.num_heads, config.head_size
        )
        self.capacity_tokens = capacity_tokens
        self.page_tokens = page_tokens
        self.prompt_lo = prompt_lo
        self.prompt_hi = prompt_hi
        self.max_batch = max_batch
        self.warmup_fraction = warmup_fraction
        #: Chunk bound used by the ``continuous-chunked`` system.
        self.chunk_tokens = chunk_tokens

    # -- workload -------------------------------------------------------------

    def workload(self, rate: float, duration_s: float, seed: int,
                 mix: OutputMix) -> List[GenRequest]:
        def prompts(rng: np.random.Generator, n: int) -> np.ndarray:
            return uniform_lengths(rng, n, lo=self.prompt_lo,
                                   hi=self.prompt_hi)

        def outputs(rng: np.random.Generator, n: int) -> np.ndarray:
            return geometric_output_lengths(rng, n, mean=mix.mean_new_tokens,
                                            hi=mix.max_new_tokens)

        return generate_generation_requests(
            rate, duration_s, seed=seed,
            prompt_sampler=prompts, output_sampler=outputs,
        )

    def make_arena(self, metrics=None) -> KVCacheArena:
        return KVCacheArena(
            capacity_bytes=self.capacity_tokens * self.bytes_per_token,
            bytes_per_token=self.bytes_per_token,
            page_tokens=self.page_tokens,
            metrics=metrics,
        )

    # -- systems --------------------------------------------------------------

    def make_continuous_server(self, tracer=None, metrics=None,
                               chunk_tokens: "Optional[int]" = None,
                               prefix_cache: bool = False,
                               ) -> ContinuousBatchingServer:
        return ContinuousBatchingServer(
            self.runtime, self.make_arena(metrics=metrics),
            ContinuousBatchingConfig(warmup_fraction=self.warmup_fraction,
                                     chunk_tokens=chunk_tokens,
                                     prefix_cache=prefix_cache),
            tracer=tracer, metrics=metrics,
        )

    def run_continuous(self, requests: Sequence[GenRequest],
                       duration_s: float, tracer=None, metrics=None,
                       chunk_tokens: "Optional[int]" = None,
                       prefix_cache: bool = False,
                       ) -> GenServingMetrics:
        server = self.make_continuous_server(
            tracer=tracer, metrics=metrics, chunk_tokens=chunk_tokens,
            prefix_cache=prefix_cache,
        )
        return server.serve(requests, duration_s=duration_s)

    def run_request_level(self, requests: Sequence[GenRequest],
                          duration_s: float, mix: OutputMix, tracer=None,
                          metrics=None) -> GenServingMetrics:
        server = RequestLevelGenerationServer(
            self.runtime, max_batch=self.max_batch,
            est_new_tokens=max(1, round(mix.mean_new_tokens)),
            warmup_fraction=self.warmup_fraction,
            tracer=tracer, metrics=metrics,
        )
        return server.serve(requests, duration_s=duration_s)

    def run_ebird(self, requests: Sequence[GenRequest], duration_s: float,
                  mix: OutputMix) -> ServingMetrics:
        # Ebird's concurrency model has no per-step view, so a generation
        # is priced as one opaque unit of mean-output-length work; it
        # reports response metrics but no TTFT.
        est = max(1, round(mix.mean_new_tokens))

        def cost_fn(seq_len: int, batch: int) -> float:
            return self.runtime.generate_latency(seq_len, est, batch)

        return simulate_ebird_serving(
            requests, cost_fn, max_batch=self.max_batch,
            duration_s=duration_s, system_name="Ebird-Gen",
        )

    def run_point(self, system: str, rate: float,
                  duration_s: float = DEFAULT_DURATION_S, seed: int = 0,
                  mix: OutputMix = OUTPUT_MIXES[0]):
        requests = self.workload(rate, duration_s, seed, mix)
        if system == "continuous":
            return self.run_continuous(requests, duration_s)
        if system == "continuous-chunked":
            return self.run_continuous(requests, duration_s,
                                       chunk_tokens=self.chunk_tokens)
        if system == "request-level":
            return self.run_request_level(requests, duration_s, mix)
        if system == "ebird":
            return self.run_ebird(requests, duration_s, mix)
        raise ValueError(f"system must be one of {SYSTEMS}, got {system!r}")

    def run_sweep(
        self,
        rates: Sequence[float] = GEN_RATES,
        mixes: Sequence[OutputMix] = OUTPUT_MIXES,
        duration_s: float = DEFAULT_DURATION_S,
        seed: int = 0,
    ) -> Dict[str, Dict[str, List[Union[ServingMetrics, GenServingMetrics]]]]:
        """``sweep[mix.name][system][rate_index]``, fresh workload per cell."""
        return {
            mix.name: {
                system: [
                    self.run_point(system, rate, duration_s, seed, mix)
                    for rate in rates
                ]
                for system in SYSTEMS
            }
            for mix in mixes
        }


def run_gen_serving(
    bench: Optional[GenServingBench] = None,
    rates: Sequence[float] = GEN_RATES,
    mixes: Sequence[OutputMix] = OUTPUT_MIXES,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
) -> Dict[str, Dict[str, List[Union[ServingMetrics, GenServingMetrics]]]]:
    bench = bench or GenServingBench()
    return bench.run_sweep(rates, mixes, duration_s, seed)


def _ttft_cell(m) -> str:
    if not isinstance(m, GenServingMetrics) or m.ttft.count == 0:
        return "—"
    return f"{m.ttft.avg_ms:.2f}"


def format_gen_serving(
    bench: Optional[GenServingBench] = None,
    rates: Sequence[float] = GEN_RATES,
    mixes: Sequence[OutputMix] = OUTPUT_MIXES,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
) -> str:
    """Response throughput and mean TTFT per (mix, rate, system)."""
    bench = bench or GenServingBench()
    sweep = bench.run_sweep(rates, mixes, duration_s, seed)
    blocks: List[str] = []
    for mix in mixes:
        rows = []
        for i, rate in enumerate(rates):
            cells: List[object] = [f"{rate:.0f}"]
            for system in SYSTEMS:
                m = sweep[mix.name][system][i]
                cells.append(f"{m.response_throughput:.0f}")
                cells.append(_ttft_cell(m))
            rows.append(cells)
        header = ["req/s"]
        for system in SYSTEMS:
            header += [f"{system} resp/s", f"{system} ttft ms"]
        blocks.append(
            f"output mix {mix.name!r} "
            f"(mean {mix.mean_new_tokens:g}, max {mix.max_new_tokens}):\n"
            + format_table(header, rows)
        )
    return "\n\n".join(blocks)
