"""Fig. 10: latency on variable-length requests (BERT / ALBERT / Decoder).

Sequential execution of randomly sampled lengths on the simulated RTX 2060:
BERT and ALBERT sample lengths 5–500; the decoder (Chinese-English
translation) samples source lengths 28–137 and generates a same-length
target with beam 4.  BERT adds the onnxruntime series, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..gpusim import RTX_2060, DeviceSpec
from ..models import (
    albert_base,
    bert_base,
    build_albert_graph,
    build_decoder_step_graph,
    build_encoder_graph,
    seq2seq_decoder,
)
from ..runtime import (
    DecoderRuntime,
    PYTORCH_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
    onnxruntime_runtime,
    pytorch_runtime,
    turbo_runtime,
)
from ..serving.workload import uniform_lengths
from .tables import format_table

#: Number of sampled requests per model in the sweep.
NUM_SAMPLES = 30

#: Per-decode-step host bookkeeping (beam top-k, cache reordering).
TURBO_STEP_OVERHEAD_S = 0.1e-3
PYTORCH_STEP_OVERHEAD_S = 2.5e-3


@dataclass(frozen=True)
class LatencyPoint:
    model: str
    seq_len: int
    latencies_s: Dict[str, float]  # runtime name -> seconds

    def speedup(self, baseline: str, target: str = "TurboTransformers") -> float:
        return self.latencies_s[baseline] / self.latencies_s[target]


def _sample_lengths(lo: int, hi: int, n: int, seed: int) -> List[int]:
    rng = np.random.default_rng(seed)
    return [int(x) for x in uniform_lengths(rng, n, lo, hi)]


def run_fig10_bert(
    device: DeviceSpec = RTX_2060, n: int = NUM_SAMPLES, seed: int = 0
) -> List[LatencyPoint]:
    graph = build_encoder_graph(bert_base())
    runtimes = {
        "TurboTransformers": turbo_runtime(graph=graph, device=device),
        "PyTorch": pytorch_runtime(graph=graph, device=device),
        "onnxruntime": onnxruntime_runtime(graph=graph, device=device),
    }
    return [
        LatencyPoint("bert", L, {name: rt.latency(1, L) for name, rt in runtimes.items()})
        for L in sorted(_sample_lengths(5, 500, n, seed))
    ]


def run_fig10_albert(
    device: DeviceSpec = RTX_2060, n: int = NUM_SAMPLES, seed: int = 1
) -> List[LatencyPoint]:
    graph = build_albert_graph(albert_base())
    runtimes = {
        "TurboTransformers": turbo_runtime(graph=graph, device=device),
        "PyTorch": pytorch_runtime(graph=graph, device=device),
    }
    return [
        LatencyPoint("albert", L, {name: rt.latency(1, L) for name, rt in runtimes.items()})
        for L in sorted(_sample_lengths(5, 500, n, seed))
    ]


def run_fig10_decoder(
    device: DeviceSpec = RTX_2060, n: int = 12, seed: int = 2
) -> List[LatencyPoint]:
    """Decoder translation latency: source 28-137, target length = source."""
    config = seq2seq_decoder()
    step_graph = build_decoder_step_graph(config)
    # Per-step beam-search bookkeeping outside the graph (top-k, hypothesis
    # management, KV-cache reordering): a Python loop pays milliseconds, the
    # C++ serving loop microseconds.
    runtimes = {
        "TurboTransformers": DecoderRuntime(
            step_graph, TURBO_CHARACTERISTICS, device, config.beam_size,
            step_overhead_s=TURBO_STEP_OVERHEAD_S,
        ),
        "PyTorch": DecoderRuntime(
            step_graph, PYTORCH_CHARACTERISTICS, device, config.beam_size,
            step_overhead_s=PYTORCH_STEP_OVERHEAD_S,
        ),
    }
    return [
        LatencyPoint(
            "decoder", L,
            {name: rt.decode_latency(L, L) for name, rt in runtimes.items()},
        )
        for L in sorted(_sample_lengths(28, 137, n, seed))
    ]


def speedup_range(points: Sequence[LatencyPoint], baseline: str) -> tuple:
    """(min, max) Turbo speedup over a baseline across the sweep."""
    speedups = [p.speedup(baseline) for p in points]
    return min(speedups), max(speedups)


def format_fig10(device: DeviceSpec = RTX_2060) -> str:
    sections = []
    for name, run in (
        ("bert", run_fig10_bert), ("albert", run_fig10_albert),
        ("decoder", run_fig10_decoder),
    ):
        points = run(device)
        systems = sorted(points[0].latencies_s)
        rows = [
            [p.seq_len] + [f"{p.latencies_s[s] * 1e3:.2f}" for s in systems]
            + [f"{p.speedup('PyTorch'):.2f}x"]
            for p in points
        ]
        table = format_table(
            ["seq len"] + [f"{s} (ms)" for s in systems] + ["turbo vs pytorch"], rows
        )
        lo, hi = speedup_range(points, "PyTorch")
        sections.append(f"[{name}] turbo vs PyTorch speedup: {lo:.2f}x - {hi:.2f}x\n{table}")
    return "\n\n".join(sections)
