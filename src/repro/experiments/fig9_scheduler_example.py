"""Fig. 9: the batch scheduler example with lengths {17, 18, 52, 63, 77}.

The paper's worked example: packing all five requests into one padded
batch is *less* efficient than no batching, and the DP scheduler's
partition improves response throughput ~35% over the single batch.

That outcome presupposes the cost regime of the authors' measured
``cached_cost`` table: per-batch latency roughly affine in padded length
with sub-linear but weak batch scaling (``cost ~ F + k·len·batch^0.9``).
:func:`paper_example_cost` encodes that regime, and under it the DP
partition reproduces the paper's story.  Under our simulated RTX 2060 cost
table the *per-request fixed overheads* are relatively larger, so batching
is more forgiving and the single batch is no longer a loss — the bench
reports both regimes, and the DP schedule is optimal under each (that is
the property the algorithm guarantees; the best partition is workload- and
hardware-dependent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..models import bert_base, build_encoder_graph
from ..runtime import CostTable, turbo_runtime, warmup_profile
from ..serving import (
    CostFn,
    DPBatchScheduler,
    NaiveBatchScheduler,
    NoBatchScheduler,
    Request,
    throughput_of_schedule,
)
from .tables import format_table

#: The exact request lengths of the paper's example.
FIG9_LENGTHS: Tuple[int, ...] = (17, 18, 52, 63, 77)

#: Constants of the paper-regime cost model (seconds).
_FIXED_S = 0.5e-3
_PER_TOKEN_S = 0.05e-3
_BATCH_EXPONENT = 0.9


def paper_example_cost(seq_len: int, batch: int) -> float:
    """Batch latency in the regime of the paper's Fig. 9 example."""
    if seq_len <= 0 or batch <= 0:
        raise ValueError(f"seq_len and batch must be positive, got {seq_len}, {batch}")
    return _FIXED_S + _PER_TOKEN_S * seq_len * batch ** _BATCH_EXPONENT


@dataclass(frozen=True)
class SchedulerOutcome:
    scheduler: str
    batches: List[Tuple[int, ...]]  # lengths per batch
    makespan_s: float
    throughput_rps: float


def _requests() -> List[Request]:
    return [
        Request(req_id=i, seq_len=length, arrival_s=0.0)
        for i, length in enumerate(FIG9_LENGTHS)
    ]


def run_fig9(
    max_batch: int = 20, cost_fn: Optional[CostFn] = None
) -> List[SchedulerOutcome]:
    """Schedule the example under ``cost_fn`` (paper regime by default)."""
    if cost_fn is None:
        cost_fn = paper_example_cost
    outcomes: List[SchedulerOutcome] = []
    for scheduler in (NoBatchScheduler(), NaiveBatchScheduler(), DPBatchScheduler()):
        batches = scheduler.schedule(_requests(), cost_fn, max_batch)
        outcomes.append(
            SchedulerOutcome(
                scheduler=scheduler.name,
                batches=[tuple(r.seq_len for r in b.requests) for b in batches],
                makespan_s=sum(cost_fn(b.padded_len, b.size) for b in batches),
                throughput_rps=throughput_of_schedule(batches, cost_fn),
            )
        )
    return outcomes


def simulated_cost_table(max_batch: int = 20) -> CostTable:
    """Warm-up cost table from the simulated RTX 2060 Turbo runtime."""
    runtime = turbo_runtime(graph=build_encoder_graph(bert_base()))
    return warmup_profile(runtime, max_batch=max_batch, lengths=range(8, 129, 8))


def format_fig9(cost_fn: Optional[CostFn] = None, title: str = "paper regime") -> str:
    outcomes = run_fig9(cost_fn=cost_fn)
    baseline = next(o for o in outcomes if o.scheduler == "naive")
    rows = []
    for o in outcomes:
        rows.append([
            o.scheduler,
            " ".join(str(list(b)) for b in o.batches),
            f"{o.makespan_s * 1e3:.2f}",
            f"{o.throughput_rps:.0f}",
            f"{(o.throughput_rps / baseline.throughput_rps - 1) * 100:+.0f}%",
        ])
    table = format_table(
        ["scheduler", "batches (lengths)", "makespan (ms)", "resp/s",
         "vs single batch"],
        rows,
    )
    return f"[{title}]\n{table}"
