"""Fig. 5: speedup of the Turbo batch-reduction kernels on Tesla V100.

Softmax is compared against the FasterTransformer baseline and the cuDNN
softmax routine; LayerNorm against the FasterTransformer baseline — the
same pairings as the paper's figure.  Softmax rows come from attention
scores (``batch*heads*seq`` rows of length ``seq``); LayerNorm rows from
hidden states (``batch*seq`` rows of length 768).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..gpusim import TESLA_V100, DeviceSpec, ReductionImpl, layernorm_time, softmax_time
from .tables import format_table

HIDDEN, HEADS = 768, 12

#: Sequence lengths swept in Fig. 5.
FIG5_LENGTHS: Tuple[int, ...] = (10, 20, 40, 60, 80, 100, 200, 300, 400, 500)
FIG5_BATCHES: Tuple[int, ...] = (1, 20)


@dataclass(frozen=True)
class KernelSpeedup:
    """One Fig. 5 data point."""

    kernel: str
    baseline: str
    batch: int
    seq: int
    turbo_s: float
    baseline_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.turbo_s


def run_fig5(
    device: DeviceSpec = TESLA_V100,
    lengths: Sequence[int] = FIG5_LENGTHS,
    batches: Sequence[int] = FIG5_BATCHES,
    x_elems: int = 2,
) -> List[KernelSpeedup]:
    points: List[KernelSpeedup] = []
    for batch in batches:
        for seq in lengths:
            softmax_rows = batch * HEADS * seq
            turbo_sm = softmax_time(device, softmax_rows, seq,
                                    ReductionImpl.TURBO, x_elems).total_s
            for baseline in (ReductionImpl.FASTER_TRANSFORMER, ReductionImpl.CUDNN):
                base_s = softmax_time(device, softmax_rows, seq, baseline).total_s
                points.append(
                    KernelSpeedup("softmax", baseline.value, batch, seq,
                                  turbo_sm, base_s)
                )
            ln_rows = batch * seq
            turbo_ln = layernorm_time(device, ln_rows, HIDDEN,
                                      ReductionImpl.TURBO).total_s
            base_ln = layernorm_time(device, ln_rows, HIDDEN,
                                     ReductionImpl.FASTER_TRANSFORMER).total_s
            points.append(
                KernelSpeedup("layernorm", "faster_transformer", batch, seq,
                              turbo_ln, base_ln)
            )
    return points


def format_fig5(device: DeviceSpec = TESLA_V100) -> str:
    points = run_fig5(device)
    series = sorted({(p.kernel, p.baseline, p.batch) for p in points})
    rows = []
    for kernel, baseline, batch in series:
        cells: List[object] = [f"{kernel} vs {baseline}", batch]
        for seq in FIG5_LENGTHS:
            match = next(
                p for p in points
                if (p.kernel, p.baseline, p.batch, p.seq) == (kernel, baseline, batch, seq)
            )
            cells.append(f"{match.speedup:.2f}x")
        rows.append(cells)
    return format_table(
        ["series", "batch"] + [str(s) for s in FIG5_LENGTHS], rows
    )
