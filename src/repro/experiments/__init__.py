"""Experiment harnesses: one module per paper table/figure (DESIGN.md §4)."""

from . import (
    fig5_batch_reduction,
    profile_breakdown,
    report,
    fig6_allocation_example,
    fig7_allocator_comparison,
    fig8_batching_gain,
    fig9_scheduler_example,
    fig10_variable_length,
    fig11_fixed_length,
    fig12_serving_throughput,
    gen_serving_throughput,
    prefix_cache_sweep,
    table1_runtime_matrix,
    table2_reduction_share,
)
from .tables import format_table

__all__ = [
    "format_table",
    "table1_runtime_matrix",
    "table2_reduction_share",
    "fig5_batch_reduction",
    "fig6_allocation_example",
    "fig7_allocator_comparison",
    "fig8_batching_gain",
    "fig9_scheduler_example",
    "fig10_variable_length",
    "fig11_fixed_length",
    "fig12_serving_throughput",
    "gen_serving_throughput",
    "prefix_cache_sweep",
    "profile_breakdown",
    "report",
]
