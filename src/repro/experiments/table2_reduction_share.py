"""Table 2: share of batch-reduction kernels in the attention layer.

Methodology follows the paper's footnote: attention-layer time is measured
with the Turbo runtime, but with the Softmax (resp. LayerNorm) kernel
replaced by PyTorch's implementation for the "before" rows and by Turbo's
for the "after" rows.  The share is that kernel's fraction of the whole
attention layer's time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..gpusim import (
    TESLA_V100,
    DeviceSpec,
    ReductionImpl,
    elementwise_time,
    gemm_time,
    layernorm_time,
    softmax_time,
)
from .tables import format_table

#: BERT-base attention geometry.
HIDDEN, HEADS, HEAD_SIZE = 768, 12, 64

#: The paper's (batch, seq) grid for Table 2.
TABLE2_CASES: Tuple[Tuple[int, int], ...] = (
    (1, 10), (1, 100), (1, 500), (20, 10), (20, 100), (20, 500),
)


def attention_layer_time(
    device: DeviceSpec,
    batch: int,
    seq: int,
    softmax_impl: ReductionImpl,
    layernorm_impl: ReductionImpl,
) -> Dict[str, float]:
    """Per-kernel seconds of one fused attention layer.

    Keys: ``gemm``, ``elementwise``, ``softmax``, ``layernorm``.
    """
    tokens = batch * seq
    gemm_s = (
        3 * gemm_time(device, tokens, HIDDEN, HIDDEN).total_s  # QKV
        + gemm_time(device, seq, seq, HEAD_SIZE, batch=batch * HEADS).total_s
        + gemm_time(device, seq, HEAD_SIZE, seq, batch=batch * HEADS).total_s
        + gemm_time(device, tokens, HIDDEN, HIDDEN).total_s  # output proj
    )
    elementwise_s = (
        elementwise_time(device, 3 * tokens * HIDDEN).total_s  # bias+transpose
        + elementwise_time(device, tokens * HIDDEN).total_s  # merge heads
        + elementwise_time(device, tokens * HIDDEN, reads=2).total_s  # residual
    )
    softmax_s = softmax_time(device, batch * HEADS * seq, seq, softmax_impl).total_s
    layernorm_s = layernorm_time(device, tokens, HIDDEN, layernorm_impl).total_s
    return {
        "gemm": gemm_s,
        "elementwise": elementwise_s,
        "softmax": softmax_s,
        "layernorm": layernorm_s,
    }


@dataclass(frozen=True)
class ReductionShare:
    """One Table 2 cell pair: kernel share before and after optimizing."""

    batch: int
    seq: int
    kernel: str  # "softmax" | "layernorm"
    before: float
    after: float

    @property
    def improvement(self) -> float:
        """How much of the attention layer the optimization reclaimed."""
        return self.before - self.after


def _share(parts: Dict[str, float], kernel: str) -> float:
    total = sum(parts.values())
    return parts[kernel] / total


def run_table2(device: DeviceSpec = TESLA_V100) -> List[ReductionShare]:
    results: List[ReductionShare] = []
    for batch, seq in TABLE2_CASES:
        for kernel in ("softmax", "layernorm"):
            before_impl = ReductionImpl.PYTORCH
            sm_before = before_impl if kernel == "softmax" else ReductionImpl.TURBO
            ln_before = before_impl if kernel == "layernorm" else ReductionImpl.TURBO
            before = _share(
                attention_layer_time(device, batch, seq, sm_before, ln_before), kernel
            )
            after = _share(
                attention_layer_time(
                    device, batch, seq, ReductionImpl.TURBO, ReductionImpl.TURBO
                ),
                kernel,
            )
            results.append(
                ReductionShare(batch=batch, seq=seq, kernel=kernel,
                               before=before, after=after)
            )
    return results


def format_table2(device: DeviceSpec = TESLA_V100) -> str:
    results = run_table2(device)
    rows = []
    for kernel in ("softmax", "layernorm"):
        for stage in ("before", "after"):
            cells: List[object] = [f"{kernel}/attention", stage]
            for batch, seq in TABLE2_CASES:
                match = next(
                    r for r in results
                    if r.kernel == kernel and (r.batch, r.seq) == (batch, seq)
                )
                cells.append(f"{getattr(match, stage) * 100:.2f}%")
            rows.append(cells)
    headers = ["kernel", "stage"] + [f"({b},{s})" for b, s in TABLE2_CASES]
    return format_table(headers, rows)
