"""Prefix caching: TTFT/goodput vs. prompt sharing ratio.

TurboTransformers' serving layer batches independent one-shot requests;
real multi-tenant generative traffic is far more redundant — requests
from the same tenant open with an identical system prompt and few-shot
template and differ only in a short user suffix.  The radix prefix index
over the copy-on-write KV arena (``memory.prefix_index``) exploits that:
at admission the continuous server looks up the longest page-aligned
cached prefix, attaches those pages by refcount, and prefills only the
uncached suffix.

This experiment sweeps the **sharing ratio** of a synthetic multi-tenant
population (``serving.workload.generate_prefix_population_requests``)
against arrival rate and reports, per point:

* TTFT (avg and p99) with the cache off vs. on — the headline win;
* response throughput (completed requests/s);
* prefix hits, KV tokens reused, and prefill FLOPs saved (priced at the
  simulated device's peak FP32 rate).

Token streams are byte-identical cache-on vs. cache-off at every point
(asserted by ``python -m repro bench --verify-prefix``); the cache moves
*work*, never *tokens*.  Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serving import (
    GenRequest,
    GenServingMetrics,
    generate_prefix_population_requests,
    geometric_output_lengths,
)
from .gen_serving_throughput import GenServingBench
from .tables import format_table

#: Offered rates (req/s).  Prefix-population prompts are ~3x longer than
#: the uniform gen mix, so saturation arrives earlier than in
#: ``gen_serving_throughput``.
PREFIX_RATES: Tuple[float, ...] = (200.0, 600.0, 1200.0)

#: Fraction of requests that open with a tenant-shared prefix.
SHARING_RATIOS: Tuple[float, ...] = (0.0, 0.5, 0.9)

DEFAULT_DURATION_S = 1.0


@dataclass(frozen=True)
class PrefixPoint:
    """One (sharing ratio, rate) cell: cache-off vs. cache-on."""

    sharing_ratio: float
    rate: float
    off: GenServingMetrics
    on: GenServingMetrics

    @property
    def ttft_p99_reduction(self) -> float:
        """Fractional TTFT p99 reduction from the cache (0 = no win)."""
        if self.off.ttft.p99_ms <= 0.0:
            return 0.0
        return 1.0 - self.on.ttft.p99_ms / self.off.ttft.p99_ms


def prefix_workload(
    rate: float,
    duration_s: float,
    seed: int,
    sharing_ratio: float,
    mean_new_tokens: float = 16.0,
    max_new_tokens: int = 96,
) -> List[GenRequest]:
    """The multi-tenant population at one sharing ratio.  Arrival times,
    prompt lengths and output budgets are identical across ratios — only
    the token *content* (and thus cache hits) changes."""

    def outputs(rng: np.random.Generator, n: int) -> np.ndarray:
        return geometric_output_lengths(rng, n, mean=mean_new_tokens,
                                        hi=max_new_tokens)

    return generate_prefix_population_requests(
        rate, duration_s, seed=seed, sharing_ratio=sharing_ratio,
        output_sampler=outputs,
    )


def run_prefix_point(
    bench: GenServingBench,
    sharing_ratio: float,
    rate: float,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
) -> PrefixPoint:
    """Run one cell twice — cache off, then cache on — on fresh arenas."""
    off = prefix_workload(rate, duration_s, seed, sharing_ratio)
    m_off = bench.run_continuous(off, duration_s)
    on = prefix_workload(rate, duration_s, seed, sharing_ratio)
    m_on = bench.run_continuous(on, duration_s, prefix_cache=True)
    return PrefixPoint(sharing_ratio=sharing_ratio, rate=rate,
                       off=m_off, on=m_on)


def run_prefix_sweep(
    bench: Optional[GenServingBench] = None,
    rates: Sequence[float] = PREFIX_RATES,
    sharing_ratios: Sequence[float] = SHARING_RATIOS,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
) -> Dict[float, List[PrefixPoint]]:
    """``sweep[sharing_ratio][rate_index]``, fresh workload per cell."""
    bench = bench or GenServingBench()
    return {
        sharing: [
            run_prefix_point(bench, sharing, rate, duration_s, seed)
            for rate in rates
        ]
        for sharing in sharing_ratios
    }


def format_prefix_sweep(
    bench: Optional[GenServingBench] = None,
    rates: Sequence[float] = PREFIX_RATES,
    sharing_ratios: Sequence[float] = SHARING_RATIOS,
    duration_s: float = DEFAULT_DURATION_S,
    seed: int = 0,
) -> str:
    """TTFT off/on, goodput and reuse counters per (sharing, rate)."""
    bench = bench or GenServingBench()
    sweep = run_prefix_sweep(bench, rates, sharing_ratios, duration_s, seed)
    blocks: List[str] = []
    for sharing in sharing_ratios:
        rows = []
        for point in sweep[sharing]:
            rows.append([
                f"{point.rate:.0f}",
                f"{point.off.ttft.p99_ms:.3f}",
                f"{point.on.ttft.p99_ms:.3f}",
                f"{100.0 * point.ttft_p99_reduction:.0f}%",
                f"{point.on.response_throughput:.0f}",
                f"{point.on.prefix_hits}",
                f"{point.on.prefix_tokens_reused}",
                f"{point.on.prefill_flops_saved / 1e9:.2f}",
            ])
        header = ["req/s", "ttft p99 off ms", "ttft p99 on ms",
                  "p99 cut", "resp/s", "hits", "tok reused", "GFLOPs saved"]
        blocks.append(
            f"sharing ratio {sharing:g}:\n" + format_table(header, rows)
        )
    return "\n\n".join(blocks)


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    print(format_prefix_sweep())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
