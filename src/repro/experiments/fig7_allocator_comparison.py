"""Fig. 7: allocator comparison on a variable-length request stream.

50 BERT requests with random lengths are served by four allocators; for
each we track the footprint timeline and the average amount of freshly
``cudaMalloc``-ed memory per request.  The paper reports 0.70 MB/request
for Turbo vs 2.78 MB/request for GSOC, with PyTorch's caching allocator
footprint roughly double everyone else's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..graph import fuse_graph, tensor_usage_records
from ..memory import (
    AllocatorWorkloadResult,
    CachingAllocator,
    GsocAllocator,
    NaiveAllocator,
    TurboAllocator,
    run_allocator_workload,
)
from ..memory.records import TensorUsageRecord
from ..models import bert_base, build_encoder_graph
from ..serving.workload import uniform_lengths
from .tables import format_table

#: The paper's experiment uses 50 variable-length requests.
NUM_REQUESTS = 50


def workload_records(
    num_requests: int = NUM_REQUESTS,
    seed: int = 0,
    lo: int = 5,
    hi: int = 500,
    batch: int = 1,
) -> List[Sequence[TensorUsageRecord]]:
    """Usage-record lists for a stream of random-length BERT requests.

    Uses the *fused* graph — fusion eliminates short-lived intermediates,
    which is the tensor set the Turbo runtime actually plans.
    """
    graph = fuse_graph(build_encoder_graph(bert_base()))
    rng = np.random.default_rng(seed)
    lengths = uniform_lengths(rng, num_requests, lo, hi)
    return [
        tensor_usage_records(graph, {"batch": batch, "seq": int(length)})
        for length in lengths
    ]


@dataclass(frozen=True)
class Fig7Result:
    """All four allocators over the same request stream."""

    results: Dict[str, AllocatorWorkloadResult]

    def footprint(self, name: str) -> float:
        return self.results[name].max_footprint_mb

    def avg_new_mb(self, name: str) -> float:
        return self.results[name].avg_new_mb_per_request


def run_fig7(num_requests: int = NUM_REQUESTS, seed: int = 0) -> Fig7Result:
    streams = workload_records(num_requests, seed)
    results: Dict[str, AllocatorWorkloadResult] = {}
    for allocator in (TurboAllocator(), GsocAllocator(), CachingAllocator(),
                      NaiveAllocator()):
        results[allocator.name] = run_allocator_workload(allocator, streams)
    return Fig7Result(results=results)


def format_fig7(num_requests: int = NUM_REQUESTS, seed: int = 0) -> str:
    result = run_fig7(num_requests, seed)
    rows = []
    for name, res in sorted(result.results.items()):
        rows.append([
            name,
            f"{res.max_footprint_mb:.1f}",
            f"{res.avg_new_mb_per_request:.2f}",
            res.allocation_events,
            f"{res.total_stall_s * 1e3:.2f}",
        ])
    return format_table(
        ["allocator", "max footprint (MB)", "avg new MB/request",
         "requests with fresh malloc", "total stall (ms)"],
        rows,
    )
