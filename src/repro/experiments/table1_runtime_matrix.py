"""Table 1: qualitative comparison of the GPU inference runtimes.

This table is descriptive in the paper; here the rows are *derived* from
the implemented runtime characteristics, so the test suite can assert that
the implementation actually has the properties the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..runtime import (
    FASTER_TRANSFORMER_CHARACTERISTICS,
    ONNXRUNTIME_CHARACTERISTICS,
    PYTORCH_CHARACTERISTICS,
    TENSORRT_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
    XLA_CHARACTERISTICS,
    RuntimeCharacteristics,
)
from .tables import format_table

ALL_CHARACTERISTICS: List[RuntimeCharacteristics] = [
    XLA_CHARACTERISTICS,
    PYTORCH_CHARACTERISTICS,
    TENSORRT_CHARACTERISTICS,
    FASTER_TRANSFORMER_CHARACTERISTICS,
    ONNXRUNTIME_CHARACTERISTICS,
    TURBO_CHARACTERISTICS,
]


@dataclass(frozen=True)
class RuntimeMatrixRow:
    """One Table 1 row, derived from a runtime's characteristics."""

    name: str
    needs_preprocess: bool
    variable_length: bool
    usage: str


def run_table1() -> List[RuntimeMatrixRow]:
    return [
        RuntimeMatrixRow(
            name=c.name,
            needs_preprocess=c.preprocess_s > 0,
            variable_length=c.supports_variable_length,
            usage=c.usage,
        )
        for c in ALL_CHARACTERISTICS
    ]


def format_table1() -> str:
    rows = run_table1()
    return format_table(
        ["Runtime", "Preprocess", "Variable-Len", "Usage"],
        [[r.name, r.needs_preprocess, r.variable_length, r.usage] for r in rows],
    )
