"""§4.1.1 profiling claims: where PyTorch's inference time goes.

The paper motivates kernel fusion with two measurements on a Tesla V100:

* at (batch 20, seq 128), only 61.8% of PyTorch's time is spent in GEMM
  kernels — 38.2% goes to the non-GEMM kernels Turbo fuses;
* at (batch 1, seq 40), the GPU is idle 80.64% of the time (launch and
  dispatch overheads dominate tiny workloads).

This module recomputes both from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..gpusim import TESLA_V100, DeviceSpec
from ..models import bert_base, build_encoder_graph
from ..runtime import InferenceRuntime, pytorch_runtime, turbo_runtime
from .tables import format_table


@dataclass(frozen=True)
class TimeBreakdown:
    """Kernel-category shares of one inference."""

    runtime: str
    batch: int
    seq: int
    gemm_fraction: float
    reduction_fraction: float
    elementwise_fraction: float
    idle_fraction: float  # wall time not covered by device kernel time

    @property
    def non_gemm_fraction(self) -> float:
        return 1.0 - self.gemm_fraction


def _categorize(time_by_kernel: Dict[str, float]) -> Dict[str, float]:
    buckets = {"gemm": 0.0, "reduction": 0.0, "elementwise": 0.0}
    for name, seconds in time_by_kernel.items():
        if name.startswith("gemm"):
            buckets["gemm"] += seconds
        elif "softmax" in name or "layernorm" in name:
            buckets["reduction"] += seconds
        else:
            buckets["elementwise"] += seconds
    return buckets


def profile_inference(
    runtime: InferenceRuntime, batch: int, seq: int
) -> TimeBreakdown:
    """Kernel-category breakdown of one inference on ``runtime``."""
    result = runtime.infer(batch, seq)
    buckets = _categorize(result.time_by_kernel)
    kernel_total = sum(buckets.values())
    device_total = sum(
        timing.device_s
        for timing in runtime.kernel_timings(batch, seq)
    )
    wall = result.latency_s
    return TimeBreakdown(
        runtime=runtime.name,
        batch=batch,
        seq=seq,
        gemm_fraction=buckets["gemm"] / kernel_total,
        reduction_fraction=buckets["reduction"] / kernel_total,
        elementwise_fraction=buckets["elementwise"] / kernel_total,
        idle_fraction=max(0.0, 1.0 - device_total / wall),
    )


def run_profile_breakdown(device: DeviceSpec = TESLA_V100):
    """The two §4.1.1 data points for PyTorch plus Turbo for contrast."""
    graph = build_encoder_graph(bert_base())
    pytorch = pytorch_runtime(graph=graph, device=device)
    turbo = turbo_runtime(graph=graph, device=device)
    return [
        profile_inference(pytorch, 20, 128),
        profile_inference(pytorch, 1, 40),
        profile_inference(turbo, 20, 128),
        profile_inference(turbo, 1, 40),
    ]


def format_profile_breakdown(device: DeviceSpec = TESLA_V100) -> str:
    rows = []
    for b in run_profile_breakdown(device):
        rows.append([
            b.runtime, f"({b.batch},{b.seq})",
            f"{b.gemm_fraction * 100:.1f}%",
            f"{b.reduction_fraction * 100:.1f}%",
            f"{b.elementwise_fraction * 100:.1f}%",
            f"{b.idle_fraction * 100:.1f}%",
        ])
    return format_table(
        ["runtime", "(batch,seq)", "GEMM", "reductions", "elementwise",
         "GPU idle"],
        rows,
    )
