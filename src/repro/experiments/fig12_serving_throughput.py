"""Fig. 12 / Table 4: end-to-end serving throughput and latency.

Five systems serve the same Poisson / normal-length BERT workload on the
simulated RTX 2060:

* ``TF-serving``       — XLA-grade runtime, static batches padded to the
                         model maximum (500), the paper's worst case.
* ``PyTorch-NoBatch``  — PyTorch runtime, one request per inference.
* ``Turbo-NoBatch``    — Turbo runtime, one request per inference.
* ``Turbo-Naive-Batch``— Turbo runtime, whole queue in one padded batch.
* ``Turbo-DP-Batch``   — Turbo runtime, Algorithm 3 scheduler (hungry).

Fig. 12 sweeps the offered request rate and reports response throughput;
Table 4 reports avg (min, max) latency at each system's measured
saturation rate (the paper's 60/98/120/144 req/s are exactly its systems'
saturation points, so we recompute those points for our cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gpusim import RTX_2060, DeviceSpec
from ..models import bert_base, build_encoder_graph
from ..runtime import CostTable, pytorch_runtime, turbo_runtime, warmup_profile, xla_runtime
from ..serving import (
    BatchScheduler,
    DPBatchScheduler,
    FixedPadScheduler,
    NaiveBatchScheduler,
    NoBatchScheduler,
    PrunedDPBatchScheduler,
    ServingConfig,
    ServingMetrics,
    generate_requests,
    simulate_serving,
)
from .tables import format_table

#: Static padding target of the TF-serving baseline (model max length).
TFSERVING_PAD = 500
TFSERVING_BATCH = 8

#: Offered request rates for the Fig. 12 sweep (req/s).
FIG12_RATES: Tuple[int, ...] = (20, 40, 60, 80, 100, 120, 150, 200, 400, 800, 1500)

#: Virtual seconds of offered load per simulation point.
DEFAULT_DURATION_S = 10.0

MAX_BATCH = 20


@dataclass(frozen=True)
class ServingSystem:
    """A named (scheduler, cost table) pair."""

    name: str
    scheduler: BatchScheduler
    cost_table: CostTable

    def cost_fn(self, seq_len: int, batch: int) -> float:
        return self.cost_table.cost(seq_len, batch)


class ServingBench:
    """Builds the systems (warm-up profiling included) once, runs many rates."""

    def __init__(self, device: DeviceSpec = RTX_2060, max_batch: int = MAX_BATCH) -> None:
        self.device = device
        self.max_batch = max_batch
        graph = build_encoder_graph(bert_base())
        lengths = range(16, 513, 16)
        turbo_table = warmup_profile(
            turbo_runtime(graph=graph, device=device), max_batch, lengths
        )
        pytorch_table = warmup_profile(
            pytorch_runtime(graph=graph, device=device), max_batch, lengths
        )
        tf_table = warmup_profile(
            xla_runtime(graph=graph, device=device), max_batch, lengths
        )
        self.systems: List[ServingSystem] = [
            ServingSystem("TF-serving",
                          FixedPadScheduler(TFSERVING_PAD, TFSERVING_BATCH), tf_table),
            ServingSystem("PyTorch-NoBatch", NoBatchScheduler(), pytorch_table),
            ServingSystem("Turbo-NoBatch", NoBatchScheduler(), turbo_table),
            ServingSystem("Turbo-Naive-Batch", NaiveBatchScheduler(), turbo_table),
            # Pruned DP emits the identical partition to DPBatchScheduler
            # (property-tested) but prices batches from memoized per-length
            # rows — same figure, a fraction of the host time.
            ServingSystem("Turbo-DP-Batch", PrunedDPBatchScheduler(), turbo_table),
        ]

    def system(self, name: str) -> ServingSystem:
        for s in self.systems:
            if s.name == name:
                return s
        raise KeyError(f"unknown serving system {name!r}")

    def run_point(
        self, system: ServingSystem, rate: float,
        duration_s: float = DEFAULT_DURATION_S, seed: int = 0,
    ) -> ServingMetrics:
        requests = generate_requests(rate, duration_s, seed=seed)
        return simulate_serving(
            requests,
            system.scheduler,
            system.cost_fn,
            ServingConfig(max_batch=self.max_batch),
            duration_s=duration_s,
            system_name=system.name,
        )

    def run_sweep(
        self, rates: Sequence[float] = FIG12_RATES,
        duration_s: float = DEFAULT_DURATION_S, seed: int = 0,
    ) -> Dict[str, List[ServingMetrics]]:
        return {
            system.name: [
                self.run_point(system, rate, duration_s, seed) for rate in rates
            ]
            for system in self.systems
        }

    def saturation_throughput(
        self, system: ServingSystem, overload_rate: float = 400.0,
        duration_s: float = DEFAULT_DURATION_S, seed: int = 0,
    ) -> float:
        """Service capacity: responses/s sustained under heavy overload."""
        return self.run_point(system, overload_rate, duration_s, seed).response_throughput


def run_fig12(
    bench: Optional[ServingBench] = None,
    rates: Sequence[float] = FIG12_RATES,
    duration_s: float = DEFAULT_DURATION_S,
) -> Dict[str, List[ServingMetrics]]:
    bench = bench or ServingBench()
    return bench.run_sweep(rates, duration_s)


def run_table4(
    bench: Optional[ServingBench] = None,
    duration_s: float = DEFAULT_DURATION_S,
) -> Tuple[List[float], Dict[str, List[ServingMetrics]]]:
    """Latency table at the four Turbo/PyTorch systems' saturation rates.

    The paper's 60/98/120/144 req/s rows are its systems' saturation
    points with finite latency, i.e. the offered load sits just *below*
    each capacity; we therefore sample at 80% of the measured overload capacity (queue-depth
    effects make overload throughput exceed the stable-load capacity).
    """
    bench = bench or ServingBench()
    ordered = ["PyTorch-NoBatch", "Turbo-Naive-Batch", "Turbo-NoBatch", "Turbo-DP-Batch"]
    rates = [
        max(1, round(0.8 * bench.saturation_throughput(
            bench.system(name), duration_s=duration_s)))
        for name in ordered
    ]
    metrics = {
        name: [
            bench.run_point(bench.system(name), rate, duration_s) for rate in rates
        ]
        for name in ordered
    }
    return rates, metrics


def format_fig12(bench: Optional[ServingBench] = None) -> str:
    bench = bench or ServingBench()
    sweep = bench.run_sweep()
    rows = []
    for rate_idx, rate in enumerate(FIG12_RATES):
        cells: List[object] = [rate]
        for system in bench.systems:
            m = sweep[system.name][rate_idx]
            cells.append(f"{m.response_throughput:.0f}")
        rows.append(cells)
    return format_table(
        ["req/s"] + [s.name for s in bench.systems], rows
    )


def format_table4(bench: Optional[ServingBench] = None) -> str:
    bench = bench or ServingBench()
    rates, metrics = run_table4(bench)
    systems = list(metrics)
    rows = []
    for i, rate in enumerate(rates):
        cells: List[object] = [rate]
        for name in systems:
            m = metrics[name][i]
            cells.append("+inf" if m.saturated else m.latency.format_cell())
        rows.append(cells)
    return format_table(["req/s"] + systems, rows)
