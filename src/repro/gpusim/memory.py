"""Device global-memory accounting.

Tracks cudaMalloc/cudaFree traffic for the simulated device.  The memory
allocators in :mod:`repro.memory` sit on top of this: they request chunks
(or individual tensors, for the naive baseline) from a :class:`DeviceMemory`
and the experiments read footprint statistics from it (Fig. 7).

A ``cudaMalloc``/``cudaFree`` pair is not free: on a busy device it
synchronizes the stream.  The paper measures 50% idle time on an M40 from
exactly this effect, so each raw allocation charges a stall that the
allocation-efficiency experiments can observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Seconds one raw cudaMalloc or cudaFree stalls the device stream.
CUDA_MALLOC_STALL_S = 150e-6


class OutOfDeviceMemoryError(MemoryError):
    """Raised when an allocation would exceed the device's capacity."""


@dataclass
class DeviceMemory:
    """Byte-accurate cudaMalloc/cudaFree bookkeeping.

    Attributes
    ----------
    capacity_bytes:
        Total device memory (0 means unlimited, useful in unit tests).
    """

    capacity_bytes: int = 0
    allocated_bytes: int = 0
    peak_bytes: int = 0
    malloc_calls: int = 0
    free_calls: int = 0
    total_alloc_bytes: int = 0
    stall_s: float = 0.0
    _live: Dict[int, int] = field(default_factory=dict)
    _next_handle: int = 0

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes``; returns an opaque handle."""
        if nbytes <= 0:
            raise ValueError(f"allocation size must be positive, got {nbytes}")
        if self.capacity_bytes and self.allocated_bytes + nbytes > self.capacity_bytes:
            raise OutOfDeviceMemoryError(
                f"requested {nbytes} B with {self.allocated_bytes} B live "
                f"exceeds capacity {self.capacity_bytes} B"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._live[handle] = nbytes
        self.allocated_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.allocated_bytes)
        self.malloc_calls += 1
        self.total_alloc_bytes += nbytes
        self.stall_s += CUDA_MALLOC_STALL_S
        return handle

    def free(self, handle: int) -> None:
        """Release a handle returned by :meth:`malloc`."""
        try:
            nbytes = self._live.pop(handle)
        except KeyError:
            raise ValueError(f"handle {handle} is not a live allocation") from None
        self.allocated_bytes -= nbytes
        self.free_calls += 1
        self.stall_s += CUDA_MALLOC_STALL_S

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def reset_stats(self) -> None:
        """Zero the counters without touching live allocations."""
        self.peak_bytes = self.allocated_bytes
        self.malloc_calls = 0
        self.free_calls = 0
        self.total_alloc_bytes = 0
        self.stall_s = 0.0
