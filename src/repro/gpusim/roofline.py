"""Roofline analysis helpers: arithmetic intensity and kernel reports.

The optimization workflow the guides prescribe — measure before optimizing
— applied to the simulated device: classify every kernel of an inference
by arithmetic intensity against the device's roofline ridge point, and
report where the time goes.  Used by the profiling experiments and handy
for interactive exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .device import DeviceSpec
from .kernel import KernelTiming


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    time_s: float
    arithmetic_intensity: float  # useful FLOPs per byte (model-implied)
    memory_bound: bool

    @property
    def bound(self) -> str:
        return "memory" if self.memory_bound else "compute"


def ridge_point(device: DeviceSpec) -> float:
    """Arithmetic intensity (FLOP/byte) where compute and bandwidth meet."""
    return device.peak_fp32_flops / device.mem_bandwidth_bytes


def classify_kernels(
    device: DeviceSpec, timings: Sequence[KernelTiming]
) -> List[RooflinePoint]:
    """Place each kernel on the roofline.

    The model stores compute and memory *times*, so the implied intensity
    is ``(compute_s · peak) / (memory_s · bandwidth)`` scaled to the ridge:
    a kernel with compute_s == memory_s sits exactly at the ridge point.
    """
    points: List[RooflinePoint] = []
    for timing in timings:
        if timing.memory_s > 0:
            intensity = ridge_point(device) * (timing.compute_s / timing.memory_s)
        else:
            intensity = float("inf")
        points.append(
            RooflinePoint(
                name=timing.name,
                time_s=timing.total_s,
                arithmetic_intensity=intensity,
                memory_bound=timing.is_memory_bound,
            )
        )
    return points


@dataclass(frozen=True)
class RooflineReport:
    """Aggregate roofline view of one inference."""

    points: List[RooflinePoint]

    @property
    def total_s(self) -> float:
        return sum(p.time_s for p in self.points)

    @property
    def memory_bound_fraction(self) -> float:
        """Share of total time spent in memory-bound kernels."""
        if not self.points:
            return 0.0
        memory = sum(p.time_s for p in self.points if p.memory_bound)
        return memory / self.total_s

    def top_kernels(self, k: int = 5) -> List[RooflinePoint]:
        """The k most expensive kernels, descending."""
        return sorted(self.points, key=lambda p: -p.time_s)[:k]

    def render(self, k: int = 8) -> str:
        lines = [
            f"{'kernel':<42} {'time (us)':>10} {'AI (F/B)':>9} {'bound':>7}",
            "-" * 72,
        ]
        for p in self.top_kernels(k):
            ai = "inf" if p.arithmetic_intensity == float("inf") else \
                f"{p.arithmetic_intensity:.1f}"
            lines.append(
                f"{p.name[:42]:<42} {p.time_s * 1e6:>10.1f} {ai:>9} {p.bound:>7}"
            )
        lines.append(
            f"total {self.total_s * 1e3:.3f} ms, "
            f"{self.memory_bound_fraction * 100:.0f}% in memory-bound kernels"
        )
        return "\n".join(lines)


def roofline_report(device: DeviceSpec, timings: Sequence[KernelTiming]
                    ) -> RooflineReport:
    """Build a roofline report from one inference's kernel timings."""
    return RooflineReport(points=classify_kernels(device, timings))
