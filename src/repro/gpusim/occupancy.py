"""CUDA occupancy calculator.

Formalizes the block-geometry choices the reduction model makes: given a
kernel's per-thread register use, per-block shared memory and block size,
how many blocks can one SM keep resident?  The limiting resource explains
*why* the framework kernels run at one block per SM (shared-memory bound)
while the Turbo kernels reach full thread occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec

#: Volta/Turing per-SM resource pools.
REGISTERS_PER_SM = 65536
SHARED_MEMORY_PER_SM = 96 * 1024
MAX_BLOCKS_PER_SM = 32
#: Register allocation granularity (per warp).
REGISTER_GRANULARITY = 256


@dataclass(frozen=True)
class KernelResources:
    """Per-kernel resource requirements."""

    block_threads: int
    registers_per_thread: int = 32
    shared_memory_bytes: int = 0

    def __post_init__(self) -> None:
        if self.block_threads <= 0:
            raise ValueError(f"block_threads must be positive, got {self.block_threads}")
        if self.registers_per_thread <= 0:
            raise ValueError(
                f"registers_per_thread must be positive, got {self.registers_per_thread}"
            )
        if self.shared_memory_bytes < 0:
            raise ValueError(
                f"shared_memory_bytes must be >= 0, got {self.shared_memory_bytes}"
            )


@dataclass(frozen=True)
class OccupancyResult:
    """Residency outcome with the limiting resource identified."""

    blocks_per_sm: int
    limiter: str  # "threads" | "registers" | "shared_memory" | "blocks"
    active_threads: int
    occupancy: float  # active threads / max threads


def occupancy(device: DeviceSpec, kernel: KernelResources) -> OccupancyResult:
    """Blocks of ``kernel`` one SM can keep resident, and what limits it."""
    warps = -(-kernel.block_threads // device.warp_size)
    regs_per_warp = (
        -(-kernel.registers_per_thread * device.warp_size // REGISTER_GRANULARITY)
        * REGISTER_GRANULARITY
    )
    regs_per_block = regs_per_warp * warps

    limits = {
        "threads": device.max_threads_per_sm // kernel.block_threads,
        "registers": REGISTERS_PER_SM // regs_per_block,
        "blocks": MAX_BLOCKS_PER_SM,
    }
    if kernel.shared_memory_bytes > 0:
        limits["shared_memory"] = SHARED_MEMORY_PER_SM // kernel.shared_memory_bytes
    blocks = min(limits.values())
    # Deterministic limiter attribution (ties broken by a fixed order).
    limiter = min(
        sorted(limits),
        key=lambda name: (limits[name], ["threads", "registers",
                                         "shared_memory", "blocks"].index(name)),
    )
    blocks = max(0, blocks)
    active = blocks * kernel.block_threads
    return OccupancyResult(
        blocks_per_sm=blocks,
        limiter=limiter,
        active_threads=active,
        occupancy=active / device.max_threads_per_sm,
    )


def device_resident_blocks(device: DeviceSpec, kernel: KernelResources) -> int:
    """Device-wide concurrent blocks (per-SM residency x SM count)."""
    return occupancy(device, kernel).blocks_per_sm * device.num_sms
