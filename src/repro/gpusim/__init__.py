"""Simulated-GPU substrate: device specs, warp model, kernel roofline.

This package stands in for the physical CUDA devices of the paper's
evaluation (see DESIGN.md §2).  Everything here is a pure function of the
inputs — no randomness, no wall clock — so every experiment built on it is
bit-reproducible.
"""

from .device import RTX_2060, TESLA_M40, TESLA_V100, DeviceSpec, get_device
from .kernel import (
    FP32_BYTES,
    KernelTiming,
    elementwise_time,
    gemm_time,
    gemm_utilization,
    memcpy_time,
)
from .memory import CUDA_MALLOC_STALL_S, DeviceMemory, OutOfDeviceMemoryError
from .occupancy import (
    KernelResources,
    OccupancyResult,
    device_resident_blocks,
    occupancy,
)
from .pipeline import Instruction, schedule, simulate_warp_allreduce
from .multistream import (
    DeviceSync,
    EventRecord,
    EventWait,
    KernelLaunch,
    OpTiming,
    ScheduleTiming,
    StreamSchedule,
    execute_schedule,
)
from .roofline import RooflinePoint, RooflineReport, ridge_point, roofline_report
from .reduction import (
    ReductionImpl,
    layernorm_time,
    reduction_speedup,
    softmax_time,
)
from .stream import Stream
from .warp import (
    boundary_divergence_cycles,
    reduction_levels,
    smem_tree_reduce_cycles,
    warp_allreduce_cycles,
    warp_allreduce_cycles_per_row,
)

__all__ = [
    "DeviceSpec",
    "get_device",
    "TESLA_V100",
    "RTX_2060",
    "TESLA_M40",
    "KernelTiming",
    "gemm_time",
    "gemm_utilization",
    "elementwise_time",
    "memcpy_time",
    "FP32_BYTES",
    "DeviceMemory",
    "OutOfDeviceMemoryError",
    "CUDA_MALLOC_STALL_S",
    "KernelResources",
    "OccupancyResult",
    "occupancy",
    "device_resident_blocks",
    "Instruction",
    "schedule",
    "simulate_warp_allreduce",
    "RooflinePoint",
    "RooflineReport",
    "ridge_point",
    "roofline_report",
    "ReductionImpl",
    "softmax_time",
    "layernorm_time",
    "reduction_speedup",
    "Stream",
    "StreamSchedule",
    "KernelLaunch",
    "EventRecord",
    "EventWait",
    "DeviceSync",
    "OpTiming",
    "ScheduleTiming",
    "execute_schedule",
    "warp_allreduce_cycles",
    "warp_allreduce_cycles_per_row",
    "smem_tree_reduce_cycles",
    "boundary_divergence_cycles",
    "reduction_levels",
]
