"""Device specifications for the simulated GPU.

The reproduction has no physical GPU, so every latency in this repository is
derived from a :class:`DeviceSpec`: a small, published-spec-sheet description
of a CUDA device (streaming multiprocessors, clock, memory bandwidth, peak
FLOP rate, launch overhead and a handful of micro-architectural constants
used by the warp-level reduction model).

The three presets correspond to the three cards used in the paper's
evaluation: Tesla V100 (kernel experiments, Fig. 5 / Table 2 / Fig. 11),
GeForce RTX 2060 (runtime + serving experiments, Fig. 8/10/11/12, Table 4)
and Tesla M40 (the allocation-stall anecdote in Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Immutable description of a simulated CUDA device.

    Attributes
    ----------
    name:
        Marketing name, used in experiment output.
    num_sms:
        Number of streaming multiprocessors.
    clock_ghz:
        Sustained SM clock in GHz; converts cycles to seconds.
    mem_bandwidth_gbs:
        Achievable global-memory bandwidth in GB/s (we use ~80% of the
        spec-sheet peak, which is what well-tuned kernels reach).
    peak_fp32_tflops:
        Peak single-precision throughput in TFLOP/s.
    kernel_launch_us:
        Host-side latency of launching one CUDA kernel, in microseconds.
        This term dominates small-workload inference (the paper reports the
        GPU 80.64% idle for batch 1 / seq 40 under PyTorch).
    warp_size:
        Threads per warp (32 on every NVIDIA architecture).
    max_threads_per_sm:
        Resident-thread capacity of one SM; bounds occupancy.
    shuffle_latency_cycles:
        Result latency of one ``__shfl_down_sync``: the number of cycles
        before a dependent instruction may consume its output register.
    alu_latency_cycles:
        Result latency of one FP32 add (FADD).
    issue_cycles:
        Cycles needed to *issue* one instruction from a warp scheduler.
        Independent instructions can be issued back-to-back at this rate,
        which is the property the paper's XElem batching exploits.
    sync_cycles:
        Cost of a block-wide ``__syncthreads`` barrier.
    smem_latency_cycles:
        Shared-memory access latency (load or store).
    divergence_penalty_cycles:
        Extra cycles charged when a warp's lanes diverge at a row boundary
        that is not 32-aligned.
    """

    name: str
    num_sms: int
    clock_ghz: float
    mem_bandwidth_gbs: float
    peak_fp32_tflops: float
    kernel_launch_us: float = 5.0
    warp_size: int = 32
    max_threads_per_sm: int = 2048
    shuffle_latency_cycles: int = 22
    alu_latency_cycles: int = 4
    issue_cycles: int = 1
    sync_cycles: int = 40
    smem_latency_cycles: int = 25
    divergence_penalty_cycles: int = 12

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.mem_bandwidth_gbs <= 0:
            raise ValueError(
                f"mem_bandwidth_gbs must be positive, got {self.mem_bandwidth_gbs}"
            )
        if self.peak_fp32_tflops <= 0:
            raise ValueError(
                f"peak_fp32_tflops must be positive, got {self.peak_fp32_tflops}"
            )
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError(f"warp_size must be a power of two, got {self.warp_size}")

    # -- unit helpers ------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert SM cycles to wall-clock seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to SM cycles."""
        return seconds * self.clock_ghz * 1e9

    @property
    def launch_overhead_s(self) -> float:
        """Kernel launch overhead in seconds."""
        return self.kernel_launch_us * 1e-6

    @property
    def peak_fp32_flops(self) -> float:
        """Peak FP32 rate in FLOP/s."""
        return self.peak_fp32_tflops * 1e12

    @property
    def mem_bandwidth_bytes(self) -> float:
        """Memory bandwidth in bytes/s."""
        return self.mem_bandwidth_gbs * 1e9

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a copy with selected fields replaced (for ablations)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: Tesla V100-SXM2 (Volta): the paper's kernel-benchmark device.
TESLA_V100 = DeviceSpec(
    name="Tesla V100",
    num_sms=80,
    clock_ghz=1.53,
    mem_bandwidth_gbs=720.0,  # ~80% of the 900 GB/s HBM2 peak
    peak_fp32_tflops=15.7,
    kernel_launch_us=4.0,
)

#: GeForce RTX 2060 (Turing): the paper's runtime/serving device.
RTX_2060 = DeviceSpec(
    name="RTX 2060",
    num_sms=30,
    clock_ghz=1.68,
    mem_bandwidth_gbs=270.0,  # ~80% of the 336 GB/s GDDR6 peak
    peak_fp32_tflops=6.5,
    kernel_launch_us=5.0,
)

#: Tesla M40 (Maxwell): used for the allocation-stall measurement in §4.2.
TESLA_M40 = DeviceSpec(
    name="Tesla M40",
    num_sms=24,
    clock_ghz=1.11,
    mem_bandwidth_gbs=230.0,  # ~80% of the 288 GB/s GDDR5 peak
    peak_fp32_tflops=6.8,
    kernel_launch_us=6.0,
)

_PRESETS = {
    "v100": TESLA_V100,
    "tesla_v100": TESLA_V100,
    "rtx2060": RTX_2060,
    "rtx_2060": RTX_2060,
    "2060": RTX_2060,
    "m40": TESLA_M40,
    "tesla_m40": TESLA_M40,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by a case-insensitive short name.

    >>> get_device("V100").num_sms
    80
    """
    key = name.strip().lower().replace(" ", "_").replace("-", "_")
    try:
        return _PRESETS[key]
    except KeyError:
        known = sorted(set(_PRESETS))
        raise KeyError(f"unknown device {name!r}; known presets: {known}") from None
