"""Roofline-style kernel cost model.

Each simulated CUDA kernel is priced as::

    total = launch_overhead + max(compute_time, memory_time)

which is the classical roofline: a kernel is either compute-bound or
bandwidth-bound, and every kernel pays the host launch latency.  GEMM
efficiency additionally degrades for small problems that cannot fill the
device (this is what makes batching profitable, Fig. 8, and what makes the
per-kernel launch overhead dominate tiny inferences, §4.1.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec

#: Bytes per FP32 element; the paper's systems serve FP32 models.
FP32_BYTES = 4

#: Fraction of peak FLOPs a well-tuned large GEMM sustains (cuBLAS-like).
GEMM_PEAK_EFFICIENCY = 0.75

#: GEMM tile edge used for utilization estimates (threadblock tile).
GEMM_TILE = 64

#: Fraction of peak FLOPs elementwise kernels can sustain (no FMA chains).
ELEMENTWISE_PEAK_EFFICIENCY = 0.25


@dataclass(frozen=True)
class KernelTiming:
    """Cost breakdown of one simulated kernel launch.

    ``total_s`` is what callers should accumulate; the components are kept
    for profiling experiments (Table 2 attributes time per kernel kind).
    """

    name: str
    launch_s: float
    compute_s: float
    memory_s: float

    def __post_init__(self) -> None:
        for field in ("launch_s", "compute_s", "memory_s"):
            value = getattr(self, field)
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{field} must be finite and >= 0, got {value}")

    @property
    def device_s(self) -> float:
        """On-device execution time (roofline max of compute and memory)."""
        return max(self.compute_s, self.memory_s)

    @property
    def total_s(self) -> float:
        """Launch overhead plus on-device time."""
        return self.launch_s + self.device_s

    @property
    def is_memory_bound(self) -> bool:
        return self.memory_s >= self.compute_s

    def trace_args(self) -> dict:
        """Attribute dict for this kernel's timeline event (Chrome trace
        ``args``): the roofline breakdown, in microseconds for readability."""
        return {
            "launch_us": self.launch_s * 1e6,
            "compute_us": self.compute_s * 1e6,
            "memory_us": self.memory_s * 1e6,
            "bound": "memory" if self.is_memory_bound else "compute",
        }

    def scaled(self, factor: float) -> "KernelTiming":
        """Return a copy with device time scaled (used for baseline derates)."""
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return KernelTiming(
            name=self.name,
            launch_s=self.launch_s,
            compute_s=self.compute_s * factor,
            memory_s=self.memory_s * factor,
        )

    def stalled(self, factor: float) -> "KernelTiming":
        """Return a copy slowed by a fault-injected stall.

        Unlike :meth:`scaled` (a device derate that leaves host launch
        overhead alone), a stall delays the whole launch — a wedged SM or
        preempted context holds up host progress too — so every component
        is stretched.  ``factor`` must be >= 1 (stalls never speed up).
        """
        if factor < 1.0:
            raise ValueError(f"stall factor must be >= 1, got {factor}")
        if factor == 1.0:
            return self
        return KernelTiming(
            name=self.name,
            launch_s=self.launch_s * factor,
            compute_s=self.compute_s * factor,
            memory_s=self.memory_s * factor,
        )


def gemm_utilization(device: DeviceSpec, m: int, n: int, batch: int = 1) -> float:
    """Fraction of peak a GEMM of output shape (m, n) x batch achieves.

    A GEMM is decomposed into ``GEMM_TILE``-square output tiles; one SM
    keeps roughly two tiles in flight.  Efficiency rises with the square
    root of the fill ratio (partial waves still overlap memory and math)
    and saturates at 1 — this soft curve is what makes batching profitable
    for short sequences (Fig. 8) while long single requests already run
    near peak.
    """
    tiles = math.ceil(m / GEMM_TILE) * math.ceil(n / GEMM_TILE) * batch
    slots = 2 * device.num_sms
    return min(1.0, math.sqrt(tiles / slots))


def gemm_time(
    device: DeviceSpec,
    m: int,
    n: int,
    k: int,
    batch: int = 1,
    name: str = "gemm",
    elem_bytes: int = FP32_BYTES,
) -> KernelTiming:
    """Price a (possibly batched) GEMM: C[m,n] += A[m,k] @ B[k,n].

    ``elem_bytes`` selects the precision: 4 for FP32 (the paper's serving
    mode), 2 for FP16 — halving traffic and doubling the arithmetic rate
    (packed half2 math), the extension benchmarked in
    ``benchmarks/test_extension_fp16.py``.
    """
    if min(m, n, k, batch) <= 0:
        raise ValueError(f"GEMM dims must be positive, got m={m} n={n} k={k} batch={batch}")
    _check_elem_bytes(elem_bytes)
    flops = 2.0 * m * n * k * batch
    bytes_moved = elem_bytes * batch * (m * k + k * n + m * n)
    efficiency = GEMM_PEAK_EFFICIENCY * gemm_utilization(device, m, n, batch)
    rate = device.peak_fp32_flops * (FP32_BYTES / elem_bytes)
    compute_s = flops / (rate * efficiency)
    memory_s = bytes_moved / device.mem_bandwidth_bytes
    return KernelTiming(
        name=name,
        launch_s=device.launch_overhead_s,
        compute_s=compute_s,
        memory_s=memory_s,
    )


def _check_elem_bytes(elem_bytes: int) -> None:
    if elem_bytes not in (2, 4):
        raise ValueError(f"elem_bytes must be 2 (FP16) or 4 (FP32), got {elem_bytes}")


def elementwise_time(
    device: DeviceSpec,
    nelems: int,
    reads: int = 1,
    writes: int = 1,
    flops_per_elem: float = 1.0,
    name: str = "elementwise",
    elem_bytes: int = FP32_BYTES,
) -> KernelTiming:
    """Price an elementwise kernel touching ``nelems`` values.

    ``reads``/``writes`` count full passes over the data; fusing kernels is
    modeled exactly as reducing these pass counts (and the launch count).
    """
    if nelems <= 0:
        raise ValueError(f"nelems must be positive, got {nelems}")
    if reads < 0 or writes < 0 or reads + writes == 0:
        raise ValueError(f"need at least one memory pass, got reads={reads} writes={writes}")
    _check_elem_bytes(elem_bytes)
    bytes_moved = elem_bytes * nelems * (reads + writes)
    compute_s = (nelems * flops_per_elem) / (
        device.peak_fp32_flops * ELEMENTWISE_PEAK_EFFICIENCY
    )
    memory_s = bytes_moved / device.mem_bandwidth_bytes
    return KernelTiming(
        name=name,
        launch_s=device.launch_overhead_s,
        compute_s=compute_s,
        memory_s=memory_s,
    )


def memcpy_time(device: DeviceSpec, nbytes: int, name: str = "memcpy") -> KernelTiming:
    """Price a device-to-device copy of ``nbytes`` (read + write traffic)."""
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    return KernelTiming(
        name=name,
        launch_s=device.launch_overhead_s,
        compute_s=0.0,
        memory_s=2.0 * nbytes / device.mem_bandwidth_bytes,
    )
