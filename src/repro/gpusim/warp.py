"""Warp-level instruction timing model.

This module prices the *inner loop* of GPU batch-reduction kernels: the
shuffle-based warp reduction that both FasterTransformer's classical
implementation and TurboTransformers' ``warpAllReduceSum_XElem`` are built
from (paper Fig. 4).

A warp reduction over 32 lanes takes ``log2(32) = 5`` tree levels.  At each
level a lane executes ``SHFL_DOWN`` followed by ``FADD``; the ``FADD`` cannot
issue until the shuffle's target register is ready, so a *single* reduction
is latency-bound:

    level cost = shuffle_latency + alu_latency          (X = 1)

The paper's observation is that reducing ``X`` independent rows *together*
interleaves ``X`` dependence chains.  While chain ``i`` waits on its shuffle
result, the scheduler issues the shuffle of chain ``i+1``, so the latency of
one chain hides the issue slots of the others:

    total(X) = 5 * (shuffle_latency + alu_latency) + (X-1) * 5 * 2 * issue
    per-row(X) = total(X) / X                           (≈ 1/X for small X)

These closed forms are what :func:`warp_allreduce_cycles` returns, and the
whole Fig. 5 reproduction rests on them.
"""

from __future__ import annotations

import math

from .device import DeviceSpec


def reduction_levels(warp_size: int) -> int:
    """Number of butterfly levels for a full-warp shuffle reduction."""
    if warp_size <= 0 or warp_size & (warp_size - 1):
        raise ValueError(f"warp_size must be a power of two, got {warp_size}")
    return int(math.log2(warp_size))


_ALLREDUCE_CACHE: dict = {}


def warp_allreduce_cycles(device: DeviceSpec, x_elems: int = 1) -> float:
    """Cycles for one warp to reduce ``x_elems`` independent rows together.

    ``x_elems = 1`` is the classical FasterTransformer ``warpReduceSum``:
    every ``FADD`` stalls on the preceding ``SHFL_DOWN`` for its full result
    latency.  ``x_elems >= 2`` is ``warpAllReduceSum_XElem``: the ``X``
    dependence chains are interleaved so the scheduler issues chain
    ``i+1``'s shuffle while chain ``i`` waits on its result.

    The number comes from the instruction-level scoreboard in
    :mod:`repro.gpusim.pipeline`, which schedules the actual Fig. 4
    instruction stream.  The closed-form upper bound
    ``levels * (chain_latency + (X-1) * 2 * issue)`` is available as
    :func:`warp_allreduce_cycles_bound`.

    Returns the *total* cycles to finish all ``x_elems`` reductions; divide
    by ``x_elems`` for the amortized per-row cost.
    """
    if x_elems < 1:
        raise ValueError(f"x_elems must be >= 1, got {x_elems}")
    key = (device.warp_size, device.shuffle_latency_cycles,
           device.alu_latency_cycles, device.issue_cycles, x_elems)
    cached = _ALLREDUCE_CACHE.get(key)
    if cached is None:
        from .pipeline import simulate_warp_allreduce

        cached = float(simulate_warp_allreduce(device, x_elems))
        _ALLREDUCE_CACHE[key] = cached
    return cached


def warp_allreduce_cycles_bound(device: DeviceSpec, x_elems: int = 1) -> float:
    """Closed-form upper bound on :func:`warp_allreduce_cycles`.

    Per butterfly level the critical chain pays its full SHFL->FADD
    latency and every additional chain adds two issue slots.  Exact at
    ``x_elems = 1``; conservative for larger X, where the scoreboard shows
    extra issue slots hide inside the latency window.
    """
    if x_elems < 1:
        raise ValueError(f"x_elems must be >= 1, got {x_elems}")
    levels = reduction_levels(device.warp_size)
    chain_latency = device.shuffle_latency_cycles + device.alu_latency_cycles
    per_level = chain_latency + (x_elems - 1) * 2 * device.issue_cycles
    return levels * per_level


def warp_allreduce_cycles_per_row(device: DeviceSpec, x_elems: int = 1) -> float:
    """Amortized cycles per reduced row (see :func:`warp_allreduce_cycles`)."""
    return warp_allreduce_cycles(device, x_elems) / x_elems


def smem_tree_reduce_cycles(device: DeviceSpec, block_threads: int) -> float:
    """Cycles for a shared-memory tree reduction across a thread block.

    This is the pre-Kepler style reduction (no warp shuffles): ``log2(T)``
    halving steps, each performing a shared-memory load + add + store and a
    block-wide barrier.  We use it to model the generic cuDNN softmax and
    the unoptimized PyTorch reduction kernels that the paper measures
    against (Table 2 "before", Fig. 5 cuDNN series).
    """
    if block_threads <= 0:
        raise ValueError(f"block_threads must be positive, got {block_threads}")
    steps = max(1, int(math.ceil(math.log2(block_threads))))
    per_step = (
        2 * device.smem_latency_cycles  # load partial + store result
        + device.alu_latency_cycles
        + device.sync_cycles  # barrier between halving steps
    )
    return steps * per_step


def boundary_divergence_cycles(
    device: DeviceSpec, row_length: int, rows_merged: int = 1
) -> float:
    """Divergence penalty for rows whose length is not warp-aligned.

    Classical kernels pay the boundary-handling branch once per row
    (``rows_merged = 1``).  ``warpAllReduceSum_XElem`` merges the boundary
    processing of ``X`` rows into a single predicated region, so the
    penalty is amortized over ``rows_merged`` rows.  Returns the *per-row*
    cost.
    """
    if row_length <= 0:
        raise ValueError(f"row_length must be positive, got {row_length}")
    if rows_merged < 1:
        raise ValueError(f"rows_merged must be >= 1, got {rows_merged}")
    if row_length % device.warp_size == 0:
        return 0.0
    return device.divergence_penalty_cycles / rows_merged
