"""Batch-reduction kernel timing: Softmax and LayerNorm (paper §4.1.2).

Both kernels reduce a batch of independent 1-D rows:

* **Softmax** over attention scores: ``rows = batch * heads * seq_len``,
  ``row_len = seq_len`` — a max-reduction followed by a sum-reduction with
  elementwise ``exp``/divide in between.
* **LayerNorm** over hidden states: ``rows = batch * seq_len``,
  ``row_len = hidden_size`` — mean and variance reductions followed by an
  elementwise normalize.

Four implementations are priced (all share the same roofline memory term;
they differ in the compute/synchronization cycles the block spends):

``TURBO``
    The paper's contribution.  Softmax batches ``x_elems`` rows through
    ``warpAllReduceSum_XElem`` (one sync and one boundary region per group,
    interleaved shuffle chains).  LayerNorm additionally uses the
    ``Var(x) = E(x²) − E²(x)`` identity (Eq. 1) to fuse the mean and
    variance reductions into a single 2-element batched pass.
``FASTER_TRANSFORMER``
    Classical two-pass shuffle block reduction, one row at a time,
    one sync per pass, per-row boundary handling, latency-bound shuffles.
    LayerNorm does two *separate* reductions (x, then x − E(x)).
``CUDNN``
    Generic shared-memory tree reduction (no warp shuffles); baseline for
    the softmax series in Fig. 5.
``PYTORCH``
    Same tree reduction plus un-fused data movement (intermediates round-trip
    through global memory); this is the "before" column of Table 2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import FP32_BYTES, KernelTiming
from .warp import (
    boundary_divergence_cycles,
    smem_tree_reduce_cycles,
    warp_allreduce_cycles,
)

#: Approximate SM cycles to evaluate `exp` through the SFU pipeline.
EXP_CYCLES = 16
#: Cycles for a plain FP32 arithmetic op issued by one thread.
ARITH_CYCLES = 4
#: Maximum thread-block size used by the reduction kernels.
MAX_BLOCK_THREADS = 1024


class ReductionImpl(str, enum.Enum):
    """Which system's batch-reduction kernel is being priced."""

    TURBO = "turbo"
    FASTER_TRANSFORMER = "faster_transformer"
    CUDNN = "cudnn"
    PYTORCH = "pytorch"


@dataclass(frozen=True)
class BlockGeometry:
    """Thread-block shape chosen for a given row length."""

    threads: int
    warps: int
    blocks_resident: int  # device-wide concurrent blocks

    @classmethod
    def for_row(cls, device: DeviceSpec, row_len: int) -> "BlockGeometry":
        if row_len <= 0:
            raise ValueError(f"row_len must be positive, got {row_len}")
        threads = min(
            MAX_BLOCK_THREADS,
            math.ceil(row_len / device.warp_size) * device.warp_size,
        )
        warps = threads // device.warp_size
        per_sm = max(1, device.max_threads_per_sm // threads)
        return cls(threads=threads, warps=warps, blocks_resident=per_sm * device.num_sms)


def _block_reduce_cycles(
    device: DeviceSpec,
    geometry: BlockGeometry,
    row_len: int,
    x_elems: int,
) -> float:
    """Cycles for one two-pass shuffle block reduction of ``x_elems`` chains.

    Pass 1: every warp reduces its lanes (``x_elems`` interleaved chains);
    partials go to shared memory behind a barrier.  Pass 2 (only if the
    block has more than one warp): warp 0 reduces the partials, and the
    result is broadcast behind a second barrier.
    """
    cycles = warp_allreduce_cycles(device, x_elems)
    cycles += device.smem_latency_cycles + device.sync_cycles
    if geometry.warps > 1:
        cycles += warp_allreduce_cycles(device, x_elems)
        cycles += device.smem_latency_cycles + device.sync_cycles
    cycles += boundary_divergence_cycles(device, row_len) * x_elems
    return cycles


def _accumulate_cycles(geometry: BlockGeometry, row_len: int, rows: int = 1) -> float:
    """Cycles spent on the strided per-thread accumulation loads."""
    iters = math.ceil(row_len / geometry.threads)
    return iters * ARITH_CYCLES * rows


def _waves(rows_groups: int, geometry: BlockGeometry) -> int:
    """Full device waves needed to run ``rows_groups`` thread blocks."""
    return max(1, math.ceil(rows_groups / geometry.blocks_resident))


def _elementwise_row_cycles(geometry: BlockGeometry, row_len: int, op_cycles: float) -> float:
    """Cycles for an elementwise sweep over one row by the whole block."""
    iters = math.ceil(row_len / geometry.threads)
    return iters * op_cycles


def _compute_seconds(device: DeviceSpec, per_group_cycles: float, groups: int,
                     geometry: BlockGeometry) -> float:
    return device.cycles_to_seconds(_waves(groups, geometry) * per_group_cycles)


#: Thread-block size the framework (PyTorch) reduction kernels launch with.
PYTORCH_BLOCK_THREADS = 128


def _pytorch_geometry(device: DeviceSpec, row_len: int) -> BlockGeometry:
    """Framework-kernel geometry: fixed small blocks, one resident per SM.

    The generic kernels are shared-memory bound, limiting residency to a
    single block per SM regardless of block size — the occupancy problem
    the paper's Table 2 "before" columns expose.
    """
    if row_len <= 0:
        raise ValueError(f"row_len must be positive, got {row_len}")
    threads = min(PYTORCH_BLOCK_THREADS,
                  math.ceil(row_len / device.warp_size) * device.warp_size)
    return BlockGeometry(
        threads=threads,
        warps=threads // device.warp_size,
        blocks_resident=device.num_sms,
    )


def _reduction_timing(
    name: str, device: DeviceSpec, stall_s: float, memory_s: float
) -> KernelTiming:
    """Assemble a reduction kernel's timing.

    Unlike streaming kernels, a reduction's barrier/shuffle stalls do NOT
    overlap its memory traffic — while a block sits at ``__syncthreads`` or
    in a dependent shuffle chain it issues no loads — so device time is the
    *sum* of traffic and stall.  Encoded as ``compute_s = memory + stall``
    so that ``KernelTiming.device_s`` (a max) yields the additive total;
    ``memory_s`` still reports pure traffic for attribution.
    """
    return KernelTiming(
        name=name,
        launch_s=device.launch_overhead_s,
        compute_s=memory_s + stall_s,
        memory_s=memory_s,
    )


def softmax_time(
    device: DeviceSpec,
    rows: int,
    row_len: int,
    impl: ReductionImpl = ReductionImpl.TURBO,
    x_elems: int = 2,
    elem_bytes: int = FP32_BYTES,
) -> KernelTiming:
    """Price a batched softmax kernel: ``rows`` independent rows of ``row_len``.

    The kernel computes ``max`` per row, then ``exp(x - max)``, then ``sum``
    per row, then the divide — two sequential reductions with elementwise
    work between them.
    """
    if rows <= 0 or row_len <= 0:
        raise ValueError(f"rows and row_len must be positive, got {rows}, {row_len}")
    if x_elems < 1:
        raise ValueError(f"x_elems must be >= 1, got {x_elems}")
    if impl is ReductionImpl.PYTORCH:
        geometry = _pytorch_geometry(device, row_len)
    else:
        geometry = BlockGeometry.for_row(device, row_len)

    # Elementwise component shared by every implementation: subtract + exp,
    # then divide, swept over the row once each.
    elem_cycles = _elementwise_row_cycles(
        geometry, row_len, EXP_CYCLES + ARITH_CYCLES
    ) + _elementwise_row_cycles(geometry, row_len, ARITH_CYCLES)

    if impl is ReductionImpl.TURBO:
        # x_elems rows share one block, one boundary region, one sync set.
        group_rows = x_elems
        reduce_cycles = 2 * _block_reduce_cycles(device, geometry, row_len, x_elems)
        group_cycles = (
            reduce_cycles
            + _accumulate_cycles(geometry, row_len, rows=group_rows) * 2
            + elem_cycles * group_rows
        )
        memory_passes = 3  # read for max+exp (cached), read for sum, write out
    elif impl is ReductionImpl.FASTER_TRANSFORMER:
        group_rows = 1
        reduce_cycles = 2 * _block_reduce_cycles(device, geometry, row_len, 1)
        group_cycles = (
            reduce_cycles + _accumulate_cycles(geometry, row_len) * 2 + elem_cycles
        )
        # Without the XElem batching the row cannot stay in registers across
        # the max and sum stages when the block cycles through rows one at a
        # time, so the classical kernel re-reads the row once more.
        memory_passes = 4
    elif impl is ReductionImpl.CUDNN:
        group_rows = 1
        reduce_cycles = 2 * smem_tree_reduce_cycles(device, geometry.threads)
        group_cycles = (
            reduce_cycles + _accumulate_cycles(geometry, row_len) * 2 + elem_cycles
        )
        # Generic library kernel: no register caching across the max and
        # sum stages, so the row is re-read per stage and the shifted
        # exponentials spill to global memory between stages.
        memory_passes = 10
    elif impl is ReductionImpl.PYTORCH:
        # The framework kernel: fixed 128-thread blocks, shared-memory tree
        # reductions, one resident block per SM (shared-memory bound), and
        # the max/exp/sum/div stages round-tripping through global memory.
        group_rows = 1
        reduce_cycles = 2 * smem_tree_reduce_cycles(device, geometry.threads)
        group_cycles = (
            reduce_cycles + _accumulate_cycles(geometry, row_len) * 2 + elem_cycles
        )
        # 8 logical passes (max / sub+exp / sum / div through global memory)
        # at ~4x effective traffic from uncoalesced inner-dim strides — the
        # pathology behind the 90.68% softmax share of Table 2.
        memory_passes = 40
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown impl {impl!r}")

    groups = math.ceil(rows / group_rows)
    stall_s = _compute_seconds(device, group_cycles, groups, geometry)
    memory_s = elem_bytes * rows * row_len * memory_passes / device.mem_bandwidth_bytes
    return _reduction_timing(f"softmax[{impl.value}]", device, stall_s, memory_s)


def layernorm_time(
    device: DeviceSpec,
    rows: int,
    row_len: int,
    impl: ReductionImpl = ReductionImpl.TURBO,
    one_pass_variance: bool | None = None,
    elem_bytes: int = FP32_BYTES,
) -> KernelTiming:
    """Price a batched LayerNorm kernel.

    ``one_pass_variance`` selects the Eq. 1 trick (reduce ``x`` and ``x²``
    together as a 2-element batch).  It defaults to True for ``TURBO`` and
    False otherwise; pass it explicitly to ablate the trick in isolation.
    """
    if rows <= 0 or row_len <= 0:
        raise ValueError(f"rows and row_len must be positive, got {rows}, {row_len}")
    if impl is ReductionImpl.PYTORCH:
        geometry = _pytorch_geometry(device, row_len)
    else:
        geometry = BlockGeometry.for_row(device, row_len)
    if one_pass_variance is None:
        one_pass_variance = impl is ReductionImpl.TURBO

    # Elementwise normalize: (x - mean) * rstd * gamma + beta  (~4 ops/elem).
    elem_cycles = _elementwise_row_cycles(geometry, row_len, 4 * ARITH_CYCLES)

    if impl in (ReductionImpl.TURBO, ReductionImpl.FASTER_TRANSFORMER):
        if one_pass_variance:
            # Single pass reducing (x, x²) as two interleaved chains.
            reduce_cycles = _block_reduce_cycles(device, geometry, row_len, 2)
            accum = _accumulate_cycles(geometry, row_len) * 2  # x and x*x
        else:
            # Mean pass, barrier, then variance pass over (x - mean)².
            reduce_cycles = 2 * _block_reduce_cycles(device, geometry, row_len, 1)
            accum = _accumulate_cycles(geometry, row_len) * 2
        group_cycles = reduce_cycles + accum + elem_cycles
        memory_passes = 3 if one_pass_variance else 4
    elif impl in (ReductionImpl.CUDNN, ReductionImpl.PYTORCH):
        reduce_passes = 1 if one_pass_variance else 2
        reduce_cycles = (
            reduce_passes * smem_tree_reduce_cycles(device, geometry.threads) * 2
        )
        group_cycles = (
            reduce_cycles + _accumulate_cycles(geometry, row_len) * 2 + elem_cycles
        )
        # PyTorch's pre-fused LayerNorm decomposes into mean/var/normalize
        # kernels whose intermediates round-trip through global memory.
        memory_passes = 8 if impl is ReductionImpl.CUDNN else 20
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown impl {impl!r}")

    stall_s = _compute_seconds(device, group_cycles, rows, geometry)
    memory_s = elem_bytes * rows * row_len * memory_passes / device.mem_bandwidth_bytes
    return _reduction_timing(f"layernorm[{impl.value}]", device, stall_s, memory_s)


def reduction_speedup(
    device: DeviceSpec,
    rows: int,
    row_len: int,
    kernel: str,
    baseline: ReductionImpl,
    x_elems: int = 2,
) -> float:
    """Speedup of the Turbo kernel over ``baseline`` (Fig. 5 series)."""
    if kernel == "softmax":
        turbo = softmax_time(device, rows, row_len, ReductionImpl.TURBO, x_elems)
        base = softmax_time(device, rows, row_len, baseline)
    elif kernel == "layernorm":
        turbo = layernorm_time(device, rows, row_len, ReductionImpl.TURBO)
        base = layernorm_time(device, rows, row_len, baseline)
    else:
        raise ValueError(f"kernel must be 'softmax' or 'layernorm', got {kernel!r}")
    return base.total_s / turbo.total_s
