"""Instruction-level scoreboard simulator for warp reduction pipelines.

:mod:`repro.gpusim.warp` prices ``warpAllReduceSum_XElem`` with closed-form
expressions.  This module *derives* those numbers by actually scheduling
the instruction stream of Fig. 4 through a scoreboard model: a single warp
scheduler issues one instruction per ``issue_cycles`` in program order, and
an instruction cannot issue until its source registers' producing
instructions have completed (result latency).  The test suite checks the
closed forms against this simulator across devices and X values, so the
Fig. 5 results rest on a mechanically-verified model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .device import DeviceSpec
from .warp import reduction_levels


@dataclass(frozen=True)
class Instruction:
    """One instruction: a destination register, sources, result latency."""

    opcode: str
    dest: str
    sources: Tuple[str, ...]
    latency: int

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"latency must be >= 1, got {self.latency}")
        if not self.dest:
            raise ValueError("dest register must be named")


@dataclass
class ScoreboardResult:
    """Outcome of scheduling a stream: total cycles + per-instruction issue."""

    total_cycles: int
    issue_cycle: List[int] = field(default_factory=list)


def schedule(instructions: Sequence[Instruction], issue_cycles: int = 1
             ) -> ScoreboardResult:
    """In-order, single-issue scoreboard scheduling.

    An instruction issues at the later of (a) the next issue slot and
    (b) the ready times of all its sources; it completes ``latency``
    cycles after issue.  Returns the cycle at which the last instruction
    completes.
    """
    if issue_cycles < 1:
        raise ValueError(f"issue_cycles must be >= 1, got {issue_cycles}")
    ready: Dict[str, int] = {}
    next_issue = 0
    finish = 0
    issued: List[int] = []
    for inst in instructions:
        operands_ready = max((ready.get(src, 0) for src in inst.sources), default=0)
        issue_at = max(next_issue, operands_ready)
        complete_at = issue_at + inst.latency
        ready[inst.dest] = complete_at
        next_issue = issue_at + issue_cycles
        finish = max(finish, complete_at)
        issued.append(issue_at)
    return ScoreboardResult(total_cycles=finish, issue_cycle=issued)


def warp_allreduce_program(device: DeviceSpec, x_elems: int) -> List[Instruction]:
    """The Fig. 4 instruction stream for ``x_elems`` interleaved reductions.

    At each butterfly level the stream issues the ``X`` chains' SHFL_DOWNs
    back to back, then their FADDs — the interleaving that lets chain
    ``i+1``'s shuffle issue while chain ``i`` waits on its result.
    """
    if x_elems < 1:
        raise ValueError(f"x_elems must be >= 1, got {x_elems}")
    levels = reduction_levels(device.warp_size)
    program: List[Instruction] = []
    # acc_c holds chain c's running partial; initially "ready".
    for level in range(levels):
        for chain in range(x_elems):
            program.append(Instruction(
                opcode="SHFL_DOWN",
                dest=f"shfl_{level}_{chain}",
                sources=(f"acc_{level}_{chain}" if level > 0 else f"in_{chain}",),
                latency=device.shuffle_latency_cycles,
            ))
        for chain in range(x_elems):
            program.append(Instruction(
                opcode="FADD",
                dest=f"acc_{level + 1}_{chain}",
                sources=(
                    f"shfl_{level}_{chain}",
                    f"acc_{level}_{chain}" if level > 0 else f"in_{chain}",
                ),
                latency=device.alu_latency_cycles,
            ))
    return program


def simulate_warp_allreduce(device: DeviceSpec, x_elems: int) -> int:
    """Scoreboard-simulated cycles for ``x_elems`` interleaved reductions."""
    result = schedule(
        warp_allreduce_program(device, x_elems),
        issue_cycles=device.issue_cycles,
    )
    return result.total_cycles


def simulate_warp_allreduce_per_row(device: DeviceSpec, x_elems: int) -> float:
    """Amortized scoreboard cycles per reduced row."""
    return simulate_warp_allreduce(device, x_elems) / x_elems
