"""Multi-stream schedules: launch/record/wait programs over named streams.

:class:`~repro.gpusim.stream.Stream` models one serial CUDA stream; real
serving overlaps several (compute/copy double buffering, one stream per
in-flight request).  A :class:`StreamSchedule` is the *issue-order log* of
such an execution: kernel launches annotated with the device buffers they
read and write, plus the synchronization operations (CUDA-event record /
wait, device-wide sync) that order work across streams.

The schedule is pure data — building one does not advance any clock.  Its
consumers are the happens-before race detector in
:mod:`repro.analysis.schedule_checks`, the stream-timing executor
:func:`execute_schedule` (which plays the issue-order program against
per-stream virtual clocks and returns the critical-path makespan), and
tests that assert a serving policy issues the syncs it claims to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple, Union


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel enqueued on ``stream``, touching the named buffers."""

    kernel: str
    stream: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValueError("kernel name must be non-empty")
        if not self.stream:
            raise ValueError(f"kernel {self.kernel!r}: stream must be non-empty")


@dataclass(frozen=True)
class EventRecord:
    """``cudaEventRecord``: capture ``stream``'s progress as ``event``."""

    event: str
    stream: str


@dataclass(frozen=True)
class EventWait:
    """``cudaStreamWaitEvent``: ``stream`` blocks until the most recent
    prior record of ``event`` has completed."""

    event: str
    stream: str


@dataclass(frozen=True)
class DeviceSync:
    """``cudaDeviceSynchronize``: a barrier across every stream."""


ScheduleOp = Union[KernelLaunch, EventRecord, EventWait, DeviceSync]


@dataclass
class StreamSchedule:
    """Issue-ordered multi-stream program."""

    name: str = "schedule"
    ops: List[ScheduleOp] = field(default_factory=list)

    # -- builders ----------------------------------------------------------

    def launch(self, kernel: str, stream: str, reads: Tuple[str, ...] = (),
               writes: Tuple[str, ...] = ()) -> KernelLaunch:
        op = KernelLaunch(kernel=kernel, stream=stream,
                          reads=tuple(reads), writes=tuple(writes))
        self.ops.append(op)
        return op

    def record(self, event: str, stream: str) -> EventRecord:
        op = EventRecord(event=event, stream=stream)
        self.ops.append(op)
        return op

    def wait(self, event: str, stream: str) -> EventWait:
        op = EventWait(event=event, stream=stream)
        self.ops.append(op)
        return op

    def sync(self) -> DeviceSync:
        op = DeviceSync()
        self.ops.append(op)
        return op

    # -- queries -----------------------------------------------------------

    def streams(self) -> List[str]:
        """Stream names in first-use order."""
        seen: List[str] = []
        for op in self.ops:
            stream = getattr(op, "stream", None)
            if stream is not None and stream not in seen:
                seen.append(stream)
        return seen

    def launches(self) -> List[KernelLaunch]:
        return [op for op in self.ops if isinstance(op, KernelLaunch)]

    def buffers(self) -> List[str]:
        """Buffer names in first-touch order."""
        seen: List[str] = []
        for op in self.launches():
            for name in (*op.reads, *op.writes):
                if name not in seen:
                    seen.append(name)
        return seen

    def __len__(self) -> int:
        return len(self.ops)


# -- stream-timing executor -------------------------------------------------

#: Per-kernel durations: either a mapping from kernel name to seconds or a
#: callable receiving the :class:`KernelLaunch` itself.
DurationModel = Union[Mapping[str, float], Callable[[KernelLaunch], float]]


@dataclass(frozen=True)
class OpTiming:
    """One executed kernel launch placed on the virtual timeline."""

    op: KernelLaunch
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ScheduleTiming:
    """Outcome of playing a :class:`StreamSchedule` on per-stream clocks.

    ``makespan_s`` is the critical-path wall time (what a GPU with truly
    concurrent streams would take); ``serial_s`` is the sum of every
    launch's duration (what a single stream would take).  The difference
    is the time the overlap saved.
    """

    makespan_s: float
    serial_s: float
    per_stream_busy: Dict[str, float]
    spans: Tuple[OpTiming, ...]

    @property
    def overlap_saved_s(self) -> float:
        return self.serial_s - self.makespan_s


def execute_schedule(schedule: StreamSchedule,
                     durations: DurationModel) -> ScheduleTiming:
    """Play ``schedule`` against per-stream virtual clocks.

    Semantics mirror the CUDA stream model the schedule encodes:

    * a :class:`KernelLaunch` starts at its stream's clock and advances it
      by the kernel's duration (streams are serial);
    * :class:`EventRecord` captures the recording stream's progress —
      every launch issued on that stream so far has completed at the
      captured instant;
    * :class:`EventWait` raises the waiting stream's clock to the most
      recent prior record of that event.  A wait with **no** prior record
      is a no-op, exactly like ``cudaStreamWaitEvent`` on an unrecorded
      event (the race detector flags it as SCHED310 — the executor does
      not hide the bug, it just refuses to deadlock on it);
    * :class:`DeviceSync` raises every stream — including streams first
      used *after* the sync — to the global maximum.

    Durations come from ``durations`` (mapping or callable); an unknown
    kernel or a negative duration raises :class:`ValueError`.
    """
    if callable(durations):
        dur_of = durations
    else:
        table = durations

        def dur_of(op: KernelLaunch) -> float:
            try:
                return table[op.kernel]
            except KeyError:
                raise ValueError(
                    f"schedule {schedule.name!r}: no duration for kernel "
                    f"{op.kernel!r}"
                ) from None

    clocks: Dict[str, float] = {}
    busy: Dict[str, float] = {}
    events: Dict[str, float] = {}
    spans: List[OpTiming] = []
    floor = 0.0  # DeviceSync barrier: streams first used later start here
    serial = 0.0
    for op in schedule.ops:
        if isinstance(op, DeviceSync):
            floor = max([floor, *clocks.values()]) if clocks else floor
            for stream in clocks:
                clocks[stream] = floor
            continue
        clock = clocks.setdefault(op.stream, floor)
        if isinstance(op, EventRecord):
            events[op.event] = clock
        elif isinstance(op, EventWait):
            if op.event in events:
                clocks[op.stream] = max(clock, events[op.event])
        else:  # KernelLaunch
            dur = dur_of(op)
            if dur < 0.0:
                raise ValueError(
                    f"schedule {schedule.name!r}: kernel {op.kernel!r} has "
                    f"negative duration {dur!r}"
                )
            spans.append(OpTiming(op=op, start_s=clock, end_s=clock + dur))
            clocks[op.stream] = clock + dur
            busy[op.stream] = busy.get(op.stream, 0.0) + dur
            serial += dur
    makespan = max([floor, *clocks.values()]) if clocks else floor
    return ScheduleTiming(makespan_s=makespan, serial_s=serial,
                          per_stream_busy=busy, spans=tuple(spans))
