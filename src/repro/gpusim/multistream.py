"""Multi-stream schedules: launch/record/wait programs over named streams.

:class:`~repro.gpusim.stream.Stream` models one serial CUDA stream; real
serving overlaps several (compute/copy double buffering, one stream per
in-flight request).  A :class:`StreamSchedule` is the *issue-order log* of
such an execution: kernel launches annotated with the device buffers they
read and write, plus the synchronization operations (CUDA-event record /
wait, device-wide sync) that order work across streams.

The schedule is pure data — building one does not advance any clock.  Its
consumers are the happens-before race detector in
:mod:`repro.analysis.schedule_checks` and tests that assert a serving
policy issues the syncs it claims to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel enqueued on ``stream``, touching the named buffers."""

    kernel: str
    stream: str
    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValueError("kernel name must be non-empty")
        if not self.stream:
            raise ValueError(f"kernel {self.kernel!r}: stream must be non-empty")


@dataclass(frozen=True)
class EventRecord:
    """``cudaEventRecord``: capture ``stream``'s progress as ``event``."""

    event: str
    stream: str


@dataclass(frozen=True)
class EventWait:
    """``cudaStreamWaitEvent``: ``stream`` blocks until the most recent
    prior record of ``event`` has completed."""

    event: str
    stream: str


@dataclass(frozen=True)
class DeviceSync:
    """``cudaDeviceSynchronize``: a barrier across every stream."""


ScheduleOp = Union[KernelLaunch, EventRecord, EventWait, DeviceSync]


@dataclass
class StreamSchedule:
    """Issue-ordered multi-stream program."""

    name: str = "schedule"
    ops: List[ScheduleOp] = field(default_factory=list)

    # -- builders ----------------------------------------------------------

    def launch(self, kernel: str, stream: str, reads: Tuple[str, ...] = (),
               writes: Tuple[str, ...] = ()) -> KernelLaunch:
        op = KernelLaunch(kernel=kernel, stream=stream,
                          reads=tuple(reads), writes=tuple(writes))
        self.ops.append(op)
        return op

    def record(self, event: str, stream: str) -> EventRecord:
        op = EventRecord(event=event, stream=stream)
        self.ops.append(op)
        return op

    def wait(self, event: str, stream: str) -> EventWait:
        op = EventWait(event=event, stream=stream)
        self.ops.append(op)
        return op

    def sync(self) -> DeviceSync:
        op = DeviceSync()
        self.ops.append(op)
        return op

    # -- queries -----------------------------------------------------------

    def streams(self) -> List[str]:
        """Stream names in first-use order."""
        seen: List[str] = []
        for op in self.ops:
            stream = getattr(op, "stream", None)
            if stream is not None and stream not in seen:
                seen.append(stream)
        return seen

    def launches(self) -> List[KernelLaunch]:
        return [op for op in self.ops if isinstance(op, KernelLaunch)]

    def buffers(self) -> List[str]:
        """Buffer names in first-touch order."""
        seen: List[str] = []
        for op in self.launches():
            for name in (*op.reads, *op.writes):
                if name not in seen:
                    seen.append(name)
        return seen

    def __len__(self) -> int:
        return len(self.ops)
