"""A CUDA-stream-like serial timeline.

Kernels enqueued on a stream execute back to back; the stream accumulates
simulated time and keeps a per-kernel trace so experiments can attribute
time to kernel categories (Table 2) or count launches (fusion ablation).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from .kernel import KernelTiming


@dataclass
class Stream:
    """Serial execution timeline for simulated kernels."""

    trace_enabled: bool = True
    elapsed_s: float = 0.0
    launches: int = 0
    trace: List[KernelTiming] = field(default_factory=list)
    _by_name: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def submit(self, timing: KernelTiming) -> None:
        """Enqueue one kernel; advances the stream clock by its total time."""
        self.elapsed_s += timing.total_s
        self.launches += 1
        self._by_name[timing.name] += timing.total_s
        if self.trace_enabled:
            self.trace.append(timing)

    def extend(self, timings: List[KernelTiming]) -> None:
        for timing in timings:
            self.submit(timing)

    def time_by_kernel(self) -> Dict[str, float]:
        """Total seconds attributed to each kernel name."""
        return dict(self._by_name)

    def time_matching(self, substring: str) -> float:
        """Total seconds over kernels whose name contains ``substring``."""
        return sum(t for name, t in self._by_name.items() if substring in name)

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self.launches = 0
        self.trace.clear()
        self._by_name.clear()
