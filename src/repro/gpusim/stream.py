"""A CUDA-stream-like serial timeline.

Kernels enqueued on a stream execute back to back; the stream accumulates
simulated time and keeps a per-kernel trace so experiments can attribute
time to kernel categories (Table 2) or count launches (fusion ablation).

Attach a :class:`repro.observability.Tracer` (``tracer`` field) to emit
one Chrome-trace timeline event per kernel launch on the ``trace_tid``
track, with the roofline breakdown as event args.

Fault injection: ``stall_fn`` is an optional multiplier hook
``(kernel_name, stream_time_s) -> factor`` (e.g.
:meth:`repro.resilience.FaultPlan.kernel_stall_fn`); kernels submitted
while a stall window is active are stretched via
:meth:`~repro.gpusim.kernel.KernelTiming.stalled`.  ``None`` (the
default) leaves the submit path untouched.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .kernel import KernelTiming


@dataclass
class Stream:
    """Serial execution timeline for simulated kernels."""

    trace_enabled: bool = True
    elapsed_s: float = 0.0
    launches: int = 0
    trace: List[KernelTiming] = field(default_factory=list)
    tracer: Optional[object] = None  # repro.observability.Tracer
    trace_tid: str = "gpu.stream"
    stall_fn: Optional[Callable[[str, float], float]] = None
    _by_name: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def submit(self, timing: KernelTiming) -> None:
        """Enqueue one kernel; advances the stream clock by its total time."""
        started = self.elapsed_s
        if self.stall_fn is not None:
            factor = self.stall_fn(timing.name, started)
            if factor != 1.0:
                timing = timing.stalled(factor)
        self.elapsed_s += timing.total_s
        self.launches += 1
        self._by_name[timing.name] += timing.total_s
        if self.trace_enabled:
            self.trace.append(timing)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.complete(
                timing.name, started, timing.total_s, tid=self.trace_tid,
                cat="kernel", **timing.trace_args(),
            )

    def extend(self, timings: List[KernelTiming]) -> None:
        for timing in timings:
            self.submit(timing)

    def time_by_kernel(self) -> Dict[str, float]:
        """Total seconds attributed to each kernel name."""
        return dict(self._by_name)

    def time_matching(self, substring: str) -> float:
        """Total seconds over kernels whose name contains ``substring``."""
        return sum(t for name, t in self._by_name.items() if substring in name)

    def reset(self) -> None:
        self.elapsed_s = 0.0
        self.launches = 0
        self.trace.clear()
        self._by_name.clear()
