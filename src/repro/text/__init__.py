"""Text substrate: WordPiece tokenizer + classification head (§6.2 app)."""

from .classifier import ClassifierHead, TextClassifier, init_classifier_head
from .tokenizer import (
    CLS,
    PAD,
    SEP,
    SPECIAL_TOKENS,
    UNK,
    WordPieceTokenizer,
    basic_tokenize,
    pad_batch,
)

__all__ = [
    "WordPieceTokenizer",
    "basic_tokenize",
    "pad_batch",
    "PAD",
    "UNK",
    "CLS",
    "SEP",
    "SPECIAL_TOKENS",
    "ClassifierHead",
    "TextClassifier",
    "init_classifier_head",
]
