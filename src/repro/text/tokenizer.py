"""A small WordPiece-style tokenizer.

The paper's BERT service "classif[ies] a paragraph of text": requests enter
as text and must become token ids.  This is a self-contained, deterministic
WordPiece implementation — build a vocabulary from a corpus (greedy
frequency-based subword merging in the BPE spirit), then tokenize with
longest-match-first and ``##`` continuation pieces, exactly the scheme
BERT uses.  No external vocab files are needed, keeping the repository
fully offline.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

PAD, UNK, CLS, SEP = "[PAD]", "[UNK]", "[CLS]", "[SEP]"
SPECIAL_TOKENS = (PAD, UNK, CLS, SEP)

_WORD_RE = re.compile(r"[a-z0-9]+|[^\sa-z0-9]")


def basic_tokenize(text: str) -> List[str]:
    """Lowercase + split into words and standalone punctuation."""
    return _WORD_RE.findall(text.lower())


def _subword_candidates(words: Counter, max_len: int = 8) -> Counter:
    """Frequency of every character n-gram (by position) across the corpus."""
    counts: Counter = Counter()
    for word, freq in words.items():
        for start in range(len(word)):
            for end in range(start + 1, min(len(word), start + max_len) + 1):
                piece = word[start:end]
                if start > 0:
                    piece = "##" + piece
                counts[piece] += freq
    return counts


@dataclass
class WordPieceTokenizer:
    """Greedy longest-match-first WordPiece over a learned vocabulary."""

    vocab: Dict[str, int]
    max_word_len: int = 32
    _inverse: Dict[int, str] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for token in SPECIAL_TOKENS:
            if token not in self.vocab:
                raise ValueError(f"vocabulary is missing special token {token}")
        self._inverse = {idx: tok for tok, idx in self.vocab.items()}

    # -- training -----------------------------------------------------------

    @classmethod
    def train(cls, corpus: Iterable[str], vocab_size: int = 1000,
              max_piece_len: int = 8) -> "WordPieceTokenizer":
        """Build a vocabulary: all single characters (guaranteeing full
        coverage) plus the most frequent longer subword pieces."""
        if vocab_size < len(SPECIAL_TOKENS) + 30:
            raise ValueError(f"vocab_size {vocab_size} too small")
        words: Counter = Counter()
        for text in corpus:
            words.update(basic_tokenize(text))
        candidates = _subword_candidates(words, max_piece_len)

        vocab: Dict[str, int] = {tok: i for i, tok in enumerate(SPECIAL_TOKENS)}
        # Single characters first (both word-initial and continuation forms).
        chars = sorted({c for word in words for c in word})
        for c in chars:
            for form in (c, "##" + c):
                if form not in vocab:
                    vocab[form] = len(vocab)
        # Then the highest-frequency multi-character pieces.
        multi = [
            (piece, freq) for piece, freq in candidates.items()
            if len(piece.lstrip("#")) > 1
        ]
        multi.sort(key=lambda item: (-item[1], item[0]))
        for piece, _ in multi:
            if len(vocab) >= vocab_size:
                break
            if piece not in vocab:
                vocab[piece] = len(vocab)
        return cls(vocab=vocab)

    # -- tokenization ---------------------------------------------------------

    def _wordpiece(self, word: str) -> List[str]:
        if len(word) > self.max_word_len:
            return [UNK]
        pieces: List[str] = []
        start = 0
        while start < len(word):
            end = len(word)
            piece = None
            while end > start:
                candidate = word[start:end]
                if start > 0:
                    candidate = "##" + candidate
                if candidate in self.vocab:
                    piece = candidate
                    break
                end -= 1
            if piece is None:
                return [UNK]
            pieces.append(piece)
            start = end
        return pieces

    def tokenize(self, text: str) -> List[str]:
        """Text -> wordpiece strings (no special tokens)."""
        pieces: List[str] = []
        for word in basic_tokenize(text):
            pieces.extend(self._wordpiece(word))
        return pieces

    def encode(self, text: str, max_len: int = 512,
               add_special: bool = True) -> List[int]:
        """Text -> token ids, [CLS] ... [SEP], truncated to ``max_len``."""
        if max_len < 3:
            raise ValueError(f"max_len must be >= 3, got {max_len}")
        pieces = self.tokenize(text)
        if add_special:
            pieces = [CLS] + pieces[: max_len - 2] + [SEP]
        else:
            pieces = pieces[:max_len]
        return [self.vocab.get(p, self.vocab[UNK]) for p in pieces]

    def decode(self, ids: Iterable[int]) -> str:
        """Token ids -> text (continuation pieces joined, specials dropped)."""
        words: List[str] = []
        for idx in ids:
            token = self._inverse.get(int(idx), UNK)
            if token in SPECIAL_TOKENS:
                continue
            if token.startswith("##") and words:
                words[-1] += token[2:]
            else:
                words.append(token)
        return " ".join(words)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    @property
    def pad_id(self) -> int:
        return self.vocab[PAD]


def pad_batch(encoded: List[List[int]], pad_id: int) -> Tuple[List[List[int]], List[int]]:
    """Pad a ragged batch to its longest member; returns (ids, lengths)."""
    if not encoded:
        raise ValueError("cannot pad an empty batch")
    lengths = [len(ids) for ids in encoded]
    width = max(lengths)
    padded = [ids + [pad_id] * (width - len(ids)) for ids in encoded]
    return padded, lengths
