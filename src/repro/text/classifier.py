"""Text classification head on the BERT encoder (the §6.2 application).

The paper's serving evaluation targets "a BERT service used to classify a
paragraph of text"; this module supplies the model side: a pooled
classification head over the encoder output, plus an end-to-end
``TextClassifier`` that goes text -> tokens -> encoder -> label, using the
variable-length padding mask so batched classification matches
one-at-a-time classification exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..kernels.softmax import softmax_reference
from ..models.bert import encoder_forward
from ..models.config import TransformerConfig
from ..models.weights import ModelWeights
from .tokenizer import WordPieceTokenizer, pad_batch


@dataclass(frozen=True)
class ClassifierHead:
    """Tanh-pooled [CLS] head: pool -> dense -> softmax over labels."""

    pooler_w: np.ndarray  # [hidden, hidden]
    pooler_b: np.ndarray  # [hidden]
    output_w: np.ndarray  # [hidden, num_labels]
    output_b: np.ndarray  # [num_labels]

    def __post_init__(self) -> None:
        hidden = self.pooler_w.shape[0]
        if self.pooler_w.shape != (hidden, hidden):
            raise ValueError(f"pooler_w must be square, got {self.pooler_w.shape}")
        if self.output_w.shape[0] != hidden:
            raise ValueError(
                f"output_w rows {self.output_w.shape[0]} != hidden {hidden}"
            )

    @property
    def num_labels(self) -> int:
        return self.output_w.shape[1]

    def __call__(self, hidden_states: np.ndarray) -> np.ndarray:
        """Encoder output [batch, seq, hidden] -> label probabilities."""
        cls_vec = hidden_states[:, 0, :]  # [CLS] position
        pooled = np.tanh(cls_vec @ self.pooler_w + self.pooler_b)
        logits = pooled @ self.output_w + self.output_b
        return softmax_reference(logits)


def init_classifier_head(
    hidden_size: int, num_labels: int, seed: int = 0
) -> ClassifierHead:
    rng = np.random.default_rng(seed + 500)
    return ClassifierHead(
        pooler_w=rng.normal(0, 0.02, (hidden_size, hidden_size)).astype(np.float32),
        pooler_b=np.zeros(hidden_size, dtype=np.float32),
        output_w=rng.normal(0, 0.02, (hidden_size, num_labels)).astype(np.float32),
        output_b=np.zeros(num_labels, dtype=np.float32),
    )


@dataclass
class TextClassifier:
    """Tokenizer + encoder + head: classify raw text end to end."""

    tokenizer: WordPieceTokenizer
    config: TransformerConfig
    weights: ModelWeights
    head: ClassifierHead

    def __post_init__(self) -> None:
        if self.tokenizer.vocab_size > self.config.vocab_size:
            raise ValueError(
                f"tokenizer vocab ({self.tokenizer.vocab_size}) exceeds the "
                f"model's embedding table ({self.config.vocab_size})"
            )

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Label probabilities [n, num_labels] for a batch of texts.

        Texts are padded to the batch's longest member with the attention
        mask excluding padded keys, so batching never changes predictions.
        """
        if not texts:
            raise ValueError("need at least one text")
        encoded = [
            self.tokenizer.encode(t, max_len=self.config.max_position)
            for t in texts
        ]
        padded, lengths = pad_batch(encoded, self.tokenizer.pad_id)
        ids = np.asarray(padded, dtype=np.int64)
        hidden = encoder_forward(
            self.config, self.weights, ids,
            lengths=np.asarray(lengths), fused=True,
        )
        return self.head(hidden)

    def classify(self, texts: Sequence[str]) -> List[int]:
        """Hard labels for a batch of texts."""
        return np.argmax(self.predict_proba(texts), axis=-1).tolist()
