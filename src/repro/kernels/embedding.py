"""Embedding lookup kernels (token + position + segment, fused)."""

from __future__ import annotations

from typing import Optional

import numpy as np


def embedding_lookup(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Gather rows of ``table`` by integer ``ids``.

    ``table`` is ``[vocab, hidden]``; ``ids`` any integer shape; returns
    ``ids.shape + (hidden,)``.
    """
    table = np.asarray(table)
    ids = np.asarray(ids)
    if table.ndim != 2:
        raise ValueError(f"embedding table must be 2-D, got {table.shape}")
    if not np.issubdtype(ids.dtype, np.integer):
        raise TypeError(f"ids must be integers, got dtype {ids.dtype}")
    if ids.size and (ids.min() < 0 or ids.max() >= table.shape[0]):
        raise IndexError(
            f"ids out of range [0, {table.shape[0]}): min={ids.min()} max={ids.max()}"
        )
    return table[ids]


def bert_embeddings(
    token_table: np.ndarray,
    position_table: np.ndarray,
    segment_table: np.ndarray,
    token_ids: np.ndarray,
    segment_ids: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused BERT embedding: token + position + segment in one sweep.

    ``token_ids`` is ``[batch, seq]``.  Sequence length must not exceed the
    position table; segment ids default to zeros.
    """
    token_ids = np.asarray(token_ids)
    if token_ids.ndim != 2:
        raise ValueError(f"token_ids must be [batch, seq], got {token_ids.shape}")
    batch, seq = token_ids.shape
    if seq > position_table.shape[0]:
        raise ValueError(
            f"sequence length {seq} exceeds position table {position_table.shape[0]}"
        )
    if segment_ids is None:
        segment_ids = np.zeros_like(token_ids)
    out = embedding_lookup(token_table, token_ids).astype(np.float32, copy=True)
    out += position_table[:seq][None, :, :]
    out += embedding_lookup(segment_table, np.asarray(segment_ids))
    return out
