"""Head split/merge transposes and the add-bias-transpose fusion.

Multi-head attention reshapes ``[batch, seq, hidden]`` activations into
``[batch, heads, seq, head_size]`` and back.  The paper notes there is no
cuDNN API combining the bias add with this transpose, which is why Turbo
ships a custom fused kernel; :func:`add_bias_transpose_for_heads` is its
NumPy analogue.
"""

from __future__ import annotations

import numpy as np


def split_heads(x: np.ndarray, num_heads: int) -> np.ndarray:
    """``[B, S, H] -> [B, heads, S, H/heads]`` (copying, like the kernel)."""
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected [batch, seq, hidden], got shape {x.shape}")
    batch, seq, hidden = x.shape
    if hidden % num_heads:
        raise ValueError(f"hidden {hidden} not divisible by num_heads {num_heads}")
    head_size = hidden // num_heads
    return np.ascontiguousarray(
        x.reshape(batch, seq, num_heads, head_size).transpose(0, 2, 1, 3)
    )


def merge_heads(x: np.ndarray) -> np.ndarray:
    """``[B, heads, S, head_size] -> [B, S, heads*head_size]``."""
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError(f"expected [batch, heads, seq, head_size], got {x.shape}")
    batch, heads, seq, head_size = x.shape
    return np.ascontiguousarray(
        x.transpose(0, 2, 1, 3).reshape(batch, seq, heads * head_size)
    )


def add_bias_transpose_for_heads(
    x: np.ndarray, bias: np.ndarray, num_heads: int
) -> np.ndarray:
    """Fused ``split_heads(x + bias)`` — one pass over the data.

    Equivalent to ``split_heads(add_bias(x, bias), num_heads)`` but with a
    single materialization, mirroring Turbo's fused CUDA kernel.
    """
    x = np.asarray(x)
    if x.ndim != 3:
        raise ValueError(f"expected [batch, seq, hidden], got shape {x.shape}")
    bias = np.asarray(bias)
    if bias.ndim != 1 or bias.shape[0] != x.shape[-1]:
        raise ValueError(f"bias {bias.shape} must match hidden axis of {x.shape}")
    batch, seq, hidden = x.shape
    if hidden % num_heads:
        raise ValueError(f"hidden {hidden} not divisible by num_heads {num_heads}")
    head_size = hidden // num_heads
    out = np.empty((batch, num_heads, seq, head_size), dtype=np.result_type(x, bias))
    biased_view = bias.reshape(num_heads, head_size)
    src = x.reshape(batch, seq, num_heads, head_size)
    # Single fused sweep: the add lands directly in the transposed layout.
    np.add(src.transpose(0, 2, 1, 3), biased_view[None, :, None, :], out=out)
    return out
