"""LayerNorm kernels, including the paper's one-pass variance trick.

The paper (Eq. 1) replaces the two-reduction formulation
``Var(x) = E[(x − E[x])²]`` with ``Var(x) = E[x²] − E²[x]`` so that the sum
of ``x`` and the sum of ``x²`` can be reduced simultaneously
(``warpAllReduceSum_2Elem``), halving synchronizations.  Numerically the
one-pass form is slightly less stable (catastrophic cancellation when the
mean dominates the variance), which the tests quantify; for the activation
ranges of transformer inference the error is far below FP32 resolution.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def layernorm_reference(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Two-pass LayerNorm over the last axis: mean, then E[(x-mean)²]."""
    x = np.asarray(x)
    _check_affine(x, gamma, beta)
    mean = np.mean(x, axis=-1, keepdims=True)
    centered = x - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    return centered / np.sqrt(var + eps) * gamma + beta


def layernorm_one_pass(
    x: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One-pass LayerNorm using ``Var(x) = E[x²] − E²[x]`` (paper Eq. 1).

    Sums of ``x`` and ``x²`` are formed together — the NumPy analogue of the
    fused 2-element warp reduction — then the normalize is applied in-place
    into ``out``.
    """
    x = np.asarray(x)
    _check_affine(x, gamma, beta)
    n = x.shape[-1]
    # The two "interleaved chains": sum(x) and sum(x*x) in one data pass.
    s1 = np.sum(x, axis=-1, keepdims=True)
    s2 = np.einsum("...i,...i->...", x, x)[..., None]
    mean = s1 / n
    var = np.maximum(s2 / n - mean * mean, 0.0)  # clamp cancellation noise
    rstd = 1.0 / np.sqrt(var + eps)
    if out is None:
        out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    elif out.shape != x.shape:
        raise ValueError(f"out shape {out.shape} != input shape {x.shape}")
    np.subtract(x, mean, out=out)
    out *= rstd
    out *= gamma
    out += beta
    return out


def add_bias_layernorm(
    x: np.ndarray,
    residual: np.ndarray,
    bias: np.ndarray,
    gamma: np.ndarray,
    beta: np.ndarray,
    eps: float = 1e-5,
) -> np.ndarray:
    """Fused ``LayerNorm(x + residual + bias)`` — the post-GEMM fusion of
    Fig. 3 (bias add, residual add and normalize in one kernel)."""
    x = np.asarray(x)
    if residual.shape != x.shape:
        raise ValueError(f"residual shape {residual.shape} != input shape {x.shape}")
    summed = x + residual + bias
    return layernorm_one_pass(summed, gamma, beta, eps=eps, out=summed)


def _check_affine(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray) -> None:
    if x.ndim < 1 or x.shape[-1] == 0:
        raise ValueError(f"layernorm needs a non-empty last axis, got shape {x.shape}")
    hidden = x.shape[-1]
    if np.shape(gamma)[-1] != hidden or np.shape(beta)[-1] != hidden:
        raise ValueError(
            f"gamma/beta must match the last axis ({hidden}), "
            f"got {np.shape(gamma)} and {np.shape(beta)}"
        )
