"""GEMM wrappers.

On the real system these are cuBLAS calls; here they are NumPy ``matmul``
with shape validation and optional output buffers, so the runtimes can
execute real numerics while timing comes from the simulated roofline model
(:func:`repro.gpusim.gemm_time`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: Optional[np.ndarray] = None,
    transpose_b: bool = False,
) -> np.ndarray:
    """Matrix multiply with optional B transpose and output buffer.

    Supports stacked (batched) operands with NumPy broadcasting semantics on
    the leading axes, matching cuBLAS strided-batched GEMM.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(f"gemm operands must be >=2-D, got {a.shape} and {b.shape}")
    if transpose_b:
        b = np.swapaxes(b, -1, -2)
    if a.shape[-1] != b.shape[-2]:
        raise ValueError(f"inner dims differ: {a.shape} @ {b.shape}")
    if out is None:
        return a @ b
    np.matmul(a, b, out=out)
    return out


def linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``x @ weight (+ bias)`` with weight stored ``[in, out]``."""
    x = np.asarray(x)
    weight = np.asarray(weight)
    if weight.ndim != 2:
        raise ValueError(f"weight must be 2-D [in, out], got {weight.shape}")
    if x.shape[-1] != weight.shape[0]:
        raise ValueError(f"x last dim {x.shape[-1]} != weight in dim {weight.shape[0]}")
    y = x @ weight
    if bias is not None:
        bias = np.asarray(bias)
        if bias.shape != (weight.shape[1],):
            raise ValueError(f"bias {bias.shape} must be ({weight.shape[1]},)")
        y += bias
    return y
