"""Scaled dot-product and multi-head attention built from the kernel set.

Two execution paths mirror the runtimes:

* :func:`multi_head_attention` with ``fused=False`` composes the un-fused
  reference kernels (separate bias add, separate transpose, reference
  softmax) — the PyTorch-like path.
* ``fused=True`` uses the fused kernels (add-bias-transpose, fused softmax,
  one-pass LayerNorm elsewhere) — the Turbo path.

Both produce identical numerics to within FP rounding, which the test suite
asserts; the *timing* difference lives in :mod:`repro.gpusim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .activation import add_bias
from .gemm import gemm, linear
from .softmax import softmax_fused, softmax_reference
from .transpose import add_bias_transpose_for_heads, merge_heads, split_heads


@dataclass(frozen=True)
class AttentionWeights:
    """Parameters of one multi-head attention block (weights are [in, out])."""

    wq: np.ndarray
    bq: np.ndarray
    wk: np.ndarray
    bk: np.ndarray
    wv: np.ndarray
    bv: np.ndarray
    wo: np.ndarray
    bo: np.ndarray

    def __post_init__(self) -> None:
        hidden = self.wq.shape[0]
        for name in ("wq", "wk", "wv", "wo"):
            w = getattr(self, name)
            if w.shape != (hidden, hidden):
                raise ValueError(f"{name} must be square [{hidden},{hidden}], got {w.shape}")
        for name in ("bq", "bk", "bv", "bo"):
            b = getattr(self, name)
            if b.shape != (hidden,):
                raise ValueError(f"{name} must be ({hidden},), got {b.shape}")


def scaled_dot_product_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: Optional[np.ndarray] = None,
    fused: bool = True,
) -> np.ndarray:
    """Attention over ``[batch, heads, seq, head_size]`` operands.

    ``mask`` is additive (``-inf``-style for padded keys), broadcastable to
    the score tensor ``[batch, heads, seq_q, seq_k]``.
    """
    q, k, v = np.asarray(q), np.asarray(k), np.asarray(v)
    if q.ndim != 4 or k.ndim != 4 or v.ndim != 4:
        raise ValueError(
            f"q/k/v must be [batch, heads, seq, head], got {q.shape} {k.shape} {v.shape}"
        )
    if k.shape != v.shape or q.shape[-1] != k.shape[-1]:
        raise ValueError(f"incompatible q/k/v shapes: {q.shape} {k.shape} {v.shape}")
    head_size = q.shape[-1]
    scores = gemm(q, k, transpose_b=True)
    scores *= 1.0 / math.sqrt(head_size)
    if fused:
        probs = softmax_fused(scores, mask=mask, out=scores)
    else:
        probs = softmax_reference(scores, mask=mask)
    return gemm(probs, v)


def multi_head_attention(
    hidden_states: np.ndarray,
    weights: AttentionWeights,
    num_heads: int,
    mask: Optional[np.ndarray] = None,
    kv_states: Optional[np.ndarray] = None,
    fused: bool = True,
    add_output_bias: bool = True,
) -> np.ndarray:
    """Full multi-head attention block: QKV projections, attention, output.

    ``kv_states`` enables encoder-decoder cross attention (keys/values from
    the encoder memory); self-attention when omitted.  ``add_output_bias``
    can be disabled when the caller fuses the output bias into a following
    add-bias-layernorm kernel (the Turbo path).
    """
    hidden_states = np.asarray(hidden_states)
    if hidden_states.ndim != 3:
        raise ValueError(f"expected [batch, seq, hidden], got {hidden_states.shape}")
    kv = hidden_states if kv_states is None else np.asarray(kv_states)
    q_proj = gemm(hidden_states, weights.wq)
    k_proj = gemm(kv, weights.wk)
    v_proj = gemm(kv, weights.wv)
    if fused:
        q = add_bias_transpose_for_heads(q_proj, weights.bq, num_heads)
        k = add_bias_transpose_for_heads(k_proj, weights.bk, num_heads)
        v = add_bias_transpose_for_heads(v_proj, weights.bv, num_heads)
    else:
        q = split_heads(add_bias(q_proj, weights.bq), num_heads)
        k = split_heads(add_bias(k_proj, weights.bk), num_heads)
        v = split_heads(add_bias(v_proj, weights.bv), num_heads)
    context = scaled_dot_product_attention(q, k, v, mask=mask, fused=fused)
    merged = merge_heads(context)
    return linear(merged, weights.wo, weights.bo if add_output_bias else None)


def padding_mask_from_lengths(lengths: np.ndarray, max_len: int) -> np.ndarray:
    """Additive attention mask from per-sequence valid lengths.

    Returns ``[batch, 1, 1, max_len]`` with 0 on valid keys and a large
    negative value on padding — the standard BERT masking convention used
    when variable-length requests are padded into a batch.
    """
    lengths = np.asarray(lengths)
    if lengths.ndim != 1:
        raise ValueError(f"lengths must be 1-D, got {lengths.shape}")
    if lengths.size and (lengths.min() < 1 or lengths.max() > max_len):
        raise ValueError(f"lengths must be in [1, {max_len}], got {lengths}")
    positions = np.arange(max_len)[None, :]
    valid = positions < lengths[:, None]
    mask = np.where(valid, 0.0, -1e9).astype(np.float32)
    return mask[:, None, None, :]
