"""Activation and bias kernels (the element-wise fusion targets of Fig. 3)."""

from __future__ import annotations

from typing import Optional

import numpy as np

#: sqrt(2/pi), the tanh-GELU constant used by BERT.
_GELU_C = 0.7978845608028654
_GELU_A = 0.044715


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximated GELU, the BERT feed-forward activation."""
    x = np.asarray(x)
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + _GELU_A * x * x * x)))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x), 0.0)


def add_bias(x: np.ndarray, bias: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """``x + bias`` with broadcast over the last axis."""
    x = np.asarray(x)
    _check_bias(x, bias)
    if out is None:
        return x + bias
    np.add(x, bias, out=out)
    return out


def add_bias_gelu(x: np.ndarray, bias: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Fused ``GELU(x + bias)`` — one sweep instead of two kernels.

    ``out`` may alias ``x``; the computation is performed in-place to match
    the single-pass fused CUDA kernel.
    """
    x = np.asarray(x)
    _check_bias(x, bias)
    if out is None:
        out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    elif out.shape != x.shape:
        raise ValueError(f"out shape {out.shape} != input shape {x.shape}")
    np.add(x, bias, out=out)
    # In-place tanh GELU: t = tanh(c * (y + a*y^3)); out = 0.5*y*(1+t).
    y = out.copy()
    np.multiply(out, out, out=out)          # y^2
    out *= y                                # y^3
    out *= _GELU_A
    out += y                                # y + a*y^3
    out *= _GELU_C
    np.tanh(out, out=out)
    out += 1.0
    out *= y
    out *= 0.5
    return out


def add_bias_relu(x: np.ndarray, bias: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
    """Fused ``ReLU(x + bias)``."""
    x = np.asarray(x)
    _check_bias(x, bias)
    if out is None:
        out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    elif out.shape != x.shape:
        raise ValueError(f"out shape {out.shape} != input shape {x.shape}")
    np.add(x, bias, out=out)
    np.maximum(out, 0.0, out=out)
    return out


def _check_bias(x: np.ndarray, bias: np.ndarray) -> None:
    bias = np.asarray(bias)
    if bias.ndim != 1 or x.ndim < 1 or bias.shape[0] != x.shape[-1]:
        raise ValueError(
            f"bias must be 1-D matching the last axis of x; "
            f"got bias {bias.shape} vs x {x.shape}"
        )
