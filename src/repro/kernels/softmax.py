"""Numerically-stable softmax kernels.

Two variants mirror the simulated-GPU implementations:

* :func:`softmax_reference` — the textbook multi-pass formulation
  (materializes every intermediate; analogue of the un-fused PyTorch path).
* :func:`softmax_fused` — single sweep using in-place operations and a
  pre-allocated output (analogue of the Turbo fused kernel).

Both reduce over the last axis and support an additive mask (used for
attention padding), and both are exact to within floating-point
re-association error.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def softmax_reference(x: np.ndarray, mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Multi-pass softmax over the last axis.

    ``mask`` (broadcastable to ``x``) is added to the logits before the
    exponential; use large negative values to exclude padded positions.
    """
    x = np.asarray(x, dtype=np.float64 if x.dtype == np.float64 else np.float32)
    if x.size == 0:
        raise ValueError("softmax of an empty array is undefined")
    if mask is not None:
        x = x + mask
    shifted = x - np.max(x, axis=-1, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=-1, keepdims=True)


def softmax_fused(
    x: np.ndarray,
    mask: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fused softmax: one output buffer, in-place passes, no temporaries
    beyond the per-row reduction results.

    ``out`` may alias ``x`` (in-place softmax), matching the fused CUDA
    kernel which never round-trips intermediates through global memory.
    """
    x = np.asarray(x)
    if x.size == 0:
        raise ValueError("softmax of an empty array is undefined")
    if out is None:
        out = np.empty_like(x, dtype=np.result_type(x.dtype, np.float32))
    elif out.shape != x.shape:
        raise ValueError(f"out shape {out.shape} != input shape {x.shape}")
    if mask is not None:
        np.add(x, mask, out=out)
    elif out is not x:
        np.copyto(out, x)
    out -= np.max(out, axis=-1, keepdims=True)
    np.exp(out, out=out)
    out /= np.sum(out, axis=-1, keepdims=True)
    return out
