"""NumPy numeric kernels: reference (un-fused) and fused variants.

These carry the *numerics* of the reproduction; timing of the corresponding
CUDA kernels lives in :mod:`repro.gpusim`.  Fused variants use in-place
passes and combined sweeps exactly where the paper's fused CUDA kernels do.
"""

from .activation import add_bias, add_bias_gelu, add_bias_relu, gelu, relu
from .attention import (
    AttentionWeights,
    multi_head_attention,
    padding_mask_from_lengths,
    scaled_dot_product_attention,
)
from .embedding import bert_embeddings, embedding_lookup
from .gemm import gemm, linear
from .layernorm import add_bias_layernorm, layernorm_one_pass, layernorm_reference
from .quantize import (
    INT8_MAX,
    QuantizedLinear,
    dequantize,
    quantization_error,
    quantize_symmetric,
)
from .softmax import softmax_fused, softmax_reference
from .transpose import add_bias_transpose_for_heads, merge_heads, split_heads

__all__ = [
    "gelu",
    "relu",
    "add_bias",
    "add_bias_gelu",
    "add_bias_relu",
    "softmax_reference",
    "softmax_fused",
    "layernorm_reference",
    "layernorm_one_pass",
    "add_bias_layernorm",
    "quantize_symmetric",
    "dequantize",
    "QuantizedLinear",
    "quantization_error",
    "INT8_MAX",
    "gemm",
    "linear",
    "embedding_lookup",
    "bert_embeddings",
    "split_heads",
    "merge_heads",
    "add_bias_transpose_for_heads",
    "AttentionWeights",
    "scaled_dot_product_attention",
    "multi_head_attention",
    "padding_mask_from_lengths",
]
