"""INT8 symmetric quantization kernels.

The production successors of the paper (TurboTransformers v2,
FasterTransformer) serve INT8 GEMMs: weights are quantized offline
per-output-channel, activations per-tensor at runtime, and the matmul
accumulates in int32 before dequantizing.  These NumPy kernels implement
that scheme exactly, so the accuracy cost of INT8 serving is measurable
(tests bound the error against the FP32 path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

INT8_MAX = 127


def quantize_symmetric(
    x: np.ndarray, axis: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric int8 quantization: returns (q, scale) with x ≈ q * scale.

    ``axis=None`` uses one scale for the whole tensor (activations);
    an integer axis keeps that axis un-reduced (per-channel weights:
    ``axis=1`` scales each output column of an ``[in, out]`` weight).
    """
    x = np.asarray(x, dtype=np.float32)
    if axis is None:
        amax = np.max(np.abs(x))
        scale = np.float32(amax / INT8_MAX) if amax > 0 else np.float32(1.0)
    else:
        reduce_axes = tuple(i for i in range(x.ndim) if i != axis)
        amax = np.max(np.abs(x), axis=reduce_axes, keepdims=True)
        scale = np.where(amax > 0, amax / INT8_MAX, 1.0).astype(np.float32)
    q = np.clip(np.rint(x / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return q, scale


def dequantize(q: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_symmetric`."""
    return q.astype(np.float32) * np.asarray(scale, dtype=np.float32)


@dataclass(frozen=True)
class QuantizedLinear:
    """An ``[in, out]`` linear layer with per-output-channel int8 weights."""

    q_weight: np.ndarray      # int8 [in, out]
    weight_scale: np.ndarray  # float32 [1, out]
    bias: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.q_weight.dtype != np.int8:
            raise TypeError(f"q_weight must be int8, got {self.q_weight.dtype}")
        if self.q_weight.ndim != 2:
            raise ValueError(f"q_weight must be 2-D, got {self.q_weight.shape}")
        if np.shape(self.weight_scale)[-1] != self.q_weight.shape[1]:
            raise ValueError(
                f"weight_scale {np.shape(self.weight_scale)} does not match "
                f"out dim {self.q_weight.shape[1]}"
            )

    @classmethod
    def from_float(cls, weight: np.ndarray,
                   bias: Optional[np.ndarray] = None) -> "QuantizedLinear":
        q, scale = quantize_symmetric(weight, axis=1)
        return cls(q_weight=q, weight_scale=scale.reshape(1, -1), bias=bias)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """INT8 GEMM: quantize activations per-tensor, accumulate in int32,
        dequantize with the product of the two scales."""
        x = np.asarray(x)
        if x.shape[-1] != self.q_weight.shape[0]:
            raise ValueError(
                f"x last dim {x.shape[-1]} != weight in dim {self.q_weight.shape[0]}"
            )
        q_x, x_scale = quantize_symmetric(x)
        acc = q_x.astype(np.int32) @ self.q_weight.astype(np.int32)
        out = acc.astype(np.float32) * (x_scale * self.weight_scale)
        if self.bias is not None:
            out += self.bias
        return out

    @property
    def weight_bytes(self) -> int:
        """Stored weight bytes (4x smaller than FP32)."""
        return self.q_weight.nbytes + np.asarray(self.weight_scale).nbytes


def quantization_error(weight: np.ndarray, x: np.ndarray) -> float:
    """Relative L2 error of the INT8 linear vs the FP32 linear."""
    layer = QuantizedLinear.from_float(weight)
    exact = np.asarray(x) @ np.asarray(weight)
    approx = layer(x)
    denom = float(np.linalg.norm(exact))
    if denom == 0.0:
        return 0.0
    return float(np.linalg.norm(approx - exact)) / denom
