"""Latency/throughput statistics for serving runs (Fig. 12, Table 4)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .request import Request


@dataclass(frozen=True)
class LatencyStats:
    """avg (min, max) latency in milliseconds — Table 4's cell format —
    plus tail percentiles for SLO analysis (p50/p95/p99)."""

    avg_ms: float
    min_ms: float
    max_ms: float
    count: int
    p50_ms: float = float("inf")
    p95_ms: float = float("inf")
    p99_ms: float = float("inf")

    @staticmethod
    def _percentile(sorted_values: List[float], q: float) -> float:
        """Nearest-rank percentile on a pre-sorted list.

        Uses the textbook nearest-rank rule ``ceil(q * n)`` (1-indexed), so
        p50 of an even-length list is the lower middle element — not
        whatever ``round``'s banker's rounding happens to pick.
        """
        if not sorted_values:
            return float("inf")
        rank = math.ceil(q * len(sorted_values))
        return sorted_values[max(0, min(len(sorted_values) - 1, rank - 1))]

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "LatencyStats":
        # ``is_completed`` skips (rather than crashes on) requests that
        # ended in a non-completed terminal state (TIMED_OUT/FAILED/SHED):
        # they carry no response latency.
        completed = [r for r in requests if r.is_completed]
        if not completed:
            return cls(float("inf"), float("inf"), float("inf"), 0)
        latencies = sorted(r.latency_s * 1e3 for r in completed)
        return cls(
            avg_ms=sum(latencies) / len(latencies),
            min_ms=latencies[0],
            max_ms=latencies[-1],
            count=len(latencies),
            p50_ms=cls._percentile(latencies, 0.50),
            p95_ms=cls._percentile(latencies, 0.95),
            p99_ms=cls._percentile(latencies, 0.99),
        )

    @classmethod
    def from_values(cls, values_ms: Sequence[float]) -> "LatencyStats":
        """Stats over raw millisecond samples (TTFT, TPOT, ...)."""
        if not values_ms:
            return cls(float("inf"), float("inf"), float("inf"), 0)
        ordered = sorted(values_ms)
        return cls(
            avg_ms=sum(ordered) / len(ordered),
            min_ms=ordered[0],
            max_ms=ordered[-1],
            count=len(ordered),
            p50_ms=cls._percentile(ordered, 0.50),
            p95_ms=cls._percentile(ordered, 0.95),
            p99_ms=cls._percentile(ordered, 0.99),
        )

    def meets_slo(self, slo_ms: float, quantile: float = 0.95) -> bool:
        """True if the given latency quantile is within the SLO."""
        if quantile >= 0.99:
            value = self.p99_ms
        elif quantile >= 0.95:
            value = self.p95_ms
        else:
            value = self.p50_ms
        return value <= slo_ms

    def format_cell(self) -> str:
        """Render like the paper: ``avg (min, max)``."""
        if self.count == 0 or self.avg_ms == float("inf"):
            return "+inf"
        return f"{self.avg_ms:.2f} ({self.min_ms:.2f}, {self.max_ms:.2f})"


@dataclass(frozen=True)
class ResilienceStats:
    """Fault-handling outcome of one (resilient) serving run.

    All counts are whole-run totals; rates are derived against ``offered``
    by the caller (see :class:`repro.resilience.chaos.ChaosReport`).
    """

    retries: int = 0
    timed_out: int = 0
    failed: int = 0
    shed: int = 0
    rejected: int = 0
    breaker_transitions: int = 0
    degradation_switches: int = 0

    @property
    def dropped(self) -> int:
        """Requests that never produced a response, for any reason."""
        return self.timed_out + self.failed + self.shed


@dataclass(frozen=True)
class ServingMetrics:
    """Outcome of one serving simulation.

    ``utilization`` is the fraction of the offered-load horizon the GPU
    spent executing batches — the quantity batching exists to raise
    ("small batch sizes lead to low GPU hardware utilization", §5).
    """

    system: str
    request_rate: float
    response_throughput: float
    latency: LatencyStats
    saturated: bool
    completed: int
    offered: int
    backlog_at_end: int
    utilization: float = 0.0
    batches_executed: int = 0
    resilience: Optional[ResilienceStats] = None

    @property
    def stable(self) -> bool:
        """True when the system keeps up with the offered load."""
        return not self.saturated


def response_throughput(
    requests: Sequence[Request], window_start_s: float, window_end_s: float
) -> float:
    """Responses completed per second inside a measurement window.

    The window is closed at both ends: the deterministic simulator lands
    batch completions exactly on arrival boundaries, so a half-open window
    would silently drop requests completing at the horizon.
    """
    if window_end_s <= window_start_s:
        raise ValueError(
            f"empty window [{window_start_s}, {window_end_s}]"
        )
    done = [
        r for r in requests
        if r.is_completed and window_start_s <= r.completion_s <= window_end_s
    ]
    return len(done) / (window_end_s - window_start_s)


def completed_requests(requests: Sequence[Request]) -> List[Request]:
    return [r for r in requests if r.is_completed]
