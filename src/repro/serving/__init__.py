"""Serving framework: MQ, response cache, batch schedulers, event-driven server."""

from .adaptive import AdaptiveBatchScheduler
from .cache import ResponseCache
from .continuous import (
    ContinuousBatchingConfig,
    ContinuousBatchingServer,
    GenRequest,
    GenServingMetrics,
    KVPreemptionPolicy,
    RequestLevelGenerationServer,
    request_level_cost_fn,
)
from .ebird import simulate_ebird_serving
from .cluster import (
    ClusterMetrics,
    ClusterRouter,
    GenClusterMetrics,
    GenReplicaState,
    RoutingPolicy,
    ServerState,
    simulate_cluster,
    simulate_generation_cluster,
)
from .metrics import (
    LatencyStats,
    ResilienceStats,
    ServingMetrics,
    completed_requests,
    response_throughput,
)
from .mq import MessageQueue
from .packed import PackedBatchScheduler, PackedCostFn
from .priority import PriorityBatchScheduler
from .policies import HungryPolicy, LazyPolicy, TriggerPolicy
from .request import (
    Batch,
    Request,
    RequestNotCompleted,
    RequestState,
    make_batch,
)
from .scheduler import (
    BatchScheduler,
    CostFn,
    DPBatchScheduler,
    FixedPadScheduler,
    NaiveBatchScheduler,
    NoBatchScheduler,
    PrunedDPBatchScheduler,
    batch_execution_cost,
    brute_force_optimal_makespan,
    schedule_makespan,
    throughput_of_schedule,
)
from .server import ServingConfig, simulate_serving
from .shedding import SheddingMetrics, simulate_serving_with_shedding
from .trace import TRACE_SCHEMA_VERSION, load_trace, save_trace
from .service import (
    InferenceService,
    ModelRegistry,
    ModelRegistryError,
    ModelVersion,
    ensemble_cost_fn,
)
from .workload import (
    MAX_LEN,
    MIN_LEN,
    bursty_arrivals,
    generate_generation_requests,
    generate_prefix_population_requests,
    generate_requests,
    geometric_output_lengths,
    normal_lengths,
    poisson_arrivals,
    uniform_lengths,
)

__all__ = [
    "AdaptiveBatchScheduler",
    "RoutingPolicy",
    "ClusterRouter",
    "ClusterMetrics",
    "GenClusterMetrics",
    "GenReplicaState",
    "ServerState",
    "simulate_cluster",
    "simulate_generation_cluster",
    "PackedBatchScheduler",
    "PriorityBatchScheduler",
    "simulate_ebird_serving",
    "bursty_arrivals",
    "PackedCostFn",
    "Request",
    "RequestNotCompleted",
    "RequestState",
    "Batch",
    "make_batch",
    "MessageQueue",
    "ResponseCache",
    "BatchScheduler",
    "DPBatchScheduler",
    "PrunedDPBatchScheduler",
    "NaiveBatchScheduler",
    "NoBatchScheduler",
    "FixedPadScheduler",
    "CostFn",
    "batch_execution_cost",
    "schedule_makespan",
    "throughput_of_schedule",
    "brute_force_optimal_makespan",
    "TriggerPolicy",
    "HungryPolicy",
    "LazyPolicy",
    "ServingConfig",
    "SheddingMetrics",
    "simulate_serving_with_shedding",
    "InferenceService",
    "ModelRegistry",
    "ModelRegistryError",
    "ModelVersion",
    "ensemble_cost_fn",
    "save_trace",
    "load_trace",
    "TRACE_SCHEMA_VERSION",
    "simulate_serving",
    "LatencyStats",
    "ResilienceStats",
    "ServingMetrics",
    "response_throughput",
    "completed_requests",
    "generate_requests",
    "generate_generation_requests",
    "generate_prefix_population_requests",
    "geometric_output_lengths",
    "GenRequest",
    "GenServingMetrics",
    "KVPreemptionPolicy",
    "ContinuousBatchingConfig",
    "ContinuousBatchingServer",
    "RequestLevelGenerationServer",
    "request_level_cost_fn",
    "normal_lengths",
    "uniform_lengths",
    "poisson_arrivals",
    "MIN_LEN",
    "MAX_LEN",
]
