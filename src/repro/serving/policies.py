"""Scheduler trigger policies (paper §5, last paragraph).

*Hungry*: the moment the runtime goes idle and the queue is non-empty,
schedule whatever is queued.  Best when request pressure is high and the
GPU should never sit idle.

*Lazy*: like Clipper's delayed batching — wait for ``max_batch`` requests
or a timeout, whichever first; additionally, if the front request's age
plus the estimated execution time of the current batch would exceed half
the latency SLO, fire immediately.  Best when small batches are very
inefficient on the runtime.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .mq import MessageQueue


class TriggerPolicy(abc.ABC):
    """Decides, at a given idle moment, whether to run the batch scheduler."""

    name: str = "base"

    @abc.abstractmethod
    def should_schedule(self, queue: MessageQueue, now_s: float) -> bool:
        """True if the scheduler should fire now."""

    def next_decision_time(self, queue: MessageQueue, now_s: float) -> float:
        """Earliest future time the decision could flip (for the simulator).

        Defaults to "re-ask on the next arrival" (infinity here; the
        simulator always re-asks on arrivals)."""
        return float("inf")


@dataclass
class HungryPolicy(TriggerPolicy):
    """Schedule whenever there is anything to schedule."""

    name: str = "hungry"

    def should_schedule(self, queue: MessageQueue, now_s: float) -> bool:
        return bool(queue)


@dataclass
class LazyPolicy(TriggerPolicy):
    """Clipper-style delayed batching with an SLO escape hatch.

    Parameters
    ----------
    timeout_s: maximum time the oldest request may wait before firing.
    max_batch: fire as soon as this many requests are queued.
    latency_slo_s: service latency objective; fire if the front request's
        age plus ``estimated_exec_s`` exceeds half of it.
    estimated_exec_s: rough execution time of the pending batch (updated by
        the server from its cost table).
    """

    timeout_s: float = 0.010
    max_batch: int = 20
    latency_slo_s: float = 0.1
    estimated_exec_s: float = 0.0
    name: str = "lazy"

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.latency_slo_s <= 0:
            raise ValueError(f"latency_slo_s must be positive, got {self.latency_slo_s}")

    def should_schedule(self, queue: MessageQueue, now_s: float) -> bool:
        if not queue:
            return False
        if len(queue) >= self.max_batch:
            return True
        front = queue.front()
        assert front is not None
        age = now_s - front.arrival_s
        if age >= self.timeout_s:
            return True
        return age + self.estimated_exec_s >= self.latency_slo_s / 2.0

    def next_decision_time(self, queue: MessageQueue, now_s: float) -> float:
        front = queue.front()
        if front is None:
            return float("inf")
        by_timeout = front.arrival_s + self.timeout_s
        by_slo = front.arrival_s + self.latency_slo_s / 2.0 - self.estimated_exec_s
        # A large estimated_exec_s can push by_slo into the past; an event
        # simulator advancing to a past trigger makes no progress and falls
        # into its anti-stall micro-stepping path.  The decision can never
        # flip earlier than "right now", so clamp.
        return max(min(by_timeout, by_slo), now_s)
