"""Workload generation for the serving experiments (§6.2).

The paper's BERT service receives requests whose text lengths follow a
normal distribution over [5, 500] (sampled from a chit-chat dataset) with
Poisson inter-arrival times.  Having no access to the dataset, we sample
the same distributions synthetically from a seeded generator — the serving
results depend only on lengths and arrival times, not on text content.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from .request import Request

LengthSampler = Callable[[np.random.Generator, int], np.ndarray]

#: The paper's serving length range.
MIN_LEN, MAX_LEN = 5, 500


def normal_lengths(
    rng: np.random.Generator,
    n: int,
    lo: int = MIN_LEN,
    hi: int = MAX_LEN,
    mean: float | None = None,
    std: float | None = None,
) -> np.ndarray:
    """Truncated-normal integer lengths on [lo, hi].

    Defaults place the mean mid-range with the 3-sigma points at the range
    edges, the natural reading of "a normal distribution from 5 to 500".
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid length range [{lo}, {hi}]")
    mu = mean if mean is not None else (lo + hi) / 2.0
    sigma = std if std is not None else (hi - lo) / 6.0
    lengths = rng.normal(mu, sigma, size=n)
    return np.clip(np.rint(lengths), lo, hi).astype(np.int64)


def uniform_lengths(
    rng: np.random.Generator, n: int, lo: int = MIN_LEN, hi: int = MAX_LEN
) -> np.ndarray:
    """Uniform integer lengths on [lo, hi] (Fig. 10 random sampling)."""
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid length range [{lo}, {hi}]")
    return rng.integers(lo, hi + 1, size=n, dtype=np.int64)


def poisson_arrivals(
    rng: np.random.Generator, rate_per_s: float, duration_s: float
) -> np.ndarray:
    """Arrival timestamps of a Poisson process over [0, duration)."""
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    # Draw enough exponential gaps to cover the horizon with margin.
    expected = rate_per_s * duration_s
    n = max(16, int(expected + 6 * np.sqrt(expected) + 16))
    times = np.cumsum(rng.exponential(1.0 / rate_per_s, size=n))
    while times.size and times[-1] < duration_s:
        extra = np.cumsum(rng.exponential(1.0 / rate_per_s, size=n)) + times[-1]
        times = np.concatenate([times, extra])
    return times[times < duration_s]


def generate_requests(
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    length_sampler: LengthSampler = normal_lengths,
) -> List[Request]:
    """Full serving workload: Poisson arrivals x sampled lengths."""
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rng, rate_per_s, duration_s)
    lengths = length_sampler(rng, arrivals.size)
    return [
        Request(req_id=i, seq_len=int(lengths[i]), arrival_s=float(arrivals[i]))
        for i in range(arrivals.size)
    ]


def geometric_output_lengths(
    rng: np.random.Generator, n: int, mean: float, lo: int = 1, hi: int = 512
) -> np.ndarray:
    """Geometric output-token counts clipped to [lo, hi].

    Generation output lengths are heavy-tailed in practice (most replies
    are short, a few run long) — the shape that separates iteration-level
    from request-level batching, because one straggler pins a whole
    request-level batch.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if lo < 1 or hi < lo:
        raise ValueError(f"invalid output range [{lo}, {hi}]")
    lengths = rng.geometric(min(1.0, 1.0 / mean), size=n)
    return np.clip(lengths, lo, hi).astype(np.int64)


def generate_generation_requests(
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    prompt_sampler: LengthSampler = normal_lengths,
    output_sampler: Callable[[np.random.Generator, int], np.ndarray] = None,
) -> List["GenRequest"]:
    """Generative-serving workload: Poisson arrivals x (prompt, output) lengths.

    Returns :class:`~repro.serving.continuous.GenRequest` objects whose
    ``seq_len`` is the prompt length and ``max_new_tokens`` the sampled
    output budget.  Deterministic given ``seed``.
    """
    from .continuous import GenRequest  # deferred: continuous imports workload

    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rng, rate_per_s, duration_s)
    prompts = prompt_sampler(rng, arrivals.size)
    if output_sampler is None:
        outputs = geometric_output_lengths(rng, arrivals.size, mean=16.0)
    else:
        outputs = output_sampler(rng, arrivals.size)
    return [
        GenRequest(
            req_id=i,
            seq_len=int(prompts[i]),
            arrival_s=float(arrivals[i]),
            max_new_tokens=int(outputs[i]),
        )
        for i in range(arrivals.size)
    ]


def generate_prefix_population_requests(
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    sharing_ratio: float = 0.5,
    num_tenants: int = 4,
    system_prompt_tokens: int = 64,
    fewshot_tokens: int = 32,
    suffix_lo: int = 4,
    suffix_hi: int = 16,
    vocab: int = 50_000,
    output_sampler: Callable[[np.random.Generator, int], np.ndarray] = None,
) -> List["GenRequest"]:
    """Multi-tenant prompt population with shared prefixes (prefix caching).

    Real serving traffic is dominated by templated prompts: one
    deployment-wide *system prompt*, a per-tenant *few-shot template*,
    then a short unique user suffix.  This generator emits actual prompt
    **token ids** (``GenRequest.prompt_ids``) so a prefix cache can match
    them:

    * with probability ``sharing_ratio`` a request is *templated* —
      ``system prompt ‖ tenant template ‖ fresh suffix`` — sharing its
      first ``system_prompt_tokens + fewshot_tokens`` ids with every
      other templated request of the same tenant;
    * otherwise it is fully unique (fresh ids of the same total length,
      so the sharing knob changes *content overlap only*, never the
      length/arrival distributions — cache-on/off comparisons stay
      apples-to-apples).

    ``seq_len`` is ``len(prompt_ids)``; output budgets default to the
    heavy-tailed geometric mix.  Deterministic given ``seed``.
    """
    from .continuous import GenRequest  # deferred: continuous imports workload

    if not 0.0 <= sharing_ratio <= 1.0:
        raise ValueError(f"sharing_ratio must be in [0, 1], got {sharing_ratio}")
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
    if min(system_prompt_tokens, fewshot_tokens) < 0 or suffix_lo < 1 \
            or suffix_hi < suffix_lo:
        raise ValueError("invalid prompt geometry")
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(rng, rate_per_s, duration_s)
    n = arrivals.size
    system_prompt = rng.integers(0, vocab, size=system_prompt_tokens)
    templates = rng.integers(0, vocab, size=(num_tenants, fewshot_tokens))
    templated = rng.random(n) < sharing_ratio
    tenants = rng.integers(0, num_tenants, size=n)
    suffix_lens = rng.integers(suffix_lo, suffix_hi + 1, size=n)
    if output_sampler is None:
        outputs = geometric_output_lengths(rng, n, mean=16.0)
    else:
        outputs = output_sampler(rng, n)
    requests: List["GenRequest"] = []
    for i in range(n):
        suffix = rng.integers(0, vocab, size=int(suffix_lens[i]))
        if templated[i]:
            ids = np.concatenate([system_prompt, templates[tenants[i]], suffix])
        else:
            unique_len = system_prompt_tokens + fewshot_tokens
            ids = np.concatenate(
                [rng.integers(0, vocab, size=unique_len), suffix]
            )
        prompt_ids = tuple(int(t) for t in ids)
        requests.append(GenRequest(
            req_id=i,
            seq_len=len(prompt_ids),
            arrival_s=float(arrivals[i]),
            max_new_tokens=int(outputs[i]),
            prompt_ids=prompt_ids,
        ))
    return requests


def bursty_arrivals(
    rng: np.random.Generator,
    rate_per_s: float,
    duration_s: float,
    on_fraction: float = 0.25,
    cycle_s: float = 1.0,
) -> np.ndarray:
    """On/off (Markov-modulated-style) arrivals averaging ``rate_per_s``.

    Traffic arrives only during the first ``on_fraction`` of each
    ``cycle_s`` window, at rate ``rate_per_s / on_fraction`` — the bursty
    pattern real chat traffic shows, which stresses batching schedulers far
    more than a smooth Poisson stream of the same average rate.
    """
    if not 0.0 < on_fraction <= 1.0:
        raise ValueError(f"on_fraction must be in (0, 1], got {on_fraction}")
    if cycle_s <= 0:
        raise ValueError(f"cycle_s must be positive, got {cycle_s}")
    burst_rate = rate_per_s / on_fraction
    times: List[float] = []
    cycle_start = 0.0
    while cycle_start < duration_s:
        window_end = min(cycle_start + on_fraction * cycle_s, duration_s)
        t = cycle_start
        while True:
            t += float(rng.exponential(1.0 / burst_rate))
            if t >= window_end:
                break
            times.append(t)
        cycle_start += cycle_s
    return np.asarray(times)
