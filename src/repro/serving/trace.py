"""Request-trace persistence.

Serving experiments become comparable across machines and code versions
when the exact request stream is pinned down; traces store arrivals,
lengths, priorities and payload keys as versioned JSON.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from .request import Request

TRACE_SCHEMA_VERSION = 1


def save_trace(requests: Sequence[Request], path: Union[str, Path]) -> None:
    """Write a request stream (pre-serving state only) as JSON."""
    payload = {
        "schema_version": TRACE_SCHEMA_VERSION,
        "requests": [
            {
                "req_id": r.req_id,
                "seq_len": r.seq_len,
                "arrival_s": r.arrival_s,
                "priority": r.priority,
                "payload": list(r.payload) if r.payload is not None else None,
            }
            for r in requests
        ],
    }
    Path(path).write_text(json.dumps(payload))


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a trace written by :func:`save_trace`; requests come back
    fresh (no completion state)."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema version {version!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )
    return [
        Request(
            req_id=r["req_id"],
            seq_len=r["seq_len"],
            arrival_s=r["arrival_s"],
            priority=r.get("priority", 0),
            payload=tuple(r["payload"]) if r.get("payload") is not None else None,
        )
        for r in payload["requests"]
    ]
