"""Requests and batches flowing through the serving framework."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class Request:
    """One inference request: a variable-length input arriving at a time.

    ``payload`` is an optional cache key (e.g. token ids); ``priority``
    orders multi-tenant traffic (0 = interactive/highest, larger = more
    batch-tolerant).  The serving simulation only needs ``seq_len`` and
    ``arrival_s``.
    """

    req_id: int
    seq_len: int
    arrival_s: float
    payload: Optional[Tuple[int, ...]] = None
    priority: int = 0
    start_s: Optional[float] = None
    completion_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {self.seq_len}")
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")

    @property
    def latency_s(self) -> float:
        """Arrival-to-response latency; raises if not yet completed."""
        if self.completion_s is None:
            raise ValueError(f"request {self.req_id} has not completed")
        return self.completion_s - self.arrival_s


@dataclass(frozen=True)
class Batch:
    """A set of requests executed together, zero-padded to the longest.

    ``cost_override``: execution latency fixed by the scheduler (used by
    padding-free packed batching, whose cost the ``(len, batch)`` tables
    cannot express); ``None`` means price via the cost function.
    """

    requests: Tuple[Request, ...]
    padded_len: int
    execution_size: Optional[int] = None  # fixed-size schedulers pad the batch dim too
    cost_override: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")
        longest = max(r.seq_len for r in self.requests)
        if self.padded_len < longest:
            raise ValueError(
                f"padded_len {self.padded_len} shorter than longest request {longest}"
            )
        if self.execution_size is not None and self.execution_size < len(self.requests):
            raise ValueError(
                f"execution_size {self.execution_size} < batch of {len(self.requests)}"
            )
        if self.cost_override is not None and self.cost_override <= 0:
            raise ValueError(
                f"cost_override must be positive, got {self.cost_override}"
            )

    @property
    def size(self) -> int:
        """Number of real requests in the batch."""
        return len(self.requests)

    @property
    def cost_batch_size(self) -> int:
        """Batch dimension actually executed (>= size for fixed-size pads)."""
        return self.execution_size if self.execution_size is not None else self.size

    @property
    def padding_waste(self) -> int:
        """Zero-padded tokens: the quantity the DP scheduler trades off."""
        return sum(self.padded_len - r.seq_len for r in self.requests) + (
            (self.cost_batch_size - self.size) * self.padded_len
        )


def make_batch(requests: List[Request], execution_size: Optional[int] = None,
               padded_len: Optional[int] = None,
               cost_override: Optional[float] = None) -> Batch:
    """Batch a request list, padding to its longest member by default."""
    longest = max(r.seq_len for r in requests)
    return Batch(
        requests=tuple(requests),
        padded_len=padded_len if padded_len is not None else longest,
        execution_size=execution_size,
        cost_override=cost_override,
    )
