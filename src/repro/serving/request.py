"""Requests and batches flowing through the serving framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple


class RequestNotCompleted(ValueError):
    """Raised when latency is read off a request that never completed."""


#: Observers notified on every :meth:`Request.resolve` call (used by the
#: engine-trace sanitizer; empty — a no-op — in normal runs).
_resolve_hooks: List[Callable[["Request", "RequestState"], None]] = []


class RequestState(enum.Enum):
    """Lifecycle of a request through the (possibly faulty) serving stack.

    ``PENDING`` is the only non-terminal state.  Of the terminal states,
    only ``COMPLETED`` carries a latency; the other three record *why* a
    request produced no response:

    * ``TIMED_OUT`` — its deadline expired before (or while) being served;
    * ``FAILED``    — every allowed attempt hit a fault, retries exhausted;
    * ``SHED``      — dropped by admission control (full queue, shed rung).
    """

    PENDING = "pending"
    COMPLETED = "completed"
    TIMED_OUT = "timed_out"
    FAILED = "failed"
    SHED = "shed"

    @property
    def is_terminal(self) -> bool:
        return self is not RequestState.PENDING


@dataclass
class Request:
    """One inference request: a variable-length input arriving at a time.

    ``payload`` is an optional cache key (e.g. token ids); ``priority``
    orders multi-tenant traffic (0 = interactive/highest, larger = more
    batch-tolerant).  The serving simulation only needs ``seq_len`` and
    ``arrival_s``.

    Resilience fields: ``deadline_s`` is the client's per-request latency
    budget (``None`` = patient client, never dropped); ``attempt`` counts
    executions so far (0 = first try); ``state`` tracks the lifecycle
    (see :class:`RequestState`).
    """

    req_id: int
    seq_len: int
    arrival_s: float
    payload: Optional[Tuple[int, ...]] = None
    priority: int = 0
    start_s: Optional[float] = None
    completion_s: Optional[float] = None
    deadline_s: Optional[float] = None
    attempt: int = 0
    state: RequestState = field(default=RequestState.PENDING)

    def __post_init__(self) -> None:
        if self.seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {self.seq_len}")
        if self.arrival_s < 0:
            raise ValueError(f"arrival_s must be >= 0, got {self.arrival_s}")
        if self.priority < 0:
            raise ValueError(f"priority must be >= 0, got {self.priority}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {self.attempt}")

    @property
    def latency_s(self) -> float:
        """Arrival-to-response latency; raises if not completed."""
        if self.completion_s is None:
            raise RequestNotCompleted(
                f"request {self.req_id} has not completed (state={self.state.value})"
            )
        return self.completion_s - self.arrival_s

    @property
    def is_completed(self) -> bool:
        """True when the request produced a response.

        Legacy paths set ``completion_s`` without touching ``state``; a
        non-``COMPLETED`` terminal state never carries a completion.
        """
        return self.completion_s is not None and (
            self.state is RequestState.COMPLETED
            or self.state is RequestState.PENDING
        )

    def expired(self, now_s: float) -> bool:
        """True if the deadline has passed at ``now_s`` (False if none)."""
        return self.deadline_s is not None and now_s - self.arrival_s > self.deadline_s

    def resolve(self, state: RequestState, completion_s: Optional[float] = None) -> None:
        """Move to a terminal state (``COMPLETED`` also records the time)."""
        if not state.is_terminal:
            raise ValueError(f"resolve() needs a terminal state, got {state}")
        self.state = state
        if state is RequestState.COMPLETED:
            if completion_s is None:
                raise ValueError("COMPLETED requires a completion time")
            self.completion_s = completion_s
        if _resolve_hooks:
            for hook in list(_resolve_hooks):
                hook(self, state)


@dataclass(frozen=True)
class Batch:
    """A set of requests executed together, zero-padded to the longest.

    ``cost_override``: execution latency fixed by the scheduler (used by
    padding-free packed batching, whose cost the ``(len, batch)`` tables
    cannot express); ``None`` means price via the cost function.

    Invariant: a batch with ``cost_override`` set is *packed* — requests
    are concatenated along the token dimension, nothing is padded, and the
    override already prices the true concatenated cost.  ``padding_waste``
    is therefore zero for such batches; charging the pad-dim gap on top of
    the override would double-count waste the execution never materializes.
    """

    requests: Tuple[Request, ...]
    padded_len: int
    execution_size: Optional[int] = None  # fixed-size schedulers pad the batch dim too
    cost_override: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")
        longest = max(r.seq_len for r in self.requests)
        if self.padded_len < longest:
            raise ValueError(
                f"padded_len {self.padded_len} shorter than longest request {longest}"
            )
        if self.execution_size is not None and self.execution_size < len(self.requests):
            raise ValueError(
                f"execution_size {self.execution_size} < batch of {len(self.requests)}"
            )
        if self.cost_override is not None and self.cost_override <= 0:
            raise ValueError(
                f"cost_override must be positive, got {self.cost_override}"
            )

    @property
    def size(self) -> int:
        """Number of real requests in the batch."""
        return len(self.requests)

    @property
    def cost_batch_size(self) -> int:
        """Batch dimension actually executed (>= size for fixed-size pads)."""
        return self.execution_size if self.execution_size is not None else self.size

    @property
    def padding_waste(self) -> int:
        """Zero-padded tokens: the quantity the DP scheduler trades off.

        Packed batches (``cost_override`` set) concatenate instead of pad
        and report zero — see the class invariant above.
        """
        if self.cost_override is not None:
            return 0
        return sum(self.padded_len - r.seq_len for r in self.requests) + (
            (self.cost_batch_size - self.size) * self.padded_len
        )


def make_batch(requests: List[Request], execution_size: Optional[int] = None,
               padded_len: Optional[int] = None,
               cost_override: Optional[float] = None) -> Batch:
    """Batch a request list, padding to its longest member by default."""
    longest = max(r.seq_len for r in requests)
    return Batch(
        requests=tuple(requests),
        padded_len=padded_len if padded_len is not None else longest,
        execution_size=execution_size,
        cost_override=cost_override,
    )
