"""Clipper-style adaptive batching (the paper's §2.2 baseline lineage).

Clipper "dynamically finds and adapts the maximum batch size" under a
latency SLO.  This scheduler reproduces that behaviour two ways, matching
Clipper's design:

* **model-based**: each batch is grown only while the profiled cost of the
  padded batch stays within the SLO budget;
* **AIMD feedback**: the global batch-size cap is additively increased
  after every SLO-compliant execution and multiplicatively decreased on a
  violation (the server reports observed latencies via :meth:`observe`).

Unlike the paper's DP scheduler it is *length-oblivious* — requests are
batched in arrival order — which is exactly the gap the DP scheduler
closes on variable-length workloads.
"""

from __future__ import annotations

from typing import List, Sequence

from .request import Batch, Request, make_batch
from .scheduler import BatchScheduler, CostFn


class AdaptiveBatchScheduler(BatchScheduler):
    """SLO-bounded arrival-order batching with an AIMD cap."""

    name = "adaptive"

    def __init__(
        self,
        latency_slo_s: float = 0.1,
        additive_step: int = 1,
        multiplicative_backoff: float = 0.5,
        initial_cap: int = 1,
    ) -> None:
        if latency_slo_s <= 0:
            raise ValueError(f"latency_slo_s must be positive, got {latency_slo_s}")
        if additive_step < 1:
            raise ValueError(f"additive_step must be >= 1, got {additive_step}")
        if not 0.0 < multiplicative_backoff < 1.0:
            raise ValueError(
                f"multiplicative_backoff must be in (0, 1), got {multiplicative_backoff}"
            )
        if initial_cap < 1:
            raise ValueError(f"initial_cap must be >= 1, got {initial_cap}")
        self.latency_slo_s = latency_slo_s
        self.additive_step = additive_step
        self.multiplicative_backoff = multiplicative_backoff
        self.cap = initial_cap
        self.slo_violations = 0
        self.observations = 0

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        limit = min(self.cap, max_batch)
        batches: List[Batch] = []
        current: List[Request] = []
        current_max_len = 0
        for request in requests:  # arrival order (length-oblivious)
            candidate_len = max(current_max_len, request.seq_len)
            candidate_size = len(current) + 1
            fits_cap = candidate_size <= limit
            # Only price the candidate when it is within the cap — cost
            # tables may reject batch sizes beyond their profiled range.
            fits_slo = fits_cap and (
                cost_fn(candidate_len, candidate_size) <= self.latency_slo_s
            )
            if current and not (fits_cap and fits_slo):
                batches.append(make_batch(current))
                current, current_max_len = [], 0
            current.append(request)
            current_max_len = max(current_max_len, request.seq_len)
        if current:
            batches.append(make_batch(current))
        return batches

    def observe(self, batch: Batch, observed_latency_s: float) -> None:
        """AIMD feedback from the server after executing one batch."""
        self.observations += 1
        if observed_latency_s > self.latency_slo_s:
            self.slo_violations += 1
            self.cap = max(1, int(self.cap * self.multiplicative_backoff))
        else:
            self.cap += self.additive_step
