"""Multi-server serving: a Nexus-style upper-level load balancer.

The paper (§5) assumes "a multi-server environment [where] an upper-level
load balancer as the one in Nexus can ensure that the requests assigned to
each server will not be overloaded".  This module builds that layer: a
cluster of independent GPU servers, each running its own batch scheduler
over its own queue, fed by a routing policy.

Routing policies
----------------
``round_robin``      cycle through servers.
``least_queued``     fewest pending requests.
``least_work``       least estimated pending work (queue cost + remaining
                     busy time) — the Nexus-style choice.
``length_aware``     partition servers by sequence-length band, so each
                     server sees near-homogeneous lengths and padding waste
                     collapses even under naive batching (the clustering
                     effect the DP scheduler achieves within one server).

Resilience (:class:`repro.resilience.ResilienceConfig`): the router skips
replicas that are crashed or whose circuit breaker is open — pending-work
estimates are taken over the healthy set only — and failed attempts
re-enqueue through the retry policy, re-routed on their next try.  With
``resilience=None`` the simulation is byte-identical to the fault-free
code path.

Migration note (event engine): the private ``heapq`` event loop is gone —
arrivals and retry wake-ups are engine events and each server's
batch-and-execute round is a cooperative engine task that sleeps through
each batch's execution window, so completions, breaker records and
failure retries are committed at their true virtual times instead of all
at dispatch.  The round's timeline (per-batch costs, fault multipliers,
crash truncation) is still projected deterministically at dispatch so the
router sees the server's committed busy horizon immediately, exactly as
the eager loop advertised it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Set,
)

from ..engine import Engine, EventKind

from .metrics import (
    LatencyStats,
    ResilienceStats,
    ServingMetrics,
    response_throughput,
)
from .request import Request, RequestState
from .scheduler import BatchScheduler, CostFn, batch_execution_cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..observability import MetricsRegistry
    from ..resilience import ResilienceConfig


class RoutingPolicy(str, enum.Enum):
    ROUND_ROBIN = "round_robin"
    LEAST_QUEUED = "least_queued"
    LEAST_WORK = "least_work"
    LENGTH_AWARE = "length_aware"


@dataclass
class ServerState:
    """One GPU server: private queue + busy horizon + its own scheduler."""

    server_id: int
    scheduler: BatchScheduler
    queue: List[Request] = field(default_factory=list)
    busy_until: float = 0.0
    completed: int = 0

    def pending_work_s(self, cost_fn: CostFn, now: float) -> float:
        """Remaining busy time plus a no-batching estimate of the queue."""
        queued = sum(cost_fn(r.seq_len, 1) for r in self.queue)
        return max(0.0, self.busy_until - now) + queued


class ClusterRouter:
    """Assigns arriving requests to servers per the routing policy.

    ``healthy`` (optional) restricts the candidate set to live replicas:
    estimates (queue length, pending work) are computed over that set only,
    so a dead or breaker-open server neither receives work nor skews the
    balance.  When every replica is unhealthy the router falls back to the
    full set — queueing on a downed server beats dropping on the floor.
    """

    def __init__(
        self,
        policy: RoutingPolicy,
        num_servers: int,
        cost_fn: CostFn,
        max_len: int = 512,
    ) -> None:
        if num_servers <= 0:
            raise ValueError(f"num_servers must be positive, got {num_servers}")
        self.policy = policy
        self.num_servers = num_servers
        self.cost_fn = cost_fn
        self.max_len = max_len
        self._next = 0

    def route(self, request: Request, servers: Sequence[ServerState],
              now: float, healthy: Optional[Set[int]] = None) -> int:
        if healthy is not None and (not healthy
                                    or len(healthy) >= self.num_servers):
            healthy = None  # all dead or all alive: no restriction
        candidates = (sorted(healthy) if healthy is not None
                      else range(self.num_servers))
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            for _ in range(self.num_servers):
                chosen = self._next % self.num_servers
                self._next += 1
                if healthy is None or chosen in healthy:
                    return chosen
            return self._next % self.num_servers  # pragma: no cover - unreachable
        if self.policy is RoutingPolicy.LEAST_QUEUED:
            return min(candidates, key=lambda i: len(servers[i].queue))
        if self.policy is RoutingPolicy.LEAST_WORK:
            return min(
                candidates,
                key=lambda i: servers[i].pending_work_s(self.cost_fn, now),
            )
        if self.policy is RoutingPolicy.LENGTH_AWARE:
            band = min(
                self.num_servers - 1,
                request.seq_len * self.num_servers // (self.max_len + 1),
            )
            if healthy is None or band in healthy:
                return band
            # Nearest healthy band (ties -> lower id) keeps length
            # clustering as tight as the outage allows.
            return min(candidates, key=lambda i: (abs(i - band), i))
        raise ValueError(f"unknown routing policy {self.policy}")  # pragma: no cover


@dataclass(frozen=True)
class ClusterMetrics:
    """Cluster-wide outcome plus per-server balance statistics."""

    serving: ServingMetrics
    per_server_completed: List[int]

    @property
    def balance_ratio(self) -> float:
        """max/min completed per server (1.0 = perfectly balanced)."""
        low = min(self.per_server_completed)
        return max(self.per_server_completed) / max(low, 1)


def simulate_cluster(
    requests: Sequence[Request],
    num_servers: int,
    scheduler_factory: Callable[[], BatchScheduler],
    cost_fn: CostFn,
    policy: RoutingPolicy = RoutingPolicy.LEAST_WORK,
    max_batch: int = 20,
    duration_s: Optional[float] = None,
    max_len: int = 512,
    resilience: Optional["ResilienceConfig"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> ClusterMetrics:
    """Event-driven simulation of a multi-server cluster.

    Each server batches its own queue with its own scheduler whenever it
    goes idle (hungry policy); the router assigns requests on arrival.

    With ``resilience`` set, crashed replicas fail their queued work fast
    (retried elsewhere via the retry policy), per-server circuit breakers
    steer the router away from failing replicas, expired requests are
    dropped at admission, and execution slows under latency spikes.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    arrivals = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    servers = [ServerState(i, scheduler_factory()) for i in range(num_servers)]
    router = ClusterRouter(policy, num_servers, cost_fn, max_len=max_len)

    res = resilience
    faults = res.faults if res is not None else None
    breakers = None
    if res is not None and res.breaker_factory is not None:
        breakers = [res.breaker_factory(i) for i in range(num_servers)]
    retry_state = None
    if res is not None and res.retry is not None:
        from ..resilience.retry import RetryState  # deferred: avoids cycle

        retry_state = RetryState(res.retry)

    engine = Engine()
    backlog_at_horizon: Optional[int] = None
    arrivals_left = len(arrivals)

    def handle_failure(r: Request, server_id: int, now: float) -> None:
        """One attempt failed on ``server_id``: retry elsewhere or give up."""
        if breakers is not None:
            breakers[server_id].record(False, now)
        retry_at = (retry_state.next_retry_at(r, now)
                    if retry_state is not None else None)
        if retry_at is None:
            r.resolve(RequestState.FAILED)
            if metrics is not None:
                metrics.counter("cluster_requests_dropped_total",
                                reason="failed").inc()
            return
        r.attempt += 1
        engine.schedule(retry_at, EventKind.RETRY, on_retry, r)
        if metrics is not None:
            metrics.counter("cluster_retries_total").inc()

    def run_server(server: ServerState, now: float) -> None:
        """If idle with work queued, batch the whole queue and commit a
        round: the timeline is projected at dispatch (so routing sees the
        busy horizon immediately), then an engine task walks it, booking
        completions and failures at their true virtual times."""
        if server.busy_until > now or not server.queue:
            return
        sid = server.server_id
        if faults is not None and faults.crashed(sid, now):
            # Crashed replica: fail the queue fast and wake at recovery.
            failing, server.queue = server.queue, []
            for r in failing:
                handle_failure(r, sid, now)
            recover = faults.crash_end(sid, now)
            server.busy_until = recover
            engine.schedule(recover, EventKind.WAKE,
                            lambda _ev, s=server: run_server(s, engine.now))
            return
        taken, server.queue = server.queue, []
        if res is not None:
            alive: List[Request] = []
            for r in taken:
                if r.expired(now):
                    r.resolve(RequestState.TIMED_OUT)
                    if metrics is not None:
                        metrics.counter("cluster_requests_dropped_total",
                                        reason="timed_out").inc()
                else:
                    alive.append(r)
            taken = alive
            if not taken:
                return
        batches = server.scheduler.schedule(taken, cost_fn, max_batch)
        # Project the round's deterministic timeline: per-batch windows
        # under the fault plan's latency multipliers, truncated at the
        # first crash.  Costs and fault draws depend only on timestamps,
        # so the projection equals what execution will observe.
        plan: List[tuple] = []
        cursor = now
        crashed_at: Optional[float] = None
        for batch in batches:
            exec_s = batch_execution_cost(batch, cost_fn)
            if faults is not None:
                factor = faults.latency_multiplier(sid, cursor)
                if factor != 1.0:
                    exec_s *= factor
                crashed_at = faults.crashed_during(sid, cursor,
                                                   cursor + exec_s)
            if crashed_at is not None:
                break
            plan.append((batch, cursor, cursor + exec_s))
            cursor = cursor + exec_s
        doomed = batches[len(plan):]
        if crashed_at is not None:
            server.busy_until = faults.crash_end(sid, crashed_at)
        else:
            server.busy_until = cursor

        def round_task():
            for batch, started, ends in plan:
                for r in batch.requests:
                    r.start_s = started
                yield ends - engine.now
                for r in batch.requests:
                    if faults is not None and faults.attempt_fails(
                            r.req_id, r.attempt, sid, started):
                        handle_failure(r, sid, engine.now)
                        continue
                    r.resolve(RequestState.COMPLETED, engine.now)
                    server.completed += 1
                    if breakers is not None:
                        breakers[sid].record(True, engine.now)
            if crashed_at is not None:
                # The crash takes the rest of the round down; sleep out
                # the outage before going idle again.
                if crashed_at > engine.now:
                    yield crashed_at - engine.now
                for later in doomed:
                    for r in later.requests:
                        handle_failure(r, sid, crashed_at)
                if server.busy_until > engine.now:
                    yield server.busy_until - engine.now
            run_server(server, engine.now)

        engine.spawn(round_task(), name=f"server{sid}-round")

    def healthy_set(now: float) -> Optional[Set[int]]:
        if res is None:
            return None
        healthy = {
            i for i in range(num_servers)
            if not (faults is not None and faults.crashed(i, now))
            and (breakers is None or breakers[i].allow(now))
        }
        return healthy

    def on_arrival(event) -> None:
        nonlocal arrivals_left
        request = event.payload
        now = engine.now
        target = router.route(request, servers, now,
                              healthy=healthy_set(now))
        servers[target].queue.append(request)
        arrivals_left -= 1
        run_server(servers[target], now)

    def on_retry(event) -> None:
        request = event.payload
        now = engine.now
        target = router.route(request, servers, now,
                              healthy=healthy_set(now))
        servers[target].queue.append(request)
        run_server(servers[target], now)

    def snapshot_backlog(_event) -> None:
        nonlocal backlog_at_horizon
        if (backlog_at_horizon is None and arrivals_left == 0
                and engine.now >= horizon):
            backlog_at_horizon = sum(len(s.queue) for s in servers)

    for request in arrivals:
        engine.schedule(request.arrival_s, EventKind.ARRIVAL, on_arrival,
                        request)
    engine.add_dispatch_hook(snapshot_backlog)
    engine.run()

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    # Cluster servers drain their queue into in-flight batches immediately,
    # so queued-request counts understate pressure; saturation is judged by
    # how long past the arrival horizon the cluster needs to finish.
    last_completion = max(
        (r.completion_s for r in arrivals if r.completion_s is not None),
        default=0.0,
    )
    resilience_stats: Optional[ResilienceStats] = None
    if res is not None:
        resilience_stats = ResilienceStats(
            retries=retry_state.retries_used if retry_state is not None else 0,
            timed_out=sum(1 for r in arrivals
                          if r.state is RequestState.TIMED_OUT),
            failed=sum(1 for r in arrivals if r.state is RequestState.FAILED),
            shed=sum(1 for r in arrivals if r.state is RequestState.SHED),
            breaker_transitions=(sum(len(b.transitions) for b in breakers)
                                 if breakers is not None else 0),
        )
    serving = ServingMetrics(
        system=f"cluster[{policy.value}x{num_servers}]",
        request_rate=len(arrivals) / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=(last_completion - horizon) > 0.5,
        completed=sum(1 for r in arrivals if r.is_completed),
        offered=len(arrivals),
        backlog_at_end=backlog_at_horizon,
        resilience=resilience_stats,
    )
    if metrics is not None:
        metrics.gauge("cluster_response_throughput").set(throughput)
        for s in servers:
            metrics.gauge("cluster_server_completed",
                          server=str(s.server_id)).set(s.completed)
        if resilience_stats is not None:
            metrics.counter("cluster_timed_out_total").inc(
                resilience_stats.timed_out)
            metrics.counter("cluster_failed_total").inc(
                resilience_stats.failed)
    return ClusterMetrics(
        serving=serving,
        per_server_completed=[s.completed for s in servers],
    )
