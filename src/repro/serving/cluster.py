"""Multi-server serving: a Nexus-style upper-level load balancer.

The paper (§5) assumes "a multi-server environment [where] an upper-level
load balancer as the one in Nexus can ensure that the requests assigned to
each server will not be overloaded".  This module builds that layer: a
cluster of independent GPU servers, each running its own batch scheduler
over its own queue, fed by a routing policy.

Routing policies
----------------
``round_robin``      cycle through servers.
``least_queued``     fewest pending requests.
``least_work``       least estimated pending work (queue cost + remaining
                     busy time) — the Nexus-style choice.
``length_aware``     partition servers by sequence-length band, so each
                     server sees near-homogeneous lengths and padding waste
                     collapses even under naive batching (the clustering
                     effect the DP scheduler achieves within one server).

Resilience (:class:`repro.resilience.ResilienceConfig`): the router skips
replicas that are crashed or whose circuit breaker is open — pending-work
estimates are taken over the healthy set only — and failed attempts
re-enqueue through the retry policy, re-routed on their next try.  With
``resilience=None`` the simulation is byte-identical to the fault-free
code path.

Migration note (event engine): the private ``heapq`` event loop is gone —
arrivals and retry wake-ups are engine events and each server's
batch-and-execute round is a cooperative engine task that sleeps through
each batch's execution window, so completions, breaker records and
failure retries are committed at their true virtual times instead of all
at dispatch.  The round's timeline (per-batch costs, fault multipliers,
crash truncation) is still projected deterministically at dispatch so the
router sees the server's committed busy horizon immediately, exactly as
the eager loop advertised it.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    List,
    Optional,
    Sequence,
    Set,
)

from ..engine import Engine, EngineFaultInjector, EventKind

from .metrics import (
    LatencyStats,
    ResilienceStats,
    ServingMetrics,
    response_throughput,
)
from .request import Request, RequestState
from .scheduler import BatchScheduler, CostFn, batch_execution_cost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..memory.kv_arena import KVCacheArena
    from ..observability import MetricsRegistry, Tracer
    from ..resilience import ResilienceConfig
    from .continuous import GenRequest, GenServingMetrics


class RoutingPolicy(str, enum.Enum):
    ROUND_ROBIN = "round_robin"
    LEAST_QUEUED = "least_queued"
    LEAST_WORK = "least_work"
    LENGTH_AWARE = "length_aware"


@dataclass
class ServerState:
    """One GPU server: private queue + busy horizon + its own scheduler."""

    server_id: int
    scheduler: BatchScheduler
    queue: List[Request] = field(default_factory=list)
    busy_until: float = 0.0
    completed: int = 0

    def pending_work_s(self, cost_fn: CostFn, now: float) -> float:
        """Remaining busy time plus a no-batching estimate of the queue."""
        queued = sum(cost_fn(r.seq_len, 1) for r in self.queue)
        return max(0.0, self.busy_until - now) + queued


class ClusterRouter:
    """Assigns arriving requests to servers per the routing policy.

    ``healthy`` (optional) restricts the candidate set to live replicas:
    estimates (queue length, pending work) are computed over that set only,
    so a dead or breaker-open server neither receives work nor skews the
    balance.  When every replica is unhealthy the router falls back to the
    full set — queueing on a downed server beats dropping on the floor.
    """

    def __init__(
        self,
        policy: RoutingPolicy,
        num_servers: int,
        cost_fn: CostFn,
        max_len: int = 512,
    ) -> None:
        if num_servers <= 0:
            raise ValueError(f"num_servers must be positive, got {num_servers}")
        self.policy = policy
        self.num_servers = num_servers
        self.cost_fn = cost_fn
        self.max_len = max_len
        self._next = 0

    def route(self, request: Request, servers: Sequence[ServerState],
              now: float, healthy: Optional[Set[int]] = None) -> int:
        if healthy is not None and (not healthy
                                    or len(healthy) >= self.num_servers):
            healthy = None  # all dead or all alive: no restriction
        candidates = (sorted(healthy) if healthy is not None
                      else range(self.num_servers))
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            for _ in range(self.num_servers):
                chosen = self._next % self.num_servers
                self._next += 1
                if healthy is None or chosen in healthy:
                    return chosen
            return self._next % self.num_servers  # pragma: no cover - unreachable
        if self.policy is RoutingPolicy.LEAST_QUEUED:
            return min(candidates, key=lambda i: len(servers[i].queue))
        if self.policy is RoutingPolicy.LEAST_WORK:
            return min(
                candidates,
                key=lambda i: servers[i].pending_work_s(self.cost_fn, now),
            )
        if self.policy is RoutingPolicy.LENGTH_AWARE:
            band = min(
                self.num_servers - 1,
                request.seq_len * self.num_servers // (self.max_len + 1),
            )
            if healthy is None or band in healthy:
                return band
            # Nearest healthy band (ties -> lower id) keeps length
            # clustering as tight as the outage allows.
            return min(candidates, key=lambda i: (abs(i - band), i))
        raise ValueError(f"unknown routing policy {self.policy}")  # pragma: no cover


@dataclass(frozen=True)
class ClusterMetrics:
    """Cluster-wide outcome plus per-server balance statistics."""

    serving: ServingMetrics
    per_server_completed: List[int]

    @property
    def balance_ratio(self) -> float:
        """max/min completed per server (1.0 = perfectly balanced)."""
        low = min(self.per_server_completed)
        return max(self.per_server_completed) / max(low, 1)


def simulate_cluster(
    requests: Sequence[Request],
    num_servers: int,
    scheduler_factory: Callable[[], BatchScheduler],
    cost_fn: CostFn,
    policy: RoutingPolicy = RoutingPolicy.LEAST_WORK,
    max_batch: int = 20,
    duration_s: Optional[float] = None,
    max_len: int = 512,
    resilience: Optional["ResilienceConfig"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> ClusterMetrics:
    """Event-driven simulation of a multi-server cluster.

    Each server batches its own queue with its own scheduler whenever it
    goes idle (hungry policy); the router assigns requests on arrival.

    With ``resilience`` set, crashed replicas fail their queued work fast
    (retried elsewhere via the retry policy), per-server circuit breakers
    steer the router away from failing replicas, expired requests are
    dropped at admission, and execution slows under latency spikes.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    arrivals = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    servers = [ServerState(i, scheduler_factory()) for i in range(num_servers)]
    router = ClusterRouter(policy, num_servers, cost_fn, max_len=max_len)

    res = resilience
    faults = res.faults if res is not None else None
    # One engine-level injector per replica: the same FaultPlan bound to
    # each server id, so fault queries go through the shared engine code
    # path instead of per-simulator plumbing.
    injectors: Optional[List[EngineFaultInjector]] = None
    if faults is not None and not faults.empty:
        injectors = [EngineFaultInjector(faults, i)
                     for i in range(num_servers)]
    breakers = None
    if res is not None and res.breaker_factory is not None:
        breakers = [res.breaker_factory(i) for i in range(num_servers)]
    retry_state = None
    if res is not None and res.retry is not None:
        from ..resilience.retry import RetryState  # deferred: avoids cycle

        retry_state = RetryState(res.retry)

    engine = Engine()
    backlog_at_horizon: Optional[int] = None
    arrivals_left = len(arrivals)

    def handle_failure(r: Request, server_id: int, now: float) -> None:
        """One attempt failed on ``server_id``: retry elsewhere or give up."""
        if breakers is not None:
            breakers[server_id].record(False, now)
        retry_at = (retry_state.next_retry_at(r, now)
                    if retry_state is not None else None)
        if retry_at is None:
            r.resolve(RequestState.FAILED)
            if metrics is not None:
                metrics.counter("cluster_requests_dropped_total",
                                reason="failed").inc()
            return
        r.attempt += 1
        engine.schedule(retry_at, EventKind.RETRY, on_retry, r)
        if metrics is not None:
            metrics.counter("cluster_retries_total").inc()

    def run_server(server: ServerState, now: float) -> None:
        """If idle with work queued, batch the whole queue and commit a
        round: the timeline is projected at dispatch (so routing sees the
        busy horizon immediately), then an engine task walks it, booking
        completions and failures at their true virtual times."""
        if server.busy_until > now or not server.queue:
            return
        sid = server.server_id
        if injectors is not None and injectors[sid].crashed(now):
            # Crashed replica: fail the queue fast and wake at recovery.
            failing, server.queue = server.queue, []
            for r in failing:
                handle_failure(r, sid, now)
            recover = injectors[sid].crash_end(now)
            server.busy_until = recover
            engine.schedule(recover, EventKind.WAKE,
                            lambda _ev, s=server: run_server(s, engine.now))
            return
        taken, server.queue = server.queue, []
        if res is not None:
            alive: List[Request] = []
            for r in taken:
                if r.expired(now):
                    r.resolve(RequestState.TIMED_OUT)
                    if metrics is not None:
                        metrics.counter("cluster_requests_dropped_total",
                                        reason="timed_out").inc()
                else:
                    alive.append(r)
            taken = alive
            if not taken:
                return
        batches = server.scheduler.schedule(taken, cost_fn, max_batch)
        # Project the round's deterministic timeline: per-batch windows
        # under the fault plan's latency multipliers, truncated at the
        # first crash.  Costs and fault draws depend only on timestamps,
        # so the projection equals what execution will observe.
        plan: List[tuple] = []
        cursor = now
        crashed_at: Optional[float] = None
        for batch in batches:
            exec_s = batch_execution_cost(batch, cost_fn)
            if injectors is not None:
                exec_s = injectors[sid].stretch(exec_s, cursor)
                crashed_at = injectors[sid].crashed_during(cursor,
                                                           cursor + exec_s)
            if crashed_at is not None:
                break
            plan.append((batch, cursor, cursor + exec_s))
            cursor = cursor + exec_s
        doomed = batches[len(plan):]
        if crashed_at is not None:
            server.busy_until = injectors[sid].crash_end(crashed_at)
        else:
            server.busy_until = cursor

        def round_task():
            for batch, started, ends in plan:
                for r in batch.requests:
                    r.start_s = started
                yield ends - engine.now
                for r in batch.requests:
                    if injectors is not None and injectors[sid].attempt_fails(
                            r.req_id, r.attempt, started):
                        handle_failure(r, sid, engine.now)
                        continue
                    r.resolve(RequestState.COMPLETED, engine.now)
                    server.completed += 1
                    if breakers is not None:
                        breakers[sid].record(True, engine.now)
            if crashed_at is not None:
                # The crash takes the rest of the round down; sleep out
                # the outage before going idle again.
                if crashed_at > engine.now:
                    yield crashed_at - engine.now
                for later in doomed:
                    for r in later.requests:
                        handle_failure(r, sid, crashed_at)
                if server.busy_until > engine.now:
                    yield server.busy_until - engine.now
            run_server(server, engine.now)

        engine.spawn(round_task(), name=f"server{sid}-round")

    def healthy_set(now: float) -> Optional[Set[int]]:
        if res is None:
            return None
        healthy = {
            i for i in range(num_servers)
            if not (injectors is not None and injectors[i].crashed(now))
            # probe_available is the pure query; the reserving allow()
            # runs only when work is committed to the chosen replica.
            and (breakers is None or breakers[i].probe_available(now))
        }
        return healthy

    def commit_route(request: Request, now: float) -> int:
        """Route and commit: reserves the half-open probe slot (if any)
        of the chosen replica at the moment work is actually sent."""
        target = router.route(request, servers, now,
                              healthy=healthy_set(now))
        if breakers is not None:
            breakers[target].allow(now)
        return target

    def on_arrival(event) -> None:
        nonlocal arrivals_left
        request = event.payload
        now = engine.now
        target = commit_route(request, now)
        servers[target].queue.append(request)
        arrivals_left -= 1
        run_server(servers[target], now)

    def on_retry(event) -> None:
        request = event.payload
        now = engine.now
        target = commit_route(request, now)
        servers[target].queue.append(request)
        run_server(servers[target], now)

    def snapshot_backlog(_event) -> None:
        nonlocal backlog_at_horizon
        if (backlog_at_horizon is None and arrivals_left == 0
                and engine.now >= horizon):
            backlog_at_horizon = sum(len(s.queue) for s in servers)

    for request in arrivals:
        engine.schedule(request.arrival_s, EventKind.ARRIVAL, on_arrival,
                        request)
    engine.add_dispatch_hook(snapshot_backlog)
    engine.run()

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    # Cluster servers drain their queue into in-flight batches immediately,
    # so queued-request counts understate pressure; saturation is judged by
    # how long past the arrival horizon the cluster needs to finish.
    last_completion = max(
        (r.completion_s for r in arrivals if r.completion_s is not None),
        default=0.0,
    )
    resilience_stats: Optional[ResilienceStats] = None
    if res is not None:
        resilience_stats = ResilienceStats(
            retries=retry_state.retries_used if retry_state is not None else 0,
            timed_out=sum(1 for r in arrivals
                          if r.state is RequestState.TIMED_OUT),
            failed=sum(1 for r in arrivals if r.state is RequestState.FAILED),
            shed=sum(1 for r in arrivals if r.state is RequestState.SHED),
            breaker_transitions=(sum(len(b.transitions) for b in breakers)
                                 if breakers is not None else 0),
        )
    serving = ServingMetrics(
        system=f"cluster[{policy.value}x{num_servers}]",
        request_rate=len(arrivals) / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=(last_completion - horizon) > 0.5,
        completed=sum(1 for r in arrivals if r.is_completed),
        offered=len(arrivals),
        backlog_at_end=backlog_at_horizon,
        resilience=resilience_stats,
    )
    if metrics is not None:
        metrics.gauge("cluster_response_throughput").set(throughput)
        for s in servers:
            metrics.gauge("cluster_server_completed",
                          server=str(s.server_id)).set(s.completed)
        if resilience_stats is not None:
            metrics.counter("cluster_timed_out_total").inc(
                resilience_stats.timed_out)
            metrics.counter("cluster_failed_total").inc(
                resilience_stats.failed)
    return ClusterMetrics(
        serving=serving,
        per_server_completed=[s.completed for s in servers],
    )


# ---------------------------------------------------------------------------
# Generation cluster: continuous-batching replicas with KV-loss failover
# ---------------------------------------------------------------------------


@dataclass
class GenReplicaState:
    """One generation replica: its KV arena plus continuous-batching state.

    ``running`` tracks whether the replica's cooperative engine task is
    live; an idle replica is re-spawned by the next arrival or retry
    routed to it.
    """

    server_id: int
    arena: "KVCacheArena"
    queue: Deque["GenRequest"] = field(default_factory=deque)
    active: List["GenRequest"] = field(default_factory=list)
    running: bool = False
    completed: int = 0

    @property
    def load(self) -> int:
        """Requests this replica is responsible for right now."""
        return len(self.queue) + len(self.active)


@dataclass(frozen=True)
class GenClusterMetrics:
    """Generation-cluster outcome: serving metrics plus balance and the
    end-of-run KV leak audit (must be empty — no region outlives its
    request across crashes and preemptions)."""

    serving: "GenServingMetrics"
    per_replica_completed: List[int]
    kv_leaks: List[str]

    @property
    def balance_ratio(self) -> float:
        low = min(self.per_replica_completed)
        return max(self.per_replica_completed) / max(low, 1)


def simulate_generation_cluster(
    requests: Sequence["GenRequest"],
    num_replicas: int,
    runtime,
    arena_factory: Callable[[int], "KVCacheArena"],
    duration_s: Optional[float] = None,
    resilience: Optional["ResilienceConfig"] = None,
    admit_per_step: Optional[int] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    system_name: str = "Turbo-Gen-Cluster",
) -> GenClusterMetrics:
    """Continuous-batching replicas behind a least-loaded router.

    Each replica runs the iteration-level decode loop of
    :class:`~repro.serving.continuous.ContinuousBatchingServer` as a
    cooperative engine task against its own :class:`KVCacheArena`.  With
    ``resilience`` set, faults reach every replica through its
    :class:`~repro.engine.EngineFaultInjector`:

    * latency spikes stretch prefill/decode windows;
    * a replica crash evicts every in-flight request's KV region
      (``arena.preempt``) and fails queued work fast — both re-enter
      through the retry path and are re-routed to healthy replicas, where
      their prefix (prompt + tokens generated before the crash) is
      recomputed and charged honestly (``tokens_recomputed``);
    * transient failures strike at the prefill commit;
    * per-replica breakers steer the router away from failing replicas
      (pure ``probe_available`` scans; the reserving ``allow`` runs at
      routing commit).
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    if num_replicas <= 0:
        raise ValueError(f"num_replicas must be positive, got {num_replicas}")
    from .continuous import _GenLoopBase, _window_overlap

    arrivals: List["GenRequest"] = sorted(requests,
                                          key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    res = resilience
    faults = res.faults if res is not None else None
    injectors: Optional[List[EngineFaultInjector]] = None
    if faults is not None and not faults.empty:
        injectors = [EngineFaultInjector(faults, i)
                     for i in range(num_replicas)]
    breakers = None
    if res is not None and res.breaker_factory is not None:
        breakers = [res.breaker_factory(i) for i in range(num_replicas)]
    retry_state = None
    if res is not None and res.retry is not None:
        from ..resilience.retry import RetryState  # deferred: avoids cycle

        retry_state = RetryState(res.retry)

    helper = _GenLoopBase(runtime, tracer, metrics, system_name,
                          warmup_fraction=0.1)
    engine = Engine()
    replicas = [GenReplicaState(i, arena_factory(i))
                for i in range(num_replicas)]
    busy = 0.0
    tokens = decode_steps = prefills = 0
    preemptions = tokens_recomputed = attempts_failed = 0

    def fail_attempt(r: "GenRequest", sid: int, now: float) -> None:
        """One attempt died on ``sid``: breaker learns, retry re-routes."""
        if breakers is not None:
            breakers[sid].record(False, now)
        retry_at = (retry_state.next_retry_at(r, now)
                    if retry_state is not None else None)
        if retry_at is None:
            helper._fail(r, now)
            return
        r.attempt += 1
        engine.schedule(retry_at, EventKind.RETRY, on_retry, r)

    def evict_active(rep: GenReplicaState, now: float) -> None:
        """Crash: every in-flight request loses its KV region."""
        nonlocal preemptions
        for r in rep.active:
            rep.arena.preempt(r.req_id)
            preemptions += 1
            fail_attempt(r, rep.server_id, now)
        rep.active = []

    def replica_loop(rep: GenReplicaState):
        nonlocal busy, tokens, decode_steps, prefills
        nonlocal preemptions, tokens_recomputed, attempts_failed
        sid = rep.server_id
        inj = injectors[sid] if injectors is not None else None
        while True:
            now = engine.now
            if inj is not None and inj.crashed(now):
                # Down: in-flight KV is gone, queued work fails fast;
                # everything re-routes through retry while this replica
                # sleeps out the outage.
                evict_active(rep, now)
                while rep.queue:
                    fail_attempt(rep.queue.popleft(), sid, now)
                yield inj.crash_end(now) - now
                continue
            # KV-aware admission (restore path for crash victims).
            admitted: List["GenRequest"] = []
            while rep.queue:
                if admit_per_step is not None and \
                        len(admitted) >= admit_per_step:
                    break
                r = rep.queue[0]
                if r.generated > 0:
                    ok = rep.arena.restore(r.req_id, r.seq_len + r.generated,
                                           r.seq_len + r.max_new_tokens)
                    if not ok and not rep.arena.fits_at_all(
                        r.seq_len + r.generated,
                        r.seq_len + r.max_new_tokens,
                    ):
                        rep.queue.popleft()
                        helper._fail(r, engine.now)
                        continue
                else:
                    ok = rep.arena.admit(r.req_id, r.seq_len,
                                         r.seq_len + r.max_new_tokens)
                if not ok:
                    break
                rep.queue.popleft()
                admitted.append(r)
            if admitted:
                b = len(admitted)
                prompt = max(r.seq_len + r.generated for r in admitted)
                started = engine.now
                dur = runtime.prefill_latency(b, prompt)
                if inj is not None:
                    dur = inj.stretch(dur, started)
                    crash_at = inj.crashed_during(started, started + dur)
                    if crash_at is not None:
                        # The crash lands mid-prefill: the pass is lost.
                        yield crash_at - started
                        for r in admitted:
                            rep.arena.preempt(r.req_id)
                            preemptions += 1
                            fail_attempt(r, sid, engine.now)
                        continue
                yield dur
                clock = engine.now
                busy += _window_overlap(started, dur, horizon)
                prefills += 1
                for r in admitted:
                    if inj is not None and inj.attempt_fails(
                        r.req_id, r.attempt, started
                    ):
                        attempts_failed += 1
                        rep.arena.preempt(r.req_id)
                        fail_attempt(r, sid, clock)
                        continue
                    if breakers is not None:
                        breakers[sid].record(True, clock)
                    if r.first_token_s is None:
                        r.start_s = started
                        r.generated = 1
                        r.first_token_s = clock
                    else:
                        # Resumed on this replica after losing KV
                        # elsewhere: the prefix was recomputed here.
                        tokens_recomputed += r.seq_len + r.generated
                        r.generated += 1
                    tokens += 1
                    if r.generated >= r.max_new_tokens:
                        helper._complete(r, clock)
                        rep.completed += 1
                        rep.arena.release(r.req_id)
                    else:
                        rep.active.append(r)
                continue
            if rep.active:
                b = len(rep.active)
                past = max(r.seq_len + r.generated for r in rep.active)
                started = engine.now
                dur = runtime.decode_step_latency(b, past)
                if inj is not None:
                    dur = inj.stretch(dur, started)
                    crash_at = inj.crashed_during(started, started + dur)
                    if crash_at is not None:
                        # Mid-step crash: this step's tokens are lost.
                        yield crash_at - started
                        evict_active(rep, engine.now)
                        continue
                yield dur
                clock = engine.now
                busy += _window_overlap(started, dur, horizon)
                decode_steps += 1
                tokens += b
                survivors: List["GenRequest"] = []
                for r in rep.active:
                    r.generated += 1
                    if r.generated >= r.max_new_tokens:
                        helper._complete(r, clock)
                        rep.completed += 1
                        rep.arena.release(r.req_id)
                    else:
                        rep.arena.append(r.req_id, 1)
                        survivors.append(r)
                rep.active = survivors
                continue
            break
        rep.running = False

    def kick(rep: GenReplicaState) -> None:
        if not rep.running:
            rep.running = True
            engine.spawn(replica_loop(rep),
                         name=f"gen-replica{rep.server_id}")

    def healthy_now() -> Optional[Set[int]]:
        if res is None:
            return None
        now = engine.now
        healthy = {
            i for i in range(num_replicas)
            if not (injectors is not None and injectors[i].crashed(now))
            and (breakers is None or breakers[i].probe_available(now))
        }
        # All replicas unhealthy: queueing somewhere beats dropping.
        return healthy or None

    def commit_route(r: "GenRequest") -> GenReplicaState:
        healthy = healthy_now()
        candidates = (sorted(healthy) if healthy is not None
                      else range(num_replicas))
        target = min(candidates, key=lambda i: (replicas[i].load, i))
        if breakers is not None:
            breakers[target].allow(engine.now)
        return replicas[target]

    def on_arrival(event) -> None:
        r = event.payload
        helper._begin_request(r)
        rep = commit_route(r)
        if not rep.arena.fits_at_all(r.seq_len,
                                     r.seq_len + r.max_new_tokens):
            helper._shed(r, engine.now)
            return
        rep.queue.append(r)
        kick(rep)

    def on_retry(event) -> None:
        r = event.payload
        rep = commit_route(r)
        rep.queue.append(r)
        kick(rep)

    for r in arrivals:
        engine.schedule(r.arrival_s, EventKind.ARRIVAL, on_arrival, r)
    engine.run()

    serving = helper._finalize(
        arrivals, horizon, engine.now, busy, decode_steps, prefills,
        tokens,
        kv_denials=sum(rep.arena.denials for rep in replicas),
        kv_peak_bytes=max(rep.arena.peak_used_bytes for rep in replicas),
        preemptions=preemptions,
        tokens_recomputed=tokens_recomputed,
        retries=retry_state.retries_used if retry_state is not None else 0,
        attempts_failed=attempts_failed,
    )
    # Leak audit: at end of run no region may outlive its request.
    kv_leaks: List[str] = []
    for rep in replicas:
        kv_leaks.extend(rep.arena.verify(live_req_ids=[]))
    return GenClusterMetrics(
        serving=serving,
        per_replica_completed=[rep.completed for rep in replicas],
        kv_leaks=kv_leaks,
    )
