"""Multi-server serving: a Nexus-style upper-level load balancer.

The paper (§5) assumes "a multi-server environment [where] an upper-level
load balancer as the one in Nexus can ensure that the requests assigned to
each server will not be overloaded".  This module builds that layer: a
cluster of independent GPU servers, each running its own batch scheduler
over its own queue, fed by a routing policy.

Routing policies
----------------
``round_robin``      cycle through servers.
``least_queued``     fewest pending requests.
``least_work``       least estimated pending work (queue cost + remaining
                     busy time) — the Nexus-style choice.
``length_aware``     partition servers by sequence-length band, so each
                     server sees near-homogeneous lengths and padding waste
                     collapses even under naive batching (the clustering
                     effect the DP scheduler achieves within one server).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .metrics import LatencyStats, ServingMetrics, response_throughput
from .request import Request
from .scheduler import BatchScheduler, CostFn, batch_execution_cost


class RoutingPolicy(str, enum.Enum):
    ROUND_ROBIN = "round_robin"
    LEAST_QUEUED = "least_queued"
    LEAST_WORK = "least_work"
    LENGTH_AWARE = "length_aware"


@dataclass
class ServerState:
    """One GPU server: private queue + busy horizon + its own scheduler."""

    server_id: int
    scheduler: BatchScheduler
    queue: List[Request] = field(default_factory=list)
    busy_until: float = 0.0
    completed: int = 0

    def pending_work_s(self, cost_fn: CostFn, now: float) -> float:
        """Remaining busy time plus a no-batching estimate of the queue."""
        queued = sum(cost_fn(r.seq_len, 1) for r in self.queue)
        return max(0.0, self.busy_until - now) + queued


class ClusterRouter:
    """Assigns arriving requests to servers per the routing policy."""

    def __init__(
        self,
        policy: RoutingPolicy,
        num_servers: int,
        cost_fn: CostFn,
        max_len: int = 512,
    ) -> None:
        if num_servers <= 0:
            raise ValueError(f"num_servers must be positive, got {num_servers}")
        self.policy = policy
        self.num_servers = num_servers
        self.cost_fn = cost_fn
        self.max_len = max_len
        self._next = 0

    def route(self, request: Request, servers: Sequence[ServerState],
              now: float) -> int:
        if self.policy is RoutingPolicy.ROUND_ROBIN:
            chosen = self._next % self.num_servers
            self._next += 1
            return chosen
        if self.policy is RoutingPolicy.LEAST_QUEUED:
            return min(range(self.num_servers), key=lambda i: len(servers[i].queue))
        if self.policy is RoutingPolicy.LEAST_WORK:
            return min(
                range(self.num_servers),
                key=lambda i: servers[i].pending_work_s(self.cost_fn, now),
            )
        if self.policy is RoutingPolicy.LENGTH_AWARE:
            band = min(
                self.num_servers - 1,
                request.seq_len * self.num_servers // (self.max_len + 1),
            )
            return band
        raise ValueError(f"unknown routing policy {self.policy}")  # pragma: no cover


@dataclass(frozen=True)
class ClusterMetrics:
    """Cluster-wide outcome plus per-server balance statistics."""

    serving: ServingMetrics
    per_server_completed: List[int]

    @property
    def balance_ratio(self) -> float:
        """max/min completed per server (1.0 = perfectly balanced)."""
        low = min(self.per_server_completed)
        return max(self.per_server_completed) / max(low, 1)


def simulate_cluster(
    requests: Sequence[Request],
    num_servers: int,
    scheduler_factory: Callable[[], BatchScheduler],
    cost_fn: CostFn,
    policy: RoutingPolicy = RoutingPolicy.LEAST_WORK,
    max_batch: int = 20,
    duration_s: Optional[float] = None,
    max_len: int = 512,
) -> ClusterMetrics:
    """Event-driven simulation of a multi-server cluster.

    Each server batches its own queue with its own scheduler whenever it
    goes idle (hungry policy); the router assigns requests on arrival.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    arrivals = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    servers = [ServerState(i, scheduler_factory()) for i in range(num_servers)]
    router = ClusterRouter(policy, num_servers, cost_fn, max_len=max_len)

    # Event heap holds (time, seq, kind, payload); kinds: arrival, idle.
    events: List[tuple] = []
    seq = 0
    for request in arrivals:
        events.append((request.arrival_s, seq, "arrival", request))
        seq += 1
    heapq.heapify(events)
    backlog_at_horizon: Optional[int] = None
    arrivals_left = len(arrivals)

    def run_server(server: ServerState, now: float) -> None:
        """If idle with work queued, batch-and-execute the whole queue."""
        nonlocal seq
        if server.busy_until > now or not server.queue:
            return
        taken, server.queue = server.queue, []
        batches = server.scheduler.schedule(taken, cost_fn, max_batch)
        clock = now
        for batch in batches:
            exec_s = batch_execution_cost(batch, cost_fn)
            for r in batch.requests:
                r.start_s = clock
            clock += exec_s
            for r in batch.requests:
                r.completion_s = clock
            server.completed += batch.size
        server.busy_until = clock
        heapq.heappush(events, (clock, seq, "idle", server.server_id))
        seq += 1

    while events:
        now, _, kind, payload = heapq.heappop(events)
        if kind == "arrival":
            request = payload
            target = router.route(request, servers, now)
            servers[target].queue.append(request)
            arrivals_left -= 1
            run_server(servers[target], now)
        else:  # idle
            run_server(servers[payload], now)
        if backlog_at_horizon is None and arrivals_left == 0 and now >= horizon:
            backlog_at_horizon = sum(len(s.queue) for s in servers)

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    # Cluster servers drain their queue into in-flight batches immediately,
    # so queued-request counts understate pressure; saturation is judged by
    # how long past the arrival horizon the cluster needs to finish.
    last_completion = max(
        (r.completion_s for r in arrivals if r.completion_s is not None),
        default=0.0,
    )
    serving = ServingMetrics(
        system=f"cluster[{policy.value}x{num_servers}]",
        request_rate=len(arrivals) / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=(last_completion - horizon) > 0.5,
        completed=sum(1 for r in arrivals if r.completion_s is not None),
        offered=len(arrivals),
        backlog_at_end=backlog_at_horizon,
    )
    return ClusterMetrics(
        serving=serving,
        per_server_completed=[s.completed for s in servers],
    )
