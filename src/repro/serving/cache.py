"""Response cache (the ``Resp Cache`` component of Fig. 2).

Like Clipper, frequent requests are answered from a cache of inference
results without touching the model.  The paper disables this during the
serving evaluation (we do too), but the component is part of the system,
so it ships with LRU eviction and hit statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

V = TypeVar("V")


class ResponseCache(Generic[V]):
    """Bounded LRU cache keyed by request payload."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[V]:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: V) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
