"""Response cache (the ``Resp Cache`` component of Fig. 2).

Like Clipper, frequent requests are answered from a cache of inference
results without touching the model.  The paper disables this during the
serving evaluation (we do too), but the component is part of the system,
so it ships with LRU eviction and hit statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Optional, TypeVar

V = TypeVar("V")


class ResponseCache(Generic[V]):
    """Bounded LRU cache keyed by request payload.

    When a :class:`~repro.observability.metrics.MetricsRegistry` is
    attached, every lookup updates ``{name}_cache_hits_total`` /
    ``{name}_cache_misses_total`` counters and a
    ``{name}_cache_hit_rate`` gauge, so dashboards see cache
    effectiveness without polling the object.
    """

    def __init__(self, capacity: int = 1024, metrics=None,
                 name: str = "response") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.metrics = metrics
        self.name = name

    def _record(self, hit: bool) -> None:
        if self.metrics is None:
            return
        which = "hits" if hit else "misses"
        self.metrics.counter(f"{self.name}_cache_{which}_total").inc()
        self.metrics.gauge(f"{self.name}_cache_hit_rate").set(self.hit_rate)

    def get(self, key: Hashable) -> Optional[V]:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            self._record(hit=True)
            return self._entries[key]
        self.misses += 1
        self._record(hit=False)
        return None

    def put(self, key: Hashable, value: V) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
