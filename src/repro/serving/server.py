"""Discrete-event serving simulation (Fig. 12 / Table 4 substrate).

Replaces the paper's gRPC/HTTP stack with virtual time: requests arrive by
timestamp into the message queue; whenever the simulated GPU is idle and
the trigger policy fires, the batch scheduler partitions the queued
requests and the batches execute back-to-back, each costing its profiled
latency.  Everything is deterministic given the workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .metrics import LatencyStats, ServingMetrics, response_throughput
from .mq import MessageQueue
from .policies import HungryPolicy, LazyPolicy, TriggerPolicy
from .request import Request
from .scheduler import BatchScheduler, CostFn, batch_execution_cost


@dataclass
class ServingConfig:
    """Knobs of the serving loop."""

    max_batch: int = 20
    policy: TriggerPolicy = field(default_factory=HungryPolicy)
    round_limit: Optional[int] = None  # max requests per scheduling round
    warmup_fraction: float = 0.1  # excluded from the throughput window

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def simulate_serving(
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    cost_fn: CostFn,
    config: Optional[ServingConfig] = None,
    duration_s: Optional[float] = None,
    system_name: Optional[str] = None,
    cache=None,
) -> ServingMetrics:
    """Run one serving simulation to completion.

    ``duration_s`` is the offered-load horizon (defaults to the last
    arrival); the simulation always drains the backlog so every request
    completes, and saturation is judged by whether the backlog at the end
    of the horizon kept growing.

    ``cache`` (a :class:`~repro.serving.cache.ResponseCache`) enables the
    Fig. 2 ``Resp Cache``: requests whose payload has a cached response
    complete at arrival without touching the model; model responses are
    cached on completion.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    config = config or ServingConfig()
    arrivals: List[Request] = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    queue = MessageQueue()
    clock = 0.0
    next_arrival = 0
    n = len(arrivals)
    backlog_at_horizon: Optional[int] = None
    busy_in_horizon = 0.0

    def ingest(now: float) -> None:
        nonlocal next_arrival, backlog_at_horizon
        while next_arrival < n and arrivals[next_arrival].arrival_s <= now:
            request = arrivals[next_arrival]
            next_arrival += 1
            if (cache is not None and request.payload is not None
                    and cache.get(request.payload) is not None):
                # Resp Cache hit: answered without evaluating the model.
                request.start_s = request.arrival_s
                request.completion_s = request.arrival_s
                continue
            queue.push(request)
        if backlog_at_horizon is None and now >= horizon and next_arrival >= n:
            backlog_at_horizon = len(queue)

    def execute(batches, with_ingest: bool = True) -> None:
        nonlocal clock, busy_in_horizon
        for batch in batches:
            exec_s = batch_execution_cost(batch, cost_fn)
            for r in batch.requests:
                r.start_s = clock
            busy_in_horizon += max(
                0.0, min(clock + exec_s, horizon) - min(clock, horizon)
            )
            clock += exec_s
            for r in batch.requests:
                r.completion_s = clock
                if cache is not None and r.payload is not None:
                    cache.put(r.payload, r.req_id)
            # Feedback hook for adaptive (Clipper-style AIMD) schedulers.
            observe = getattr(scheduler, "observe", None)
            if observe is not None:
                observe(batch, exec_s)
            if with_ingest:
                ingest(clock)

    ingest(clock)
    while next_arrival < n or queue:
        if queue and config.policy.should_schedule(queue, clock):
            if isinstance(config.policy, LazyPolicy) and queue:
                front = queue.front()
                assert front is not None
                config.policy.estimated_exec_s = cost_fn(front.seq_len, 1)
            taken = queue.drain(config.round_limit)
            execute(scheduler.schedule(taken, cost_fn, config.max_batch))
            continue
        # Idle: jump to the next arrival or the policy's next trigger time.
        next_times = []
        if next_arrival < n:
            next_times.append(arrivals[next_arrival].arrival_s)
        trigger = config.policy.next_decision_time(queue, clock)
        if trigger != float("inf"):
            next_times.append(trigger)
        if not next_times:
            if queue:
                # Policy will never fire again (e.g. degenerate config):
                # flush the remainder so the simulation terminates.
                execute(scheduler.schedule(queue.drain(None), cost_fn,
                                           config.max_batch), with_ingest=False)
            break
        advance = max(min(next_times), clock)
        if advance == clock and next_arrival >= n:
            # No time progress possible: force a flush round.
            execute(scheduler.schedule(queue.drain(config.round_limit),
                                       cost_fn, config.max_batch))
            continue
        clock = advance if advance > clock else clock + 1e-9
        ingest(clock)

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    window_start = horizon * config.warmup_fraction
    throughput = response_throughput(arrivals, window_start, horizon)
    offered_rate = n / horizon
    # Saturated: the server could not keep up with the offered load — the
    # backlog remaining when arrivals stopped takes more than half a second
    # of service capacity to drain.
    drain_seconds = backlog_at_horizon / max(throughput, 1e-9)
    saturated = drain_seconds > 0.5
    return ServingMetrics(
        system=system_name or scheduler.name,
        request_rate=offered_rate,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=saturated,
        completed=sum(1 for r in arrivals if r.completion_s is not None),
        offered=n,
        backlog_at_end=backlog_at_horizon,
        utilization=min(1.0, busy_in_horizon / horizon),
    )
