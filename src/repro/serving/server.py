"""Discrete-event serving simulation (Fig. 12 / Table 4 substrate).

Replaces the paper's gRPC/HTTP stack with virtual time: requests arrive by
timestamp into the message queue; whenever the simulated GPU is idle and
the trigger policy fires, the batch scheduler partitions the queued
requests and the batches execute back-to-back, each costing its profiled
latency.  Everything is deterministic given the workload.

Migration note (event engine): this loop now runs on
:class:`repro.engine.Engine` — arrivals, retry wake-ups and trigger-policy
decision points are heap events dispatched in the engine's documented
``ARRIVAL < RETRY < WAKE < TRIGGER`` same-time order, and batch execution
occupies the GPU through ``engine.advance`` so arrivals land in the queue
at their true timestamps instead of at batch boundaries.  The port
removed the private ``while``/``heapq`` loop and with it three bugs: the
DP scheduler and the LazyPolicy estimate now price rounds with the
**active degradation rung's** cost function (they used the base
``cost_fn`` while execution charged the rung's), the queue-depth trace
counter and metrics gauge both report the **pre-drain** depth (the trace
sampled after ``queue.drain`` and always showed ~0), and the
``clock + 1e-9`` anti-stall nudge is gone — the engine only ever advances
to real event timestamps, so zero-progress rounds are impossible by
construction.

Observability: pass a :class:`repro.observability.Tracer` and/or a
:class:`repro.observability.MetricsRegistry` to get per-request spans
(enqueue → scheduled → execute → complete), per-batch timeline events with
padding attributes, queue-depth series, and reconciling counters.  With
the defaults (``NULL_TRACER``, no registry) the loop is unchanged and the
returned :class:`ServingMetrics` is bit-identical to an uninstrumented
run.

Resilience: pass a :class:`repro.resilience.ResilienceConfig` to enable
deadline-aware admission (expired requests are dropped before batching),
fault injection (latency spikes, transient failures), retries with
backoff, a circuit breaker and a degradation ladder.  ``resilience=None``
— and equally a config whose fault plan is empty with every mechanism off
— leaves the loop byte-identical to the unthreaded code path, the same
zero-overhead-when-disabled guarantee the tracer gives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..engine import Engine, EngineFaultInjector, EngineInstrumentation, \
    Event, EventKind
from ..observability import NULL_TRACER, MetricsRegistry, Tracer
from .metrics import (
    LatencyStats,
    ResilienceStats,
    ServingMetrics,
    response_throughput,
)
from .mq import MessageQueue
from .policies import HungryPolicy, LazyPolicy, TriggerPolicy
from .request import Request, RequestState, make_batch
from .scheduler import BatchScheduler, CostFn, batch_execution_cost, observe_round

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience -> serving)
    from ..resilience import ResilienceConfig


@dataclass
class ServingConfig:
    """Knobs of the serving loop."""

    max_batch: int = 20
    policy: TriggerPolicy = field(default_factory=HungryPolicy)
    round_limit: Optional[int] = None  # max requests per scheduling round
    warmup_fraction: float = 0.1  # excluded from the throughput window

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def simulate_serving(
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    cost_fn: CostFn,
    config: Optional[ServingConfig] = None,
    duration_s: Optional[float] = None,
    system_name: Optional[str] = None,
    cache=None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    resilience: Optional["ResilienceConfig"] = None,
) -> ServingMetrics:
    """Run one serving simulation to completion.

    ``duration_s`` is the offered-load horizon (defaults to the last
    arrival); the simulation always drains the backlog so every request
    completes, and saturation is judged by whether the backlog at the end
    of the horizon kept growing.

    ``cache`` (a :class:`~repro.serving.cache.ResponseCache`) enables the
    Fig. 2 ``Resp Cache``: requests whose payload has a cached response
    complete at arrival without touching the model; model responses are
    cached on completion.

    ``tracer`` / ``metrics`` enable observability, ``resilience`` enables
    fault injection and recovery (see module docstring); all default to
    disabled.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    config = config or ServingConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    trace_on = tracer.enabled
    arrivals: List[Request] = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    res = resilience
    faults = res.faults if res is not None else None
    breaker = (res.breaker_factory(0)
               if res is not None and res.breaker_factory is not None else None)
    degradation = res.degradation if res is not None else None
    retry_state = None
    if res is not None and res.retry is not None:
        from ..resilience.retry import RetryState  # deferred: avoids cycle

        retry_state = RetryState(res.retry)

    instrumentation = (EngineInstrumentation(tracer, metrics)
                       if (trace_on or metrics is not None) else None)
    # Faults are injected at the engine layer: the injector stretches
    # advance() busy windows under active spikes and answers transient
    # verdicts, one code path shared with every other engine-based server.
    injector = (EngineFaultInjector(faults, 0, instrumentation)
                if faults is not None and not faults.empty else None)
    engine = Engine(instrumentation=instrumentation, faults=injector)
    queue = MessageQueue(capacity=res.queue_capacity if res is not None else None)
    n = len(arrivals)
    backlog_at_horizon: Optional[int] = None
    busy_in_horizon = 0.0
    batches_executed = 0
    trigger_event: Optional[Event] = None
    if trace_on:
        tracer.thread_name("gpu", "gpu (batch execution)")
        tracer.thread_name("scheduler", "batch scheduler")

    def complete_request(r: Request, how: str) -> None:
        """Per-request completion bookkeeping (span end + counter)."""
        if trace_on:
            tracer.async_end(
                "request", r.completion_s, r.req_id, cat="request",
                path=how, latency_ms=round(r.latency_s * 1e3, 4),
            )
        if metrics is not None:
            metrics.counter("serving_requests_completed_total", path=how).inc()

    def drop_request(r: Request, state: RequestState, now: float) -> None:
        """Terminal non-completion (timeout / failure / shed) bookkeeping."""
        r.resolve(state)
        if trace_on:
            tracer.async_end("request", now, r.req_id, cat="request",
                             path=state.value)
        if metrics is not None:
            metrics.counter("serving_requests_dropped_total",
                            reason=state.value).inc()

    def enqueue(r: Request, now: float) -> None:
        """Push with capacity-aware admission (full queue sheds)."""
        if not queue.push(r):
            drop_request(r, RequestState.SHED, now)

    def on_arrival(event: Event) -> None:
        """An offered request enters the system at its true timestamp."""
        request = event.payload
        now = engine.now
        if trace_on:
            tracer.async_begin(
                "request", request.arrival_s, request.req_id,
                cat="request", seq_len=request.seq_len,
            )
        if (cache is not None and request.payload is not None
                and cache.get(request.payload) is not None):
            # Resp Cache hit: answered without evaluating the model.
            request.start_s = request.arrival_s
            request.resolve(RequestState.COMPLETED, request.arrival_s)
            complete_request(request, "cache")
        else:
            enqueue(request, now)
        if trace_on:
            tracer.counter("queue", now, {"depth": len(queue)})
        if metrics is not None:
            metrics.counter("serving_requests_ingested_total").inc()

    def on_retry(event: Event) -> None:
        """A failed attempt re-enters the queue after its backoff."""
        request = event.payload
        now = engine.now
        if trace_on:
            tracer.async_instant("request", now, request.req_id,
                                 cat="request", stage="requeue",
                                 attempt=request.attempt)
        enqueue(request, now)
        if trace_on:
            tracer.counter("queue", now, {"depth": len(queue)})
        if metrics is not None:
            metrics.counter("serving_requests_ingested_total").inc()

    def snapshot_backlog(_event: Event) -> None:
        # Snapshot the backlog at the first event crossing the horizon —
        # regardless of how many arrivals remain.  (Waiting for all
        # arrivals, as this once did, takes the snapshot long after the
        # horizon whenever ``duration_s`` is shorter than the last arrival,
        # misclassifying saturation.)  Backlog = requests offered within
        # the horizon whose service had not begun by the horizon; queue
        # depth alone undercounts because a scheduling round drains the
        # whole queue into batches long before they execute, and arrivals
        # after the horizon are not backlog of the measured load.
        nonlocal backlog_at_horizon
        if backlog_at_horizon is None and engine.now >= horizon:
            backlog_at_horizon = sum(
                1 for r in arrivals
                if r.arrival_s <= horizon
                and (r.start_s is None or r.start_s > horizon)
            )

    def active_cost_fn() -> CostFn:
        """Cost function of the current degradation rung (base if none)."""
        if degradation is not None:
            return degradation.cost_fn
        return cost_fn

    def admit(taken: List[Request], now: float) -> List[Request]:
        """Deadline-aware admission: expired work never reaches a batch.

        The shed rung of the degradation ladder additionally drops queued
        requests older than its ``shed_age_s``.
        """
        shed_age = degradation.shed_age_s if degradation is not None else None
        alive: List[Request] = []
        for r in taken:
            if r.expired(now):
                drop_request(r, RequestState.TIMED_OUT, now)
            elif shed_age is not None and now - r.arrival_s > shed_age:
                drop_request(r, RequestState.SHED, now)
            else:
                alive.append(r)
        return alive

    def execute(batches) -> None:
        nonlocal busy_in_horizon, batches_executed
        for batch in batches:
            if res is not None:
                # Re-check deadlines at dispatch (as shedding does): members
                # that went stale while earlier batches of this round
                # executed are dropped rather than served hopelessly late.
                alive = [r for r in batch.requests
                         if not r.expired(engine.now)]
                if len(alive) < batch.size:
                    for r in batch.requests:
                        if r.expired(engine.now):
                            drop_request(r, RequestState.TIMED_OUT, engine.now)
                    if not alive:
                        continue
                    batch = make_batch(alive)
            exec_s = batch_execution_cost(batch, active_cost_fn())
            started = engine.now
            for r in batch.requests:
                r.start_s = started
            # Occupy the GPU: arrivals and retry wake-ups due inside the
            # window land in the queue at their true timestamps; the span
            # for the batch is emitted by the engine.  Active latency
            # spikes stretch the window inside advance() (the injector);
            # last_advance_s is the duration actually charged.
            engine.advance(
                exec_s, label=f"batch x{batch.size}" if trace_on else None,
                tid="gpu", cat="batch", size=batch.size,
                padded_len=batch.padded_len,
                padding_waste_tokens=batch.padding_waste,
            )
            exec_s = engine.last_advance_s
            busy_in_horizon += max(
                0.0, min(started + exec_s, horizon) - min(started, horizon)
            )
            batches_executed += 1
            now = engine.now
            failed: List[Request] = []
            if (injector is not None
                    and injector.crashed_during(started, now) is not None):
                # The server died mid-execution: the whole attempt is
                # lost.  Members re-enter through the retry path and the
                # scheduling loop sleeps out the remaining outage.
                failed = list(batch.requests)
            elif injector is not None and faults.failure_rate(0, started) > 0.0:
                failed = [r for r in batch.requests
                          if injector.attempt_fails(r.req_id, r.attempt, started)]
            failed_set = set(id(r) for r in failed)
            for r in batch.requests:
                if id(r) in failed_set:
                    continue
                r.resolve(RequestState.COMPLETED, now)
                if breaker is not None:
                    breaker.record(True, now)
                if cache is not None and r.payload is not None:
                    cache.put(r.payload, r.req_id)
            if trace_on:
                for r in batch.requests:
                    tracer.async_instant(
                        "request", started, r.req_id, cat="request",
                        stage="execute",
                        queue_wait_ms=round((started - r.arrival_s) * 1e3, 4),
                    )
            for r in batch.requests:
                if id(r) not in failed_set:
                    complete_request(r, "model")
            for r in failed:
                _handle_failure(r, now)
            if metrics is not None:
                metrics.counter("serving_batches_executed_total").inc()
                metrics.counter("serving_padded_tokens_total").inc(
                    batch.padded_len * batch.cost_batch_size
                )
                metrics.counter("serving_padding_waste_tokens_total").inc(
                    batch.padding_waste
                )
                metrics.gauge("serving_gpu_busy_s").set(busy_in_horizon, t=now)
            # Feedback hook for adaptive (Clipper-style AIMD) schedulers.
            observe = getattr(scheduler, "observe", None)
            if observe is not None:
                observe(batch, exec_s)

    def _handle_failure(r: Request, now: float) -> None:
        """One attempt failed: retry after backoff or give up."""
        if breaker is not None:
            breaker.record(False, now)
        if metrics is not None:
            metrics.counter("serving_attempt_failures_total").inc()
        retry_at = (retry_state.next_retry_at(r, now)
                    if retry_state is not None else None)
        if retry_at is None:
            drop_request(r, RequestState.FAILED, now)
            return
        r.attempt += 1
        engine.schedule(retry_at, EventKind.RETRY, on_retry, r)
        if metrics is not None:
            metrics.counter("serving_retries_total").inc()

    def run_rounds() -> None:
        """Chain scheduling rounds at the current instant while the
        trigger policy keeps firing."""
        while queue and config.policy.should_schedule(queue, engine.now):
            if injector is not None and injector.crashed(engine.now):
                # Server down: no round starts until recovery.  Arrivals
                # and retries due during the outage still land in the
                # queue at their true timestamps.
                engine.run_until(injector.crash_end(engine.now))
                continue
            now = engine.now
            if isinstance(config.policy, LazyPolicy):
                front = queue.front()
                assert front is not None
                config.policy.estimated_exec_s = \
                    active_cost_fn()(front.seq_len, 1)
            depth = len(queue)
            taken = queue.drain(config.round_limit)
            if res is not None:
                if degradation is not None:
                    # Pure query — allow() reserves a half-open probe slot
                    # and is only called where work is actually committed.
                    breaker_open = (breaker is not None
                                    and not breaker.probe_available(now))
                    degradation.on_round(depth, breaker_open, now)
                taken = admit(taken, now)
                if not taken:
                    continue
            # The round is priced with the rung chosen for *this* round,
            # so the DP partition optimizes the cost model execution will
            # actually charge.
            batches = scheduler.schedule(taken, active_cost_fn(),
                                         config.max_batch)
            if instrumentation is not None:
                # Pre-drain depth to trace counter and gauge alike.
                instrumentation.queue_depth(now, depth)
                observe_round(batches, now, scheduler.name,
                              metrics=metrics,
                              tracer=tracer if trace_on else None)
            execute(batches)

    def ensure_trigger() -> None:
        """Keep exactly one pending TRIGGER event at the policy's next
        decision time (if that time is real and in the future)."""
        nonlocal trigger_event
        t = config.policy.next_decision_time(queue, engine.now)
        if trigger_event is not None and not trigger_event.cancelled:
            if t == trigger_event.time:
                return
            engine.cancel(trigger_event)
        trigger_event = None
        if t == float("inf") or t <= engine.now:
            # No future decision point: either the policy never fires
            # again (the flush path handles the remainder) or it already
            # declined at ``now`` — the next real event re-evaluates it.
            return
        trigger_event = engine.schedule(t, EventKind.TRIGGER)

    for request in arrivals:
        engine.schedule(request.arrival_s, EventKind.ARRIVAL, on_arrival,
                        request)
    engine.add_dispatch_hook(snapshot_backlog)

    while True:
        run_rounds()
        # Arm the trigger *before* judging idleness: a future policy
        # decision point is a real pending event, not a reason to flush.
        ensure_trigger()
        if not engine.pending:
            if queue:
                if injector is not None and injector.crashed(engine.now):
                    engine.run_until(injector.crash_end(engine.now))
                    continue
                # Policy will never fire again (e.g. degenerate config):
                # flush the remainder so the simulation terminates.
                flush = queue.drain(config.round_limit)
                if res is not None:
                    flush = admit(flush, engine.now)
                if flush:
                    execute(scheduler.schedule(flush, active_cost_fn(),
                                               config.max_batch))
                continue
            break
        # Dispatch the next instant in full (all simultaneous events)
        # before re-evaluating the policy, so a round sees every arrival
        # of its timestamp — the clock only ever lands on event times.
        engine.step_due()

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    window_start = horizon * config.warmup_fraction
    throughput = response_throughput(arrivals, window_start, horizon)
    offered_rate = n / horizon
    # Saturated: the server could not keep up with the offered load — the
    # backlog remaining when arrivals stopped takes more than half a second
    # of service capacity to drain.
    drain_seconds = backlog_at_horizon / max(throughput, 1e-9)
    saturated = drain_seconds > 0.5
    resilience_stats: Optional[ResilienceStats] = None
    if res is not None:
        resilience_stats = ResilienceStats(
            retries=retry_state.retries_used if retry_state is not None else 0,
            timed_out=sum(1 for r in arrivals
                          if r.state is RequestState.TIMED_OUT),
            failed=sum(1 for r in arrivals if r.state is RequestState.FAILED),
            shed=sum(1 for r in arrivals if r.state is RequestState.SHED),
            rejected=queue.total_rejected,
            breaker_transitions=(len(breaker.transitions)
                                 if breaker is not None else 0),
            degradation_switches=(len(degradation.switches)
                                  if degradation is not None else 0),
        )
    result = ServingMetrics(
        system=system_name or scheduler.name,
        request_rate=offered_rate,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=saturated,
        completed=sum(1 for r in arrivals if r.is_completed),
        offered=n,
        backlog_at_end=backlog_at_horizon,
        utilization=min(1.0, busy_in_horizon / horizon),
        batches_executed=batches_executed,
        resilience=resilience_stats,
    )
    if metrics is not None:
        metrics.gauge("serving_utilization", system=result.system).set(
            result.utilization
        )
        metrics.gauge("serving_response_throughput", system=result.system).set(
            result.response_throughput
        )
        metrics.gauge("serving_backlog_at_horizon", system=result.system).set(
            backlog_at_horizon
        )
    return result
