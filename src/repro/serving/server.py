"""Discrete-event serving simulation (Fig. 12 / Table 4 substrate).

Replaces the paper's gRPC/HTTP stack with virtual time: requests arrive by
timestamp into the message queue; whenever the simulated GPU is idle and
the trigger policy fires, the batch scheduler partitions the queued
requests and the batches execute back-to-back, each costing its profiled
latency.  Everything is deterministic given the workload.

Observability: pass a :class:`repro.observability.Tracer` and/or a
:class:`repro.observability.MetricsRegistry` to get per-request spans
(enqueue → scheduled → execute → complete), per-batch timeline events with
padding attributes, queue-depth series, and reconciling counters.  With
the defaults (``NULL_TRACER``, no registry) the loop is unchanged and the
returned :class:`ServingMetrics` is bit-identical to an uninstrumented
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..observability import NULL_TRACER, MetricsRegistry, Tracer
from .metrics import LatencyStats, ServingMetrics, response_throughput
from .mq import MessageQueue
from .policies import HungryPolicy, LazyPolicy, TriggerPolicy
from .request import Request
from .scheduler import BatchScheduler, CostFn, batch_execution_cost, observe_round


@dataclass
class ServingConfig:
    """Knobs of the serving loop."""

    max_batch: int = 20
    policy: TriggerPolicy = field(default_factory=HungryPolicy)
    round_limit: Optional[int] = None  # max requests per scheduling round
    warmup_fraction: float = 0.1  # excluded from the throughput window

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )


def simulate_serving(
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    cost_fn: CostFn,
    config: Optional[ServingConfig] = None,
    duration_s: Optional[float] = None,
    system_name: Optional[str] = None,
    cache=None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ServingMetrics:
    """Run one serving simulation to completion.

    ``duration_s`` is the offered-load horizon (defaults to the last
    arrival); the simulation always drains the backlog so every request
    completes, and saturation is judged by whether the backlog at the end
    of the horizon kept growing.

    ``cache`` (a :class:`~repro.serving.cache.ResponseCache`) enables the
    Fig. 2 ``Resp Cache``: requests whose payload has a cached response
    complete at arrival without touching the model; model responses are
    cached on completion.

    ``tracer`` / ``metrics`` enable observability (see module docstring);
    both default to disabled.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    config = config or ServingConfig()
    tracer = tracer if tracer is not None else NULL_TRACER
    trace_on = tracer.enabled
    arrivals: List[Request] = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    queue = MessageQueue()
    clock = 0.0
    next_arrival = 0
    n = len(arrivals)
    backlog_at_horizon: Optional[int] = None
    busy_in_horizon = 0.0
    batches_executed = 0
    if trace_on:
        tracer.thread_name("gpu", "gpu (batch execution)")
        tracer.thread_name("scheduler", "batch scheduler")

    def complete_request(r: Request, how: str) -> None:
        """Per-request completion bookkeeping (span end + counter)."""
        if trace_on:
            tracer.async_end(
                "request", r.completion_s, r.req_id, cat="request",
                path=how, latency_ms=round(r.latency_s * 1e3, 4),
            )
        if metrics is not None:
            metrics.counter("serving_requests_completed_total", path=how).inc()

    def ingest(now: float) -> None:
        nonlocal next_arrival, backlog_at_horizon
        ingested = 0
        while next_arrival < n and arrivals[next_arrival].arrival_s <= now:
            request = arrivals[next_arrival]
            next_arrival += 1
            ingested += 1
            if trace_on:
                tracer.async_begin(
                    "request", request.arrival_s, request.req_id,
                    cat="request", seq_len=request.seq_len,
                )
            if (cache is not None and request.payload is not None
                    and cache.get(request.payload) is not None):
                # Resp Cache hit: answered without evaluating the model.
                request.start_s = request.arrival_s
                request.completion_s = request.arrival_s
                complete_request(request, "cache")
                continue
            queue.push(request)
        # Snapshot the backlog at the first event crossing the horizon —
        # regardless of how many arrivals remain.  (Waiting for all
        # arrivals, as this once did, takes the snapshot long after the
        # horizon whenever ``duration_s`` is shorter than the last arrival,
        # misclassifying saturation.)  Backlog = requests offered within
        # the horizon whose service had not begun by the horizon; queue
        # depth alone undercounts because a scheduling round drains the
        # whole queue into batches long before they execute, and arrivals
        # after the horizon are not backlog of the measured load.
        if backlog_at_horizon is None and now >= horizon:
            backlog_at_horizon = sum(
                1 for r in arrivals
                if r.arrival_s <= horizon
                and (r.start_s is None or r.start_s > horizon)
            )
        if ingested and trace_on:
            tracer.counter("queue", now, {"depth": len(queue)})
        if ingested and metrics is not None:
            metrics.counter("serving_requests_ingested_total").inc(ingested)

    def execute(batches, with_ingest: bool = True) -> None:
        nonlocal clock, busy_in_horizon, batches_executed
        for batch in batches:
            exec_s = batch_execution_cost(batch, cost_fn)
            started = clock
            for r in batch.requests:
                r.start_s = clock
            busy_in_horizon += max(
                0.0, min(clock + exec_s, horizon) - min(clock, horizon)
            )
            clock += exec_s
            batches_executed += 1
            for r in batch.requests:
                r.completion_s = clock
                if cache is not None and r.payload is not None:
                    cache.put(r.payload, r.req_id)
            if trace_on:
                tracer.complete(
                    f"batch x{batch.size}", started, exec_s, tid="gpu",
                    cat="batch", size=batch.size,
                    padded_len=batch.padded_len,
                    padding_waste_tokens=batch.padding_waste,
                )
                for r in batch.requests:
                    tracer.async_instant(
                        "request", started, r.req_id, cat="request",
                        stage="execute",
                        queue_wait_ms=round((started - r.arrival_s) * 1e3, 4),
                    )
            for r in batch.requests:
                complete_request(r, "model")
            if metrics is not None:
                metrics.counter("serving_batches_executed_total").inc()
                metrics.counter("serving_padded_tokens_total").inc(
                    batch.padded_len * batch.cost_batch_size
                )
                metrics.counter("serving_padding_waste_tokens_total").inc(
                    batch.padding_waste
                )
                metrics.gauge("serving_gpu_busy_s").set(busy_in_horizon, t=clock)
            # Feedback hook for adaptive (Clipper-style AIMD) schedulers.
            observe = getattr(scheduler, "observe", None)
            if observe is not None:
                observe(batch, exec_s)
            if with_ingest:
                ingest(clock)

    ingest(clock)
    while next_arrival < n or queue:
        if queue and config.policy.should_schedule(queue, clock):
            if isinstance(config.policy, LazyPolicy) and queue:
                front = queue.front()
                assert front is not None
                config.policy.estimated_exec_s = cost_fn(front.seq_len, 1)
            depth = len(queue)
            taken = queue.drain(config.round_limit)
            batches = scheduler.schedule(taken, cost_fn, config.max_batch)
            if metrics is not None or trace_on:
                if metrics is not None:
                    metrics.gauge("serving_queue_depth").set(depth, t=clock)
                if trace_on:
                    tracer.counter("queue", clock, {"depth": len(queue)})
                observe_round(batches, clock, scheduler.name,
                              metrics=metrics,
                              tracer=tracer if trace_on else None)
            execute(batches)
            continue
        # Idle: jump to the next arrival or the policy's next trigger time.
        next_times = []
        if next_arrival < n:
            next_times.append(arrivals[next_arrival].arrival_s)
        trigger = config.policy.next_decision_time(queue, clock)
        if trigger != float("inf"):
            next_times.append(trigger)
        if not next_times:
            if queue:
                # Policy will never fire again (e.g. degenerate config):
                # flush the remainder so the simulation terminates.
                execute(scheduler.schedule(queue.drain(None), cost_fn,
                                           config.max_batch), with_ingest=False)
            break
        advance = max(min(next_times), clock)
        if advance == clock and next_arrival >= n:
            # No time progress possible: force a flush round.
            execute(scheduler.schedule(queue.drain(config.round_limit),
                                       cost_fn, config.max_batch))
            continue
        clock = advance if advance > clock else clock + 1e-9
        ingest(clock)

    if backlog_at_horizon is None:
        backlog_at_horizon = 0

    window_start = horizon * config.warmup_fraction
    throughput = response_throughput(arrivals, window_start, horizon)
    offered_rate = n / horizon
    # Saturated: the server could not keep up with the offered load — the
    # backlog remaining when arrivals stopped takes more than half a second
    # of service capacity to drain.
    drain_seconds = backlog_at_horizon / max(throughput, 1e-9)
    saturated = drain_seconds > 0.5
    result = ServingMetrics(
        system=system_name or scheduler.name,
        request_rate=offered_rate,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=saturated,
        completed=sum(1 for r in arrivals if r.completion_s is not None),
        offered=n,
        backlog_at_end=backlog_at_horizon,
        utilization=min(1.0, busy_in_horizon / horizon),
        batches_executed=batches_executed,
    )
    if metrics is not None:
        metrics.gauge("serving_utilization", system=result.system).set(
            result.utilization
        )
        metrics.gauge("serving_response_throughput", system=result.system).set(
            result.response_throughput
        )
        metrics.gauge("serving_backlog_at_horizon", system=result.system).set(
            backlog_at_horizon
        )
    return result
