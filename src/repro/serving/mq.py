"""Message queue front-end of the serving framework (Fig. 2)."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .request import Request


class MessageQueue:
    """FIFO of pending requests with arrival-order accounting."""

    def __init__(self) -> None:
        self._queue: Deque[Request] = deque()
        self.total_enqueued = 0
        self.peak_depth = 0

    def push(self, request: Request) -> None:
        self._queue.append(request)
        self.total_enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._queue))

    def drain(self, limit: Optional[int] = None) -> List[Request]:
        """Pop up to ``limit`` requests in arrival order (all if None)."""
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        count = len(self._queue) if limit is None else min(limit, len(self._queue))
        return [self._queue.popleft() for _ in range(count)]

    def front(self) -> Optional[Request]:
        """Oldest pending request (the lazy policy checks its age)."""
        return self._queue[0] if self._queue else None

    def __iter__(self):
        """Iterate pending requests in arrival order (non-destructive)."""
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
