"""Message queue front-end of the serving framework (Fig. 2)."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from .request import Request


class MessageQueue:
    """FIFO of pending requests with arrival-order accounting.

    ``capacity`` bounds the queue: a full queue rejects further pushes
    (``push`` returns False and ``total_rejected`` counts them), which is
    how backpressure becomes representable instead of queues silently
    growing without bound.  The default (``None``) stays unbounded, so
    existing callers that ignore ``push``'s return value are unchanged.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Request] = deque()
        self.total_enqueued = 0
        self.total_rejected = 0
        self.peak_depth = 0

    def push(self, request: Request) -> bool:
        """Enqueue; returns False (rejecting the request) if at capacity."""
        if self.capacity is not None and len(self._queue) >= self.capacity:
            self.total_rejected += 1
            return False
        self._queue.append(request)
        self.total_enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._queue))
        return True

    def drain(self, limit: Optional[int] = None) -> List[Request]:
        """Pop up to ``limit`` requests in arrival order (all if None)."""
        if limit is not None and limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        count = len(self._queue) if limit is None else min(limit, len(self._queue))
        return [self._queue.popleft() for _ in range(count)]

    def front(self) -> Optional[Request]:
        """Oldest pending request (the lazy policy checks its age)."""
        return self._queue[0] if self._queue else None

    def __iter__(self):
        """Iterate pending requests in arrival order (non-destructive)."""
        return iter(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
