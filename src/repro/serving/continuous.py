"""Iteration-level continuous batching for generative serving.

The paper's DP scheduler (Alg. 3) batches at *request* granularity: a
batch is formed once, executes, and only then does the queue get another
chance.  That is the right shape for one-shot BERT inference but wrong for
GPT-style generation, where a request occupies its batch slot for as many
decode steps as it generates tokens: under request-level batching a decode
batch runs until its **longest** member finishes while finished slots burn
padded-slot work, and newly arrived requests wait behind the whole batch.

:class:`ContinuousBatchingServer` re-forms the decode batch at **every
decode step** — the iteration-level design of modern LLM serving systems:

* finished requests exit their slot immediately (the next step is priced
  at the smaller batch width — no retired-slot work);
* queued requests are admitted mid-flight: their prefill runs as a
  dedicated pass between decode steps (the chunked-prefill simplification
  — one pass for the whole admitted set) and they join the decode batch at
  the next step;
* admission is **KV-cache-aware**: a request joins only while the
  :class:`~repro.memory.KVCacheArena` high-watermark holds, so the batch
  is bounded by simulated KV memory rather than a fixed ``max_batch``.

:class:`RequestLevelGenerationServer` is the control: the same cost model
and workload, but batches formed once by a (DP) scheduler, full batch
width charged until the longest member finishes, arrivals waiting for the
next round.  The gap between the two is the experiment
``experiments/gen_serving_throughput.py`` measures.

Everything is simulator-time and deterministic given the workload; costs
come from :class:`~repro.runtime.GenerationRuntime` (prefill and per-step
decode against the growing KV cache).

Migration note (event engine): both loops now run on
:class:`repro.engine.Engine`.  Arrivals are ARRIVAL events ingested at
their true timestamps; prefill passes and decode steps occupy the GPU
through ``engine.advance``; idle gaps are crossed by dispatching the next
event instead of ``clock = max(clock, next_arrival)``.  Batch
composition, costs and all counters are unchanged — only the loop
skeleton moved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

from ..engine import Engine, EngineFaultInjector, EngineInstrumentation, \
    EventKind
from ..gpusim.multistream import StreamSchedule, execute_schedule
from ..memory.kv_arena import KVCacheArena
from ..observability import MetricsRegistry, Tracer
from ..runtime.chunked import PrefillChunker
from .metrics import LatencyStats, ServingMetrics, response_throughput
from .request import Request, RequestState
from .scheduler import BatchScheduler, CostFn, PrunedDPBatchScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience import ResilienceConfig


@dataclass
class GenRequest(Request):
    """A generation request: prompt of ``seq_len`` tokens, up to
    ``max_new_tokens`` output tokens.

    ``generated`` counts produced tokens (the prefill pass yields the
    first); ``first_token_s`` is stamped when that first token appears —
    TTFT is ``first_token_s - arrival_s``.

    ``prompt_ids`` optionally carries the actual prompt token ids (with
    ``len(prompt_ids) == seq_len``) so prefix caching can match shared
    prompt heads; ``None`` means content-less (no prefix matching — the
    pre-caching behaviour).
    """

    max_new_tokens: int = 1
    generated: int = 0
    first_token_s: Optional[float] = None
    prompt_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_new_tokens <= 0:
            raise ValueError(
                f"max_new_tokens must be positive, got {self.max_new_tokens}"
            )
        if self.prompt_ids is not None and len(self.prompt_ids) != self.seq_len:
            raise ValueError(
                f"prompt_ids length {len(self.prompt_ids)} != seq_len "
                f"{self.seq_len}"
            )

    @property
    def prompt_len(self) -> int:
        return self.seq_len

    @property
    def ttft_s(self) -> float:
        """Arrival-to-first-token latency; raises if no token yet."""
        if self.first_token_s is None:
            raise ValueError(f"request {self.req_id} has produced no token")
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Mean per-output-token latency after the first (0 if single-token)."""
        if self.completion_s is None or self.first_token_s is None:
            raise ValueError(f"request {self.req_id} has not completed")
        if self.generated < 2:
            return 0.0
        return (self.completion_s - self.first_token_s) / (self.generated - 1)


@dataclass(frozen=True)
class GenServingMetrics(ServingMetrics):
    """One generative serving run: the base serving outcome plus the
    generation-specific quantities (TTFT, TPOT, token goodput, KV use)."""

    ttft: LatencyStats = LatencyStats(float("inf"), float("inf"),
                                      float("inf"), 0)
    tpot_ms_avg: float = float("inf")
    tokens_generated: int = 0
    decode_steps: int = 0
    prefill_batches: int = 0
    goodput_tokens_per_s: float = 0.0
    kv_denials: int = 0
    kv_peak_bytes: int = 0
    # Resilience outcome (all zero on fault-free runs).
    preemptions: int = 0
    tokens_recomputed: int = 0
    retries: int = 0
    attempts_failed: int = 0
    # Chunked-prefill / dual-stream overlap outcome (``prefill_chunks``
    # and ``overlap_saved_s`` are zero with ``chunk_tokens=None``;
    # ``stall_s`` is the decode-side head-of-line blocking — the seconds
    # live decoders spent stalled behind prefill work).
    prefill_chunks: int = 0
    overlap_saved_s: float = 0.0
    stall_s: float = 0.0
    # Prefix-cache outcome (all zero with ``prefix_cache=False`` or a
    # workload without prompt ids).  ``prefill_flops_saved`` converts the
    # skipped prefill seconds into device FLOPs at the runtime device's
    # fp32 peak — a hardware-independent "work not done" figure.
    prefix_hits: int = 0
    prefix_tokens_reused: int = 0
    prefill_flops_saved: float = 0.0


@dataclass(frozen=True)
class KVPreemptionPolicy:
    """Victim selection for KV-pressure preemption.

    When the arena watermark holds the queue head, the loop evicts up to
    ``max_victims_per_event`` live requests and re-queues them with
    recompute-on-resume pricing.  Victims are picked least-progress-first
    (fewest generated tokens — the cheapest recompute), ties broken
    deadline-aware (most slack preempted first, deadline-less requests
    preferred over deadlined ones).
    """

    max_victims_per_event: int = 1

    def __post_init__(self) -> None:
        if self.max_victims_per_event < 1:
            raise ValueError(
                f"max_victims_per_event must be >= 1, "
                f"got {self.max_victims_per_event}"
            )

    def victim_order(self, active: Sequence["GenRequest"],
                     now_s: float) -> List["GenRequest"]:
        """Candidates in eviction order (best victim first)."""

        def key(r: "GenRequest"):
            slack = float("inf") if r.deadline_s is None else \
                (r.arrival_s + r.deadline_s) - now_s
            return (r.generated, -slack, r.req_id)

        return sorted(active, key=key)


@dataclass
class ContinuousBatchingConfig:
    """Knobs of the iteration-level loop."""

    #: Optional slot cap on top of the KV gate (None = KV-bound only).
    max_batch: Optional[int] = None
    #: Cap on admissions folded into one prefill pass (None = unbounded).
    admit_per_step: Optional[int] = None
    warmup_fraction: float = 0.1
    #: Optional KV-pressure preemption (None = watermark holds the head,
    #: exactly the pre-resilience behaviour).
    preemption: Optional[KVPreemptionPolicy] = None
    #: Chunked prefill + dual-stream overlap: split every prefill pass
    #: into chunks of at most this many prompt positions and overlap the
    #: chunks with decode steps on a second simulated stream.  ``None``
    #: keeps the classic serial loop, byte-identical to the pre-chunking
    #: behaviour.  Chunk boundaries are pure bookkeeping — generated
    #: tokens are identical either way; only timing changes.
    chunk_tokens: Optional[int] = None
    #: Extra launch cost charged to every chunk after the first.
    chunk_overhead_s: float = 0.0
    #: Radix-tree prefix caching over CoW KV pages: admission consults a
    #: :class:`~repro.memory.prefix_index.RadixPrefixIndex`, attaches the
    #: longest cached page-aligned prompt prefix by refcount, and runs
    #: prefill only over the uncached suffix.  Requires the workload to
    #: carry ``GenRequest.prompt_ids``; a pure timing/accounting change —
    #: token streams, admission order and completion sets are identical
    #: to ``False`` (the ``--verify-prefix`` gate enforces it).
    prefix_cache: bool = False
    #: Run every emitted round schedule through the vector-clock race
    #: detector inline and raise on a racy round.  Off by default — the
    #: ``repro check`` sanitizer and tests audit ``emitted_schedules``
    #: after the fact instead.
    verify_schedules: bool = False

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.admit_per_step is not None and self.admit_per_step <= 0:
            raise ValueError(
                f"admit_per_step must be positive, got {self.admit_per_step}"
            )
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.chunk_tokens is not None and self.chunk_tokens <= 0:
            raise ValueError(
                f"chunk_tokens must be positive, got {self.chunk_tokens}"
            )
        if self.chunk_overhead_s < 0.0:
            raise ValueError(
                f"chunk_overhead_s must be >= 0, got {self.chunk_overhead_s}"
            )


def _window_overlap(start: float, dur: float, horizon: float) -> float:
    """Busy seconds a [start, start+dur] dispatch spends inside the horizon."""
    return max(0.0, min(start + dur, horizon) - min(start, horizon))


def _merged_busy_in_horizon(spans: Sequence[Tuple[float, float]],
                            horizon: float) -> float:
    """Busy seconds a set of ``(start, end)`` spans covers inside the horizon.

    The overlapped round runs chunks and decode steps on two streams at
    once: charging each span's window separately would double-count the
    concurrent seconds, and charging the whole pass as one window would
    credit any idle gap between spans.  So clip **per chunk**: merge the
    spans into disjoint intervals first, then clip each interval to the
    horizon — a round straddling the horizon credits exactly the busy
    seconds that lie inside it.
    """
    merged: List[List[float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return sum(_window_overlap(s, e - s, horizon) for s, e in merged)


class _GenLoopBase:
    """Bookkeeping shared by both generative serving loops."""

    def __init__(self, runtime, tracer: Optional[Tracer],
                 metrics: Optional[MetricsRegistry], system_name: str,
                 warmup_fraction: float) -> None:
        self.runtime = runtime
        self.tracer = tracer
        self.metrics = metrics
        self.system_name = system_name
        self.warmup_fraction = warmup_fraction

    @property
    def _trace_on(self) -> bool:
        return self.tracer is not None and self.tracer.enabled

    def _begin_request(self, r: GenRequest) -> None:
        if self._trace_on:
            self.tracer.async_begin(
                "request", r.arrival_s, r.req_id, cat="request",
                prompt_len=r.seq_len, max_new_tokens=r.max_new_tokens,
            )

    def _complete(self, r: GenRequest, now: float) -> None:
        r.resolve(RequestState.COMPLETED, now)
        self.runtime.publish_request_metrics(
            self.metrics, r.req_id, r.ttft_s, r.tpot_s,
            system=self.system_name,
        )
        if self._trace_on:
            self.tracer.async_end(
                "request", now, r.req_id, cat="request", path="model",
                ttft_ms=round(r.ttft_s * 1e3, 4), tokens=r.generated,
            )
        if self.metrics is not None:
            self.metrics.counter("serving_requests_completed_total",
                                 path="model").inc()

    def _shed(self, r: GenRequest, now: float) -> None:
        r.resolve(RequestState.SHED)
        if self._trace_on:
            self.tracer.async_end("request", now, r.req_id, cat="request",
                                  path="shed")
        if self.metrics is not None:
            self.metrics.counter("serving_requests_dropped_total",
                                 reason="shed").inc()

    def _fail(self, r: GenRequest, now: float) -> None:
        """Terminal failure: retries exhausted (or recovery impossible)."""
        r.resolve(RequestState.FAILED)
        if self._trace_on:
            self.tracer.async_end("request", now, r.req_id, cat="request",
                                  path="failed")
        if self.metrics is not None:
            self.metrics.counter("serving_requests_dropped_total",
                                 reason="failed").inc()

    def _finalize(self, arrivals: Sequence[GenRequest], horizon: float,
                  clock: float, busy_in_horizon: float, decode_steps: int,
                  prefills: int, tokens: int, kv_denials: int,
                  kv_peak_bytes: int, preemptions: int = 0,
                  tokens_recomputed: int = 0, retries: int = 0,
                  attempts_failed: int = 0, prefill_chunks: int = 0,
                  overlap_saved_s: float = 0.0,
                  stall_s: float = 0.0, prefix_hits: int = 0,
                  prefix_tokens_reused: int = 0,
                  prefill_flops_saved: float = 0.0) -> GenServingMetrics:
        completed = [r for r in arrivals if r.is_completed]
        ttft = LatencyStats.from_values(
            [(r.first_token_s - r.arrival_s) * 1e3 for r in completed
             if r.first_token_s is not None]
        )
        tpots = [r.tpot_s * 1e3 for r in completed if r.generated >= 2]
        tpot_ms = sum(tpots) / len(tpots) if tpots else float("inf")
        throughput = response_throughput(
            arrivals, horizon * self.warmup_fraction, horizon
        )
        backlog = sum(
            1 for r in arrivals
            if r.arrival_s <= horizon and r.state is not RequestState.SHED
            and (r.start_s is None or r.start_s > horizon)
        )
        drain_seconds = backlog / max(throughput, 1e-9)
        result = GenServingMetrics(
            system=self.system_name,
            request_rate=len(arrivals) / horizon,
            response_throughput=throughput,
            latency=LatencyStats.from_requests(arrivals),
            saturated=drain_seconds > 0.5,
            completed=len(completed),
            offered=len(arrivals),
            backlog_at_end=backlog,
            utilization=min(1.0, busy_in_horizon / horizon),
            batches_executed=decode_steps + prefills,
            ttft=ttft,
            tpot_ms_avg=tpot_ms,
            tokens_generated=tokens,
            decode_steps=decode_steps,
            prefill_batches=prefills,
            goodput_tokens_per_s=tokens / clock if clock > 0 else 0.0,
            kv_denials=kv_denials,
            kv_peak_bytes=kv_peak_bytes,
            preemptions=preemptions,
            tokens_recomputed=tokens_recomputed,
            retries=retries,
            attempts_failed=attempts_failed,
            prefill_chunks=prefill_chunks,
            overlap_saved_s=overlap_saved_s,
            stall_s=stall_s,
            prefix_hits=prefix_hits,
            prefix_tokens_reused=prefix_tokens_reused,
            prefill_flops_saved=prefill_flops_saved,
        )
        if self.metrics is not None:
            self.metrics.gauge("serving_response_throughput",
                               system=result.system).set(throughput)
            self.metrics.gauge("generation_goodput_tokens_per_s",
                               system=result.system).set(
                result.goodput_tokens_per_s
            )
            if prefill_chunks or stall_s:
                self.metrics.gauge("gen_overlap_saved_s",
                                   system=result.system).set(overlap_saved_s)
                self.metrics.gauge("gen_prefill_stall_s",
                                   system=result.system).set(stall_s)
            if prefix_hits:
                self.metrics.gauge("gen_prefill_flops_saved",
                                   system=result.system).set(
                    prefill_flops_saved
                )
        return result


class ContinuousBatchingServer(_GenLoopBase):
    """Iteration-level decode loop with KV-cache-aware admission."""

    name = "continuous"

    def __init__(
        self,
        runtime,
        arena: KVCacheArena,
        config: Optional[ContinuousBatchingConfig] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        system_name: str = "Turbo-Continuous",
        resilience: Optional["ResilienceConfig"] = None,
        server_id: int = 0,
    ) -> None:
        config = config or ContinuousBatchingConfig()
        super().__init__(runtime, tracer, metrics, system_name,
                         config.warmup_fraction)
        self.arena = arena
        self.config = config
        self.resilience = resilience
        self.server_id = server_id
        #: Per-round :class:`StreamSchedule` log of the last ``serve()``
        #: call (chunked mode only) — audited by the SCHED3xx race
        #: detector via ``repro check --sanitize continuous`` and tests.
        self.emitted_schedules: List[StreamSchedule] = []
        #: Successful admissions of the last ``serve()`` call, in order
        #: (req_ids; restores included).  The ``--verify-prefix`` gate
        #: compares this log cache-on vs cache-off.
        self.admission_order: List[int] = []
        self.prefix_index = None
        if config.prefix_cache:
            # Lazy import keeps repro.memory's import graph acyclic when
            # prefix caching is off.
            from ..memory.prefix_index import RadixPrefixIndex

            self.prefix_index = RadixPrefixIndex(arena)

    def serve(self, requests: Sequence[GenRequest],
              duration_s: Optional[float] = None) -> GenServingMetrics:
        """Run the continuous-batching simulation to completion.

        Like :func:`~repro.serving.server.simulate_serving`, ``duration_s``
        is the offered-load horizon (defaults to the last arrival); the
        loop always drains, and saturation is judged from the backlog at
        the horizon.
        """
        if not requests:
            raise ValueError("need at least one request to simulate")
        arrivals: List[GenRequest] = sorted(requests, key=lambda r: r.arrival_s)
        horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
        if horizon <= 0:
            raise ValueError(f"duration must be positive, got {horizon}")
        chunker: Optional[PrefillChunker] = None
        if self.config.chunk_tokens is not None:
            chunker = PrefillChunker(self.config.chunk_tokens,
                                     self.config.chunk_overhead_s)
        check_schedule = None
        if self.config.verify_schedules:
            # Lazy import: repro.analysis imports this module via the
            # sanitizer, so a module-level import would be circular.
            from ..analysis.schedule_checks import check_schedule
        self.emitted_schedules = []
        if self._trace_on:
            self.tracer.thread_name("gpu", "gpu (prefill + decode steps)")
            if chunker is not None:
                self.tracer.thread_name("gpu:prefill",
                                        "gpu stream: prefill chunks")
                self.tracer.thread_name("gpu:decode",
                                        "gpu stream: decode steps")

        res = self.resilience
        instrumentation = EngineInstrumentation(self.tracer, self.metrics)
        faults: Optional[EngineFaultInjector] = None
        if res is not None and not res.faults.empty:
            faults = EngineFaultInjector(res.faults, self.server_id,
                                         instrumentation)
        retry_state = None
        if res is not None and res.retry is not None:
            from ..resilience.retry import RetryState
            retry_state = RetryState(res.retry)
        engine = Engine(instrumentation=instrumentation, faults=faults)
        queue: Deque[GenRequest] = deque()
        active: List[GenRequest] = []
        busy = 0.0
        decode_steps = prefills = tokens = 0
        preemptions = tokens_recomputed = retries = attempts_failed = 0
        chunks_total = 0
        overlap_saved = stall = 0.0
        round_idx = 0
        self.admission_order = []
        prefix_hits = prefix_reused = 0
        prefill_saved_s = 0.0
        #: Cached-prefix tokens attached at this admission, consumed at
        #: the prefill commit (publish + recompute accounting).
        cached_len: Dict[int, int] = {}

        def prefix_lookup(r: GenRequest) -> Tuple[int, Sequence]:
            """Longest cached page-aligned prefix for an arriving/resumed
            request: ``(matched_tokens, pages)`` — ``(0, ())`` with the
            cache off or a content-less workload."""
            if self.prefix_index is None or r.prompt_ids is None:
                return 0, ()
            return self.prefix_index.lookup(r.prompt_ids)

        def count_hit(matched: int) -> None:
            """Account a cache hit once its admission succeeded (a denied
            head retries its lookup next pass — don't double-count it)."""
            nonlocal prefix_hits, prefix_reused
            if not matched:
                return
            prefix_hits += 1
            prefix_reused += matched
            if self.metrics is not None:
                self.metrics.counter("gen_prefix_hits_total",
                                     system=self.system_name).inc()
                self.metrics.counter(
                    "gen_prefix_tokens_reused_total",
                    system=self.system_name,
                ).inc(matched)

        def publish_prefix(r: GenRequest) -> None:
            """Index the request's full prompt pages after a successful
            prefill commit (first-publisher-wins; shared pages converge
            on one physical page per distinct prefix)."""
            if self.prefix_index is None or r.prompt_ids is None:
                return
            n_full = r.seq_len // self.arena.page_tokens
            if n_full:
                region = self.arena.region_of(r.req_id)
                self.prefix_index.insert(r.prompt_ids, region.pages[:n_full])

        def on_arrival(event) -> None:
            r = event.payload
            self._begin_request(r)
            if not self.arena.fits_at_all(
                r.seq_len, r.seq_len + r.max_new_tokens
            ):
                # Could never be admitted even into an empty arena:
                # shed instead of blocking the FIFO head forever.
                self._shed(r, engine.now)
                return
            queue.append(r)

        def on_retry(event) -> None:
            queue.append(event.payload)

        def slots_free(pending: int) -> bool:
            cap = self.config.max_batch
            return cap is None or len(active) + pending < cap

        def requeue(r: GenRequest, now: float) -> bool:
            """Route an evicted/failed attempt through the retry path.

            Returns True if a RETRY was scheduled; False resolves FAILED
            (budget/attempts exhausted, or backoff past the deadline).
            """
            nonlocal retries
            if retry_state is None:
                # No retry policy: re-enter the queue at this instant.
                engine.schedule(now, EventKind.RETRY, on_retry, r)
                return True
            retry_at = retry_state.next_retry_at(r, now)
            if retry_at is None:
                self._fail(r, now)
                return False
            r.attempt += 1
            retries += 1
            engine.schedule(retry_at, EventKind.RETRY, on_retry, r)
            return True

        def evict(r: GenRequest, now: float) -> None:
            """Drop a live request's KV (preemption or crash) and re-queue."""
            nonlocal preemptions
            self.arena.preempt(r.req_id)
            preemptions += 1
            if self.metrics is not None:
                self.metrics.counter("gen_preemptions_total",
                                     system=self.system_name).inc()
            requeue(r, now)

        def _kv_pages(r: GenRequest, lo: int, hi: int) -> List[str]:
            """Logical page-buffer names backing token positions [lo, hi)."""
            page = self.arena.page_tokens
            return [f"kv/{r.req_id:08d}/p{p}"
                    for p in range(lo // page, (hi - 1) // page + 1)]

        def overlapped_round(admitted: List[GenRequest]) -> None:
            """One chunked round: prefill chunks on the ``prefill`` stream
            overlapped with decode steps on the ``decode`` stream.

            The round is planned first (chunk latencies, decode steps
            starting strictly before the prefill finishes), encoded as a
            :class:`StreamSchedule` with KV-page buffer annotations and
            the chunk↔decode EventRecord/EventWait join, then *executed*
            on per-stream virtual clocks — the resulting critical-path
            makespan is what ``engine.advance`` charges, so the GPU is
            busy for the overlapped window, not the serial sum.  Token
            effects are identical to the serial path: the admitted set
            commits at the prefill's end, each decode step at its own.
            """
            nonlocal active, busy, decode_steps, prefills, tokens
            nonlocal attempts_failed, tokens_recomputed
            nonlocal chunks_total, overlap_saved, stall, round_idx
            nonlocal prefill_saved_s
            round_idx += 1
            b_p = len(admitted)
            prompt = max(r.seq_len + r.generated for r in admitted)
            # Prefix-cache credit, as in the serial path: chunk only the
            # positions past the shortest attached prefix.
            pass_start = min(cached_len[r.req_id] for r in admitted)
            started = engine.now
            chunks = chunker.chunks(prompt, start=pass_start)
            chunk_lats = [chunker.chunk_latency(self.runtime, b_p, c,
                                                pass_start=pass_start)
                          for c in chunks]
            prefill_total = sum(chunk_lats)
            if pass_start > 0:
                prefill_saved_s += min(
                    self.runtime.prefill_latency(b_p, prompt),
                    self.runtime.prefill_latency(b_p, pass_start),
                )
            # Plan the decode steps that overlap the prefill: a step is
            # issued only if it fits **inside** the prefill window, so
            # the round never outlasts the prefill pass — the next
            # admission happens exactly when the serial loop would have
            # re-checked the queue, and every overlapped step is pure
            # profit (a straggling step would delay admissions and push
            # the TTFT tail back up at light load).  ``extra`` tracks
            # tokens produced within this round without mutating
            # requests yet.
            steps: List[Tuple[List[Tuple[GenRequest, int]], float]] = []
            dec = list(active)
            extra: Dict[int, int] = {}
            dec_elapsed = 0.0
            while dec:
                b_d = len(dec)
                past = max(r.seq_len + r.generated + extra.get(r.req_id, 0)
                           for r in dec)
                step_s = self.runtime.decode_step_latency(b_d, past)
                if dec_elapsed + step_s > prefill_total:
                    break
                members = [(r, r.seq_len + r.generated
                            + extra.get(r.req_id, 0)) for r in dec]
                steps.append((members, step_s))
                dec_elapsed += step_s
                nxt: List[GenRequest] = []
                for r in dec:
                    extra[r.req_id] = extra.get(r.req_id, 0) + 1
                    if r.generated + extra[r.req_id] < r.max_new_tokens:
                        nxt.append(r)
                dec = nxt
            # Encode the round as an issue-order stream program.  Chunk
            # launches write the admitted requests' KV pages; decode
            # launches append to the live requests' pages (disjoint
            # request sets — the overlap is race-free by construction);
            # the EventRecord/EventWait pair is the chunk↔decode join:
            # the decode stream may not re-form the batch around the
            # newcomers (reading their freshly written KV) until every
            # prefill chunk has completed.
            sched = StreamSchedule(name=f"round{round_idx}")
            durations: Dict[str, float] = {}
            for c, lat in zip(chunks, chunk_lats):
                writes: List[str] = []
                for r in admitted:
                    # Cached-prefix positions are already resident (the
                    # attached pages) — the pass never writes them.
                    lo = max(c.start, cached_len[r.req_id])
                    hi = min(c.end, r.seq_len + r.generated)
                    if lo < hi:
                        writes.extend(_kv_pages(r, lo, hi))
                kernel = f"prefill.c{c.index}"
                sched.launch(kernel, "prefill", reads=("weights",),
                             writes=tuple(writes))
                durations[kernel] = lat
            done = f"prefill.done.{round_idx}"
            sched.record(done, "prefill")
            for j, (members, step_s) in enumerate(steps):
                reads: List[str] = ["weights"]
                writes = []
                for r, cached in members:
                    reads.extend(_kv_pages(r, max(0, cached - 1), cached))
                    writes.extend(_kv_pages(r, cached, cached + 1))
                kernel = f"decode.s{j}"
                sched.launch(kernel, "decode", reads=tuple(reads),
                             writes=tuple(writes))
                durations[kernel] = step_s
            sched.wait(done, "decode")
            reform_reads = ["weights"]
            for r in admitted:
                length = r.seq_len + r.generated
                reform_reads.extend(_kv_pages(r, length - 1, length))
            sched.launch("batch.reform", "decode", reads=tuple(reform_reads))
            durations["batch.reform"] = 0.0
            self.emitted_schedules.append(sched)
            if check_schedule is not None:
                races = check_schedule(sched)
                if races:
                    raise RuntimeError(
                        f"racy round schedule {sched.name}: "
                        f"{races[0].code} {races[0].message}"
                    )
            # Execute on per-stream clocks: the makespan (critical path
            # through the join) is the GPU's busy window for this round.
            timing = execute_schedule(sched, durations)
            makespan = timing.makespan_s
            engine.advance(makespan)
            # Faults may stretch the window; scale internal span times so
            # commit timestamps stay inside [started, engine.now].
            ratio = engine.last_advance_s / makespan if makespan > 0 else 1.0
            busy += _merged_busy_in_horizon(
                [(started + t.start_s * ratio, started + t.end_s * ratio)
                 for t in timing.spans], horizon,
            )
            overlap_saved += timing.overlap_saved_s * ratio
            if dec:
                # Live decoders exhausted the overlap window and stalled
                # from their last step to the join.
                stall += max(0.0, prefill_total - dec_elapsed) * ratio
            prefills += 1
            chunks_total += len(chunks)
            if self._trace_on:
                for t in timing.spans:
                    if t.op.kernel == "batch.reform":
                        continue
                    self.tracer.complete(
                        t.op.kernel, started + t.start_s * ratio,
                        t.duration_s * ratio, tid=f"gpu:{t.op.stream}",
                        cat="prefill" if t.op.stream == "prefill"
                        else "decode", round=round_idx,
                    )
            # Commit decode-step effects at each step's end time.
            elapsed = 0.0
            for members, step_s in steps:
                elapsed += step_s
                step_end = started + elapsed * ratio
                decode_steps += 1
                tokens += len(members)
                for r, _cached in members:
                    r.generated += 1
                    if r.generated >= r.max_new_tokens:
                        self._complete(r, step_end)
                        self.arena.release(r.req_id)
                    else:
                        self.arena.append(r.req_id, 1)
                if self.metrics is not None:
                    self.metrics.counter("gen_decode_steps_total",
                                         system=self.system_name).inc()
                    self.metrics.counter(
                        "gen_tokens_total", system=self.system_name
                    ).inc(len(members))
            active = [r for r in active if r.generated < r.max_new_tokens]
            # Commit the prefill at the pass end (TTFT is unchanged by
            # the overlap — the win is that the *round* only costs the
            # makespan, so the queue drains sooner).
            prefill_end = started + prefill_total * ratio
            for r in admitted:
                matched = cached_len.pop(r.req_id, 0)
                if faults is not None and faults.attempt_fails(
                    r.req_id, r.attempt, started
                ):
                    attempts_failed += 1
                    self.arena.preempt(r.req_id)
                    requeue(r, engine.now)
                    continue
                publish_prefix(r)
                if r.first_token_s is None:
                    r.start_s = started
                    r.generated = 1  # prefill yields the first token
                    r.first_token_s = prefill_end
                else:
                    # Resumed after eviction: prefix recompute past any
                    # still-cached head, as in the serial path.
                    tokens_recomputed += r.seq_len + r.generated - matched
                    r.generated += 1
                tokens += 1
                if r.generated >= r.max_new_tokens:
                    self._complete(r, prefill_end)
                    self.arena.release(r.req_id)
                else:
                    active.append(r)
            if self._trace_on:
                self.tracer.counter("kv_arena", engine.now, {
                    "used_mb": self.arena.used_bytes / (1024.0 * 1024.0),
                    "slots": float(len(active)),
                })
            if self.metrics is not None:
                self.metrics.counter("gen_prefill_batches_total",
                                     system=self.system_name).inc()
                self.metrics.counter("gen_prefill_chunks_total",
                                     system=self.system_name).inc(len(chunks))

        for r in arrivals:
            engine.schedule(r.arrival_s, EventKind.ARRIVAL, on_arrival, r)

        while True:
            # Drive the GPU until it goes idle at the current instant.
            while True:
                # 0. Replica down?  Every in-flight request loses its KV
                #    and re-enters through the retry path; the loop sleeps
                #    out the outage (arrivals still land in the queue at
                #    their true timestamps).
                if faults is not None and faults.crashed(engine.now):
                    outage_end = faults.crash_end(engine.now)
                    for victim in active:
                        evict(victim, engine.now)
                    active = []
                    engine.run_until(outage_end)
                    continue
                # 1. KV-aware admission: fold every admissible queued
                #    request into one prefill pass (chunked-prefill
                #    simplification).  Resumed victims (generated > 0)
                #    re-enter through arena.restore with their recompute
                #    length (prompt + tokens generated before eviction).
                admitted: List[GenRequest] = []
                while queue and slots_free(len(admitted)):
                    limit = self.config.admit_per_step
                    if limit is not None and len(admitted) >= limit:
                        break
                    r = queue[0]
                    matched, shared = prefix_lookup(r)
                    if r.generated > 0:
                        ok = self.arena.restore(
                            r.req_id, r.seq_len + r.generated,
                            r.seq_len + r.max_new_tokens,
                            shared_pages=shared,
                        )
                        if not ok and not self.arena.fits_at_all(
                            r.seq_len + r.generated,
                            r.seq_len + r.max_new_tokens,
                        ):
                            # Grew past what an empty arena could restore:
                            # unrecoverable, don't block the FIFO head.
                            queue.popleft()
                            self._fail(r, engine.now)
                            continue
                    else:
                        ok = self.arena.admit(r.req_id, r.seq_len,
                                              r.seq_len + r.max_new_tokens,
                                              shared_pages=shared)
                    if not ok:
                        break  # high-watermark holds the FIFO head
                    queue.popleft()
                    admitted.append(r)
                    count_hit(matched)
                    cached_len[r.req_id] = matched
                    self.admission_order.append(r.req_id)
                # 1b. Watermark holds the head while others run: preempt
                #     victims so the head can make progress (bounded by
                #     the retry budget via requeue()).
                if not admitted and queue and active and \
                        self.config.preemption is not None:
                    policy = self.config.preemption
                    head = queue[0]
                    evicted = 0
                    for victim in policy.victim_order(active, engine.now):
                        if evicted >= policy.max_victims_per_event:
                            break
                        if not self.arena.fits_at_all(
                            victim.seq_len + victim.generated,
                            victim.seq_len + victim.max_new_tokens,
                        ):
                            continue  # could never be restored: skip
                        active.remove(victim)
                        evict(victim, engine.now)
                        evicted += 1
                        if self.arena.can_admit(
                            head.seq_len + head.generated,
                            head.seq_len + head.max_new_tokens,
                        ):
                            break
                    if evicted:
                        continue  # retry admission with the freed pages
                if admitted:
                    if chunker is not None:
                        overlapped_round(admitted)
                        continue
                    b = len(admitted)
                    prompt = max(r.seq_len + r.generated for r in admitted)
                    # Prefix-cache credit: the batched pass only runs
                    # positions past the shortest attached prefix (the
                    # telescoping difference — the cached head's cost,
                    # launch overhead cancelled, is skipped work).
                    pass_start = min(cached_len[r.req_id] for r in admitted)
                    started = engine.now
                    full_s = self.runtime.prefill_latency(b, prompt)
                    prefill_s = full_s
                    if pass_start > 0:
                        prefill_s = max(0.0, full_s - self.runtime
                                        .prefill_latency(b, pass_start))
                        prefill_saved_s += full_s - prefill_s
                    self.runtime.trace_prefill(self.tracer, started,
                                               prefill_s, b, prompt)
                    clock = engine.advance(prefill_s)
                    busy += _window_overlap(started, engine.last_advance_s,
                                            horizon)
                    if active:
                        # Serial loop: the whole pass blocks every live
                        # decoder (the head-of-line stall chunking and
                        # overlap exist to remove).
                        stall += engine.last_advance_s
                    prefills += 1
                    for r in admitted:
                        matched = cached_len.pop(r.req_id, 0)
                        if faults is not None and faults.attempt_fails(
                            r.req_id, r.attempt, started
                        ):
                            # Transient failure at the prefill commit: the
                            # region is dropped, the attempt re-enters via
                            # the retry path (or fails terminally).
                            attempts_failed += 1
                            self.arena.preempt(r.req_id)
                            requeue(r, clock)
                            continue
                        publish_prefix(r)
                        if r.first_token_s is None:
                            r.start_s = started
                            r.generated = 1  # prefill yields the first token
                            r.first_token_s = clock
                        else:
                            # Resumed after eviction: the prefix (prompt +
                            # prior tokens) past any still-cached head was
                            # recomputed and the pass yields the next
                            # token.  The restored region already holds
                            # the recomputed prefix — the token just
                            # produced joins it at the next decode step,
                            # as after a normal prefill.
                            tokens_recomputed += r.seq_len + r.generated \
                                - matched
                            r.generated += 1
                        tokens += 1
                        if r.generated >= r.max_new_tokens:
                            self._complete(r, clock)
                            self.arena.release(r.req_id)
                        else:
                            active.append(r)
                    if self.metrics is not None:
                        self.metrics.counter("gen_prefill_batches_total",
                                             system=self.system_name).inc()
                    continue
                # 2. One decode step over the live batch: width = live
                #    slots only (finished requests already exited), KV
                #    padded to the longest live cache.
                if active:
                    b = len(active)
                    past = max(r.seq_len + r.generated for r in active)
                    started = engine.now
                    step_s = self.runtime.decode_step_latency(b, past)
                    self.runtime.trace_decode_stride(self.tracer, started,
                                                     step_s, b, past,
                                                     tokens=b)
                    clock = engine.advance(step_s)
                    busy += _window_overlap(started, engine.last_advance_s,
                                            horizon)
                    decode_steps += 1
                    tokens += b
                    survivors: List[GenRequest] = []
                    for r in active:
                        r.generated += 1
                        if r.generated >= r.max_new_tokens:
                            self._complete(r, clock)
                            self.arena.release(r.req_id)
                        else:
                            # The token just produced joins the KV cache
                            # and is attended to from the next step on.
                            self.arena.append(r.req_id, 1)
                            survivors.append(r)
                    active = survivors
                    if self._trace_on:
                        self.tracer.counter("kv_arena", clock, {
                            "used_mb":
                                self.arena.used_bytes / (1024.0 * 1024.0),
                            "slots": float(len(active)),
                        })
                    if self.metrics is not None:
                        self.metrics.counter("gen_decode_steps_total",
                                             system=self.system_name).inc()
                        self.metrics.counter("gen_tokens_total",
                                             system=self.system_name).inc(b)
                    continue
                # 3. Nothing runnable right now.  (Fault-free, queue
                #    non-empty here is impossible: an empty arena admits
                #    anything that passed fits_at_all at ingest.  Under
                #    resilience the head may legitimately wait — e.g. for
                #    a retry backoff or recovery.)
                assert res is not None or not queue, \
                    "admission stalled with an empty arena"
                break
            if not engine.pending:
                break
            # Idle: dispatch the next instant in full so simultaneous
            # arrivals all join the queue before the next admission pass.
            engine.step_due()

        device = getattr(self.runtime, "device", None)
        peak_flops = device.peak_fp32_flops if device is not None else 0.0
        return self._finalize(arrivals, horizon, engine.now, busy,
                              decode_steps, prefills, tokens,
                              self.arena.denials,
                              self.arena.peak_used_bytes,
                              preemptions=preemptions,
                              tokens_recomputed=tokens_recomputed,
                              retries=retries,
                              attempts_failed=attempts_failed,
                              prefill_chunks=chunks_total,
                              overlap_saved_s=overlap_saved,
                              stall_s=stall,
                              prefix_hits=prefix_hits,
                              prefix_tokens_reused=prefix_reused,
                              prefill_flops_saved=prefill_saved_s
                              * peak_flops)


def request_level_cost_fn(runtime, est_new_tokens: int = 16) -> CostFn:
    """Scheduling cost for request-level generation batching.

    Prices a candidate ``(padded_len, batch)`` as one full generation —
    prefill plus ``est_new_tokens`` decode steps — through the runtime's
    cached cost models.  Used by the DP scheduler to partition the queue;
    execution is then priced step by step.
    """
    if est_new_tokens <= 0:
        raise ValueError(f"est_new_tokens must be positive, got {est_new_tokens}")

    def cost(seq_len: int, batch: int) -> float:
        return runtime.generate_latency(seq_len, est_new_tokens, batch)

    return cost


class RequestLevelGenerationServer(_GenLoopBase):
    """Request-granularity control: batches formed once, run to the longest.

    The decode batch keeps its full width until the **longest** member
    finishes — retired slots are still charged (the padded-slot work
    iteration-level batching eliminates) — and arrivals during a round
    wait for the next one.  Members' responses are released at their own
    completion step, so the latency gap vs. continuous batching comes from
    queueing and admission, not from response buffering.
    """

    name = "request-level"

    def __init__(
        self,
        runtime,
        scheduler: Optional[BatchScheduler] = None,
        max_batch: int = 8,
        est_new_tokens: int = 16,
        warmup_fraction: float = 0.1,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        system_name: str = "Turbo-DP-Request",
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        super().__init__(runtime, tracer, metrics, system_name,
                         warmup_fraction)
        self.scheduler = scheduler if scheduler is not None \
            else PrunedDPBatchScheduler()
        self.max_batch = max_batch
        self.cost_fn = request_level_cost_fn(runtime, est_new_tokens)

    def serve(self, requests: Sequence[GenRequest],
              duration_s: Optional[float] = None) -> GenServingMetrics:
        if not requests:
            raise ValueError("need at least one request to simulate")
        arrivals: List[GenRequest] = sorted(requests, key=lambda r: r.arrival_s)
        horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
        if horizon <= 0:
            raise ValueError(f"duration must be positive, got {horizon}")
        if self._trace_on:
            self.tracer.thread_name("gpu", "gpu (prefill + decode steps)")

        engine = Engine(instrumentation=EngineInstrumentation(
            self.tracer, self.metrics))
        queue: List[GenRequest] = []
        busy = 0.0
        decode_steps = prefills = tokens = 0

        def on_arrival(event) -> None:
            r = event.payload
            self._begin_request(r)
            queue.append(r)

        for r in arrivals:
            engine.schedule(r.arrival_s, EventKind.ARRIVAL, on_arrival, r)

        while True:
            while queue:
                # One scheduling round over the whole queue (hungry policy).
                taken, queue[:] = list(queue), []
                batches = self.scheduler.schedule(taken, self.cost_fn,
                                                  self.max_batch)
                for batch in batches:
                    b = batch.size
                    padded = batch.padded_len
                    started = engine.now
                    prefill_s = self.runtime.prefill_latency(b, padded)
                    self.runtime.trace_prefill(self.tracer, started,
                                               prefill_s, b, padded)
                    busy += _window_overlap(started, prefill_s, horizon)
                    clock = engine.advance(prefill_s)
                    prefills += 1
                    survivors: List[GenRequest] = []
                    for r in batch.requests:
                        r.start_s = started
                        r.generated = 1
                        r.first_token_s = clock
                        tokens += 1
                        if r.generated >= r.max_new_tokens:
                            self._complete(r, clock)
                        else:
                            survivors.append(r)
                    # Decode to the longest member at FULL width: finished
                    # slots idle but are still paid for.
                    step = 1
                    while survivors:
                        past = padded + step
                        step_start = engine.now
                        step_s = self.runtime.decode_step_latency(b, past)
                        self.runtime.trace_decode_stride(
                            self.tracer, step_start, step_s, b, past,
                            tokens=len(survivors),
                        )
                        busy += _window_overlap(step_start, step_s, horizon)
                        clock = engine.advance(step_s)
                        decode_steps += 1
                        tokens += len(survivors)
                        step += 1
                        nxt: List[GenRequest] = []
                        for r in survivors:
                            r.generated += 1
                            if r.generated >= r.max_new_tokens:
                                self._complete(r, clock)
                            else:
                                nxt.append(r)
                        survivors = nxt
                    # Arrivals during this batch queued up for the NEXT
                    # round — the head-of-line blocking continuous
                    # batching removes.
            if not engine.pending:
                break
            engine.step_due()

        return self._finalize(arrivals, horizon, engine.now, busy,
                              decode_steps, prefills, tokens, kv_denials=0,
                              kv_peak_bytes=0)
