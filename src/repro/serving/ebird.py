"""Ebird-style concurrent elastic batching (paper §2.2 related work).

Ebird [Cui et al., ICCD'19] runs *multiple batches of the same model
concurrently* on one GPU so small batches can be dispatched immediately
instead of waiting behind a large in-flight batch.  We model the GPU as a
processor-sharing resource: ``k`` concurrently-resident batches each
progress at ``efficiency / k`` of the device's serial rate (concurrent
kernels contend for SMs and bandwidth; ``efficiency <= 1`` charges the
interference overhead).

The upside is head-of-line-blocking relief — short requests overtake long
in-flight batches — the downside is that total service capacity is no
better than serial execution (slightly worse after interference), which is
why the paper pursues *scheduling* rather than concurrency.

A deliberate modelling choice, pinned by a regression test: ``efficiency``
is charged even when only **one** batch is resident (``k = 1`` progresses
at ``efficiency``, not 1.0).  Ebird's elastic scheduler always dispatches
through its multi-stream machinery — stream-pool bookkeeping, per-stream
events, and forgoing the whole-device persistent-kernel configurations a
serial runtime would pick — so its overhead is a property of *how* work is
launched, not of how many batches happen to be co-resident.  Charging it
uniformly also keeps the progress-rate function continuous at the
``k = 1 -> 2`` boundary; a discontinuity there would let the simulator
flip between regimes on ties and make results knife-edge sensitive to
arrival jitter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .metrics import LatencyStats, ServingMetrics, response_throughput
from .request import Request, make_batch
from .scheduler import CostFn


@dataclass
class _ActiveBatch:
    requests: tuple
    remaining_work_s: float  # solo device-seconds still owed


def simulate_ebird_serving(
    requests: Sequence[Request],
    cost_fn: CostFn,
    max_streams: int = 4,
    max_batch: int = 8,
    efficiency: float = 0.95,
    duration_s: Optional[float] = None,
    system_name: str = "Ebird",
) -> ServingMetrics:
    """Processor-sharing simulation of Ebird's elastic concurrent batches.

    Dispatch policy: whenever a stream is free, the queued requests (up to
    ``max_batch``, arrival order, padded to their longest) start
    immediately as a new concurrent batch.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    if max_streams <= 0:
        raise ValueError(f"max_streams must be positive, got {max_streams}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    arrivals = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    clock = 0.0
    next_arrival = 0
    n = len(arrivals)
    queue: List[Request] = []
    active: List[_ActiveBatch] = []
    backlog_at_horizon: Optional[float] = None

    def progress_rate() -> float:
        """Per-batch progress in device-seconds per wall-second."""
        return efficiency / len(active)

    def dispatch(now: float) -> None:
        while queue and len(active) < max_streams:
            taken, queue[:] = queue[:max_batch], queue[max_batch:]
            batch = make_batch(taken)
            for r in batch.requests:
                r.start_s = now
            active.append(
                _ActiveBatch(batch.requests,
                             cost_fn(batch.padded_len, batch.size))
            )

    while next_arrival < n or queue or active:
        next_arrival_t = (
            arrivals[next_arrival].arrival_s if next_arrival < n else math.inf
        )
        if active:
            rate = progress_rate()
            min_remaining = min(b.remaining_work_s for b in active)
            next_completion_t = clock + min_remaining / rate
        else:
            next_completion_t = math.inf
        now = min(next_arrival_t, next_completion_t)
        assert now < math.inf, "simulation stalled"
        if active:
            elapsed = now - clock
            rate = progress_rate()
            for batch in active:
                batch.remaining_work_s -= elapsed * rate
        clock = now

        finished = [b for b in active if b.remaining_work_s <= 1e-12]
        if finished:
            for batch in finished:
                for r in batch.requests:
                    r.completion_s = clock
            active[:] = [b for b in active if b.remaining_work_s > 1e-12]
        while next_arrival < n and arrivals[next_arrival].arrival_s <= clock:
            queue.append(arrivals[next_arrival])
            next_arrival += 1
        dispatch(clock)
        if (backlog_at_horizon is None and next_arrival >= n
                and clock >= horizon):
            backlog_at_horizon = len(queue) + sum(
                len(b.requests) for b in active
            )

    if backlog_at_horizon is None:
        backlog_at_horizon = 0
    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    drain_seconds = backlog_at_horizon / max(throughput, 1e-9)
    return ServingMetrics(
        system=system_name,
        request_rate=n / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=drain_seconds > 1.0,
        completed=sum(1 for r in arrivals if r.completion_s is not None),
        offered=n,
        backlog_at_end=int(backlog_at_horizon),
    )
