"""Ebird-style concurrent elastic batching (paper §2.2 related work).

Ebird [Cui et al., ICCD'19] runs *multiple batches of the same model
concurrently* on one GPU so small batches can be dispatched immediately
instead of waiting behind a large in-flight batch.  We model the GPU as a
processor-sharing resource: ``k`` concurrently-resident batches each
progress at ``efficiency / k`` of the device's serial rate (concurrent
kernels contend for SMs and bandwidth; ``efficiency <= 1`` charges the
interference overhead).

The upside is head-of-line-blocking relief — short requests overtake long
in-flight batches — the downside is that total service capacity is no
better than serial execution (slightly worse after interference), which is
why the paper pursues *scheduling* rather than concurrency.

A deliberate modelling choice, pinned by a regression test: ``efficiency``
is charged even when only **one** batch is resident (``k = 1`` progresses
at ``efficiency``, not 1.0).  Ebird's elastic scheduler always dispatches
through its multi-stream machinery — stream-pool bookkeeping, per-stream
events, and forgoing the whole-device persistent-kernel configurations a
serial runtime would pick — so its overhead is a property of *how* work is
launched, not of how many batches happen to be co-resident.  Charging it
uniformly also keeps the progress-rate function continuous at the
``k = 1 -> 2`` boundary; a discontinuity there would let the simulator
flip between regimes on ties and make results knife-edge sensitive to
arrival jitter.

Migration note (event engine): the loop now runs on
:class:`repro.engine.Engine`.  Arrivals are ARRIVAL events; the earliest
co-resident batch completion is a single WAKE timer that is cancelled and
rescheduled whenever the processor-sharing rate changes (a batch joins or
leaves).  Every event applies the elapsed progress since the previous
event before mutating the active set, so the piecewise-linear
remaining-work trajectories are identical to the old hand-rolled
``min(next_arrival, next_completion)`` loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from ..engine import Engine, EngineFaultInjector, EventKind
from .metrics import LatencyStats, ServingMetrics, response_throughput
from .request import Request, RequestState, make_batch
from .scheduler import CostFn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.faults import FaultPlan


@dataclass
class _ActiveBatch:
    requests: tuple
    remaining_work_s: float  # solo device-seconds still owed


def simulate_ebird_serving(
    requests: Sequence[Request],
    cost_fn: CostFn,
    max_streams: int = 4,
    max_batch: int = 8,
    efficiency: float = 0.95,
    duration_s: Optional[float] = None,
    system_name: str = "Ebird",
    faults: Optional["FaultPlan"] = None,
    server_id: int = 0,
) -> ServingMetrics:
    """Processor-sharing simulation of Ebird's elastic concurrent batches.

    Dispatch policy: whenever a stream is free, the queued requests (up to
    ``max_batch``, arrival order, padded to their longest) start
    immediately as a new concurrent batch.

    With ``faults`` set (a :class:`~repro.resilience.FaultPlan`, bound
    through the shared engine injector), latency spikes divide the
    processor-sharing progress rate during their windows (applied segment
    by segment via wake-ups at the plan's window boundaries), a server
    crash fails queued and in-flight work fast and blocks dispatch until
    recovery, and transient failures strike at batch completion.  Ebird
    has no retry machinery, so failed requests are terminal.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    if max_streams <= 0:
        raise ValueError(f"max_streams must be positive, got {max_streams}")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    arrivals = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    engine = Engine()
    inj = (EngineFaultInjector(faults, server_id)
           if faults is not None and not faults.empty else None)
    n = len(arrivals)
    queue: List[Request] = []
    active: List[_ActiveBatch] = []
    backlog_at_horizon: Optional[float] = None
    arrivals_left = n
    last_progress_t = 0.0
    completion_event = None

    def progress_rate() -> float:
        """Per-batch progress in device-seconds per wall-second.

        Sampled at the current segment start (``last_progress_t``); the
        boundary wake-ups guarantee the fault multiplier is constant
        within each applied segment.
        """
        rate = efficiency / len(active)
        if inj is not None:
            if inj.crashed(last_progress_t):
                return 0.0
            factor = inj.multiplier(last_progress_t)
            if factor != 1.0:
                rate = rate / factor
        return rate

    def apply_progress(now: float) -> None:
        """Charge the elapsed wall time against every resident batch."""
        nonlocal last_progress_t
        if active and now > last_progress_t:
            elapsed = now - last_progress_t
            rate = progress_rate()
            for batch in active:
                batch.remaining_work_s -= elapsed * rate
        last_progress_t = now

    def dispatch(now: float) -> None:
        if inj is not None and inj.crashed(now):
            return  # down: nothing dispatches until recovery
        while queue and len(active) < max_streams:
            taken, queue[:] = queue[:max_batch], queue[max_batch:]
            batch = make_batch(taken)
            for r in batch.requests:
                r.start_s = now
            active.append(
                _ActiveBatch(batch.requests,
                             cost_fn(batch.padded_len, batch.size))
            )

    def reschedule_completion() -> None:
        """Keep one WAKE at the earliest completion under the current rate."""
        nonlocal completion_event
        if completion_event is not None:
            engine.cancel(completion_event)
            completion_event = None
        if not active:
            return
        rate = progress_rate()
        if rate <= 0.0:
            return  # crashed: the recovery boundary wake-up reschedules
        min_remaining = min(b.remaining_work_s for b in active)
        at = engine.now + min_remaining / rate
        completion_event = engine.schedule(at, EventKind.WAKE, on_event)

    def sync(now: float) -> None:
        """Shared per-event body: progress, completions, dispatch."""
        apply_progress(now)
        if inj is not None and inj.crashed(now):
            # The crash takes queued and in-flight work down fast
            # (Ebird has no retries — terminal failures).
            for batch in active:
                for r in batch.requests:
                    r.resolve(RequestState.FAILED)
            active.clear()
            for r in queue:
                r.resolve(RequestState.FAILED)
            queue.clear()
        finished = [b for b in active if b.remaining_work_s <= 1e-12]
        if finished:
            for batch in finished:
                for r in batch.requests:
                    if inj is not None and inj.attempt_fails(
                        r.req_id, r.attempt, now
                    ):
                        r.resolve(RequestState.FAILED)
                    else:
                        r.resolve(RequestState.COMPLETED, now)
            active[:] = [b for b in active if b.remaining_work_s > 1e-12]
        dispatch(now)

    def on_event(_event) -> None:
        sync(engine.now)
        reschedule_completion()

    def on_arrival(event) -> None:
        nonlocal arrivals_left
        apply_progress(engine.now)
        queue.append(event.payload)
        arrivals_left -= 1
        nxt = engine.peek()
        if (nxt is not None and nxt.time == engine.now
                and nxt.kind is EventKind.ARRIVAL):
            # Coalesce simultaneous arrivals into one dispatch pass so
            # they can share a batch, as the merged-iteration loop did.
            return
        sync(engine.now)
        reschedule_completion()

    def snapshot_backlog(_event) -> None:
        nonlocal backlog_at_horizon
        if (backlog_at_horizon is None and arrivals_left == 0
                and engine.now >= horizon):
            backlog_at_horizon = len(queue) + sum(
                len(b.requests) for b in active
            )

    for r in arrivals:
        engine.schedule(r.arrival_s, EventKind.ARRIVAL, on_arrival, r)
    if inj is not None:
        # One wake-up per fault window edge: progress segments between
        # events see a constant multiplier, and crash recovery re-arms
        # dispatch and the completion timer.
        for t in inj.plan.boundaries(server_id):
            if t >= 0.0:
                engine.schedule(t, EventKind.WAKE, on_event)
    engine.add_dispatch_hook(snapshot_backlog)
    engine.run()

    if backlog_at_horizon is None:
        backlog_at_horizon = 0
    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    drain_seconds = backlog_at_horizon / max(throughput, 1e-9)
    return ServingMetrics(
        system=system_name,
        request_rate=n / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(arrivals),
        saturated=drain_seconds > 1.0,
        completed=sum(1 for r in arrivals if r.completion_s is not None),
        offered=n,
        backlog_at_end=int(backlog_at_horizon),
    )
