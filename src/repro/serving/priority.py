"""Priority-class scheduling for multi-tenant serving.

Production deployments (the Tencent setting of the paper) mix interactive
traffic with batch/offline traffic on the same GPUs.  This wrapper keeps
the paper's DP batching *within* each priority class but serves classes
strictly in priority order per scheduling round, so a flood of low-priority
work cannot starve interactive requests of a batching round.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from .request import Batch, Request
from .scheduler import BatchScheduler, CostFn


class PriorityBatchScheduler(BatchScheduler):
    """Class-partitioned scheduling: high priority first, inner scheduler
    (default: whatever the caller provides) within each class."""

    name = "priority"

    def __init__(self, inner: BatchScheduler) -> None:
        self.inner = inner

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        by_priority: Dict[int, List[Request]] = defaultdict(list)
        for request in requests:
            by_priority[request.priority].append(request)
        batches: List[Batch] = []
        for priority in sorted(by_priority):
            batches.extend(
                self.inner.schedule(by_priority[priority], cost_fn, max_batch)
            )
        return batches

    def observe(self, batch: Batch, observed_latency_s: float) -> None:
        """Forward server feedback to an adaptive inner scheduler."""
        observe = getattr(self.inner, "observe", None)
        if observe is not None:
            observe(batch, observed_latency_s)
