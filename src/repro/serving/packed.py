"""Padding-free batch scheduler (the "smart batching" extension).

Pairs with :class:`repro.runtime.packed.PackedRuntime`: requests are
concatenated rather than padded, so batching composition no longer trades
off padding waste — the scheduler simply fills batches in arrival order up
to a request cap and a total-token cap (the GEMM ``m`` dimension), and pins
each batch's execution cost from the packed cost model via
``Batch.cost_override``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .request import Batch, Request, make_batch
from .scheduler import BatchScheduler, CostFn

PackedCostFn = Callable[[Sequence[int]], float]


class PackedBatchScheduler(BatchScheduler):
    """Concatenating scheduler bounded by request and token caps."""

    name = "packed"

    def __init__(self, packed_cost_fn: PackedCostFn, max_tokens: int = 4096) -> None:
        if max_tokens <= 0:
            raise ValueError(f"max_tokens must be positive, got {max_tokens}")
        self.packed_cost_fn = packed_cost_fn
        self.max_tokens = max_tokens

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        batches: List[Batch] = []
        current: List[Request] = []
        tokens = 0
        for request in requests:
            over_requests = len(current) >= max_batch
            over_tokens = tokens + request.seq_len > self.max_tokens
            if current and (over_requests or over_tokens):
                batches.append(self._finish(current))
                current, tokens = [], 0
            current.append(request)
            tokens += request.seq_len
        if current:
            batches.append(self._finish(current))
        return batches

    def _finish(self, requests: List[Request]) -> Batch:
        lengths = [r.seq_len for r in requests]
        return make_batch(requests, cost_override=self.packed_cost_fn(lengths))
