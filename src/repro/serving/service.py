"""Service facade: model version management and ensembles (§2.2).

The paper lists the serving framework's advanced functionalities as
"batching, caching, model version management, and model ensembles".
Batching and caching live in :mod:`.scheduler`/:mod:`.cache`; this module
supplies the remaining two plus a front-end that wires everything together:

* :class:`ModelRegistry` — versioned model runtimes with an explicit
  serving pointer (deploy, canary-free rollback, retire);
* :func:`ensemble_cost_fn` — price a k-model ensemble executed serially on
  one GPU (the single-device deployment the paper evaluates);
* :class:`InferenceService` — MQ + response cache + batch scheduler +
  the registry's active model, driven through the discrete-event server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from .cache import ResponseCache
from .metrics import ServingMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..resilience import ResilienceConfig
    from ..resilience.degradation import DegradationLadder
from .request import Request
from .scheduler import BatchScheduler, CostFn, DPBatchScheduler
from .server import ServingConfig, simulate_serving


class ModelRegistryError(KeyError):
    """Unknown model/version or an illegal registry operation."""


@dataclass(frozen=True)
class ModelVersion:
    """One deployable model version: a name, a number and its cost model."""

    name: str
    version: int
    cost_fn: CostFn
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("model name must be non-empty")
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")


@dataclass
class ModelRegistry:
    """Versioned model store with an explicit serving pointer per model."""

    _versions: Dict[str, Dict[int, ModelVersion]] = field(default_factory=dict)
    _serving: Dict[str, int] = field(default_factory=dict)

    def register(self, model: ModelVersion) -> None:
        """Add a version; the first version of a model starts serving."""
        versions = self._versions.setdefault(model.name, {})
        if model.version in versions:
            raise ModelRegistryError(
                f"{model.name} v{model.version} is already registered"
            )
        versions[model.version] = model
        self._serving.setdefault(model.name, model.version)

    def get(self, name: str, version: Optional[int] = None) -> ModelVersion:
        """Fetch a specific version, or the one currently serving."""
        try:
            versions = self._versions[name]
        except KeyError:
            raise ModelRegistryError(f"unknown model {name!r}") from None
        if version is None:
            version = self._serving[name]
        try:
            return versions[version]
        except KeyError:
            raise ModelRegistryError(f"{name} has no version {version}") from None

    def serve_version(self, name: str, version: int) -> None:
        """Point the serving alias at ``version`` (deploy or roll back)."""
        self.get(name, version)  # validates
        self._serving[name] = version

    def serving_version(self, name: str) -> int:
        self.get(name)  # validates
        return self._serving[name]

    def retire(self, name: str, version: int) -> None:
        """Remove an old version; the serving version cannot be retired."""
        self.get(name, version)  # validates
        if self._serving[name] == version:
            raise ModelRegistryError(
                f"cannot retire {name} v{version}: it is currently serving"
            )
        del self._versions[name][version]

    def versions(self, name: str) -> List[int]:
        self.get(name)
        return sorted(self._versions[name])

    def models(self) -> List[str]:
        return sorted(self._versions)


def ensemble_cost_fn(members: Sequence[CostFn]) -> CostFn:
    """Price a model ensemble executed back-to-back on one GPU.

    A k-model ensemble answers every request with all k members (their
    outputs are combined host-side for free); on a single device the
    members serialize, so the batch cost is the sum of member costs.
    """
    member_list = list(members)
    if not member_list:
        raise ValueError("an ensemble needs at least one member")

    def cost(seq_len: int, batch: int) -> float:
        return sum(member(seq_len, batch) for member in member_list)

    return cost


class InferenceService:
    """The assembled Fig. 2 service: cache + scheduler + active model."""

    def __init__(
        self,
        registry: ModelRegistry,
        model_name: str,
        scheduler: Optional[BatchScheduler] = None,
        cache_capacity: int = 4096,
        max_batch: int = 20,
        metrics=None,
    ) -> None:
        self.registry = registry
        self.model_name = model_name
        self.registry.get(model_name)  # validate early
        self.scheduler = scheduler if scheduler is not None else DPBatchScheduler()
        self.metrics = metrics
        self.cache: ResponseCache = ResponseCache(capacity=cache_capacity,
                                                  metrics=metrics)
        self.max_batch = max_batch

    @property
    def active_model(self) -> ModelVersion:
        return self.registry.get(self.model_name)

    def degradation_ladder(
        self,
        versions: Optional[Sequence[int]] = None,
        shed_age_s: Optional[float] = None,
    ) -> "DegradationLadder":
        """Build a fallback ladder from this service's registered versions.

        By default the rungs are the serving version followed by every
        *older* version in descending order — the standard "fall back to
        the previous, cheaper deployment" shape.  ``shed_age_s`` arms load
        shedding on the final rung (the :mod:`.shedding` semantics as the
        last line of defence).
        """
        from ..resilience.degradation import DegradationLadder

        if versions is None:
            current = self.registry.serving_version(self.model_name)
            older = [v for v in self.registry.versions(self.model_name)
                     if v < current]
            versions = [current] + sorted(older, reverse=True)
        return DegradationLadder.from_registry(
            self.registry, self.model_name, versions, shed_age_s=shed_age_s
        )

    def serve(
        self,
        requests: Sequence[Request],
        duration_s: Optional[float] = None,
        use_cache: bool = True,
        resilience: Optional["ResilienceConfig"] = None,
    ) -> ServingMetrics:
        """Serve a workload with the currently-deployed model version.

        ``resilience`` threads fault injection, deadlines, retries, a
        breaker and (via its ``degradation`` controller, typically built
        over :meth:`degradation_ladder`) model fallback through the run;
        ``None`` serves exactly as before.
        """
        model = self.active_model
        return simulate_serving(
            requests,
            self.scheduler,
            model.cost_fn,
            ServingConfig(max_batch=self.max_batch),
            duration_s=duration_s,
            system_name=f"{model.name}@v{model.version}",
            cache=self.cache if use_cache else None,
            resilience=resilience,
        )
