"""Batch schedulers, including the paper's DP scheduler (Algorithm 3).

Given the requests currently in the message queue and a profiled cost
function ``cost(seq_len, batch_size) -> seconds`` (the ``cached_cost`` table
from warm-up), a scheduler partitions the requests into padded batches.

The paper's formulation writes the cost term as a per-request average times
the batch size; we use the equivalent whole-batch latency directly.  Sorting
by length first means every candidate batch is a *contiguous* slice of the
sorted list padded to its last (longest) element — the key insight that
makes the O(n²) DP optimal over this family of schedules.
"""

from __future__ import annotations

import abc
from bisect import bisect_right, insort
from typing import Callable, List, Optional, Sequence

from .request import Batch, Request, make_batch

CostFn = Callable[[int, int], float]


class BatchScheduler(abc.ABC):
    """Partition pending requests into executable batches."""

    name: str = "base"

    @abc.abstractmethod
    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        """Return batches covering every request exactly once."""

    @staticmethod
    def _check_args(requests: Sequence[Request], max_batch: int) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if not requests:
            raise ValueError("cannot schedule an empty request list")


class DPBatchScheduler(BatchScheduler):
    """Paper Algorithm 3: throughput-optimal batching via dynamic programming.

    ``states[i]`` is the minimum time to process the first ``i`` requests of
    the length-sorted list; the transition considers every batch ending at
    request ``i`` (up to ``max_batch`` long, padded to request ``i``'s
    length).  Reconstruction walks ``start_idx_list`` backwards.
    """

    name = "dp"

    def __init__(self, order_batches: str = "fifo") -> None:
        """``order_batches``: execution order of the optimal partition.
        ``"fifo"`` keeps length order (the paper's behaviour); ``"spt"``
        runs shortest batches first, which provably minimizes the round's
        mean completion time without changing its makespan."""
        if order_batches not in ("fifo", "spt"):
            raise ValueError(
                f"order_batches must be 'fifo' or 'spt', got {order_batches!r}"
            )
        self.order_batches = order_batches

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        # L1: sort in increasing order of sequence length (stable: FIFO ties).
        order = sorted(requests, key=lambda r: r.seq_len)
        n = len(order)
        states = [0.0] * (n + 1)
        start_idx = [0] * (n + 1)
        for i in range(1, n + 1):
            cur_length = order[i - 1].seq_len  # longest request in any batch ending at i
            best_cost = cost_fn(cur_length, 1) + states[i - 1]
            best_start = i - 1
            j = i - 1
            lower = max(0, i - max_batch)
            while j > lower:
                batch_size = i - j + 1
                tmp = states[j - 1] + cost_fn(cur_length, batch_size)
                if tmp < best_cost:
                    best_cost = tmp
                    best_start = j - 1
                j -= 1
            states[i] = best_cost
            start_idx[i] = best_start
        # L21-L26: reconstruct the optimal partition.
        batches: List[Batch] = []
        i = n
        while i > 0:
            start = start_idx[i]
            batches.append(make_batch(list(order[start:i])))
            i = start
        batches.reverse()
        if self.order_batches == "spt":
            batches.sort(key=lambda b: cost_fn(b.padded_len, b.size))
        return batches

    def optimal_makespan(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> float:
        """Total processing time of the optimal schedule (for tests)."""
        batches = self.schedule(requests, cost_fn, max_batch)
        return sum(cost_fn(b.padded_len, b.size) for b in batches)


class PrunedDPBatchScheduler(DPBatchScheduler):
    """Algorithm 3 with the host fast path: bucketed pricing, a monotone
    pruning bound, and incremental prefix reuse.

    Produces the *identical* partition to :class:`DPBatchScheduler` (not
    merely one of equal makespan) — the three optimizations are exact:

    * **Run-length bucketed pricing** — every transition for a position
      inside a run of equal sequence lengths prices batches from the same
      cost row ``C_L[s] = cost_fn(L, s)``.  Rows are built once per
      distinct length and memoized across rounds, so ``cost_fn`` is
      evaluated O(#distinct lengths x max_batch) times instead of
      O(n x max_batch) per round.
    * **Monotone pruning bound** — when ``cost_fn`` is non-decreasing in
      both batch size and padded length (always true of profiled
      whole-batch latencies), DP prefix costs are non-decreasing, so once
      ``states[lower] + C_L[s] >= best`` no larger batch ending at the
      same position can *strictly* beat the incumbent and the inner loop
      breaks.  Monotonicity is *verified*, not assumed: each new row is
      checked in ``s`` and against its sorted-length neighbours, and any
      violation disables pruning (the loop then runs in full).  Because
      the reference DP updates on strict ``<`` only, breaking when no
      strict improvement is possible preserves its exact argmin.
    * **Incremental prefix reuse** — ``states[i]`` depends only on the
      first ``i`` sorted lengths, so when consecutive rounds share a
      sorted-length prefix (a queue that only grew, the steady state of a
      hungry server), the DP restarts at the first differing position.

    Memoized rows and prefix states are invalidated whenever ``cost_fn``
    or ``max_batch`` differ from the previous call (or via
    :meth:`reset`).  Instances are therefore stateful; share one per
    (server, cost table) like the other schedulers.
    """

    name = "dp-pruned"

    def __init__(self, order_batches: str = "fifo", prune: bool = True,
                 incremental: bool = True) -> None:
        super().__init__(order_batches)
        self.prune = prune
        self.incremental = incremental
        self.reset()
        # Cumulative fast-path counters (read by ``repro bench``).
        self.rounds = 0
        self.cost_calls = 0
        self.positions_reused = 0
        self.transitions_pruned = 0

    def reset(self) -> None:
        """Drop memoized cost rows and prefix states."""
        self._cost_fn: Optional[CostFn] = None
        self._max_batch: Optional[int] = None
        self._rows: dict = {}       # length -> [cost_fn(length, s) for s=1..max_batch]
        self._row_lengths: List[int] = []  # sorted keys of _rows
        self._prunable = True  # every verified monotonicity check passed
        self._lengths: List[int] = []
        self._states: List[float] = [0.0]
        self._starts: List[int] = [0]

    def _row(self, length: int, max_batch: int, cost_fn: CostFn) -> List[float]:
        row = self._rows.get(length)
        if row is None:
            row = [cost_fn(length, s) for s in range(1, max_batch + 1)]
            self.cost_calls += len(row)
            self._rows[length] = row
            # Pruning soundness needs cost_fn non-decreasing in batch size
            # *and* length (=> DP prefix costs non-decreasing).  Verify:
            # in ``s`` within the row, and elementwise against the sorted
            # neighbouring rows (pairwise dominance is transitive).
            if self._prunable:
                pos = bisect_right(self._row_lengths, length)
                ok = all(row[s] >= row[s - 1] for s in range(1, len(row)))
                if ok and pos > 0:
                    left = self._rows[self._row_lengths[pos - 1]]
                    ok = all(a <= b for a, b in zip(left, row))
                if ok and pos < len(self._row_lengths):
                    right = self._rows[self._row_lengths[pos]]
                    ok = all(a <= b for a, b in zip(row, right))
                if not ok:
                    self._prunable = False
            insort(self._row_lengths, length)
        return row

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        self.rounds += 1
        if cost_fn is not self._cost_fn or max_batch != self._max_batch:
            self.reset()
            self._cost_fn = cost_fn
            self._max_batch = max_batch
        order = sorted(requests, key=lambda r: r.seq_len)
        n = len(order)
        lengths = [r.seq_len for r in order]
        # Longest sorted-length prefix shared with the previous round:
        # states/starts up to it are still valid.
        prefix = 0
        if self.incremental:
            prev = self._lengths
            limit = min(len(prev), n)
            while prefix < limit and prev[prefix] == lengths[prefix]:
                prefix += 1
        self.positions_reused += prefix
        states = self._states[: prefix + 1]
        starts = self._starts[: prefix + 1]
        for i in range(prefix + 1, n + 1):
            row = self._row(lengths[i - 1], max_batch, cost_fn)
            lower = max(0, i - max_batch)
            low_state = states[lower]
            can_prune = self.prune and self._prunable
            # Batch sizes ascending == the reference DP's descending j;
            # strict-< updates keep its exact tie-breaking.
            best_cost = states[i - 1] + row[0]
            best_start = i - 1
            for size in range(2, i - lower + 1):
                batch_cost = row[size - 1]
                if can_prune and low_state + batch_cost >= best_cost:
                    # states[start] >= low_state for every remaining start
                    # and the row is non-decreasing: nothing ahead can be
                    # strictly cheaper than the incumbent.
                    self.transitions_pruned += i - lower + 1 - size
                    break
                candidate = states[i - size] + batch_cost
                if candidate < best_cost:
                    best_cost = candidate
                    best_start = i - size
            states.append(best_cost)
            starts.append(best_start)
        self._lengths = lengths
        self._states = states
        self._starts = starts
        batches: List[Batch] = []
        i = n
        while i > 0:
            start = starts[i]
            batches.append(make_batch(list(order[start:i])))
            i = start
        batches.reverse()
        if self.order_batches == "spt":
            batches.sort(key=lambda b: cost_fn(b.padded_len, b.size))
        return batches

    def stats(self) -> dict:
        """Cumulative fast-path counters (for bench/observability)."""
        return {
            "rounds": self.rounds,
            "cost_calls": self.cost_calls,
            "distinct_lengths": len(self._rows),
            "positions_reused": self.positions_reused,
            "transitions_pruned": self.transitions_pruned,
        }


class NaiveBatchScheduler(BatchScheduler):
    """Turbo-Naive-Batch baseline: everything in the queue into one batch
    (chunked at ``max_batch``), padded to the longest member."""

    name = "naive"

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        return [
            make_batch(list(requests[i : i + max_batch]))
            for i in range(0, len(requests), max_batch)
        ]


class NoBatchScheduler(BatchScheduler):
    """No batching: one request per inference (Turbo/PyTorch-NoBatch)."""

    name = "nobatch"

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        return [make_batch([r]) for r in requests]


class FixedPadScheduler(BatchScheduler):
    """TF-serving baseline: static batch size, every sequence padded to the
    model's maximum length, zero-request slots padded too."""

    name = "fixedpad"

    def __init__(self, pad_len: int, batch_size: int) -> None:
        if pad_len <= 0 or batch_size <= 0:
            raise ValueError(
                f"pad_len and batch_size must be positive, got {pad_len}, {batch_size}"
            )
        self.pad_len = pad_len
        self.batch_size = batch_size

    def schedule(
        self, requests: Sequence[Request], cost_fn: CostFn, max_batch: int
    ) -> List[Batch]:
        self._check_args(requests, max_batch)
        too_long = [r for r in requests if r.seq_len > self.pad_len]
        if too_long:
            raise ValueError(
                f"requests longer than the static pad length {self.pad_len}: "
                f"{[r.req_id for r in too_long[:3]]}"
            )
        return [
            make_batch(
                list(requests[i : i + self.batch_size]),
                execution_size=self.batch_size,
                padded_len=self.pad_len,
            )
            for i in range(0, len(requests), self.batch_size)
        ]


def round_padding_ratio(batches: Sequence[Batch]) -> float:
    """Fraction of executed tokens that are zero padding in one round."""
    executed = sum(b.padded_len * b.cost_batch_size for b in batches)
    if executed <= 0:
        return 0.0
    return sum(b.padding_waste for b in batches) / executed


def observe_round(
    batches: Sequence[Batch],
    now_s: float,
    scheduler_name: str,
    metrics=None,
    tracer=None,
) -> None:
    """Record one scheduling round's decisions (batches chosen, sizes,
    padding ratio) into an observability registry/tracer.

    ``metrics`` is a :class:`repro.observability.MetricsRegistry`,
    ``tracer`` a :class:`repro.observability.Tracer`; both optional so the
    uninstrumented hot path stays free.
    """
    ratio = round_padding_ratio(batches)
    if metrics is not None:
        metrics.counter("scheduler_rounds_total", scheduler=scheduler_name).inc()
        metrics.counter(
            "scheduler_batches_chosen_total", scheduler=scheduler_name
        ).inc(len(batches))
        metrics.gauge(
            "scheduler_padding_ratio", scheduler=scheduler_name
        ).set(ratio, t=now_s)
        size_hist = metrics.histogram("scheduler_batch_size",
                                      scheduler=scheduler_name)
        for b in batches:
            size_hist.observe(b.size)
    if tracer is not None and tracer.enabled:
        tracer.instant(
            "scheduling_round", now_s, tid="scheduler", cat="scheduler",
            batches=len(batches),
            requests=sum(b.size for b in batches),
            padding_ratio=round(ratio, 6),
        )
        tracer.counter("padding_ratio", now_s, {scheduler_name: ratio})


def batch_execution_cost(batch: Batch, cost_fn: CostFn) -> float:
    """Latency of executing one batch under the profiled cost function
    (schedulers with their own cost model may pin it via cost_override)."""
    if batch.cost_override is not None:
        return batch.cost_override
    return cost_fn(batch.padded_len, batch.cost_batch_size)


def schedule_makespan(
    batches: Sequence[Batch], cost_fn: CostFn
) -> float:
    """Total serial execution time of a schedule."""
    return sum(batch_execution_cost(b, cost_fn) for b in batches)


def throughput_of_schedule(
    batches: Sequence[Batch], cost_fn: CostFn
) -> float:
    """Responses per second the schedule achieves (Fig. 9's metric)."""
    total_requests = sum(b.size for b in batches)
    makespan = schedule_makespan(batches, cost_fn)
    if makespan <= 0:
        raise ValueError("schedule has non-positive makespan")
    return total_requests / makespan


def brute_force_optimal_makespan(
    requests: Sequence[Request], cost_fn: CostFn, max_batch: Optional[int] = None
) -> float:
    """Exponential-time reference optimum over contiguous partitions of the
    length-sorted list; used by tests to certify DP optimality (n <= ~15)."""
    order = sorted(requests, key=lambda r: r.seq_len)
    n = len(order)
    if n > 20:
        raise ValueError("brute force is for small instances only")
    cap = max_batch if max_batch is not None else n
    best = {0: 0.0}

    def solve(i: int) -> float:
        if i in best:
            return best[i]
        result = float("inf")
        for j in range(max(0, i - cap), i):
            cost = cost_fn(order[i - 1].seq_len, i - j) + solve(j)
            result = min(result, cost)
        best[i] = result
        return result

    return solve(n)
