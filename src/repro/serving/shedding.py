"""Deadline-based load shedding.

The paper observes that past the saturation point "requests will accumulate
in the message queue … its latency will gradually tend to infinity and
cause the network packet loss."  Production front-ends don't let that
happen: they shed load.  This module adds the standard mechanism — drop any
request whose age already exceeds its deadline when it reaches the
scheduler — so an overloaded server keeps serving *fresh* requests at
bounded latency instead of serving everyone infinitely late.

Migration note (event engine): the loop runs on
:class:`repro.engine.Engine` — arrivals are ARRIVAL events and batch
execution occupies the window through ``engine.advance``.  As before, the
trigger policy is only re-evaluated at event times (no TRIGGER timers
here: a lazy policy fires at the next arrival, exactly as the old
jump-to-next-arrival loop behaved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..engine import Engine, EventKind
from .metrics import LatencyStats, ServingMetrics, response_throughput
from .mq import MessageQueue
from .policies import HungryPolicy, TriggerPolicy
from .request import Request, RequestState
from .scheduler import BatchScheduler, CostFn, batch_execution_cost


@dataclass(frozen=True)
class SheddingMetrics:
    """Serving outcome under load shedding."""

    serving: ServingMetrics
    dropped: int

    @property
    def drop_rate(self) -> float:
        return self.dropped / max(1, self.serving.offered)

    @property
    def goodput(self) -> float:
        """Served responses per second (the throughput of non-dropped work)."""
        return self.serving.response_throughput


def simulate_serving_with_shedding(
    requests: Sequence[Request],
    scheduler: BatchScheduler,
    cost_fn: CostFn,
    deadline_s: float,
    max_batch: int = 20,
    policy: Optional[TriggerPolicy] = None,
    duration_s: Optional[float] = None,
    system_name: str = "shedding",
) -> SheddingMetrics:
    """Discrete-event serving where stale requests are dropped.

    A request is shed when, at the moment a scheduling round starts, its
    age already exceeds ``deadline_s`` (it could not possibly be answered
    in time).  Dropped requests never reach the model; served requests'
    latency statistics therefore stay bounded near the deadline.
    """
    if not requests:
        raise ValueError("need at least one request to simulate")
    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive, got {deadline_s}")
    policy = policy if policy is not None else HungryPolicy()
    arrivals: List[Request] = sorted(requests, key=lambda r: r.arrival_s)
    horizon = duration_s if duration_s is not None else arrivals[-1].arrival_s
    if horizon <= 0:
        raise ValueError(f"duration must be positive, got {horizon}")

    engine = Engine()
    queue = MessageQueue()
    n = len(arrivals)
    dropped: List[Request] = []

    def take_fresh(now: float) -> List[Request]:
        """Drain the queue, shedding requests already past their deadline."""
        fresh: List[Request] = []
        for request in queue.drain(None):
            if now - request.arrival_s > deadline_s:
                request.state = RequestState.SHED
                dropped.append(request)
            else:
                fresh.append(request)
        return fresh

    from .request import make_batch

    for request in arrivals:
        engine.schedule(request.arrival_s, EventKind.ARRIVAL,
                        lambda event: queue.push(event.payload), request)

    while True:
        while queue and policy.should_schedule(queue, engine.now):
            fresh = take_fresh(engine.now)
            for batch in scheduler.schedule(fresh, cost_fn, max_batch) \
                    if fresh else ():
                # Re-check freshness at dispatch: members that went
                # stale while earlier batches of this round executed
                # are shed rather than served hopelessly late.
                now = engine.now
                alive: List[Request] = []
                for r in batch.requests:
                    if now - r.arrival_s > deadline_s:
                        r.state = RequestState.SHED
                        dropped.append(r)
                    else:
                        alive.append(r)
                if not alive:
                    continue
                live_batch = (
                    batch if len(alive) == len(batch.requests)
                    else make_batch(alive)
                )
                exec_s = batch_execution_cost(live_batch, cost_fn)
                for r in live_batch.requests:
                    r.start_s = now
                engine.advance(exec_s)
                for r in live_batch.requests:
                    r.resolve(RequestState.COMPLETED, engine.now)
        if not engine.pending:
            break
        engine.step_due()

    served = [r for r in arrivals if r.completion_s is not None]
    throughput = response_throughput(arrivals, horizon * 0.1, horizon)
    serving = ServingMetrics(
        system=system_name,
        request_rate=n / horizon,
        response_throughput=throughput,
        latency=LatencyStats.from_requests(served),
        saturated=len(dropped) > 0,
        completed=len(served),
        offered=n,
        backlog_at_end=0,
    )
    return SheddingMetrics(serving=serving, dropped=len(dropped))
